file(REMOVE_RECURSE
  "libafdx_minplus.a"
)

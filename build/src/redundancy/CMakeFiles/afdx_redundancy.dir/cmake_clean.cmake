file(REMOVE_RECURSE
  "CMakeFiles/afdx_redundancy.dir/redundancy.cpp.o"
  "CMakeFiles/afdx_redundancy.dir/redundancy.cpp.o.d"
  "libafdx_redundancy.a"
  "libafdx_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

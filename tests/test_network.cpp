// Unit tests for the topology model.
#include "topology/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace afdx {
namespace {

Network two_switch_net() {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, e2);
  return net;
}

TEST(Network, AddAndQueryNodes) {
  Network net;
  const NodeId e = net.add_end_system("e1");
  const NodeId s = net.add_switch("S1");
  EXPECT_TRUE(net.is_end_system(e));
  EXPECT_TRUE(net.is_switch(s));
  EXPECT_EQ(net.node(e).name, "e1");
  EXPECT_EQ(net.node_count(), 2u);
}

TEST(Network, FindNodeByName) {
  const Network net = two_switch_net();
  EXPECT_TRUE(net.find_node("S2").has_value());
  EXPECT_FALSE(net.find_node("S9").has_value());
}

TEST(Network, DuplicateNameRejected) {
  Network net;
  net.add_end_system("e1");
  EXPECT_THROW(net.add_switch("e1"), Error);
}

TEST(Network, EmptyNameRejected) {
  Network net;
  EXPECT_THROW(net.add_switch(""), Error);
}

TEST(Network, ConnectCreatesBothDirections) {
  Network net;
  const NodeId e = net.add_end_system("e1");
  const NodeId s = net.add_switch("S1");
  const LinkId fwd = net.connect(e, s);
  EXPECT_EQ(net.link_count(), 2u);
  EXPECT_EQ(net.link(fwd).source, e);
  EXPECT_EQ(net.link(fwd).dest, s);
  const LinkId bwd = net.reverse(fwd);
  EXPECT_EQ(net.link(bwd).source, s);
  EXPECT_EQ(net.link(bwd).dest, e);
  EXPECT_EQ(net.reverse(bwd), fwd);
}

TEST(Network, PortLatencyDependsOnSourceKind) {
  Network net;
  const NodeId e = net.add_end_system("e1");
  const NodeId s = net.add_switch("S1");
  LinkParams lp;
  lp.switch_latency = 16.0;
  lp.end_system_latency = 2.0;
  const LinkId fwd = net.connect(e, s, lp);
  EXPECT_DOUBLE_EQ(net.link(fwd).latency, 2.0);               // ES port
  EXPECT_DOUBLE_EQ(net.link(net.reverse(fwd)).latency, 16.0);  // switch port
}

TEST(Network, SelfLoopRejected) {
  Network net;
  const NodeId s = net.add_switch("S1");
  EXPECT_THROW(net.connect(s, s), Error);
}

TEST(Network, EndSystemToEndSystemRejected) {
  Network net;
  const NodeId a = net.add_end_system("e1");
  const NodeId b = net.add_end_system("e2");
  EXPECT_THROW(net.connect(a, b), Error);
}

TEST(Network, DuplicateCableRejected) {
  Network net;
  const NodeId e = net.add_end_system("e1");
  const NodeId s = net.add_switch("S1");
  net.connect(e, s);
  EXPECT_THROW(net.connect(s, e), Error);
}

TEST(Network, LinkBetween) {
  const Network net = two_switch_net();
  const NodeId s1 = *net.find_node("S1");
  const NodeId s2 = *net.find_node("S2");
  const auto l = net.link_between(s1, s2);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(net.link(*l).dest, s2);
  EXPECT_FALSE(net.link_between(*net.find_node("e1"), s2).has_value());
}

TEST(Network, LinksFromAndInto) {
  const Network net = two_switch_net();
  const NodeId s1 = *net.find_node("S1");
  EXPECT_EQ(net.links_from(s1).size(), 2u);  // to e1 and to S2
  EXPECT_EQ(net.links_into(s1).size(), 2u);
}

TEST(Network, EndSystemAndSwitchLists) {
  const Network net = two_switch_net();
  EXPECT_EQ(net.end_systems().size(), 2u);
  EXPECT_EQ(net.switches().size(), 2u);
}

TEST(Network, ShortestPathAcrossSwitches) {
  const Network net = two_switch_net();
  const auto p = net.shortest_path(*net.find_node("e1"), *net.find_node("e2"));
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ(net.link(p->front()).source, *net.find_node("e1"));
  EXPECT_EQ(net.link(p->back()).dest, *net.find_node("e2"));
}

TEST(Network, ShortestPathDoesNotForwardThroughEndSystems) {
  // e1 - S1, e1 - ... an ES with two links is invalid, so build a net where
  // the only geometric shortcut would pass through an end system: S1 - e -
  // S2 is impossible by construction; instead verify unreachable case.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId s1 = net.add_switch("S1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(e2, s2);
  EXPECT_FALSE(net.shortest_path(e1, e2).has_value());
}

TEST(Network, ShortestPathPicksFewestHops) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, s3);
  net.connect(s1, s3);  // shortcut
  net.connect(s3, e2);
  const auto p = net.shortest_path(e1, e2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 3u);  // e1->S1->S3->e2
}

TEST(Network, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(two_switch_net().validate());
}

TEST(Network, ValidateRejectsDisconnectedEndSystem) {
  Network net;
  net.add_end_system("e1");
  net.add_switch("S1");
  EXPECT_THROW(net.validate(), Error);
}

TEST(Network, ValidateRejectsIsolatedSwitch) {
  Network net = two_switch_net();
  net.add_switch("S3");
  EXPECT_THROW(net.validate(), Error);
}

TEST(Network, OutOfRangeIdsThrow) {
  const Network net = two_switch_net();
  EXPECT_THROW((void)net.node(99), Error);
  EXPECT_THROW((void)net.link(99), Error);
  EXPECT_THROW((void)net.links_from(99), Error);
}

}  // namespace
}  // namespace afdx

file(REMOVE_RECURSE
  "CMakeFiles/ext_sfa_baseline.dir/ext_sfa_baseline.cpp.o"
  "CMakeFiles/ext_sfa_baseline.dir/ext_sfa_baseline.cpp.o.d"
  "ext_sfa_baseline"
  "ext_sfa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sfa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

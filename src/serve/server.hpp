// The serving loop: transports, admission control, worker pool.
//
// A Server couples one Service to its I/O: requests arrive as lines (stdio
// stream or TCP connections on 127.0.0.1), pass through a bounded admission
// queue, and are executed by a fixed pool of worker threads (the existing
// engine::ThreadPool -- one long-lived parallel_for batch whose body drains
// the queue). Responses go back over the requester's transport; each
// transport serializes its writes, so concurrent workers never interleave
// response lines.
//
// Overload behaviour is explicit, never silent: when the admission queue is
// full the request is answered immediately with
// {"id":N,"ok":false,"error":"overloaded"} from the reader thread -- the
// client sees the rejection at once instead of a growing tail latency.
// A request line longer than max_line_bytes is likewise rejected with a
// clean error response (and, on TCP, the remainder of the oversized line is
// discarded up to the next newline); the connection survives both.
//
// Shutdown: stdio serving ends at EOF of the input stream; TCP serving ends
// when a "shutdown" request is acknowledged or request_stop() is called
// (e.g. from a signal handler -- it only flips an atomic, so it is
// async-signal-safe). Both paths drain the queue before returning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "serve/service.hpp"

namespace afdx::serve {

struct ServerOptions {
  /// Concurrent request workers (>= 1; 0 = one per hardware thread).
  int workers = 1;
  /// Admission-queue capacity; a request arriving when the queue holds this
  /// many is rejected with an "overloaded" response.
  std::size_t queue_capacity = 16;
  /// Longest accepted request line (bytes, excluding the newline).
  std::size_t max_line_bytes = 1 << 16;
};

/// Where one request's response goes. write_line appends the newline and is
/// safe to call from any worker.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void write_line(const std::string& line) = 0;
};

class Server {
 public:
  Server(Service& service, ServerOptions options = {});

  /// Serves newline-delimited requests from `in` to `out` until EOF.
  /// Responses of concurrently executing requests may come back in
  /// completion order; with workers == 1 the order matches the input.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Listens on 127.0.0.1:`port` (0 = pick an ephemeral port, see
  /// bound_port()) and serves until a shutdown request or request_stop().
  /// Throws afdx::Error when the socket cannot be bound.
  void listen_and_serve(std::uint16_t port);

  /// The port listen_and_serve actually bound (valid once it is serving).
  [[nodiscard]] std::uint16_t bound_port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// Asks the TCP serving loop to stop. Async-signal-safe.
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }

 private:
  struct Job {
    std::string line;
    std::shared_ptr<ResponseSink> sink;
  };

  enum class Push : std::uint8_t { kOk, kFull, kClosed };

  /// Enqueues the line; consumes it only when kOk is returned.
  Push push(std::string& line, const std::shared_ptr<ResponseSink>& sink);
  bool pop(Job& job);
  void close_queue();
  [[nodiscard]] std::size_t queue_depth() const;

  /// Admission decision for one raw request line: enqueue, or answer the
  /// oversized / overloaded / closed cases directly on `sink`.
  void admit(std::string line, const std::shared_ptr<ResponseSink>& sink);

  /// Runs the worker pool until the queue is closed and drained.
  void run_workers();

  Service& service_;
  ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool closed_ = false;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> bound_port_{0};
};

}  // namespace afdx::serve

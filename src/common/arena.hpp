// Bump-pointer arenas for hot-loop allocation.
//
// A BumpArena hands out raw memory by advancing a pointer through a chain
// of geometrically-growing blocks; individual frees are no-ops and the
// whole arena rewinds in O(1) (`reset`, or the scope-mark rewind of
// ArenaScope). Two ways to use it:
//
//   * Directly: alloc_array<T>(n) carves a typed span. The trajectory
//     analyzer carves its per-prefix SoA candidate-sweep columns this way,
//     one per-shard arena reset between paths, so the sweep's inner loop
//     streams contiguous arena pages instead of scattered heap vectors.
//   * Through ArenaAlloc<T>: a std::allocator drop-in that serves from the
//     calling thread's *active* arena (installed by an ArenaScope) and
//     falls back to the heap when none is active. Every allocation carries
//     a small tagged header so deallocate() can tell the two origins apart
//     -- mixing arena-backed and heap-backed containers is safe in either
//     direction. minplus::Curve stores its breakpoints through this
//     allocator, which removes the allocator from the per-port curve
//     algebra of the WCNC phase (scoped inside compute_port_bounds).
//
// Lifetime rule: anything allocated while a scope is active must be
// destroyed before the scope's arena memory is rewound past it (scope
// exit rewinds to the entry mark). Returning arena-backed containers out
// of the scope that allocated them is a bug; the debug-build header check
// in deallocate() catches stale frees of rewound memory early.
//
// Thread safety: an arena is single-threaded by design (one per shard /
// worker); the active-arena registration is thread_local.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace afdx::common {

class BumpArena {
 public:
  /// First block size in bytes; subsequent blocks double up to a cap.
  explicit BumpArena(std::size_t first_block_bytes = 1u << 16);
  ~BumpArena();

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Raw allocation, aligned to `align` (a power of two).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Typed uninitialized span of n elements (trivially destructible types
  /// only -- the arena never runs destructors).
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena::alloc_array: arena memory is never destructed");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every block to empty; the blocks themselves are kept, so a
  /// steady-state reset-per-path cycle performs no heap traffic at all.
  void reset() noexcept;

  /// A rewind point (block index + offset) for scope-local use.
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };
  [[nodiscard]] Mark mark() const noexcept;
  /// Rewinds to a previously taken mark (blocks stay allocated).
  void rewind(Mark m) noexcept;

  /// Bytes currently handed out (across all blocks).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;
  /// Largest bytes_in_use ever observed (arena footprint).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_; }

 private:
  struct Block;
  Block* grow(std::size_t min_bytes);

  Block* head_ = nullptr;    // current block (bump target)
  Block* first_ = nullptr;   // chain start (reset rewinds to here)
  std::size_t next_block_bytes_;
  std::size_t blocks_ = 0;
  std::size_t high_water_ = 0;
};

/// The calling thread's active arena (nullptr outside every ArenaScope).
[[nodiscard]] BumpArena* active_arena() noexcept;

/// Installs `arena` as the calling thread's active arena and remembers the
/// arena's current mark; the destructor restores the previous active arena
/// and rewinds to the mark, releasing everything the scope allocated.
/// Scopes nest (also across different arenas).
class ArenaScope {
 public:
  explicit ArenaScope(BumpArena& arena) noexcept;
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  BumpArena* arena_;
  BumpArena* previous_;
  BumpArena::Mark mark_;
};

namespace detail {
/// Header magics distinguishing the two allocation origins. deallocate()
/// reads the word just before the payload; a rewound-and-overwritten arena
/// header shows neither magic and trips the debug assertion.
inline constexpr std::uint64_t kHeapMagic = 0x48454150'41464458ull;   // "HEAPAFDX"
inline constexpr std::uint64_t kArenaMagic = 0x4152454E'41464458ull;  // "ARENAFDX"

[[nodiscard]] void* tagged_allocate(std::size_t bytes);
void tagged_deallocate(void* p) noexcept;
}  // namespace detail

/// std::allocator drop-in backed by the active arena (heap fallback).
template <typename T>
struct ArenaAlloc {
  using value_type = T;

  ArenaAlloc() noexcept = default;
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(detail::tagged_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    detail::tagged_deallocate(p);
  }

  friend bool operator==(const ArenaAlloc&, const ArenaAlloc&) noexcept {
    return true;
  }
  friend bool operator!=(const ArenaAlloc&, const ArenaAlloc&) noexcept {
    return false;
  }
};

}  // namespace afdx::common

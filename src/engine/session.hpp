// Baseline / overlay session split for analysis-as-a-service.
//
// The expensive part of every what-if query is the baseline: a full
// engine run over the healthy configuration plus the warm PortCache /
// PrefixCache state it leaves behind. BaselineState captures exactly that
// once -- configuration, options, healthy RunResult (which carries the
// per-port WCNC detail and the shared trajectory prefix cache) -- and is
// immutable afterwards, so any number of concurrent readers can analyze
// against one baseline without copying it.
//
// An OverlaySession is the per-request counterpart: it accumulates VL
// parameter overrides (BAG, frame sizes, priority, jitter) on top of the
// baseline configuration, materializes the overlay TrafficConfig (baseline
// network + mutated VLs + baseline routes, so link ids and routes stay
// compatible with plan_incremental), and re-bounds only the dirty cone via
// AnalysisEngine::run_incremental. Sessions own their private engine, so
// N sessions on N threads share nothing mutable but the baseline's
// internally synchronized caches:
//
//   auto base = BaselineState::build(config);          // once, warm
//   OverlaySession s(base);                            // per request
//   s.override_bag("vl042", 4000.0);
//   engine::RunResult r = s.analyze();                 // dirty cone only
//
// analyze_config() is the low-level entry for overlays the session cannot
// build itself (e.g. a fault scenario's degraded view from
// faults::apply_scenario): the caller passes any compatible configuration
// plus the changed-link seed and still gets the incremental path.
// Every result is bit-identical to a fresh full run of the same overlay
// configuration -- run_incremental guarantees it by construction.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::engine {

/// One immutable warm baseline: configuration + options + healthy bounds +
/// the cache state needed to seed incremental re-runs. Thread-safe for
/// concurrent readers (all mutable state inside the carried RunResult's
/// prefix cache is internally synchronized).
class BaselineState {
 public:
  /// Runs the full (resilient) analysis once and pins the result. The
  /// returned baseline is complete when healthy().complete(); an unstable
  /// configuration still yields a usable baseline with per-path statuses.
  [[nodiscard]] static std::shared_ptr<const BaselineState> build(
      std::shared_ptr<const TrafficConfig> config,
      const netcalc::Options& nc = {}, const trajectory::Options& tj = {},
      int threads = 1);

  [[nodiscard]] const TrafficConfig& config() const noexcept { return *config_; }
  [[nodiscard]] std::shared_ptr<const TrafficConfig> config_ptr() const noexcept {
    return config_;
  }
  [[nodiscard]] const RunResult& healthy() const noexcept { return healthy_; }
  [[nodiscard]] const netcalc::Options& nc_options() const noexcept {
    return nc_;
  }
  [[nodiscard]] const trajectory::Options& tj_options() const noexcept {
    return tj_;
  }
  /// Wall time of the baseline run in microseconds (the cost a warm
  /// what-if avoids re-paying).
  [[nodiscard]] Microseconds build_wall_us() const noexcept {
    return build_wall_us_;
  }

 private:
  BaselineState() = default;

  std::shared_ptr<const TrafficConfig> config_;
  netcalc::Options nc_;
  trajectory::Options tj_;
  RunResult healthy_;
  Microseconds build_wall_us_ = 0.0;
};

/// One VL parameter override of an overlay session. Unset fields keep the
/// baseline value.
struct VlOverride {
  std::string vl;  ///< VL name (names are the stable cross-config id).
  std::optional<Microseconds> bag;
  std::optional<Bytes> s_min;
  std::optional<Bytes> s_max;
  std::optional<Microseconds> max_release_jitter;
  std::optional<std::uint8_t> priority;

  [[nodiscard]] bool empty() const noexcept {
    return !bag && !s_min && !s_max && !max_release_jitter && !priority;
  }
};

/// A per-request mutable view over one shared baseline.
class OverlaySession {
 public:
  /// `threads` sizes the private engine of this session (1 = serve the
  /// request inline on the calling thread, the serving default).
  explicit OverlaySession(std::shared_ptr<const BaselineState> baseline,
                          int threads = 1);

  OverlaySession(const OverlaySession&) = delete;
  OverlaySession& operator=(const OverlaySession&) = delete;

  [[nodiscard]] const BaselineState& baseline() const noexcept {
    return *baseline_;
  }

  /// Registers one VL override (merged field-by-field with any earlier
  /// override of the same VL). Throws afdx::Error on an unknown VL name or
  /// an out-of-contract value (non-positive BAG, illegal frame sizes --
  /// the same checks VirtualLink::validate applies).
  void override_vl(const VlOverride& override_);

  /// Shorthands for the common single-field requests.
  void override_bag(const std::string& vl, Microseconds bag_us);
  void override_s_max(const std::string& vl, Bytes s_max);
  void override_priority(const std::string& vl, std::uint8_t priority);

  [[nodiscard]] std::size_t override_count() const noexcept {
    return overrides_.size();
  }

  /// The overlay configuration: baseline network + overridden VLs +
  /// baseline routes. Validates like any TrafficConfig (throws on an
  /// overlay that breaks a contract invariant).
  [[nodiscard]] TrafficConfig materialize() const;

  /// Incremental re-analysis of the materialized overlay against the
  /// baseline. Bit-identical to a fresh full run of materialize().
  [[nodiscard]] RunResult analyze(const RunControl& control = {});

  /// Incremental re-analysis of an externally built overlay configuration
  /// (e.g. a degraded view) sharing the baseline's network. `changed_links`
  /// seeds the dirty cone on top of the plan's own crossing-set diff.
  [[nodiscard]] RunResult analyze_config(const TrafficConfig& current,
                                         const std::vector<LinkId>& changed_links,
                                         const RunControl& control = {});

  /// Statistics of the most recent analyze/analyze_config call.
  [[nodiscard]] const IncrementalStats& last_incremental() const noexcept {
    return last_incremental_;
  }

 private:
  std::shared_ptr<const BaselineState> baseline_;
  int threads_ = 1;
  std::vector<VlOverride> overrides_;
  IncrementalStats last_incremental_;
};

}  // namespace afdx::engine

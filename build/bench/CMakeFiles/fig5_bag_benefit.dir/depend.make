# Empty dependencies file for fig5_bag_benefit.
# This may be replaced when dependencies are built.

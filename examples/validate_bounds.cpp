// Bound validation campaign: hammer a configuration with simulated
// schedules (aligned, randomized and per-path adversarial phasings) and
// report how close the observed worst-case delays get to the analytic
// bounds -- the empirical-tightness methodology behind the reproduction's
// soundness tests.
//
//   $ ./validate_bounds [n_random_schedules]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

using namespace afdx;

int main(int argc, char** argv) {
  const int n_random = argc > 1 ? std::atoi(argv[1]) : 10;

  gen::IndustrialOptions options;
  options.vl_count = 120;
  options.end_system_count = 24;
  const TrafficConfig config = gen::industrial_config(options);
  const analysis::Comparison bounds = analysis::compare(config);

  std::vector<Microseconds> observed(config.all_paths().size(), 0.0);
  auto absorb = [&](const sim::Result& r) {
    for (std::size_t i = 0; i < observed.size(); ++i) {
      observed[i] = std::max(observed[i], r.max_path_delay[i]);
    }
  };

  absorb(sim::simulate(config, {}));
  sim::Options random_schedule;
  random_schedule.phasing = sim::Phasing::kRandom;
  for (int s = 1; s <= n_random; ++s) {
    random_schedule.seed = static_cast<std::uint64_t>(s);
    absorb(sim::simulate(config, random_schedule));
  }
  sim::Options adversarial;
  adversarial.phasing = sim::Phasing::kExplicit;
  for (const VlPath& p : config.all_paths()) {
    adversarial.offsets =
        sim::adversarial_offsets(config, PathRef{p.vl, p.dest_index});
    absorb(sim::simulate(config, adversarial));
  }

  int violations = 0;
  double worst_ratio = 0.0, mean_ratio = 0.0;
  std::size_t worst_path = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] > bounds.combined[i] + 1e-6) ++violations;
    const double ratio = observed[i] / bounds.combined[i];
    mean_ratio += ratio;
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_path = i;
    }
  }
  mean_ratio /= static_cast<double>(observed.size());

  report::Table t({"metric", "value"});
  t.add_row({"paths", std::to_string(observed.size())});
  t.add_row({"schedules simulated",
             std::to_string(1 + n_random + config.all_paths().size())});
  t.add_row({"bound violations", std::to_string(violations)});
  t.add_row({"mean observed/bound", format_percent(mean_ratio)});
  t.add_row({"max observed/bound",
             format_percent(worst_ratio) + " (VL " +
                 config.vl(config.all_paths()[worst_path].vl).name + ")"});
  t.print(std::cout);

  std::cout << "\nA violation would disprove an analysis; none is expected.\n"
               "The observed/bound gap mixes genuine pessimism with the\n"
               "schedules the campaign did not try.\n";
  return violations == 0 ? 0 : 2;
}

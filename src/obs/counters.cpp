#include "obs/counters.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

namespace afdx::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  const std::size_t b = (v == 0) ? 0 : static_cast<std::size_t>(
                                           64 - std::countl_zero(v));
  buckets_[std::min(b, kBuckets - 1)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);

  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return *h;
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>());
  return *histograms_.back().second;
}

std::vector<CounterSnapshot> Registry::counters() const {
  std::vector<CounterSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size());
    for (const auto& [n, c] : counters_) {
      out.push_back(CounterSnapshot{n, c->value()});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.name < b.name;
  });
  return out;
}

std::vector<HistogramSnapshot> Registry::histograms() const {
  std::vector<HistogramSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(histograms_.size());
    for (const auto& [n, h] : histograms_) {
      out.push_back(HistogramSnapshot{n, h->count(), h->sum(), h->min(),
                                      h->max(), h->mean()});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.name < b.name;
  });
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) c->reset();
  for (auto& [n, h] : histograms_) h->reset();
}

void Registry::print(std::ostream& out) const {
  out << "counters:\n";
  for (const CounterSnapshot& c : counters()) {
    out << "  " << c.name << " = " << c.value << "\n";
  }
  const auto hists = histograms();
  if (!hists.empty()) {
    out << "histograms:\n";
    for (const HistogramSnapshot& h : hists) {
      out << "  " << h.name << ": count=" << h.count << " sum=" << h.sum
          << " min=" << h.min << " max=" << h.max << " mean=" << h.mean
          << "\n";
    }
  }
}

}  // namespace afdx::obs

// Text (de)serialization of AFDX configurations.
//
// Line-oriented format (tokens separated by blanks, '#' starts a comment):
//
//   afdx-config v1
//   node es <name>               # end system
//   node sw <name>               # switch
//   link <a> <b> rate=<Mb/s> swlat=<us> eslat=<us>
//   vl <name> src=<es> dst=<es>[,<es>...] bag=<us> smin=<bytes> smax=<bytes>
//   route <vl> <dest-index> <n0>><n1> <n1>><n2> ...
//
// `route` lines are optional; destinations without one are routed on the
// shortest path. Loading always re-validates the full configuration.
#pragma once

#include <iosfwd>
#include <string>

#include "vl/traffic_config.hpp"

namespace afdx::config {

/// Serializes a configuration (including its routes, so a round-trip is
/// exact even when routing was automatic).
void save_config(const TrafficConfig& config, std::ostream& out);

/// Convenience overload returning the text.
[[nodiscard]] std::string save_config_string(const TrafficConfig& config);

/// Parses a configuration; throws afdx::Error with a line number on any
/// syntax or consistency problem.
[[nodiscard]] TrafficConfig load_config(std::istream& in);

/// Convenience overload parsing from a string.
[[nodiscard]] TrafficConfig load_config_string(const std::string& text);

/// Loads a configuration from a file path.
[[nodiscard]] TrafficConfig load_config_file(const std::string& path);

/// Saves a configuration to a file path.
void save_config_file(const TrafficConfig& config, const std::string& path);

}  // namespace afdx::config

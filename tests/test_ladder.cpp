// Tests of the budget-driven accuracy/cost ladder (analysis::BoundLadder):
// the per-path rung dominance chain on fuzzed grid configurations, exact
// equivalence of the unlimited-budget ladder with the paper's combined
// method, deterministic budgeted escalation across thread counts, partial
// provenance when the budget strands paths below the top rung, the
// validation oracle (clean + deliberately loosened rung), and the golden
// per-path provenance lock for the paper configurations
// (tests/golden/ladder_provenance.csv, re-locked with
// AFDX_REGEN_GOLDEN=1 ./build/tests/test_ladder or scripts/regen_golden.sh).
#include "analysis/ladder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"
#include "valid/campaign.hpp"
#include "valid/ladder_check.hpp"
#include "valid/validation.hpp"

#ifndef AFDX_REPO_ROOT
#define AFDX_REPO_ROOT "."
#endif

namespace afdx::analysis {
namespace {

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

/// A small industrial configuration for escalation tests: large enough
/// (several dozen paths) that a token budget strands a real subset.
TrafficConfig small_industrial(std::uint64_t seed = 11) {
  gen::IndustrialOptions o;
  o.seed = seed;
  o.switch_count = 3;
  o.end_system_count = 10;
  o.vl_count = 24;
  o.multicast_fraction = 0.25;
  return gen::industrial_config(o);
}

/// Best simulated delay per path over a small schedule battery -- the
/// lower-bound witness of the dominance chain.
std::vector<Microseconds> simulated_lower_bounds(const TrafficConfig& cfg) {
  std::vector<Microseconds> best(cfg.all_paths().size(), 0.0);
  sim::ScheduleSuiteOptions suite;
  suite.random_schedules = 1;
  suite.adversarial_stride = 5;
  for (const sim::Options& schedule : sim::soundness_schedules(cfg, suite)) {
    const sim::Result r = sim::simulate(cfg, schedule);
    for (std::size_t i = 0; i < best.size(); ++i) {
      best[i] = std::max(best[i], r.max_path_delay[i]);
    }
  }
  return best;
}

TEST(Ladder, RungNamesAreStable) {
  EXPECT_STREQ(to_string(Rung::kSfa), "sfa");
  EXPECT_STREQ(to_string(Rung::kWcnc), "wcnc");
  EXPECT_STREQ(to_string(Rung::kWcncGrouping), "wcnc_grouping");
  EXPECT_STREQ(to_string(Rung::kTrajectory), "trajectory");
  EXPECT_STREQ(to_string(Rung::kTrajectoryPruned), "trajectory_pruned");
}

// Budget=infinity: the ladder runs every rung on every path, so its final
// bound must be bit-identical to the paper's combined method -- the two
// extra rungs (SFA, the historical variants) are dominated by
// min(wcnc_grouping, trajectory_pruned) on these configurations (SFA ties
// at best, and both no-refinement variants are refinement-dominated).
TEST(Ladder, UnlimitedBudgetIsBitIdenticalToCompareCombined) {
  config::SampleOptions sweep;
  sweep.bag_v1 = microseconds_from_ms(2.0);
  sweep.s_max_v1 = 300;
  const TrafficConfig configs[] = {config::sample_config(),
                                   config::sample_config(sweep),
                                   config::illustrative_config()};
  for (const TrafficConfig& cfg : configs) {
    const LadderResult res = run_ladder(cfg);
    const Comparison cmp = compare(cfg);
    ASSERT_EQ(res.bounds.size(), cmp.combined.size());
    EXPECT_TRUE(res.complete());
    EXPECT_FALSE(res.budget_exhausted);
    for (std::size_t i = 0; i < res.bounds.size(); ++i) {
      EXPECT_EQ(res.bounds[i], cmp.combined[i]) << "path " << i;
    }
  }
}

// The dominance chain of the issue: per path,
//   sim <= ladder(trajectory_pruned) <= ladder(trajectory)
//       <= ladder(wcnc_grouping) <= ladder(wcnc) <= ladder(sfa)
// (ladder(r) = the cumulative bound had the ladder stopped at rung r;
// exact ties allowed), plus the analytic raw refinement edges.
TEST(Ladder, DominanceChainHoldsOnFuzzedGridConfigs) {
  const valid::GridOptions grid = valid::GridOptions::smoke();
  for (std::size_t i = 0; i < 4; ++i) {
    const valid::CampaignSpec spec = valid::spec_for(grid, 42, i);
    const TrafficConfig cfg = gen::industrial_config(spec.gen);
    const LadderResult res = run_ladder(cfg);
    const std::vector<Microseconds> sim_lb = simulated_lower_bounds(cfg);
    ASSERT_EQ(res.bounds.size(), cfg.all_paths().size());
    for (std::size_t p = 0; p < res.bounds.size(); ++p) {
      Microseconds prev = kInf;
      for (std::size_t k = 0; k < kRungCount; ++k) {
        ASSERT_TRUE(res.provenance[p].attempted(static_cast<Rung>(k)));
        const Microseconds cum = res.ladder_bound(p, static_cast<Rung>(k));
        EXPECT_LE(cum, prev) << "config " << i << " path " << p << " rung "
                             << to_string(static_cast<Rung>(k));
        prev = cum;
      }
      // prev is now the top-of-ladder (tightest) bound. Same 1e-6 us
      // tolerance as valid::check_config -- simulation and analysis take
      // different floating-point paths to the same worst case.
      EXPECT_LE(sim_lb[p], prev + 1e-6) << "config " << i << " path " << p;
      EXPECT_EQ(prev, res.bounds[p]);
      // Raw refinement edges.
      const auto raw = [&](Rung r) {
        return res.rung_bounds[static_cast<std::size_t>(r)][p];
      };
      EXPECT_LE(raw(Rung::kWcncGrouping), raw(Rung::kWcnc));
      EXPECT_LE(raw(Rung::kTrajectoryPruned), raw(Rung::kTrajectory));
    }
  }
}

TEST(Ladder, FinalBoundEqualsTightestAttemptedRung) {
  const TrafficConfig cfg = small_industrial();
  const LadderResult res = run_ladder(cfg);
  for (std::size_t p = 0; p < res.bounds.size(); ++p) {
    Microseconds best = kInf;
    std::size_t best_rung = kRungCount;
    for (std::size_t k = 0; k < kRungCount; ++k) {
      if (!res.provenance[p].attempted(static_cast<Rung>(k))) continue;
      if (res.rung_bounds[k][p] < best) {
        best = res.rung_bounds[k][p];
        best_rung = k;
      }
    }
    EXPECT_EQ(res.bounds[p], best);
    EXPECT_EQ(static_cast<std::size_t>(res.provenance[p].winner), best_rung);
    EXPECT_GE(res.provenance[p].tightening_us(), 0.0);
  }
}

// A token-budgeted run (budget checks happen only at wave boundaries)
// must be bit-identical across thread counts: same bounds, same
// provenance, same escalated set, same token spend.
TEST(Ladder, BudgetedRunIsDeterministicAcrossThreadCounts) {
  const TrafficConfig cfg = small_industrial();
  const std::size_t n = cfg.all_paths().size();
  LadderOptions opts;
  opts.max_path_evals = 3 * n + n / 2;  // strands a real subset
  opts.wave = 8;

  engine::Options e1;
  e1.threads = 1;
  const LadderResult ref = run_ladder(cfg, opts, e1);
  EXPECT_TRUE(ref.budget_exhausted);
  EXPECT_GT(ref.paths_escalated, 0u);
  EXPECT_LT(ref.paths_escalated, n);

  for (int threads : {2, 4, 8}) {
    engine::Options et;
    et.threads = threads;
    const LadderResult got = run_ladder(cfg, opts, et);
    ASSERT_EQ(got.bounds.size(), ref.bounds.size());
    EXPECT_EQ(got.path_evals, ref.path_evals) << threads << " threads";
    EXPECT_EQ(got.budget_exhausted, ref.budget_exhausted);
    EXPECT_EQ(got.paths_escalated, ref.paths_escalated);
    for (std::size_t p = 0; p < n; ++p) {
      EXPECT_EQ(got.bounds[p], ref.bounds[p])
          << threads << " threads, path " << p;
      EXPECT_EQ(got.provenance[p].winner, ref.provenance[p].winner);
      EXPECT_EQ(got.provenance[p].attempted_mask,
                ref.provenance[p].attempted_mask);
      EXPECT_EQ(got.provenance[p].escalated, ref.provenance[p].escalated);
      EXPECT_EQ(got.status[p].message, ref.status[p].message);
    }
  }
}

// Budget expiry mid-escalation: every unescalated path keeps its cheapest
// completed bound (never missing / zero), carries a partial-provenance
// PathStatus message, and the run reports exhaustion.
TEST(Ladder, ExhaustedBudgetKeepsCheapestBoundWithPartialProvenance) {
  const TrafficConfig cfg = small_industrial();
  const std::size_t n = cfg.all_paths().size();

  // Tokens for the base rung only: phase 2 is refused outright.
  LadderOptions base_only;
  base_only.max_path_evals = n;
  const LadderResult res = run_ladder(cfg, base_only);
  EXPECT_TRUE(res.budget_exhausted);
  EXPECT_FALSE(res.complete());
  EXPECT_EQ(res.budget_reason, "path-evaluation budget spent");
  ASSERT_EQ(res.bounds.size(), n);
  const auto& sfa_raw = res.rung_bounds[static_cast<std::size_t>(Rung::kSfa)];
  ASSERT_EQ(sfa_raw.size(), n);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_TRUE(std::isfinite(res.bounds[p])) << "path " << p;
    EXPECT_GT(res.bounds[p], 0.0);
    EXPECT_EQ(res.bounds[p], sfa_raw[p]);
    EXPECT_EQ(res.provenance[p].winner, Rung::kSfa);
    EXPECT_EQ(res.bounds[p], res.provenance[p].first_bound_us);
    EXPECT_TRUE(res.status[p].ok());
    EXPECT_NE(res.status[p].message.find("budget exhausted"),
              std::string::npos)
        << res.status[p].message;
  }

  // An already-expired external deadline behaves the same: the base rung
  // still runs (no missing bounds), everything above is cut.
  engine::CancelToken expired;
  expired.set_deadline_after(-1.0);
  LadderOptions dead;
  dead.cancel = &expired;
  const LadderResult cut = run_ladder(cfg, dead);
  EXPECT_TRUE(cut.budget_exhausted);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_TRUE(std::isfinite(cut.bounds[p]));
    EXPECT_FALSE(cut.status[p].message.empty());
  }
}

// The registration API: a replaced rung is actually used (and its bounds
// participate in provenance).
TEST(Ladder, RegisteredRungReplacementIsUsed) {
  const TrafficConfig cfg = config::sample_config();
  const std::size_t n = cfg.all_paths().size();
  BoundLadder ladder(cfg);
  BoundLadder::RungDef loose;
  loose.id = Rung::kSfa;
  loose.cost_estimate = [] { return 1.0; };
  loose.compute = [n] { return std::vector<Microseconds>(n, 1e9); };
  ladder.register_rung(std::move(loose));
  const LadderResult res = ladder.run();
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(res.rung_bounds[static_cast<std::size_t>(Rung::kSfa)][p], 1e9);
    EXPECT_NE(res.provenance[p].winner, Rung::kSfa);
    EXPECT_EQ(res.provenance[p].first_bound_us, 1e9);
    EXPECT_LT(res.bounds[p], 1e9);
  }
}

// The validation oracle: clean on a paper config, and tripped by a
// deliberately loosened rung (the harness's fault-injection self-test).
TEST(Ladder, OracleIsCleanOnPaperConfig) {
  valid::CheckOptions opts;
  opts.schedules.random_schedules = 1;
  opts.schedules.adversarial_stride = 5;
  opts.ladder = true;
  const valid::CheckResult r =
      valid::check_config(config::sample_config(), opts);
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().describe());
  EXPECT_GE(r.ladder.min, 1.0);
}

TEST(Ladder, OracleTripsOnLoosenedRung) {
  valid::CheckOptions opts;
  opts.schedules.random_schedules = 1;
  opts.schedules.adversarial_stride = 5;
  opts.ladder = true;
  opts.fault = valid::Fault::kLoosenLadderRung;
  const valid::CheckResult r =
      valid::check_config(config::sample_config(), opts);
  ASSERT_FALSE(r.ok());
  const bool ladder_kind = std::any_of(
      r.violations.begin(), r.violations.end(), [](const valid::Violation& v) {
        return v.kind == valid::CheckKind::kLadderDominance ||
               v.kind == valid::CheckKind::kLadderProvenance;
      });
  EXPECT_TRUE(ladder_kind) << r.violations.front().describe();
}

// ---------------------------------------------------------------------------
// Golden provenance lock: per-path winning rung, first/final bounds and
// escalation flags of the paper configurations, at an unlimited budget and
// at a fixed token budget (4 evals/path: the historical trajectory rung
// lands, the refined one is cut). Any churn -- a different winner, a
// shifted tie, a budget schedule change -- is a visible one-line diff.

constexpr const char* kGoldenFile =
    AFDX_REPO_ROOT "/tests/golden/ladder_provenance.csv";

void append_provenance(report::Table& table, const std::string& label,
                       const TrafficConfig& cfg) {
  const auto describe = [&](const char* budget, const LadderResult& res) {
    for (std::size_t i = 0; i < cfg.all_paths().size(); ++i) {
      const VlPath& p = cfg.all_paths()[i];
      const PathProvenance& prov = res.provenance[i];
      std::string rungs;
      for (std::size_t k = 0; k < kRungCount; ++k) {
        if (prov.attempted(static_cast<Rung>(k))) {
          if (!rungs.empty()) rungs += '+';
          rungs += to_string(static_cast<Rung>(k));
        }
      }
      table.add_row(
          {label, budget, cfg.vl(p.vl).name,
           cfg.network().node(cfg.vl(p.vl).destinations[p.dest_index]).name,
           to_string(prov.winner), rungs, report::fmt(prov.first_bound_us, 6),
           report::fmt(prov.final_bound_us, 6),
           prov.escalated ? "yes" : "no"});
    }
  };
  describe("unlimited", run_ladder(cfg));
  LadderOptions budgeted;
  budgeted.max_path_evals = 4 * cfg.all_paths().size();
  budgeted.wave = 8;
  describe("4n", run_ladder(cfg, budgeted));
}

std::string golden_text() {
  report::Table table({"config", "budget", "vl", "destination", "winner",
                       "rungs", "first_us", "final_us", "escalated"});
  append_provenance(table, "sample_default", config::sample_config());
  config::SampleOptions sweep;
  sweep.bag_v1 = microseconds_from_ms(2.0);
  sweep.s_max_v1 = 300;
  append_provenance(table, "sample_bag2ms_smax300",
                    config::sample_config(sweep));
  append_provenance(table, "illustrative", config::illustrative_config());
  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

TEST(LadderGolden, ProvenanceMatchesLockedValues) {
  const std::string current = golden_text();

  if (std::getenv("AFDX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
    out << current;
    GTEST_SKIP() << "regenerated " << kGoldenFile;
  }

  std::ifstream in(kGoldenFile);
  ASSERT_TRUE(in.good())
      << kGoldenFile
      << " is missing; run scripts/regen_golden.sh to create it";
  std::ostringstream locked;
  locked << in.rdbuf();

  if (current != locked.str()) {
    std::istringstream a(locked.str()), b(current);
    std::string la, lb;
    int line = 0;
    while (true) {
      const bool ga = static_cast<bool>(std::getline(a, la));
      const bool gb = static_cast<bool>(std::getline(b, lb));
      ++line;
      if (!ga && !gb) break;
      if (la != lb || ga != gb) {
        FAIL() << "provenance drift at " << kGoldenFile << ":" << line
               << "\n  locked:  " << (ga ? la : "<eof>")
               << "\n  current: " << (gb ? lb : "<eof>")
               << "\nIf the change is intentional, re-lock with "
                  "scripts/regen_golden.sh";
      }
    }
  }
  SUCCEED();
}

TEST(LadderGolden, LockedFileCoversEveryPathAtBothBudgets) {
  if (std::getenv("AFDX_REGEN_GOLDEN") != nullptr) GTEST_SKIP();
  const std::size_t expected_rows =
      2 * (config::sample_config().all_paths().size() * 2 +
           config::illustrative_config().all_paths().size());
  std::ifstream in(kGoldenFile);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, expected_rows + 1);  // + header
}

}  // namespace
}  // namespace afdx::analysis

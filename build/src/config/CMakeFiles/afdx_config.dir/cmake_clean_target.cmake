file(REMOVE_RECURSE
  "libafdx_config.a"
)

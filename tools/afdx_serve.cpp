// afdx_serve -- long-lived analysis daemon.
//
// Loads one or more configurations at startup, computes and pins a warm
// baseline per configuration (full engine run + cache state), then serves
// concurrent what-if / bounds / fault-sweep / ladder requests over
// newline-delimited JSON (see src/serve/protocol.hpp for the wire format).
// A warm what-if re-analyzes only the dirty cone of the requested change,
// so it costs a small fraction of the full run the baseline already paid.
// A "ladder" request (or a whatif carrying "ladder":{"budget_ms":N}) runs
// the budget-driven accuracy/cost ladder and reports per-path winning-rung
// provenance.
//
// Usage:
//   afdx_serve --config=FILE [--config=NAME=FILE ...] [options]
//   afdx_serve --generate[=seed] [options]
//
// Transports:
//   --stdio                 serve stdin -> stdout (default; ends at EOF)
//   --port=N                serve TCP on 127.0.0.1:N (0 = ephemeral; the
//                           bound port is announced on stderr); ends on a
//                           shutdown request, SIGINT or SIGTERM
//
// Options:
//   --workers=N             concurrent request workers (default 1; 0 = one
//                           per hardware thread). With 1 worker responses
//                           come back in request order.
//   --request-threads=N     threads inside each per-request engine
//                           (default 1: parallelism across requests)
//   --build-threads=N       threads for the baseline builds (default 0 =
//                           one per hardware thread; the result is
//                           bit-identical for every N)
//   --queue-depth=N         admission-queue capacity (default 16); requests
//                           beyond it get an explicit "overloaded" error
//   --max-line-bytes=N      longest accepted request line (default 65536);
//                           longer lines get a clean error response
//   --default-deadline-ms=N deadline for requests that carry none
//   --no-grouping           baseline WCNC without the grouping technique
//   --no-serialization      baseline trajectory without serialization
//   --quiet                 no startup banner on stderr
//
// Exit status: 0 on a clean shutdown, 2 on usage/parse errors, 1 on
// internal errors (cannot load a configuration, cannot bind the port).
#include <atomic>
#include <csignal>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "config/serialization.hpp"
#include "gen/industrial.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

using namespace afdx;

namespace {

struct BaselineSpec {
  std::string name;
  /// Config file path; nullopt = generate (seed below).
  std::optional<std::string> file;
  std::uint64_t seed = 42;
};

struct CliOptions {
  std::vector<BaselineSpec> baselines;
  bool stdio = true;
  std::uint16_t port = 0;
  int workers = 1;
  int request_threads = 1;
  int build_threads = 0;
  std::size_t queue_depth = 16;
  std::size_t max_line_bytes = 1 << 16;
  double default_deadline_ms = 0.0;
  bool quiet = false;
  netcalc::Options nc;
  trajectory::Options tj;
};

void print_usage(std::ostream& out) {
  out << "usage: afdx_serve --config=[NAME=]FILE [--config=...] [options]\n"
         "       afdx_serve --generate[=seed] [options]\n"
         "options: --stdio | --port=N (0 = ephemeral)\n"
         "         --workers=N (0 = auto)  --request-threads=N\n"
         "         --build-threads=N (0 = auto)  --queue-depth=N\n"
         "         --max-line-bytes=N  --default-deadline-ms=N\n"
         "         --no-grouping  --no-serialization  --quiet\n";
}

/// "NAME=PATH" -> (NAME, PATH); bare "PATH" -> (file stem, PATH).
BaselineSpec config_spec(const std::string& value) {
  BaselineSpec spec;
  const std::size_t eq = value.find('=');
  if (eq != std::string::npos) {
    spec.name = value.substr(0, eq);
    spec.file = value.substr(eq + 1);
  } else {
    spec.file = value;
    std::string stem = value;
    const std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos) stem = stem.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
    spec.name = stem;
  }
  return spec;
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto uint_value = [&](std::size_t prefix,
                                const char* what) -> std::optional<std::uint64_t> {
      const auto v = parse_uint(arg.substr(prefix));
      if (!v.has_value()) std::cerr << "bad " << what << ": " << arg << "\n";
      return v;
    };
    if (arg.rfind("--config=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value.empty()) {
        std::cerr << "empty --config value\n";
        return std::nullopt;
      }
      opts.baselines.push_back(config_spec(value));
    } else if (arg == "--generate") {
      opts.baselines.push_back(BaselineSpec{"gen42", std::nullopt, 42});
    } else if (arg.rfind("--generate=", 0) == 0) {
      const auto seed = uint_value(11, "generate seed");
      if (!seed.has_value()) return std::nullopt;
      opts.baselines.push_back(
          BaselineSpec{"gen" + std::to_string(*seed), std::nullopt, *seed});
    } else if (arg == "--stdio") {
      opts.stdio = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      const auto p = uint_value(7, "port");
      if (!p.has_value() || *p > 65535) {
        if (p.has_value()) std::cerr << "bad port: " << arg << "\n";
        return std::nullopt;
      }
      opts.port = static_cast<std::uint16_t>(*p);
      opts.stdio = false;
    } else if (arg.rfind("--workers=", 0) == 0) {
      const auto n = uint_value(10, "worker count");
      if (!n.has_value()) return std::nullopt;
      opts.workers = static_cast<int>(*n);
    } else if (arg.rfind("--request-threads=", 0) == 0) {
      const auto n = uint_value(18, "request thread count");
      if (!n.has_value()) return std::nullopt;
      opts.request_threads = static_cast<int>(*n);
    } else if (arg.rfind("--build-threads=", 0) == 0) {
      const auto n = uint_value(16, "build thread count");
      if (!n.has_value()) return std::nullopt;
      opts.build_threads = static_cast<int>(*n);
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      const auto n = uint_value(14, "queue depth");
      if (!n.has_value() || *n == 0) {
        if (n.has_value()) std::cerr << "queue depth must be >= 1\n";
        return std::nullopt;
      }
      opts.queue_depth = static_cast<std::size_t>(*n);
    } else if (arg.rfind("--max-line-bytes=", 0) == 0) {
      const auto n = uint_value(17, "line limit");
      if (!n.has_value() || *n == 0) {
        if (n.has_value()) std::cerr << "line limit must be >= 1\n";
        return std::nullopt;
      }
      opts.max_line_bytes = static_cast<std::size_t>(*n);
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      const auto ms = parse_double(arg.substr(22));
      if (!ms.has_value() || *ms < 0.0) {
        std::cerr << "bad deadline: " << arg << "\n";
        return std::nullopt;
      }
      opts.default_deadline_ms = *ms;
    } else if (arg == "--no-grouping") {
      opts.nc.grouping = false;
    } else if (arg == "--no-serialization") {
      opts.tj.serialization = false;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opts.baselines.empty()) {
    std::cerr << "provide at least one --config or --generate\n";
    return std::nullopt;
  }
  return opts;
}

serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // atomic store only
}

int run(const CliOptions& opts) {
  serve::ServiceOptions service_options;
  service_options.request_threads = opts.request_threads;
  service_options.default_deadline_ms = opts.default_deadline_ms;
  serve::Service service(service_options);

  for (const BaselineSpec& spec : opts.baselines) {
    auto config = std::make_shared<const TrafficConfig>(
        spec.file.has_value() ? config::load_config_file(*spec.file) : [&] {
          gen::IndustrialOptions go;
          go.seed = spec.seed;
          return gen::industrial_config(go);
        }());
    service.add_baseline(spec.name, std::move(config), opts.nc, opts.tj,
                         opts.build_threads);
    if (!opts.quiet) {
      const auto base = service.baseline(spec.name);
      std::cerr << "baseline '" << spec.name << "': "
                << base->config().vl_count() << " VLs, "
                << base->config().all_paths().size() << " paths, warm in "
                << static_cast<long long>(base->build_wall_us() / 1000.0)
                << " ms" << (base->healthy().complete() ? "" : " (partial)")
                << "\n";
    }
  }

  serve::ServerOptions server_options;
  server_options.workers = opts.workers;
  server_options.queue_capacity = opts.queue_depth;
  server_options.max_line_bytes = opts.max_line_bytes;
  serve::Server server(service, server_options);

  if (opts.stdio) {
    server.serve_stream(std::cin, std::cout);
    return 0;
  }

  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::thread announcer([&server, quiet = opts.quiet] {
    for (int i = 0; i < 5000 && server.bound_port() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!quiet && server.bound_port() != 0) {
      std::cerr << "listening on 127.0.0.1:" << server.bound_port() << "\n";
    }
  });
  server.listen_and_serve(opts.port);
  announcer.join();
  g_server = nullptr;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_args(argc, argv);
  if (!opts.has_value()) {
    print_usage(std::cerr);
    return 2;
  }
  try {
    return run(*opts);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// (min,plus) operations on piecewise-linear curves.
//
// These are the network-calculus primitives:
//   * sum / minimum / maximum  — pointwise combinations (exact, with
//     crossing points inserted);
//   * convolve_concave         — min-plus convolution of concave curves
//     (aggregate arrival shaping);
//   * convolve_convex          — min-plus convolution of convex service
//     curves with f(0) = 0 (tandem of servers);
//   * deconvolve_concave_rl    — output arrival curve alpha (/) beta for a
//     concave alpha and a rate-latency beta (exact closed form);
//   * horizontal_deviation     — the delay bound h(alpha, beta);
//   * vertical_deviation       — the backlog bound v(alpha, beta).
//
// Operations throw afdx::Error when a bound does not exist (long-term
// arrival rate above the service rate: the port is unstable).
#pragma once

#include <vector>

#include "minplus/curve.hpp"

namespace afdx::minplus {

/// Pointwise sum.
[[nodiscard]] Curve sum(const Curve& a, const Curve& b);

/// Pointwise sum of many curves; returns the zero curve for an empty list.
[[nodiscard]] Curve sum(const std::vector<Curve>& curves);

/// Pointwise minimum (crossings become breakpoints).
[[nodiscard]] Curve minimum(const Curve& a, const Curve& b);

/// Pointwise maximum (crossings become breakpoints).
[[nodiscard]] Curve maximum(const Curve& a, const Curve& b);

/// The curve t -> a(t + d), for d >= 0 (drops the initial [0, d) part).
[[nodiscard]] Curve shift_left(const Curve& a, double d);

/// Min-plus convolution of two concave curves:
/// (a (*) b)(t) = inf_{0<=s<=t} a(s) + b(t-s)
///             = a(0) + b(0) + the segments of both, merged by decreasing
///               slope. Requires both curves concave.
[[nodiscard]] Curve convolve_concave(const Curve& a, const Curve& b);

/// Min-plus convolution of two convex service curves with a(0) == b(0) == 0:
/// segments merged by increasing slope (rate-latency (*) rate-latency ==
/// rate-latency with summed latencies and min rate).
[[nodiscard]] Curve convolve_convex(const Curve& a, const Curve& b);

/// Exact deconvolution (a (/) beta)(t) = sup_{u>=0} a(t+u) - beta(u) of a
/// concave, non-decreasing curve by the rate-latency curve of the given
/// rate/latency. Throws when a's long-term rate exceeds `rate`.
[[nodiscard]] Curve deconvolve_concave_rl(const Curve& a, double rate,
                                          double latency);

/// Delay bound: the horizontal deviation
/// h(alpha, beta) = sup_{t>=0} inf { d >= 0 : alpha(t) <= beta(t + d) }.
/// Requires non-decreasing curves; throws when unbounded (instability).
[[nodiscard]] double horizontal_deviation(const Curve& alpha, const Curve& beta);

/// Backlog bound: v(alpha, beta) = sup_{t>=0} alpha(t) - beta(t).
/// Throws when unbounded.
[[nodiscard]] double vertical_deviation(const Curve& alpha, const Curve& beta);

/// Residual service left to a traffic class by a non-preemptive
/// static-priority server: [beta - alpha_higher - blocking]+, where `beta`
/// is the port's convex service curve, `alpha_higher` the concave arrival
/// aggregate of all strictly higher-priority classes and `blocking` the
/// largest lower-priority frame (bits) that can be in transmission.
/// The difference is convex, so past its last zero it is a valid
/// non-decreasing service curve. Throws when the higher-priority long-term
/// rate reaches the server rate (no residual service).
[[nodiscard]] Curve residual_service(const Curve& beta, const Curve& alpha_higher,
                                     double blocking);

}  // namespace afdx::minplus

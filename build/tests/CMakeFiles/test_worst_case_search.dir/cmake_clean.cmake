file(REMOVE_RECURSE
  "CMakeFiles/test_worst_case_search.dir/test_worst_case_search.cpp.o"
  "CMakeFiles/test_worst_case_search.dir/test_worst_case_search.cpp.o.d"
  "test_worst_case_search"
  "test_worst_case_search.pdb"
  "test_worst_case_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worst_case_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// E7 -- Figure 9 of the paper: combined influence of BAG(v1) and s_max(v1)
// on the difference (WCNC bound - Trajectory bound) for v1, as a signed
// heat map plus the raw grid in CSV form.
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E7 / Figure 9: WCNC - Trajectory difference (us) for v1 over\n"
         "(BAG(v1), s_max(v1)); positive = trajectory tighter\n\n";

  std::vector<double> bags_ms;
  for (double ms = 1.0; ms <= 128.0; ms *= 2.0) bags_ms.push_back(ms);
  std::vector<Bytes> sizes;
  for (Bytes s = 100; s <= 1500; s += 200) sizes.push_back(s);

  std::vector<std::vector<double>> grid;  // rows: BAG, cols: s_max
  std::vector<std::string> row_labels, col_labels;
  for (Bytes s : sizes) col_labels.push_back(std::to_string(s));

  report::Table csv({"bag_ms", "s_max_bytes", "wcnc_minus_trajectory_us"});
  for (double ms : bags_ms) {
    row_labels.push_back(report::fmt(ms, 0) + " ms");
    grid.emplace_back();
    for (Bytes s : sizes) {
      config::SampleOptions o;
      o.bag_v1 = microseconds_from_ms(ms);
      o.s_max_v1 = s;
      const analysis::Comparison c =
          analysis::compare(config::sample_config(o));
      const double diff = c.netcalc[0] - c.trajectory[0];
      grid.back().push_back(diff);
      csv.add_row({report::fmt(ms, 0), std::to_string(s),
                   report::fmt(diff, 3)});
    }
  }

  report::signed_heatmap(out, grid, row_labels, col_labels);
  out << "columns: s_max(v1) from " << col_labels.front() << " B to "
      << col_labels.back() << " B\n\n";
  out << "raw grid (CSV):\n";
  csv.print_csv(out);
  out << "\npaper shape: negative region (WCNC tighter) for small s_max(v1)\n"
         "across all BAGs, positive (trajectory tighter) at and above the\n"
         "other VLs' 500 B, with the WCNC penalty growing as BAG shrinks.\n";
}

void BM_SurfaceCell(benchmark::State& state) {
  config::SampleOptions o;
  o.bag_v1 = microseconds_from_ms(4.0);
  o.s_max_v1 = 500;
  const TrafficConfig cfg = config::sample_config(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compare(cfg));
  }
}
BENCHMARK(BM_SurfaceCell);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

file(REMOVE_RECURSE
  "CMakeFiles/afdx_netcalc.dir/netcalc_analyzer.cpp.o"
  "CMakeFiles/afdx_netcalc.dir/netcalc_analyzer.cpp.o.d"
  "libafdx_netcalc.a"
  "libafdx_netcalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_netcalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

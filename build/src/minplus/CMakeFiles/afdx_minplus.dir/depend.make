# Empty dependencies file for afdx_minplus.
# This may be replaced when dependencies are built.

// AFDX network topology model.
//
// An AFDX network is a set of end systems and switches connected by full
// duplex links. We model each full-duplex cable as two *directed links*.
// Every directed link is driven by exactly one output port of its source
// node, and AFDX switches have one FIFO buffer per output port, so in the
// rest of the library "output port" and "directed link" are the same object
// and share the same id (LinkId).
//
// Architectural constraints enforced by Network::validate():
//   * an end system is connected to exactly one switch (ARINC 664 part 7);
//   * a switch port is connected to at most one end system;
//   * no self-loops, no duplicate cables;
//   * every link has a positive rate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace afdx {

/// Index of a node (end system or switch) inside a Network.
using NodeId = std::uint32_t;
/// Index of a directed link (== output port) inside a Network.
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

enum class NodeKind : std::uint8_t { kEndSystem, kSwitch };

/// A network node: either an end system (traffic source/sink) or a switch.
struct Node {
  std::string name;
  NodeKind kind = NodeKind::kEndSystem;
};

/// A directed link, i.e. the output port of `source` that transmits toward
/// `dest`. `rate` is the line rate; `latency` is the technological latency
/// of the output port (time between a frame being selected for output and
/// the first bit appearing on the wire; 16 us for typical AFDX switches).
struct Link {
  NodeId source = kInvalidNode;
  NodeId dest = kInvalidNode;
  BitsPerMicrosecond rate = 0.0;
  Microseconds latency = 0.0;
};

/// Parameters applied to the two directed links created by Network::connect.
struct LinkParams {
  BitsPerMicrosecond rate = rate_from_mbps(100.0);
  /// Latency of the switch-side output port(s).
  Microseconds switch_latency = 16.0;
  /// Latency of the end-system-side output port (usually 0: the ES shaper
  /// already accounts for its own scheduling).
  Microseconds end_system_latency = 0.0;
};

/// Mutable AFDX topology. Build with add_end_system/add_switch/connect,
/// then call validate() once before analysis.
class Network {
 public:
  /// Adds an end system; returns its id. Names must be unique.
  NodeId add_end_system(std::string name);

  /// Adds a switch; returns its id. Names must be unique.
  NodeId add_switch(std::string name);

  /// Connects two nodes with a full-duplex cable: creates the directed link
  /// a->b and b->a. Returns the id of the a->b direction (the b->a direction
  /// is always `returned id + 1`). Throws afdx::Error on duplicate cables,
  /// self-loops or ES-to-ES cables.
  LinkId connect(NodeId a, NodeId b, const LinkParams& params = {});

  // -- Queries ---------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  [[nodiscard]] bool is_end_system(NodeId id) const { return node(id).kind == NodeKind::kEndSystem; }
  [[nodiscard]] bool is_switch(NodeId id) const { return node(id).kind == NodeKind::kSwitch; }

  /// Id of the node with the given name, if any.
  [[nodiscard]] std::optional<NodeId> find_node(const std::string& name) const;

  /// Outgoing directed links of `id`.
  [[nodiscard]] const std::vector<LinkId>& links_from(NodeId id) const;

  /// Incoming directed links of `id`.
  [[nodiscard]] const std::vector<LinkId>& links_into(NodeId id) const;

  /// The directed link from `a` to `b`, if the cable exists.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// The reverse direction of a directed link.
  [[nodiscard]] LinkId reverse(LinkId id) const;

  /// All end-system ids, in creation order.
  [[nodiscard]] std::vector<NodeId> end_systems() const;

  /// All switch ids, in creation order.
  [[nodiscard]] std::vector<NodeId> switches() const;

  /// Elements a route must avoid (failed links and nodes, typically from a
  /// fault scenario). Empty vectors mean "nothing blocked"; non-empty
  /// vectors are indexed by LinkId / NodeId.
  struct RouteConstraints {
    std::vector<bool> blocked_links;
    std::vector<bool> blocked_nodes;

    [[nodiscard]] bool link_blocked(LinkId id) const {
      return id < blocked_links.size() && blocked_links[id];
    }
    [[nodiscard]] bool node_blocked(NodeId id) const {
      return id < blocked_nodes.size() && blocked_nodes[id];
    }
  };

  /// Shortest path (hop count) from `from` to `to` as a sequence of directed
  /// links; empty optional when unreachable. End systems are never used as
  /// intermediate hops (they do not forward).
  [[nodiscard]] std::optional<std::vector<LinkId>> shortest_path(NodeId from,
                                                                 NodeId to) const;

  /// Same, avoiding every blocked link and node. Two calls from the same
  /// source with the same constraints explore the same BFS tree, so the
  /// per-destination paths of one VL always share prefixes (the multicast
  /// tree property). A blocked endpoint makes the destination unreachable.
  [[nodiscard]] std::optional<std::vector<LinkId>> shortest_path(
      NodeId from, NodeId to, const RouteConstraints& constraints) const;

  /// Checks the ARINC-664 structural constraints listed in the header
  /// comment; throws afdx::Error describing the first violation.
  void validate() const;

 private:
  NodeId add_node(std::string name, NodeKind kind);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
};

}  // namespace afdx

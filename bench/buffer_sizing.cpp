// E9 -- switch buffer sizing (Section II.B: the WCNC analysis "permits to
// scale the switch memory buffers and avoid buffer overflows"): per-switch
// worst-case output-FIFO memory on the industrial-like configuration,
// cross-checked against the largest backlog a simulated schedule produces.
#include <algorithm>
#include <map>

#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E9 / buffer sizing: per-switch worst-case output FIFO memory\n\n";

  const TrafficConfig cfg = gen::industrial_config();
  const Network& net = cfg.network();
  const netcalc::Result nc = netcalc::analyze(cfg);

  sim::Options so;
  so.phasing = sim::Phasing::kRandom;
  so.seed = 7;
  const sim::Result observed = sim::simulate(cfg, so);

  struct SwitchStats {
    Bits total_bound = 0.0;
    Bits worst_port_bound = 0.0;
    Bits worst_port_observed = 0.0;
    int ports = 0;
  };
  std::map<NodeId, SwitchStats> per_switch;
  for (LinkId l = 0; l < net.link_count(); ++l) {
    if (!nc.ports[l].used || !net.is_switch(net.link(l).source)) continue;
    SwitchStats& s = per_switch[net.link(l).source];
    s.total_bound += nc.ports[l].backlog;
    s.worst_port_bound = std::max(s.worst_port_bound, nc.ports[l].backlog);
    s.worst_port_observed =
        std::max(s.worst_port_observed, observed.max_port_backlog[l]);
    ++s.ports;
  }

  report::Table t({"switch", "used ports", "total memory bound (KB)",
                   "worst port bound (KB)", "worst port observed (KB)"});
  auto kb = [](Bits bits) { return report::fmt(bits / 8.0 / 1024.0, 2); };
  for (const auto& [sw, s] : per_switch) {
    t.add_row({net.node(sw).name, std::to_string(s.ports),
               kb(s.total_bound), kb(s.worst_port_bound),
               kb(s.worst_port_observed)});
  }
  t.print(out);
  out << "\nEvery observed backlog is below its bound (checked by the test\n"
         "suite over many schedules); the bound-to-observed gap is the\n"
         "provisioning margin certification requires.\n";
}

void BM_BacklogAnalysis(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netcalc::analyze(cfg));
  }
}
BENCHMARK(BM_BacklogAnalysis)->Unit(benchmark::kMillisecond);

void BM_SimulateIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  sim::Options so;
  so.horizon = microseconds_from_ms(100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(cfg, so));
  }
}
BENCHMARK(BM_SimulateIndustrial)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

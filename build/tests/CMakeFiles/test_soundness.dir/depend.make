# Empty dependencies file for test_soundness.
# This may be replaced when dependencies are built.

// Round-trip and error-handling tests for the text configuration format.
#include "config/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"

namespace afdx::config {
namespace {

TEST(Serialization, SampleRoundTripPreservesEverything) {
  const TrafficConfig original = sample_config();
  const TrafficConfig loaded = load_config_string(save_config_string(original));

  ASSERT_EQ(loaded.vl_count(), original.vl_count());
  ASSERT_EQ(loaded.network().node_count(), original.network().node_count());
  ASSERT_EQ(loaded.network().link_count(), original.network().link_count());
  for (VlId v = 0; v < original.vl_count(); ++v) {
    EXPECT_EQ(loaded.vl(v).name, original.vl(v).name);
    EXPECT_DOUBLE_EQ(loaded.vl(v).bag, original.vl(v).bag);
    EXPECT_EQ(loaded.vl(v).s_max, original.vl(v).s_max);
    EXPECT_EQ(loaded.vl(v).s_min, original.vl(v).s_min);
    EXPECT_EQ(loaded.route(v).paths(), original.route(v).paths());
  }
}

TEST(Serialization, RoundTripPreservesAnalysisResults) {
  const TrafficConfig original = illustrative_config();
  const TrafficConfig loaded = load_config_string(save_config_string(original));
  const auto a = analysis::compare(original);
  const auto b = analysis::compare(loaded);
  ASSERT_EQ(a.netcalc.size(), b.netcalc.size());
  for (std::size_t i = 0; i < a.netcalc.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.netcalc[i], b.netcalc[i]);
    EXPECT_DOUBLE_EQ(a.trajectory[i], b.trajectory[i]);
  }
}

TEST(Serialization, GeneratedConfigRoundTrip) {
  gen::IndustrialOptions o;
  o.vl_count = 40;
  o.end_system_count = 12;
  o.switch_count = 4;
  const TrafficConfig original = gen::industrial_config(o);
  const TrafficConfig loaded = load_config_string(save_config_string(original));
  EXPECT_EQ(loaded.vl_count(), original.vl_count());
  EXPECT_EQ(loaded.all_paths().size(), original.all_paths().size());
  EXPECT_NEAR(loaded.max_utilization(), original.max_utilization(), 1e-12);
}

TEST(Serialization, ParsesCommentsAndBlankLines) {
  const TrafficConfig cfg = load_config_string(
      "afdx-config v1\n"
      "# a comment line\n"
      "\n"
      "node es e1   # trailing comment\n"
      "node es e2\n"
      "node sw S1\n"
      "link e1 S1 rate=100 swlat=16 eslat=0\n"
      "link S1 e2 rate=100 swlat=16 eslat=0\n"
      "vl v1 src=e1 dst=e2 bag=4000 smin=64 smax=500\n");
  EXPECT_EQ(cfg.vl_count(), 1u);
  EXPECT_EQ(cfg.route(0).paths()[0].size(), 2u);  // auto-routed
}

TEST(Serialization, MissingHeaderRejected) {
  EXPECT_THROW(load_config_string("node es e1\n"), Error);
  EXPECT_THROW(load_config_string(""), Error);
}

TEST(Serialization, UnknownDirectiveRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nfrobnicate x\n"), Error);
}

TEST(Serialization, BadNodeKindRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nnode router R1\n"), Error);
}

TEST(Serialization, UnknownNodeInLinkRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nnode es e1\n"
                                  "link e1 S9 rate=100\n"),
               Error);
}

TEST(Serialization, BadNumberRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nnode es e1\nnode sw S1\n"
                                  "link e1 S1 rate=fast\n"),
               Error);
}

// Parse errors must name the offending key and line so a hand-edited config
// is diagnosable from the message alone.
TEST(Serialization, BadNumberMessageNamesKeyAndLine) {
  try {
    load_config_string("afdx-config v1\nnode es e1\nnode sw S1\n"
                       "link e1 S1 rate=fast\n");
    FAIL() << "bad link attribute was accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'rate'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'fast'"), std::string::npos) << msg;
  }
}

TEST(Serialization, TrailingGarbageNumberRejectedAndNamed) {
  // "4000x" was silently truncated to 4000 by the old stod-based parser.
  try {
    load_config_string("afdx-config v1\nnode es e1\nnode es e2\n"
                       "node sw S1\nlink e1 S1\nlink S1 e2\n"
                       "vl v1 src=e1 dst=e2 bag=4000x smin=64 smax=500\n");
    FAIL() << "trailing garbage in vl attribute was accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bag'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'4000x'"), std::string::npos) << msg;
  }
}

TEST(Serialization, BadRouteDestinationIndexRejectedAndNamed) {
  try {
    load_config_string("afdx-config v1\nnode es e1\nnode es e2\n"
                       "node sw S1\nlink e1 S1\nlink S1 e2\n"
                       "vl v1 src=e1 dst=e2 bag=4000 smin=64 smax=500\n"
                       "route v1 zero e1>S1 S1>e2\n");
    FAIL() << "non-numeric route destination index was accepted";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("route destination index"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'zero'"), std::string::npos) << msg;
  }
}

TEST(Serialization, MalformedKeyValueRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nnode es e1\nnode sw S1\n"
                                  "link e1 S1 rate\n"),
               Error);
}

TEST(Serialization, RouteForUnknownVlRejected) {
  EXPECT_THROW(load_config_string("afdx-config v1\nnode es e1\nnode es e2\n"
                                  "node sw S1\nlink e1 S1\nlink S1 e2\n"
                                  "route ghost 0 e1>S1 S1>e2\n"),
               Error);
}

TEST(Serialization, RouteWithMissingLinkRejected) {
  EXPECT_THROW(
      load_config_string("afdx-config v1\nnode es e1\nnode es e2\n"
                         "node sw S1\nnode sw S2\nlink e1 S1\nlink S1 e2\n"
                         "link S1 S2\n"
                         "vl v1 src=e1 dst=e2 bag=4000 smin=64 smax=500\n"
                         "route v1 0 e1>S1 S2>e2\n"),
      Error);
}

TEST(Serialization, BadRouteHopSyntaxRejected) {
  EXPECT_THROW(
      load_config_string("afdx-config v1\nnode es e1\nnode es e2\n"
                         "node sw S1\nlink e1 S1\nlink S1 e2\n"
                         "vl v1 src=e1 dst=e2 bag=4000 smin=64 smax=500\n"
                         "route v1 0 e1-S1\n"),
      Error);
}

TEST(Serialization, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/afdx_roundtrip.cfg";
  const TrafficConfig original = sample_config();
  save_config_file(original, path);
  const TrafficConfig loaded = load_config_file(path);
  EXPECT_EQ(loaded.vl_count(), original.vl_count());
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileThrows) {
  EXPECT_THROW(load_config_file("/nonexistent/path/to.cfg"), Error);
}

}  // namespace
}  // namespace afdx::config

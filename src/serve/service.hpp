// Request execution against pinned warm baselines.
//
// A Service owns the daemon's loaded baselines (name ->
// engine::BaselineState, each the full healthy run plus warm cache state of
// one configuration) and turns one request line into one response line:
//
//   * bounds       -- read-only view of the pinned healthy bounds;
//   * whatif       -- a fresh OverlaySession per request: VL overrides
//                     and/or a fault spec are applied as an overlay and only
//                     the dirty cone is re-analyzed (run_incremental), so a
//                     warm what-if costs a fraction of the baseline build;
//   * fault_sweep  -- faults::analyze_scenarios with the pinned healthy run
//                     injected (ScenarioOptions::healthy_run), so the sweep
//                     never re-pays the healthy analysis either;
//   * ladder       -- a budget-driven accuracy/cost ladder run
//                     (analysis::run_ladder) over the request's
//                     configuration: every path gets its cheapest bound
//                     first, then the paths with the largest rung
//                     disagreement escalate to the expensive trajectory
//                     rungs until the "ladder" budget is spent; whatif
//                     requests can carry the same "ladder" object to get a
//                     budgeted-ladder summary of the overlaid configuration;
//   * status       -- uptime, per-baseline summaries, request counters,
//                     aggregate cache hit rates and the server's queue
//                     depth (via the pluggable queue probe);
//   * shutdown     -- acknowledged and latched for the server loop.
//
// Concurrency contract: baselines are registered before serving starts and
// are immutable afterwards; handle()/handle_line() may then be called from
// any number of threads concurrently. Each request builds its own
// OverlaySession/engine, so the only shared state is the baseline (safe for
// concurrent readers) and this class's atomic counters.
//
// Failure contract: handle_line never throws. Parse errors, unknown
// VLs/configs, malformed fault specs -- every problem becomes one
// {"ok":false,"error":...} response naming the offending key or element,
// and the daemon keeps serving. Per-request deadlines (request
// "deadline_ms" or the service default) ride the engine's CancelToken:
// expired work is reported as explicit partial results, never a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/session.hpp"
#include "serve/protocol.hpp"

namespace afdx::serve {

struct ServiceOptions {
  /// Threads of each per-request engine. The serving default is 1: requests
  /// run inline on their worker thread and parallelism comes from serving
  /// many requests concurrently, not from splitting one request.
  int request_threads = 1;
  /// Deadline applied to requests that carry no "deadline_ms" of their own;
  /// 0 = no default deadline.
  double default_deadline_ms = 0.0;
};

/// Live admission-queue figures, plugged in by the server.
struct QueueInfo {
  std::size_t depth = 0;
  std::size_t capacity = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Builds (or adopts) and pins the warm baseline of one configuration.
  /// Not thread-safe; call before serving starts. The first registered
  /// baseline is the default one requests get when they name no "config".
  void add_baseline(const std::string& name,
                    std::shared_ptr<const TrafficConfig> config,
                    const netcalc::Options& nc = {},
                    const trajectory::Options& tj = {}, int build_threads = 1);
  void add_baseline(const std::string& name,
                    std::shared_ptr<const engine::BaselineState> baseline);

  [[nodiscard]] std::size_t baseline_count() const noexcept {
    return baselines_.size();
  }
  /// Baseline by name ("" = the default); nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const engine::BaselineState> baseline(
      const std::string& name) const;

  /// One request line in, exactly one response line out (no newline).
  /// Thread-safe; never throws.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Same, for an already-parsed request.
  [[nodiscard]] std::string handle(const Request& req);

  /// Counts an admission rejection (the server answers those itself, but
  /// status must still see them).
  void note_overloaded() noexcept;
  /// Counts a request the server rejected before parsing (oversized line,
  /// shutting down).
  void note_error() noexcept;

  /// True once a shutdown request has been acknowledged.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Queue probe used by the status op (unset = depth/capacity 0).
  void set_queue_probe(std::function<QueueInfo()> probe) {
    queue_probe_ = std::move(probe);
  }

 private:
  [[nodiscard]] std::string handle_status(const Request& req);
  [[nodiscard]] std::string handle_bounds(const Request& req);
  [[nodiscard]] std::string handle_whatif(const Request& req);
  [[nodiscard]] std::string handle_fault_sweep(const Request& req);
  [[nodiscard]] std::string handle_ladder(const Request& req);
  [[nodiscard]] std::string handle_shutdown(const Request& req);

  /// Baseline of the request, or throws the error the response should carry.
  [[nodiscard]] const engine::BaselineState& baseline_for(const Request& req) const;

  void note_run(const engine::RunResult& result) noexcept;

  ServiceOptions options_;
  std::vector<std::pair<std::string,
                        std::shared_ptr<const engine::BaselineState>>>
      baselines_;
  std::function<QueueInfo()> queue_probe_;
  std::chrono::steady_clock::time_point start_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  /// Aggregate per-request engine cache traffic (the per-request engines
  /// are ephemeral, so their run deltas are accumulated here).
  std::atomic<std::uint64_t> port_hits_{0};
  std::atomic<std::uint64_t> port_misses_{0};
  std::atomic<std::uint64_t> prefix_hits_{0};
  std::atomic<std::uint64_t> prefix_misses_{0};
  std::atomic<std::uint64_t> seeded_ports_{0};
  std::atomic<std::uint64_t> dirty_ports_{0};
};

}  // namespace afdx::serve

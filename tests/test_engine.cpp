// Tests for the parallel analysis engine: parallel-vs-serial determinism,
// legacy-path equivalence at threads = 1, per-port cache behaviour and run
// metrics.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "engine/incremental.hpp"
#include "engine/session.hpp"
#include "engine/port_cache.hpp"
#include "engine/thread_pool.hpp"
#include "faults/degrade.hpp"
#include "faults/report.hpp"
#include "faults/scenario.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "trajectory/trajectory_analyzer.hpp"

namespace afdx::engine {
namespace {

TrafficConfig small_industrial() {
  gen::IndustrialOptions o;
  o.vl_count = 120;
  o.end_system_count = 24;
  return gen::industrial_config(o);
}

// Bit-identical comparison: parallel runs must not perturb a single ULP.
void expect_identical(const std::vector<Microseconds>& a,
                      const std::vector<Microseconds>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "path " << i;
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> counts(1000, 0);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i, int) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i], 1);
  const auto tasks = pool.tasks_per_thread();
  ASSERT_EQ(tasks.size(), 4u);
  EXPECT_EQ(std::accumulate(tasks.begin(), tasks.end(), std::size_t{0}),
            counts.size());
}

TEST(ThreadPool, ShardingIsStatic) {
  // The same (n, threads) pair must always yield the same per-thread task
  // counts -- that is what makes runs reproducible.
  ThreadPool a(3), b(3);
  a.parallel_for(100, [](std::size_t, int) {});
  b.parallel_for(100, [](std::size_t, int) {});
  EXPECT_EQ(a.tasks_per_thread(), b.tasks_per_thread());
}

TEST(ThreadPool, RethrowsSmallestIndexFailure) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t i, int) {
      if (i >= 10) throw Error("fail at " + std::to_string(i));
    });
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    // Worker 0 owns indices [0, 25) and fails first at 10; failures of
    // later shards must not win.
    EXPECT_STREQ(e.what(), "fail at 10");
  }
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolve_thread_count(3), 3);
  EXPECT_GE(ThreadPool::resolve_thread_count(0), 1);
  EXPECT_GE(ThreadPool::resolve_thread_count(-1), 1);
}

TEST(Engine, SerialRunMatchesLegacyAnalyzersOnSample) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine eng(cfg, Options{1});
  const RunResult run = eng.run();

  const netcalc::Result nc = netcalc::analyze(cfg);
  const trajectory::Result tj = trajectory::analyze(cfg);
  expect_identical(run.netcalc, nc.path_bounds);
  expect_identical(run.trajectory, tj.path_bounds);
  for (std::size_t i = 0; i < run.combined.size(); ++i) {
    EXPECT_EQ(run.combined[i], std::min(run.netcalc[i], run.trajectory[i]));
  }
}

TEST(Engine, NetcalcOnlyMatchesLegacyPortReports) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine eng(cfg, Options{4});
  const netcalc::Result parallel = eng.netcalc_only();
  const netcalc::Result serial = netcalc::analyze(cfg);
  expect_identical(parallel.path_bounds, serial.path_bounds);
  ASSERT_EQ(parallel.ports.size(), serial.ports.size());
  for (std::size_t l = 0; l < serial.ports.size(); ++l) {
    EXPECT_EQ(parallel.ports[l].used, serial.ports[l].used);
    EXPECT_EQ(parallel.ports[l].delay, serial.ports[l].delay);
    EXPECT_EQ(parallel.ports[l].backlog, serial.ports[l].backlog);
    EXPECT_EQ(parallel.ports[l].queue_backlog, serial.ports[l].queue_backlog);
    EXPECT_EQ(parallel.ports[l].level_delays, serial.ports[l].level_delays);
  }
  EXPECT_EQ(parallel.iterations, serial.iterations);
}

TEST(EngineDeterminism, ParallelMatchesSerialOnSample) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine serial(cfg, Options{1});
  AnalysisEngine parallel(cfg, Options{4});
  const RunResult a = serial.run();
  const RunResult b = parallel.run();
  expect_identical(a.netcalc, b.netcalc);
  expect_identical(a.trajectory, b.trajectory);
  expect_identical(a.combined, b.combined);
}

TEST(EngineDeterminism, ParallelMatchesSerialOnIndustrial) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine serial(cfg, Options{1});
  AnalysisEngine parallel(cfg, Options{4});
  const RunResult a = serial.run();
  const RunResult b = parallel.run();
  expect_identical(a.netcalc, b.netcalc);
  expect_identical(a.trajectory, b.trajectory);
  expect_identical(a.combined, b.combined);
}

TEST(EngineDeterminism, ParallelMatchesSerialWithAblationOptions) {
  const TrafficConfig cfg = small_industrial();
  netcalc::Options nc;
  nc.grouping = false;
  trajectory::Options tj;
  tj.serialization = false;
  AnalysisEngine serial(cfg, Options{1});
  AnalysisEngine parallel(cfg, Options{3});
  const RunResult a = serial.run(nc, tj);
  const RunResult b = parallel.run(nc, tj);
  expect_identical(a.netcalc, b.netcalc);
  expect_identical(a.trajectory, b.trajectory);
}

TEST(EngineDeterminism, RepeatedParallelRunsAreIdentical) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine eng(cfg, Options{4});
  const RunResult first = eng.run();
  const RunResult second = eng.run();  // served mostly from the cache
  expect_identical(first.netcalc, second.netcalc);
  expect_identical(first.trajectory, second.trajectory);
  expect_identical(first.combined, second.combined);
}

TEST(Engine, CompareRoutesThroughEngineUnchanged) {
  const TrafficConfig cfg = config::sample_config();
  const analysis::Comparison legacy_shape = analysis::compare(cfg);
  const analysis::Comparison parallel =
      analysis::compare(cfg, {}, {}, Options{4});
  expect_identical(legacy_shape.netcalc, parallel.netcalc);
  expect_identical(legacy_shape.trajectory, parallel.trajectory);
  expect_identical(legacy_shape.combined, parallel.combined);
}

TEST(EngineCache, TrajectoryCapsReuseTheNetcalcRun) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine eng(cfg, Options{2});
  (void)eng.run();
  // Phase 1 fills the per-port cache (all misses); the trajectory phase
  // re-reads every used port for its serialization caps (all hits).
  const CacheStats stats = eng.cache_stats();
  std::size_t used_ports = 0;
  for (LinkId l = 0; l < cfg.network().link_count(); ++l) {
    if (!cfg.vls_on_link(l).empty()) ++used_ports;
  }
  EXPECT_EQ(stats.misses, used_ports);
  EXPECT_GE(stats.hits, used_ports);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(EngineCache, SecondRunIsAllHits) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine eng(cfg, Options{2});
  (void)eng.run();
  const CacheStats after_first = eng.cache_stats();
  (void)eng.run();
  const CacheStats after_second = eng.cache_stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(EngineCache, DistinctOptionsDoNotCollide) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine eng(cfg, Options{2});
  netcalc::Options no_grouping;
  no_grouping.grouping = false;
  const netcalc::Result grouped = eng.netcalc_only();
  const netcalc::Result ungrouped = eng.netcalc_only(no_grouping);
  expect_identical(grouped.path_bounds, netcalc::analyze(cfg).path_bounds);
  expect_identical(ungrouped.path_bounds,
                   netcalc::analyze(cfg, no_grouping).path_bounds);
}

TEST(EngineMetrics, RecordsPhasesPathsAndTasks) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine eng(cfg, Options{2});
  const RunResult run = eng.run();
  const RunMetrics& m = run.metrics;
  EXPECT_EQ(m.threads, 2);
  EXPECT_EQ(m.paths, cfg.all_paths().size());
  EXPECT_GT(m.paths_per_second, 0.0);
  EXPECT_GE(m.netcalc_wall_us, 0.0);
  EXPECT_GE(m.trajectory_wall_us, 0.0);
  EXPECT_GE(m.total_wall_us,
            m.netcalc_wall_us + m.trajectory_wall_us);
  ASSERT_EQ(m.tasks_per_thread.size(), 2u);
  EXPECT_GT(std::accumulate(m.tasks_per_thread.begin(),
                            m.tasks_per_thread.end(), std::size_t{0}),
            0u);
  std::ostringstream os;
  m.print(os);
  EXPECT_NE(os.str().find("port cache"), std::string::npos);
}

TEST(Engine, MultiPriorityConfigStillRejectedByTrajectoryPhase) {
  gen::IndustrialOptions o;
  o.vl_count = 60;
  o.end_system_count = 16;
  o.priority_levels = 2;
  const TrafficConfig cfg = gen::industrial_config(o);
  AnalysisEngine eng(cfg, Options{4});
  EXPECT_NO_THROW((void)eng.netcalc_only());
  EXPECT_THROW((void)eng.run(), Error);
}

TEST(ThreadPool, ZeroTaskBatchIsANoOp) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  const auto tasks = pool.tasks_per_thread();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(std::accumulate(tasks.begin(), tasks.end(), std::size_t{0}), 0u);
}

TEST(ThreadPool, MoreThreadsThanTasksLeavesWorkersIdle) {
  ThreadPool pool(8);
  std::vector<int> counts(3, 0);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i, int) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i], 1);
  const auto tasks = pool.tasks_per_thread();
  ASSERT_EQ(tasks.size(), 8u);
  EXPECT_EQ(std::accumulate(tasks.begin(), tasks.end(), std::size_t{0}), 3u);
}

TEST(ThreadPool, ReuseAccumulatesAcrossBatchesAndSurvivesFailures) {
  ThreadPool pool(2);
  pool.parallel_for(10, [](std::size_t, int) {});
  pool.parallel_for(7, [](std::size_t, int) {});
  auto sum = [](const std::vector<std::size_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::size_t{0});
  };
  EXPECT_EQ(sum(pool.tasks_per_thread()), 17u);
  // A failing batch must not poison the pool for subsequent batches.
  EXPECT_THROW(
      pool.parallel_for(4, [](std::size_t, int) { throw Error("boom"); }),
      Error);
  std::vector<int> counts(5, 0);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i, int) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(PortCacheConcurrency, MixedHitMissLoadKeepsCountersConsistent) {
  PortCache cache;
  const std::uint64_t key = PortCache::options_key(netcalc::Options{});
  constexpr LinkId kPorts = 20;
  auto bounds_for = [](LinkId port) {
    netcalc::PortBounds b;
    b.backlog = static_cast<double>(port);
    return b;
  };
  // Half the ports are warm before the storm: every thread sees a mix of
  // hits and misses.
  for (LinkId p = 0; p < kPorts / 2; ++p) cache.store(key, p, bounds_for(p));

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  std::atomic<int> value_mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const LinkId port = static_cast<LinkId>((i + t) % kPorts);
        const auto cached = cache.lookup(key, port);
        if (cached.has_value()) {
          if (cached->backlog != static_cast<double>(port)) ++value_mismatches;
        } else {
          cache.store(key, port, bounds_for(port));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every lookup was counted exactly once as a hit or a miss, values never
  // tore, and racing writers never duplicated an entry.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(value_mismatches.load(), 0);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kPorts));

  // Once fully populated, a warm pass is all hits: nothing recomputes.
  const std::uint64_t misses_before = stats.misses;
  for (LinkId p = 0; p < kPorts; ++p) {
    const auto cached = cache.lookup(key, p);
    ASSERT_TRUE(cached.has_value()) << "port " << p;
    EXPECT_EQ(cached->backlog, static_cast<double>(p));
  }
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_EQ(cache.stats().hits, stats.hits + kPorts);
}

TEST(PortCacheConcurrency, DistinctOptionKeysIsolateEntries) {
  PortCache cache;
  netcalc::Options grouped;
  netcalc::Options ungrouped;
  ungrouped.grouping = false;
  const std::uint64_t ka = PortCache::options_key(grouped);
  const std::uint64_t kb = PortCache::options_key(ungrouped);
  ASSERT_NE(ka, kb);
  netcalc::PortBounds b;
  b.backlog = 7.0;
  cache.store(ka, 0, b);
  EXPECT_TRUE(cache.lookup(ka, 0).has_value());
  EXPECT_FALSE(cache.lookup(kb, 0).has_value());
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// Regression: options_key once ignored fields beyond `grouping`, so two
// analyses differing only in max_iterations shared cache entries and the
// second silently returned the first one's bounds. Every field must feed
// the fingerprint.
TEST(PortCacheConcurrency, OptionsKeyMixesEveryField) {
  std::set<std::uint64_t> keys;
  std::size_t combinations = 0;
  for (const bool grouping : {false, true}) {
    for (const int max_iterations : {1, 2, 100, 1000, 1001}) {
      netcalc::Options o;
      o.grouping = grouping;
      o.max_iterations = max_iterations;
      keys.insert(PortCache::options_key(o));
      ++combinations;
    }
  }
  EXPECT_EQ(keys.size(), combinations)
      << "options differing in some field collided on the same cache key";

  // Deterministic: equal options fingerprint identically.
  netcalc::Options a, b;
  a.max_iterations = b.max_iterations = 250;
  EXPECT_EQ(PortCache::options_key(a), PortCache::options_key(b));

  // The historical bug: max_iterations alone must change the key.
  netcalc::Options base, deeper;
  deeper.max_iterations = base.max_iterations + 1;
  EXPECT_NE(PortCache::options_key(base), PortCache::options_key(deeper));
}

TEST(Engine, PropagationLevelsRespectDependencies) {
  const TrafficConfig cfg = small_industrial();
  const auto levels = netcalc::propagation_levels(cfg);
  ASSERT_TRUE(levels.has_value());
  std::vector<int> level_of(cfg.network().link_count(), -1);
  int k = 0;
  std::size_t total = 0;
  for (const auto& level : *levels) {
    for (LinkId l : level) level_of[l] = k;
    total += level.size();
    ++k;
  }
  std::size_t used = 0;
  for (LinkId l = 0; l < cfg.network().link_count(); ++l) {
    if (!cfg.vls_on_link(l).empty()) ++used;
  }
  EXPECT_EQ(total, used);
  // Every predecessor must live in a strictly earlier level.
  for (LinkId l = 0; l < cfg.network().link_count(); ++l) {
    for (VlId v : cfg.vls_on_link(l)) {
      const LinkId pred = cfg.route(v).predecessor(l);
      if (pred != kInvalidLink) {
        EXPECT_LT(level_of[pred], level_of[l]);
      }
    }
  }
}


TEST(ThreadPool, ContainedFailuresDoNotPoisonSiblings) {
  ThreadPool pool(4);
  std::vector<int> ran(100, 0);
  const auto failures = pool.parallel_for_contained(100, [&](std::size_t i,
                                                            int) {
    if (i % 10 == 3) throw Error("boom at " + std::to_string(i));
    ++ran[i];
  });
  // Every non-throwing index ran exactly once -- nothing was abandoned.
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i], i % 10 == 3 ? 0 : 1) << i;
  }
  ASSERT_EQ(failures.size(), 10u);
  // Failures are sorted by index and carry the thrown message.
  for (std::size_t f = 0; f < failures.size(); ++f) {
    EXPECT_EQ(failures[f].index, 10 * f + 3);
    EXPECT_NE(failures[f].message.find("boom"), std::string::npos);
  }
  // The pool survives and stays usable for further batches.
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::size_t, int) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ContainedWorksSingleThreadedAndWithNonStdExceptions) {
  ThreadPool pool(1);
  const auto failures = pool.parallel_for_contained(5, [](std::size_t i, int) {
    if (i == 2) throw 42;  // not a std::exception
  });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 2u);
  EXPECT_EQ(failures[0].message, "unknown exception");
}

// A configuration where one VL oversubscribes every port on its route
// (~121 bits/us demand on 100 bits/us links) while a second VL rides
// disjoint output ports.
TrafficConfig mixed_stability_config() {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, e2);
  net.connect(e3, s2);
  net.connect(s2, e4);
  std::vector<VirtualLink> vls;
  vls.push_back({"v_bad", e1, {e2}, 100.0, 64, 1518});
  vls.push_back({"v_ok", e3, {e4}, 4000.0, 64, 500});
  return TrafficConfig(std::move(net), std::move(vls));
}

TEST(Engine, ResilientMatchesRunOnHealthyConfig) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine a(cfg, {1});
  AnalysisEngine b(cfg, {1});
  const RunResult classic = a.run();
  const RunResult resilient = b.run_resilient();
  EXPECT_TRUE(resilient.complete());
  expect_identical(classic.combined, resilient.combined);
  expect_identical(classic.netcalc, resilient.netcalc);
  expect_identical(classic.trajectory, resilient.trajectory);
  for (const PathStatus& st : resilient.status) {
    EXPECT_EQ(st.state, PathState::kOk);
  }
}

TEST(Engine, ResilientContainsUnstablePortAndKeepsTheRest) {
  const TrafficConfig cfg = mixed_stability_config();
  AnalysisEngine throwing(cfg, {1});
  EXPECT_THROW((void)throwing.run(), Error);  // the classic path gives up

  AnalysisEngine eng(cfg, {1});
  const RunResult r = eng.run_resilient();
  EXPECT_FALSE(r.complete());
  const std::size_t bad = 0, ok = 1;  // all_paths order: v_bad, v_ok
  EXPECT_EQ(r.status[bad].state, PathState::kFailed);
  EXPECT_NE(r.status[bad].message.find("unstable"), std::string::npos);
  EXPECT_TRUE(std::isinf(r.combined[bad]));
  // The unaffected path still gets its exact finite bounds.
  EXPECT_EQ(r.status[ok].state, PathState::kOk);
  EXPECT_TRUE(std::isfinite(r.combined[ok]));
  EXPECT_GT(r.combined[ok], 0.0);
  // Parallel containment is bit-identical to serial containment.
  AnalysisEngine par(cfg, {4});
  const RunResult rp = par.run_resilient();
  expect_identical(r.combined, rp.combined);
  EXPECT_EQ(rp.status[bad].state, PathState::kFailed);
}

// Like mixed_stability_config, but with a population of healthy VLs that
// interfere with each other on S2's output ports while staying off every
// link v_bad crosses. `include_bad` toggles the unstable VL so the same
// healthy traffic can be analyzed with and without it in the picture.
TrafficConfig poisoning_config(bool include_bad) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId e5 = net.add_end_system("e5");
  const NodeId e6 = net.add_end_system("e6");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, e2);
  net.connect(e3, s2);
  net.connect(e5, s2);
  net.connect(s2, e4);
  net.connect(s2, e6);
  std::vector<VirtualLink> vls;
  if (include_bad) vls.push_back({"v_bad", e1, {e2}, 100.0, 64, 1518});
  vls.push_back({"v_ok1", e3, {e4, e6}, 4000.0, 64, 500});
  vls.push_back({"v_ok2", e5, {e4}, 2000.0, 64, 1000});
  vls.push_back({"v_ok3", e3, {e6}, 8000.0, 64, 300});
  return TrafficConfig(std::move(net), std::move(vls));
}

// Regression for the in_progress_ marker leak: the analyzer used to leave
// its recursion markers behind when a diverging busy period threw out of
// compute_prefix, so the shard analyzer that contained v_bad's failure
// falsely reported "cyclic prefix dependency" on later prefixes -- wrong
// errors on healthy paths. Every healthy path must come out bit-identical
// to a fresh run on the healthy subset of the configuration.
TEST(Engine, ResilientUnstableVlDoesNotPoisonOtherPaths) {
  const TrafficConfig cfg = poisoning_config(true);
  const TrafficConfig healthy = poisoning_config(false);
  for (int threads : {1, 4}) {
    AnalysisEngine eng(cfg, {threads});
    const RunResult r = eng.run_resilient();
    AnalysisEngine ref(healthy, {threads});
    const RunResult rr = ref.run_resilient();
    ASSERT_TRUE(rr.complete());
    // v_bad is VL 0 and unicast: exactly one extra path, ordered first.
    ASSERT_EQ(r.combined.size(), rr.combined.size() + 1);
    EXPECT_EQ(r.status[0].state, PathState::kFailed);
    EXPECT_EQ(r.status[0].message.find("cyclic"), std::string::npos)
        << r.status[0].message;
    for (std::size_t i = 0; i < rr.combined.size(); ++i) {
      EXPECT_EQ(r.status[i + 1].state, PathState::kOk)
          << "threads=" << threads << " path " << i << ": "
          << r.status[i + 1].message;
      EXPECT_EQ(r.netcalc[i + 1], rr.netcalc[i]) << "path " << i;
      EXPECT_EQ(r.trajectory[i + 1], rr.trajectory[i]) << "path " << i;
      EXPECT_EQ(r.combined[i + 1], rr.combined[i]) << "path " << i;
    }
  }
}

TEST(Engine, StreamingMatchesResilientBitIdentically) {
  for (const bool with_bad : {false, true}) {
    const TrafficConfig cfg =
        with_bad ? poisoning_config(true) : small_industrial();
    AnalysisEngine mat(cfg, {1});
    const RunResult r = mat.run_resilient();
    const std::size_t n = cfg.all_paths().size();
    for (int threads : {1, 4}) {
      AnalysisEngine eng(cfg, {threads});
      // The sink is called under the engine's summary lock, in completion
      // order; scatter by path_index to compare against the materialized
      // vectors.
      std::vector<Microseconds> nc(n, 0.0), tj(n, 0.0), comb(n, 0.0);
      std::vector<PathState> states(n, PathState::kSkipped);
      std::vector<int> seen(n, 0);
      const StreamSummary s =
          eng.run_streaming([&](const StreamPathResult& p) {
            ASSERT_LT(p.path_index, n);
            ++seen[p.path_index];
            nc[p.path_index] = p.netcalc;
            tj[p.path_index] = p.trajectory;
            comb[p.path_index] = p.combined;
            states[p.path_index] = p.state;
          });
      EXPECT_EQ(s.paths, n);
      EXPECT_EQ(s.ok + s.failed + s.skipped, n);
      EXPECT_EQ(s.failed, with_bad ? 1u : 0u);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i], 1) << "path " << i;
        EXPECT_EQ(states[i], r.status[i].state) << "path " << i;
      }
      expect_identical(nc, r.netcalc);
      expect_identical(tj, r.trajectory);
      expect_identical(comb, r.combined);
      // The running summary agrees with a scan of the materialized run.
      Microseconds max_combined = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (std::isfinite(r.combined[i])) {
          max_combined = std::max(max_combined, r.combined[i]);
        }
      }
      EXPECT_EQ(s.max_combined, max_combined);
      EXPECT_GT(s.paths_per_second, 0.0);
    }
  }
}

// The streaming summary carries the run's own cache deltas and per-shard
// counters, so reuse is observable from the summary alone. Regression
// test for the zero-reuse blind spot: a fresh single-thread run answers
// every repeat lookup from the shard-local memo, so only a warm rerun
// (fresh analyzers, same engine) exercises the shared caches -- the
// second summary must show port-cache and prefix-cache hits, not zeros.
TEST(Engine, StreamingWarmRerunHitsSharedCaches) {
  const TrafficConfig cfg = small_industrial();
  const std::size_t n = cfg.all_paths().size();
  for (int threads : {1, 4}) {
    AnalysisEngine eng(cfg, {threads});
    const StreamSummary cold = eng.run_streaming(nullptr);
    const StreamSummary warm = eng.run_streaming(nullptr);

    // Warm results match cold ones (the max is order-independent; the
    // running sum is accumulated in completion order, which legitimately
    // varies between runs, so it is not compared bitwise).
    EXPECT_EQ(warm.paths, cold.paths);
    EXPECT_EQ(warm.ok, cold.ok);
    EXPECT_EQ(warm.max_combined, cold.max_combined);
    EXPECT_NEAR(warm.sum_combined, cold.sum_combined,
                1e-6 * std::abs(cold.sum_combined));

    // The cold run populates: its delta shows misses (and no port hits on
    // a fresh engine beyond the netcalc pass's own reuse is required).
    EXPECT_GT(cold.port_cache.misses, 0u) << "threads=" << threads;
    EXPECT_GT(cold.prefix_cache.misses, 0u) << "threads=" << threads;

    // The warm run reuses: every port bound and trajectory prefix is
    // served from the shared caches.
    EXPECT_GT(warm.port_cache.hits, 0u) << "threads=" << threads;
    EXPECT_EQ(warm.port_cache.misses, 0u) << "threads=" << threads;
    EXPECT_GT(warm.prefix_cache.hits, 0u) << "threads=" << threads;

    // Per-shard accounting covers the whole run: every VL work item and
    // every path landed in exactly one shard, and the warm shards saw
    // shared-cache hits.
    ASSERT_FALSE(warm.shards.empty());
    std::size_t shard_vls = 0, shard_paths = 0;
    std::uint64_t shard_lookups = 0, shard_shared_hits = 0;
    for (const ShardMetrics& s : warm.shards) {
      shard_vls += s.vls;
      shard_paths += s.paths;
      shard_lookups += s.lookups;
      shard_shared_hits += s.shared_hits;
    }
    EXPECT_EQ(shard_vls, cfg.vl_count()) << "threads=" << threads;
    EXPECT_EQ(shard_paths, n) << "threads=" << threads;
    EXPECT_GT(shard_lookups, 0u);
    EXPECT_GT(shard_shared_hits, 0u);
    for (const ShardMetrics& s : warm.shards) {
      EXPECT_LE(s.local_hits + s.shared_hits, s.lookups);
      EXPECT_GE(s.hit_rate(), 0.0);
      EXPECT_LE(s.hit_rate(), 1.0);
    }
  }
}

TEST(Engine, ResilientHonoursCancelledToken) {
  const TrafficConfig cfg = small_industrial();
  CancelToken cancel;
  cancel.cancel();
  AnalysisEngine eng(cfg, {1});
  RunControl control;
  control.cancel = &cancel;
  const RunResult r = eng.run_resilient({}, {}, control);
  EXPECT_FALSE(r.complete());
  for (const PathStatus& st : r.status) {
    EXPECT_EQ(st.state, PathState::kSkipped);
    EXPECT_TRUE(std::isinf(r.combined[&st - r.status.data()]));
  }
}

TEST(Engine, CancelTokenDeadlineExpires) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  token.set_deadline_after(0.0);  // already in the past
  EXPECT_TRUE(token.expired());
  EXPECT_FALSE(token.cancelled());
  CancelToken cancelled;
  cancelled.cancel();
  EXPECT_TRUE(cancelled.expired());
  EXPECT_STREQ(cancelled.reason(), "cancelled");
}

TEST(Engine, MetricsStayFiniteOnEmptyConfig) {
  // Zero VLs -> zero paths and a ~zero-duration run: throughput and cache
  // hit rate must be 0, never NaN.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  TrafficConfig cfg(std::move(net), {});
  AnalysisEngine eng(cfg, {1});
  const RunResult r = eng.run();
  EXPECT_EQ(r.metrics.paths, 0u);
  EXPECT_FALSE(std::isnan(r.metrics.paths_per_second));
  EXPECT_EQ(r.metrics.paths_per_second, 0.0);
  std::ostringstream out;
  eng.metrics().print(out);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
}

TEST(ThreadPool, DynamicRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for_dynamic(counts.size(),
                            [&](std::size_t i, int) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
  const auto tasks = pool.tasks_per_thread();
  EXPECT_EQ(std::accumulate(tasks.begin(), tasks.end(), std::size_t{0}),
            counts.size());
}

TEST(ThreadPool, DynamicRethrowsSmallestIndexFailure) {
  ThreadPool pool(4);
  try {
    pool.parallel_for_dynamic(100, [&](std::size_t i, int) {
      if (i >= 10) throw Error("fail at " + std::to_string(i));
    });
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    // Unlike the static loop, every index still executes; the smallest
    // failing one must win regardless of which worker (or thief) ran it.
    EXPECT_STREQ(e.what(), "fail at 10");
  }
}

TEST(ThreadPool, DynamicContainedCollectsSortedFailures) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(60);
  const auto failures = pool.parallel_for_dynamic_contained(
      counts.size(), [&](std::size_t i, int) {
        ++counts[i];
        if (i % 20 == 7) throw Error("boom " + std::to_string(i));
      });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
  ASSERT_EQ(failures.size(), 3u);
  EXPECT_EQ(failures[0].index, 7u);
  EXPECT_EQ(failures[1].index, 27u);
  EXPECT_EQ(failures[2].index, 47u);
  EXPECT_EQ(failures[0].message, "boom 7");
}

TEST(ThreadPool, DynamicStealsFromABlockedWorker) {
  // n = 20 with 2 workers gives chunk size 1, so once worker 0 parks
  // inside index 0, every other index of its half must be stolen by
  // worker 1 before the wait below can complete.
  ThreadPool pool(2);
  const std::uint64_t steals_before = pool.steal_count();
  std::atomic<int> done{0};
  pool.parallel_for_dynamic(20, [&](std::size_t i, int) {
    if (i == 0) {
      while (done.load() < 19) std::this_thread::yield();
    } else {
      ++done;
    }
  });
  EXPECT_EQ(done.load(), 19);
  EXPECT_GT(pool.steal_count(), steals_before);
}

TEST(ThreadPool, DynamicSingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for_dynamic(10,
                            [&](std::size_t i, int w) {
                              EXPECT_EQ(w, 0);
                              order.push_back(static_cast<int>(i));
                            });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(PortCache, SeedStoresAndOverwrites) {
  PortCache cache;
  netcalc::PortBounds a;
  a.backlog = 1.0;
  netcalc::PortBounds b;
  b.backlog = 2.0;
  cache.store(7, 0, a);
  cache.seed(7, 0, b);  // seed overwrites, unlike store
  cache.seed(7, 1, a);
  const auto hit = cache.lookup(7, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->backlog, 2.0);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.seeded, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PortCache, EvictCountsOnlyExistingEntries) {
  PortCache cache;
  netcalc::PortBounds b;
  cache.store(7, 0, b);
  cache.store(7, 1, b);
  cache.store(8, 0, b);
  cache.evict(7, {0, 1, 2});  // 2 was never stored
  EXPECT_EQ(cache.stats().evicted, 2u);
  EXPECT_FALSE(cache.lookup(7, 0).has_value());
  EXPECT_FALSE(cache.lookup(7, 1).has_value());
  EXPECT_TRUE(cache.lookup(8, 0).has_value());  // other key untouched
}

// Strict bitwise comparison of two runs, including per-path outcomes.
void expect_runs_identical(const RunResult& a, const RunResult& b) {
  expect_identical(a.netcalc, b.netcalc);
  expect_identical(a.trajectory, b.trajectory);
  expect_identical(a.combined, b.combined);
  ASSERT_EQ(a.status.size(), b.status.size());
  for (std::size_t i = 0; i < a.status.size(); ++i) {
    EXPECT_EQ(a.status[i].state, b.status[i].state) << "path " << i;
  }
}

/// Runs every single-link and single-switch scenario of `cfg` through both
/// a full run and an incremental run seeded from the healthy baseline.
void check_incremental_on_all_scenarios(const TrafficConfig& cfg) {
  AnalysisEngine healthy(cfg, Options{1});
  const RunResult baseline = healthy.run_resilient();

  std::vector<faults::FaultScenario> scenarios =
      faults::single_link_scenarios(cfg);
  for (auto& s : faults::single_switch_scenarios(cfg)) {
    scenarios.push_back(std::move(s));
  }
  ASSERT_FALSE(scenarios.empty());

  std::size_t fast_path_runs = 0;
  for (const faults::FaultScenario& scenario : scenarios) {
    const faults::DegradedView view = faults::apply_scenario(cfg, scenario);
    if (!view.config.has_value()) continue;

    AnalysisEngine full_engine(*view.config, Options{1});
    const RunResult full = full_engine.run_resilient();

    AnalysisEngine inc_engine(*view.config, Options{1});
    const RunResult incremental = inc_engine.run_incremental(
        cfg, baseline,
        faults::scenario_changed_links(cfg.network(), scenario));
    SCOPED_TRACE("scenario " + scenario.name);
    expect_runs_identical(full, incremental);
    const IncrementalStats stats = inc_engine.metrics().incremental;
    EXPECT_TRUE(stats.attempted);
    if (!stats.full_fallback) ++fast_path_runs;
  }
  // The point of the exercise: the fast path must actually engage.
  EXPECT_GT(fast_path_runs, 0u);
}

TEST(EngineIncremental, MatchesFullRunOnSampleFaultScenarios) {
  check_incremental_on_all_scenarios(config::sample_config());
}

TEST(EngineIncremental, MatchesFullRunOnIndustrialFaultScenarios) {
  gen::IndustrialOptions o;
  o.vl_count = 60;
  o.end_system_count = 16;
  check_incremental_on_all_scenarios(gen::industrial_config(o));
}

TEST(EngineIncremental, SeedsCleanPortsAndSkipsDirtyCone) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine healthy(cfg, Options{1});
  const RunResult baseline = healthy.run_resilient();

  const auto scenarios = faults::single_link_scenarios(cfg);
  ASSERT_FALSE(scenarios.empty());
  const faults::DegradedView view = faults::apply_scenario(cfg, scenarios[0]);
  ASSERT_TRUE(view.config.has_value());

  AnalysisEngine inc_engine(*view.config, Options{1});
  const RunResult run = inc_engine.run_incremental(
      cfg, baseline,
      faults::scenario_changed_links(cfg.network(), scenarios[0]));
  const RunMetrics m = inc_engine.metrics();
  EXPECT_FALSE(m.incremental.full_fallback) << m.incremental.fallback_reason;
  // Every used port of the degraded view is either transplanted or dirty.
  std::size_t used = 0;
  for (LinkId l = 0; l < view.config->network().link_count(); ++l) {
    if (!view.config->vls_on_link(l).empty()) ++used;
  }
  EXPECT_EQ(m.incremental.seeded_ports + m.incremental.dirty_ports, used);
  EXPECT_GT(m.incremental.seeded_ports, 0u);
  // Seeding happens before the run proper, so it shows in the lifetime
  // cache counters (the per-run delta only covers the run itself).
  EXPECT_GT(m.cache.seeded, 0u);
  EXPECT_TRUE(run.complete());
}

TEST(EngineIncremental, FallsBackOnDifferentOptions) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine healthy(cfg, Options{1});
  const RunResult baseline = healthy.run_resilient();  // default options

  netcalc::Options no_grouping;
  no_grouping.grouping = false;
  AnalysisEngine inc_engine(cfg, Options{1});
  const RunResult run =
      inc_engine.run_incremental(cfg, baseline, {}, no_grouping);
  EXPECT_TRUE(inc_engine.metrics().incremental.full_fallback);

  AnalysisEngine full_engine(cfg, Options{1});
  expect_runs_identical(full_engine.run_resilient(no_grouping), run);
}

TEST(EngineIncremental, PlanRejectsDifferentNetworks) {
  const TrafficConfig a = config::sample_config();
  config::SampleOptions other;
  other.link_rate = rate_from_mbps(10.0);  // different physical network
  const TrafficConfig b = config::sample_config(other);
  const IncrementalPlan plan = plan_incremental(a, b, {});
  EXPECT_FALSE(plan.compatible);
  EXPECT_FALSE(plan.reason.empty());
}

/// Rebuilds `base` with one VL mutated, keeping network and routes
/// bit-identical -- the parameter-edit flavour of incremental re-analysis.
template <typename Mutate>
TrafficConfig with_mutated_vl(const TrafficConfig& base, VlId target,
                              Mutate mutate) {
  std::vector<VirtualLink> vls;
  std::vector<std::vector<std::vector<LinkId>>> routes;
  for (VlId v = 0; v < base.vl_count(); ++v) {
    vls.push_back(base.vl(v));
    routes.push_back(base.route(v).paths());
  }
  mutate(vls[target]);
  return TrafficConfig(Network(base.network()), std::move(vls),
                       std::move(routes));
}

TEST(EngineIncremental, ParameterEditRecomputesOnlyAffectedPrefixes) {
  const TrafficConfig cfg = small_industrial();
  AnalysisEngine healthy(cfg, Options{1});
  const RunResult baseline = healthy.run_resilient();

  const TrafficConfig mutated = with_mutated_vl(
      cfg, 0, [](VirtualLink& vl) { vl.s_max = vl.s_max + 100; });

  // Cold run: every prefix of the mutated config is computed from scratch.
  AnalysisEngine cold(mutated, Options{1});
  const RunResult cold_run = cold.run_resilient();
  const std::uint64_t cold_prefixes = cold.metrics().prefix_run.misses;
  ASSERT_GT(cold_prefixes, 0u);

  // Incremental run with an empty changed-link set: the crossing-tuple
  // diff alone must spot the edited VL's ports and dirty its cone.
  AnalysisEngine inc(mutated, Options{1});
  const RunResult inc_run = inc.run_incremental(cfg, baseline, {});
  const RunMetrics m = inc.metrics();
  EXPECT_FALSE(m.incremental.full_fallback) << m.incremental.fallback_reason;
  EXPECT_GT(m.incremental.dirty_ports, 0u);
  EXPECT_GT(m.incremental.seeded_prefixes, 0u);
  // Counter-based "only the affected prefixes recompute": the incremental
  // run's prefix-cache misses are exactly the cone's share, strictly fewer
  // than the cold run's.
  EXPECT_LT(m.prefix_run.misses, cold_prefixes);
  EXPECT_EQ(m.prefix_run.misses + m.incremental.seeded_prefixes,
            cold_prefixes);
  // ... and the bounds still match the cold run bit for bit.
  expect_runs_identical(cold_run, inc_run);
}

TEST(EngineIncremental, RunResultCarriesReusableBaselineState) {
  const TrafficConfig cfg = config::sample_config();
  AnalysisEngine eng(cfg, Options{1});
  const RunResult r = eng.run_resilient();
  EXPECT_NE(r.nc_options_key, 0u);
  EXPECT_NE(r.tj_options_key, 0u);
  ASSERT_NE(r.prefixes, nullptr);
  EXPECT_GT(r.prefixes->size(), 0u);
}

// --- Baseline / overlay sessions -----------------------------------------
// One immutable BaselineState, many concurrent OverlaySessions: the serving
// model. Every session result must be bit-identical to a fresh full run of
// the same overlay configuration.

std::shared_ptr<const BaselineState> shared_baseline() {
  auto cfg = std::make_shared<const TrafficConfig>(small_industrial());
  return BaselineState::build(std::move(cfg));
}

RunResult fresh_full_run(const TrafficConfig& overlay) {
  AnalysisEngine eng(overlay, Options{1});
  return eng.run_resilient();
}

TEST(Session, OverlayMatchesFreshFullRun) {
  const auto base = shared_baseline();
  OverlaySession session(base);
  session.override_s_max("VL3", 1518);
  const RunResult overlay = session.analyze();
  EXPECT_FALSE(session.last_incremental().full_fallback)
      << session.last_incremental().fallback_reason;
  expect_runs_identical(fresh_full_run(session.materialize()), overlay);
}

TEST(Session, RejectsUnknownVlAndContractViolations) {
  const auto base = shared_baseline();
  OverlaySession session(base);
  EXPECT_THROW(session.override_bag("nonexistent", 4000.0), Error);
  EXPECT_THROW(session.override_bag("VL1", 0.0), Error);
  // A rejected override leaves the session clean and usable.
  EXPECT_EQ(session.override_count(), 0u);
  session.override_bag("VL1", 1000.0);
  EXPECT_EQ(session.override_count(), 1u);
}

TEST(Session, ConcurrentSessionsDisjointConesShareOneBaseline) {
  const auto base = shared_baseline();
  // Two VLs sourced at different end systems: their dirty cones start on
  // different access links, so the sessions mostly touch disjoint ports.
  const std::string vl_a = "VL2";
  const std::string vl_b = "VL60";
  ASSERT_TRUE(base->config().find_vl(vl_a).has_value());
  ASSERT_TRUE(base->config().find_vl(vl_b).has_value());

  RunResult run_a, run_b;
  std::thread ta([&] {
    OverlaySession s(base);
    s.override_bag(vl_a, 1000.0);
    run_a = s.analyze();
  });
  std::thread tb([&] {
    OverlaySession s(base);
    s.override_s_max(vl_b, 1518);
    run_b = s.analyze();
  });
  ta.join();
  tb.join();

  OverlaySession check_a(base), check_b(base);
  check_a.override_bag(vl_a, 1000.0);
  check_b.override_s_max(vl_b, 1518);
  expect_runs_identical(fresh_full_run(check_a.materialize()), run_a);
  expect_runs_identical(fresh_full_run(check_b.materialize()), run_b);
}

TEST(Session, ConcurrentSessionsOverlappingConesShareOneBaseline) {
  const auto base = shared_baseline();
  // Both sessions edit the same VL (maximally overlapping dirty cones) to
  // different values -- the racing reads against the shared prefix cache
  // must not bleed either overlay's results into the other.
  const std::string vl = "VL5";
  ASSERT_TRUE(base->config().find_vl(vl).has_value());

  RunResult run_a, run_b;
  std::thread ta([&] {
    OverlaySession s(base);
    s.override_bag(vl, 1000.0);
    run_a = s.analyze();
  });
  std::thread tb([&] {
    OverlaySession s(base);
    s.override_bag(vl, 2000.0);
    run_b = s.analyze();
  });
  ta.join();
  tb.join();

  OverlaySession check_a(base), check_b(base);
  check_a.override_bag(vl, 1000.0);
  check_b.override_bag(vl, 2000.0);
  expect_runs_identical(fresh_full_run(check_a.materialize()), run_a);
  expect_runs_identical(fresh_full_run(check_b.materialize()), run_b);
}

TEST(Session, ManyConcurrentSessionsStayIndependent) {
  const auto base = shared_baseline();
  constexpr int kSessions = 8;
  std::vector<RunResult> runs(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&base, &runs, i] {
      OverlaySession s(base);
      s.override_bag("VL" + std::to_string(i + 1), 1000.0 * (i + 1));
      runs[static_cast<std::size_t>(i)] = s.analyze();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kSessions; ++i) {
    OverlaySession check(base);
    check.override_bag("VL" + std::to_string(i + 1), 1000.0 * (i + 1));
    expect_runs_identical(fresh_full_run(check.materialize()),
                          runs[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace afdx::engine

#include "valid/incremental_check.hpp"

#include <cstring>
#include <random>
#include <sstream>
#include <utility>

#include "faults/degrade.hpp"
#include "faults/report.hpp"
#include "faults/scenario.hpp"

namespace afdx::valid {

namespace {

/// Bitwise equality: inf == inf, NaN payloads included, and -- unlike
/// operator== -- no tolerance whatsoever.
bool same_bits(double a, double b) noexcept {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void compare_runs(const std::string& label, const engine::RunResult& full,
                  const engine::RunResult& incremental,
                  IncrementalDiffResult& result) {
  const auto diff_vector = [&](const char* field,
                               const std::vector<Microseconds>& a,
                               const std::vector<Microseconds>& b) {
    if (a.size() != b.size()) {
      result.mismatches.push_back(IncrementalMismatch{
          label, std::string(field) + "(size)", 0,
          static_cast<double>(a.size()), static_cast<double>(b.size())});
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      ++result.values_compared;
      if (!same_bits(a[i], b[i])) {
        result.mismatches.push_back(
            IncrementalMismatch{label, field, i, a[i], b[i]});
      }
    }
  };
  diff_vector("wcnc", full.netcalc, incremental.netcalc);
  diff_vector("trajectory", full.trajectory, incremental.trajectory);
  diff_vector("combined", full.combined, incremental.combined);
  const std::size_t n = std::min(full.status.size(),
                                 incremental.status.size());
  for (std::size_t i = 0; i < n; ++i) {
    ++result.values_compared;
    if (full.status[i].state != incremental.status[i].state) {
      result.mismatches.push_back(IncrementalMismatch{
          label, "state", i,
          static_cast<double>(static_cast<int>(full.status[i].state)),
          static_cast<double>(
              static_cast<int>(incremental.status[i].state))});
    }
  }
}

}  // namespace

std::string IncrementalMismatch::describe() const {
  std::ostringstream out;
  out << "scenario '" << scenario << "': " << field << "[" << index
      << "] full=" << full << " incremental=" << incremental;
  return out.str();
}

IncrementalDiffResult check_incremental_diff(
    const TrafficConfig& config, const IncrementalDiffOptions& options) {
  IncrementalDiffResult result;

  // Scenario set: every used cable, every used switch, plus random
  // multi-cable sets drawn from the cable sweep.
  std::vector<faults::FaultScenario> scenarios =
      faults::single_link_scenarios(config);
  const std::size_t cables = scenarios.size();
  if (options.switches) {
    for (auto& s : faults::single_switch_scenarios(config)) {
      scenarios.push_back(std::move(s));
    }
  }
  if (cables > 0) {
    std::mt19937_64 rng(options.seed);
    for (std::size_t r = 0; r < options.random_scenarios; ++r) {
      faults::FaultScenario multi;
      multi.name = "random#" + std::to_string(r);
      const std::size_t k = 1 + rng() % 3;
      for (std::size_t j = 0; j < k; ++j) {
        const faults::FaultScenario& pick = scenarios[rng() % cables];
        faults::add_failed_cable(config.network(), multi,
                                 pick.failed_links.front());
      }
      scenarios.push_back(std::move(multi));
    }
  }

  // Healthy baseline the incremental runs transplant from.
  engine::AnalysisEngine healthy_engine(config, engine::Options{1});
  const engine::RunResult baseline =
      healthy_engine.run_resilient(options.nc, options.tj);

  for (const faults::FaultScenario& scenario : scenarios) {
    const faults::DegradedView view = faults::apply_scenario(config, scenario);
    if (!view.config.has_value()) {
      ++result.scenarios_empty;
      continue;
    }

    engine::AnalysisEngine full_engine(*view.config, engine::Options{1});
    const engine::RunResult full =
        full_engine.run_resilient(options.nc, options.tj);

    engine::AnalysisEngine inc_engine(*view.config, engine::Options{1});
    const engine::RunResult incremental = inc_engine.run_incremental(
        config, baseline,
        faults::scenario_changed_links(config.network(), scenario),
        options.nc, options.tj);
    const engine::IncrementalStats stats = inc_engine.metrics().incremental;
    if (stats.full_fallback) ++result.full_fallbacks;
    result.seeded_ports += stats.seeded_ports;
    result.seeded_prefixes += stats.seeded_prefixes;

    compare_runs(scenario.name, full, incremental, result);
    ++result.scenarios_checked;
  }
  return result;
}

}  // namespace afdx::valid

#include "trajectory/prefix_cache.hpp"

#include "obs/counters.hpp"

namespace afdx::trajectory {

std::optional<Microseconds> PrefixCache::lookup(VlId vl, LinkId link) {
  // Process-wide counters for the observability registry, on top of the
  // per-cache stats that feed the engine's RunMetrics.
  static obs::Counter& hits =
      obs::registry().counter("trajectory.prefix_cache.hits");
  static obs::Counter& misses =
      obs::registry().counter("trajectory.prefix_cache.misses");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key(vl, link));
  if (it == entries_.end()) {
    ++stats_.misses;
    misses.add();
    return std::nullopt;
  }
  ++stats_.hits;
  hits.add();
  return it->second;
}

void PrefixCache::store(VlId vl, LinkId link, Microseconds bound) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(key(vl, link), bound);
}

void PrefixCache::seed(VlId vl, LinkId link, Microseconds bound) {
  static obs::Counter& seeded =
      obs::registry().counter("trajectory.prefix_cache.seeded");
  std::lock_guard<std::mutex> lock(mu_);
  entries_[key(vl, link)] = bound;
  ++stats_.seeded;
  seeded.add();
}

std::optional<Microseconds> PrefixCache::peek(VlId vl, LinkId link) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key(vl, link));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

PrefixCacheStats PrefixCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PrefixCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace afdx::trajectory

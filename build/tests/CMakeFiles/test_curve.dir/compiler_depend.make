# Empty compiler generated dependencies file for test_curve.
# This may be replaced when dependencies are built.

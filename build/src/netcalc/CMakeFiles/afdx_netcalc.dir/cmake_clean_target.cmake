file(REMOVE_RECURSE
  "libafdx_netcalc.a"
)

# Empty dependencies file for afdx_topology.
# This may be replaced when dependencies are built.

// Unit tests for virtual links, routes and TrafficConfig.
#include "vl/traffic_config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/samples.hpp"

namespace afdx {
namespace {

TEST(VirtualLink, DerivedQuantities) {
  VirtualLink vl{"v", 0, {1}, microseconds_from_ms(4.0), 64, 500};
  EXPECT_DOUBLE_EQ(vl.burst_bits(), 4000.0);
  EXPECT_DOUBLE_EQ(vl.rate_bits_per_us(), 1.0);  // 4000 bits / 4000 us
  EXPECT_DOUBLE_EQ(vl.max_transmission_time(100.0), 40.0);
  EXPECT_DOUBLE_EQ(vl.min_transmission_time(100.0), 5.12);
}

TEST(VirtualLink, ValidateRejectsBadContracts) {
  VirtualLink ok{"v", 0, {1}, 4000.0, 64, 500};
  EXPECT_NO_THROW(ok.validate());

  VirtualLink no_bag = ok;
  no_bag.bag = 0.0;
  EXPECT_THROW(no_bag.validate(), Error);

  VirtualLink bad_sizes = ok;
  bad_sizes.s_min = 600;
  EXPECT_THROW(bad_sizes.validate(), Error);

  VirtualLink too_big = ok;
  too_big.s_max = 2000;
  EXPECT_THROW(too_big.validate(), Error);

  VirtualLink self_dest = ok;
  self_dest.destinations = {0};
  EXPECT_THROW(self_dest.validate(), Error);

  VirtualLink no_dest = ok;
  no_dest.destinations.clear();
  EXPECT_THROW(no_dest.validate(), Error);
}

TEST(TrafficConfig, SampleConfigShape) {
  const TrafficConfig cfg = config::sample_config();
  EXPECT_EQ(cfg.vl_count(), 5u);
  EXPECT_EQ(cfg.all_paths().size(), 5u);
  EXPECT_TRUE(cfg.stable());
  EXPECT_TRUE(cfg.find_vl("v1").has_value());
  EXPECT_FALSE(cfg.find_vl("v9").has_value());
}

TEST(TrafficConfig, SamplePathsAreRoutedAsInThePaper) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const VlId v1 = *cfg.find_vl("v1");
  const auto& path = cfg.route(v1).paths()[0];
  ASSERT_EQ(path.size(), 3u);  // e1 port, S1 port, S3 port
  EXPECT_EQ(net.node(net.link(path[0]).source).name, "e1");
  EXPECT_EQ(net.node(net.link(path[1]).source).name, "S1");
  EXPECT_EQ(net.node(net.link(path[2]).source).name, "S3");
  EXPECT_EQ(net.node(net.link(path[2]).dest).name, "e6");
}

TEST(TrafficConfig, VlsOnLinkIndexesSharedPorts) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const LinkId s3_to_e6 =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  EXPECT_EQ(cfg.vls_on_link(s3_to_e6).size(), 4u);  // v1..v4
  const LinkId s3_to_e7 =
      *net.link_between(*net.find_node("S3"), *net.find_node("e7"));
  EXPECT_EQ(cfg.vls_on_link(s3_to_e7).size(), 1u);  // v5
}

TEST(TrafficConfig, UtilizationOfSharedPort) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const LinkId s3_to_e6 =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  // 4 VLs x (4000 bits / 4000 us) / 100 Mb/s = 4 / 100.
  EXPECT_NEAR(cfg.utilization(s3_to_e6), 0.04, 1e-12);
  EXPECT_NEAR(cfg.max_utilization(), 0.04, 1e-12);
}

TEST(TrafficConfig, RoutePredecessorChain) {
  const TrafficConfig cfg = config::sample_config();
  const VlId v1 = *cfg.find_vl("v1");
  const auto& path = cfg.route(v1).paths()[0];
  EXPECT_EQ(cfg.route(v1).predecessor(path[0]), kInvalidLink);
  EXPECT_EQ(cfg.route(v1).predecessor(path[1]), path[0]);
  EXPECT_EQ(cfg.route(v1).predecessor(path[2]), path[1]);
}

TEST(TrafficConfig, MulticastTreeSharesPrefix) {
  const TrafficConfig cfg = config::illustrative_config();
  const VlId v6 = *cfg.find_vl("v6");
  const auto& paths = cfg.route(v6).paths();
  ASSERT_EQ(paths.size(), 2u);
  // Both paths start on the same source port.
  EXPECT_EQ(paths[0].front(), paths[1].front());
  // The tree contains strictly fewer links than the sum of path lengths.
  EXPECT_LT(cfg.route(v6).crossed_links().size(),
            paths[0].size() + paths[1].size());
}

TEST(TrafficConfig, PrefixBeforeReturnsOrderedLinks) {
  const TrafficConfig cfg = config::sample_config();
  const VlId v1 = *cfg.find_vl("v1");
  const auto& path = cfg.route(v1).paths()[0];
  const auto prefix = cfg.route(v1).prefix_before(0, path[2]);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[0], path[0]);
  EXPECT_EQ(prefix[1], path[1]);
}

TEST(TrafficConfig, RejectsVlFromSwitch) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  std::vector<VirtualLink> vls{{"v", s1, {e1}, 4000.0, 64, 500}};
  EXPECT_THROW(TrafficConfig(std::move(net), std::move(vls)), Error);
}

TEST(TrafficConfig, RejectsUnreachableDestination) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId s1 = net.add_switch("S1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(e2, s2);
  std::vector<VirtualLink> vls{{"v", e1, {e2}, 4000.0, 64, 500}};
  EXPECT_THROW(TrafficConfig(std::move(net), std::move(vls)), Error);
}

TEST(TrafficConfig, ExplicitRouteIsHonoured) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  net.connect(e1, s1);
  net.connect(s1, s3);       // short route
  net.connect(s1, s2);
  net.connect(s2, s3);       // long route
  net.connect(s3, e2);
  const LinkId l_e1s1 = *net.link_between(e1, s1);
  const LinkId l_s1s2 = *net.link_between(s1, s2);
  const LinkId l_s2s3 = *net.link_between(s2, s3);
  const LinkId l_s3e2 = *net.link_between(s3, e2);

  std::vector<VirtualLink> vls{{"v", e1, {e2}, 4000.0, 64, 500}};
  std::vector<std::vector<std::vector<LinkId>>> routes{
      {{l_e1s1, l_s1s2, l_s2s3, l_s3e2}}};
  const TrafficConfig cfg(std::move(net), std::move(vls), std::move(routes));
  EXPECT_EQ(cfg.route(0).paths()[0].size(), 4u);
}

TEST(TrafficConfig, RejectsDiscontinuousExplicitRoute) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, e2);
  const LinkId l_e1s1 = *net.link_between(e1, s1);
  const LinkId l_s2e2 = *net.link_between(s2, e2);
  std::vector<VirtualLink> vls{{"v", e1, {e2}, 4000.0, 64, 500}};
  std::vector<std::vector<std::vector<LinkId>>> routes{{{l_e1s1, l_s2e2}}};
  EXPECT_THROW(TrafficConfig(std::move(net), std::move(vls), std::move(routes)),
               Error);
}

TEST(TrafficConfig, PathLookupByRef) {
  const TrafficConfig cfg = config::illustrative_config();
  const VlId v6 = *cfg.find_vl("v6");
  const VlPath& p = cfg.path(PathRef{v6, 1});
  EXPECT_EQ(p.vl, v6);
  EXPECT_EQ(p.dest_index, 1u);
  EXPECT_THROW((void)cfg.path(PathRef{v6, 9}), Error);
}

TEST(TrafficConfig, IllustrativeConfigIsStableAndMultipath) {
  const TrafficConfig cfg = config::illustrative_config();
  EXPECT_TRUE(cfg.stable());
  EXPECT_EQ(cfg.vl_count(), 10u);
  EXPECT_GT(cfg.all_paths().size(), cfg.vl_count());  // multicast present
}

}  // namespace
}  // namespace afdx

#include "common/rng.hpp"

#include "common/error.hpp"

namespace afdx {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AFDX_ASSERT(lo <= hi, "uniform_int: empty range");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  AFDX_ASSERT(lo <= hi, "uniform_real: empty range");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  AFDX_ASSERT(!weights.empty(), "weighted_index: empty weights");
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

}  // namespace afdx

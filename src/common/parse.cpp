#include "common/parse.hpp"

#include <charconv>

namespace afdx {

namespace {

template <typename T>
std::optional<T> parse_whole(std::string_view s) {
  if (s.empty()) return std::nullopt;
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::int64_t> parse_int(std::string_view s) {
  return parse_whole<std::int64_t>(s);
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) return std::nullopt;
  return parse_whole<std::uint64_t>(s);
}

std::optional<double> parse_double(std::string_view s) {
  return parse_whole<double>(s);
}

std::optional<unsigned char> parse_hex_byte(std::string_view s) {
  if (s.size() != 2) return std::nullopt;
  unsigned value = 0;
  for (const char c : s) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<unsigned char>(value);
}

}  // namespace afdx

// E4 -- Figure 6 of the paper: percentage of VL paths, per s_max bucket,
// for which the WCNC bound is at least as tight as the trajectory bound.
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E4 / Figure 6: share of VL paths where WCNC outperforms the "
         "trajectory approach, per s_max\n\n";

  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);
  const auto by_smax = analysis::wcnc_win_ratio_by_smax(cfg, c, 150);

  report::Table t({"s_max bucket (B)", "WCNC wins (%)"});
  report::Series series;
  series.name = "WCNC at least as tight (%)";
  for (const auto& [bucket, ratio] : by_smax) {
    t.add_row({"<= " + std::to_string(bucket), report::fmt(ratio * 100.0, 1)});
    series.points.push_back({static_cast<double>(bucket), ratio * 100.0});
  }
  t.print(out);
  out << "\n";
  report::line_chart(out, {series}, 64, 14);
  out << "\npaper shape: the ratio globally increases when s_max decreases\n"
         "(trajectory pessimism grows with the gap between the flow's own\n"
         "frames and the biggest frames it meets). On synthetic\n"
         "configurations the trend is visible at the range extremes but\n"
         "noisy in the middle -- see EXPERIMENTS.md E4.\n";
}

void BM_WinRatioAggregation(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::wcnc_win_ratio_by_smax(cfg, c, 150));
  }
}
BENCHMARK(BM_WinRatioAggregation);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace afdx::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AFDX_REQUIRE(!headers_.empty(), "Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AFDX_REQUIRE(cells.size() == headers_.size(),
               "Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ') << "  ";
      }
    }
    out << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace afdx::report

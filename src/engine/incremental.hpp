// Dirty-cone planning for incremental re-analysis.
//
// Given a baseline configuration, a changed configuration sharing the same
// network (same link ids, endpoints and parameters -- e.g. a fault
// scenario's degraded view), and the set of changed links, plan_incremental
// computes the ports whose WCNC bounds may differ from the baseline:
//
//   seeds   = changed links, plus every port whose *crossing-VL tuple set*
//             (VL name, arrival link, BAG, s_min, s_max, release jitter,
//             priority class) differs from the baseline's -- this catches
//             rerouted, added and removed VLs without diffing routes
//             globally;
//   closure = everything downstream of a seed along the changed
//             configuration's propagation edges (arrival link -> port, per
//             crossing VL).
//
// Soundness: a port outside the cone has a bitwise-identical crossing
// tuple set AND every arrival port of every crossing VL outside the cone,
// recursively. The WCNC bounds of a port are a pure function of exactly
// those inputs, so clean ports keep their baseline bounds bit for bit; the
// same closure argument covers the trajectory prefix recursion (its
// interferer chains propagate through the same edges). See README for the
// discussion.
#pragma once

#include <string>
#include <vector>

#include "vl/traffic_config.hpp"

namespace afdx::engine {

struct IncrementalPlan {
  /// False when the two configurations do not share a network (different
  /// link set or parameters) -- re-analysis must fall back to a full run.
  bool compatible = false;
  std::string reason;

  /// Per current-config LinkId: true when the port is inside the dirty
  /// cone (bounds must be recomputed).
  std::vector<char> dirty;
  /// Current VlId -> baseline VlId, matched by VL name (kInvalidVl for a
  /// VL the baseline does not carry).
  std::vector<VlId> base_vl;
  /// Used ports of the changed configuration inside the cone, ascending.
  std::vector<LinkId> dirty_ports;
  /// Used ports of the changed configuration outside the cone, ascending.
  std::vector<LinkId> clean_ports;
};

[[nodiscard]] IncrementalPlan plan_incremental(
    const TrafficConfig& baseline, const TrafficConfig& current,
    const std::vector<LinkId>& changed_links);

}  // namespace afdx::engine

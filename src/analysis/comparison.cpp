#include "analysis/comparison.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace afdx::analysis {

Comparison compare(const TrafficConfig& config,
                   const netcalc::Options& nc_options,
                   const trajectory::Options& tj_options) {
  Comparison out;
  out.netcalc = netcalc::analyze(config, nc_options).path_bounds;
  out.trajectory = trajectory::analyze(config, tj_options).path_bounds;
  AFDX_ASSERT(out.netcalc.size() == out.trajectory.size(),
              "method results misaligned");
  out.combined.reserve(out.netcalc.size());
  for (std::size_t i = 0; i < out.netcalc.size(); ++i) {
    out.combined.push_back(std::min(out.netcalc[i], out.trajectory[i]));
  }
  return out;
}

BenefitStats benefit_stats(const std::vector<Microseconds>& reference,
                           const std::vector<Microseconds>& candidate) {
  AFDX_REQUIRE(reference.size() == candidate.size(),
               "benefit_stats: size mismatch");
  AFDX_REQUIRE(!reference.empty(), "benefit_stats: no paths");
  BenefitStats stats;
  stats.paths = reference.size();
  stats.max = -1e300;
  stats.min = 1e300;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    AFDX_REQUIRE(reference[i] > 0.0, "benefit_stats: non-positive reference");
    const double b = (reference[i] - candidate[i]) / reference[i];
    stats.mean += b;
    stats.max = std::max(stats.max, b);
    stats.min = std::min(stats.min, b);
    if (candidate[i] < reference[i] - kEpsilon) ++wins;
  }
  stats.mean /= static_cast<double>(stats.paths);
  stats.wins_fraction = static_cast<double>(wins) / static_cast<double>(stats.paths);
  return stats;
}

std::vector<std::pair<Microseconds, double>> mean_benefit_by_bag(
    const TrafficConfig& config, const Comparison& comparison) {
  std::map<Microseconds, std::pair<double, std::size_t>> acc;
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const VirtualLink& vl = config.vl(paths[i].vl);
    const double b = (comparison.netcalc[i] - comparison.trajectory[i]) /
                     comparison.netcalc[i];
    auto& [total, count] = acc[vl.bag];
    total += b;
    ++count;
  }
  std::vector<std::pair<Microseconds, double>> out;
  out.reserve(acc.size());
  for (const auto& [bag, tc] : acc) {
    out.emplace_back(bag, tc.first / static_cast<double>(tc.second));
  }
  return out;
}

std::vector<std::pair<Bytes, double>> wcnc_win_ratio_by_smax(
    const TrafficConfig& config, const Comparison& comparison,
    Bytes bucket_width) {
  AFDX_REQUIRE(bucket_width > 0, "wcnc_win_ratio_by_smax: zero bucket width");
  std::map<Bytes, std::pair<std::size_t, std::size_t>> acc;  // wins, total
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const VirtualLink& vl = config.vl(paths[i].vl);
    const Bytes bucket =
        ((vl.s_max + bucket_width - 1) / bucket_width) * bucket_width;
    auto& [wins, total] = acc[bucket];
    // "WCNC outperforms": the trajectory bound is not strictly tighter.
    if (comparison.netcalc[i] <= comparison.trajectory[i] + kEpsilon) ++wins;
    ++total;
  }
  std::vector<std::pair<Bytes, double>> out;
  out.reserve(acc.size());
  for (const auto& [bucket, wt] : acc) {
    out.emplace_back(bucket, static_cast<double>(wt.first) /
                                 static_cast<double>(wt.second));
  }
  return out;
}

std::vector<HopDelay> path_breakdown(const TrafficConfig& config,
                                     const netcalc::Result& result,
                                     PathRef ref) {
  const VlPath& path = config.path(ref);
  const std::uint8_t level = config.vl(path.vl).priority;
  std::vector<HopDelay> out;
  out.reserve(path.links.size());
  for (LinkId l : path.links) {
    AFDX_REQUIRE(result.ports[l].used,
                 "path_breakdown: result does not cover the path's ports");
    auto it = result.ports[l].level_delays.find(level);
    AFDX_REQUIRE(it != result.ports[l].level_delays.end(),
                 "path_breakdown: missing priority class at a port");
    const Link& link = config.network().link(l);
    out.push_back(HopDelay{l,
                           config.network().node(link.source).name + ">" +
                               config.network().node(link.dest).name,
                           it->second});
  }
  return out;
}

}  // namespace afdx::analysis

file(REMOVE_RECURSE
  "CMakeFiles/afdx_vl.dir/traffic_config.cpp.o"
  "CMakeFiles/afdx_vl.dir/traffic_config.cpp.o.d"
  "CMakeFiles/afdx_vl.dir/virtual_link.cpp.o"
  "CMakeFiles/afdx_vl.dir/virtual_link.cpp.o.d"
  "libafdx_vl.a"
  "libafdx_vl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_vl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Unit tests for the piecewise-linear curve representation.
#include "minplus/curve.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace afdx::minplus {
namespace {

TEST(Curve, DefaultIsZeroFunction) {
  Curve c;
  EXPECT_DOUBLE_EQ(c.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.value(123.0), 0.0);
  EXPECT_DOUBLE_EQ(c.final_slope(), 0.0);
}

TEST(Curve, AffineEvaluation) {
  const Curve c = Curve::affine(4000.0, 1.0);
  EXPECT_DOUBLE_EQ(c.value(0.0), 4000.0);
  EXPECT_DOUBLE_EQ(c.value(10.0), 4010.0);
  EXPECT_DOUBLE_EQ(c.value(1000.0), 5000.0);
}

TEST(Curve, RateLatencyEvaluation) {
  const Curve c = Curve::rate_latency(100.0, 16.0);
  EXPECT_DOUBLE_EQ(c.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.value(16.0), 0.0);
  EXPECT_DOUBLE_EQ(c.value(17.0), 100.0);
  EXPECT_DOUBLE_EQ(c.value(26.0), 1000.0);
}

TEST(Curve, RateLatencyWithZeroLatencyHasOnePoint) {
  const Curve c = Curve::rate_latency(100.0, 0.0);
  EXPECT_EQ(c.points().size(), 1u);
  EXPECT_DOUBLE_EQ(c.value(2.0), 200.0);
}

TEST(Curve, ConstantCurve) {
  const Curve c = Curve::constant(7.5);
  EXPECT_DOUBLE_EQ(c.value(0.0), 7.5);
  EXPECT_DOUBLE_EQ(c.value(1e6), 7.5);
}

TEST(Curve, MultiSegmentEvaluation) {
  // 0 -> 10 with slope 2 until x=5, then slope 0.5.
  const Curve c({{0.0, 0.0}, {5.0, 10.0}}, 0.5);
  EXPECT_DOUBLE_EQ(c.value(2.5), 5.0);
  EXPECT_DOUBLE_EQ(c.value(5.0), 10.0);
  EXPECT_DOUBLE_EQ(c.value(7.0), 11.0);
}

TEST(Curve, SlopeAfterQueriesSegments) {
  const Curve c({{0.0, 0.0}, {5.0, 10.0}}, 0.5);
  EXPECT_DOUBLE_EQ(c.slope_after(0.0), 2.0);
  EXPECT_DOUBLE_EQ(c.slope_after(4.9), 2.0);
  EXPECT_DOUBLE_EQ(c.slope_after(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.slope_after(100.0), 0.5);
}

TEST(Curve, NormalizationRemovesCollinearPoints) {
  const Curve c({{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}}, 2.0);
  // All points lie on y = 2x: only the origin should remain.
  EXPECT_EQ(c.points().size(), 1u);
  EXPECT_DOUBLE_EQ(c.value(2.7), 5.4);
}

TEST(Curve, NormalizationKeepsRealBreakpoints) {
  const Curve c({{0.0, 0.0}, {1.0, 2.0}, {2.0, 3.0}}, 1.0);
  EXPECT_EQ(c.points().size(), 2u);  // final slope equals last segment slope
}

TEST(Curve, RejectsEmptyPointList) {
  EXPECT_THROW(Curve({}, 0.0), Error);
}

TEST(Curve, RejectsFirstPointNotAtZero) {
  EXPECT_THROW(Curve({{1.0, 0.0}}, 0.0), Error);
}

TEST(Curve, RejectsNonIncreasingX) {
  EXPECT_THROW(Curve({{0.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}}, 0.0), Error);
}

TEST(Curve, RejectsNegativeEvaluation) {
  const Curve c = Curve::affine(1.0, 1.0);
  EXPECT_THROW((void)c.value(-5.0), Error);
}

TEST(Curve, ConcavityChecks) {
  EXPECT_TRUE(Curve::affine(10.0, 2.0).is_concave());
  EXPECT_TRUE(Curve::affine(10.0, 2.0).is_convex());  // affine is both
  EXPECT_TRUE(Curve::rate_latency(100.0, 16.0).is_convex());
  EXPECT_FALSE(Curve::rate_latency(100.0, 16.0).is_concave());
  const Curve concave({{0.0, 0.0}, {1.0, 10.0}}, 1.0);
  EXPECT_TRUE(concave.is_concave());
  EXPECT_FALSE(concave.is_convex());
}

TEST(Curve, NonDecreasingCheck) {
  EXPECT_TRUE(Curve::affine(5.0, 0.0).is_non_decreasing());
  const Curve dec({{0.0, 10.0}, {1.0, 5.0}}, 0.0);
  EXPECT_FALSE(dec.is_non_decreasing());
  const Curve neg_tail({{0.0, 0.0}}, -1.0);
  EXPECT_FALSE(neg_tail.is_non_decreasing());
}

TEST(Curve, PseudoInverseOfRateLatency) {
  const Curve beta = Curve::rate_latency(100.0, 16.0);
  EXPECT_DOUBLE_EQ(beta.pseudo_inverse(0.0), 0.0);
  EXPECT_NEAR(beta.pseudo_inverse(4000.0), 16.0 + 40.0, 1e-9);
  EXPECT_NEAR(beta.pseudo_inverse(100.0), 17.0, 1e-9);
}

TEST(Curve, PseudoInverseOfAffine) {
  const Curve a = Curve::affine(100.0, 2.0);
  EXPECT_DOUBLE_EQ(a.pseudo_inverse(50.0), 0.0);   // already above
  EXPECT_NEAR(a.pseudo_inverse(200.0), 50.0, 1e-9);
}

TEST(Curve, PseudoInverseUnreachableThrows) {
  const Curve flat = Curve::constant(10.0);
  EXPECT_THROW((void)flat.pseudo_inverse(20.0), Error);
}

TEST(Curve, PseudoInverseOnFlatSegmentPicksEnd) {
  // Flat from x=1..3 at y=2, then rises.
  const Curve c({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}}, 1.0);
  EXPECT_NEAR(c.pseudo_inverse(2.0), 1.0, 1e-9);
  EXPECT_NEAR(c.pseudo_inverse(3.0), 4.0, 1e-9);
}

TEST(Curve, DominatedBy) {
  const Curve small = Curve::affine(10.0, 1.0);
  const Curve big = Curve::affine(20.0, 2.0);
  EXPECT_TRUE(small.dominated_by(big));
  EXPECT_FALSE(big.dominated_by(small));
  EXPECT_TRUE(small.dominated_by(small));
}

TEST(Curve, EqualityIsStructural) {
  EXPECT_EQ(Curve::affine(10.0, 1.0), Curve::affine(10.0, 1.0));
  EXPECT_FALSE(Curve::affine(10.0, 1.0) == Curve::affine(10.0, 2.0));
}

TEST(Curve, ToStringMentionsBreakpoints) {
  const std::string s = Curve::rate_latency(100.0, 16.0).to_string();
  EXPECT_NE(s.find("(16"), std::string::npos);
}

}  // namespace
}  // namespace afdx::minplus

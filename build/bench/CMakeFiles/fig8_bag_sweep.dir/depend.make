# Empty dependencies file for fig8_bag_sweep.
# This may be replaced when dependencies are built.

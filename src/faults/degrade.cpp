#include "faults/degrade.hpp"

#include <utility>

#include "common/error.hpp"

namespace afdx::faults {

namespace {

Network::RouteConstraints build_constraints(const Network& net,
                                            const FaultScenario& scenario) {
  Network::RouteConstraints c;
  c.blocked_links.assign(net.link_count(), false);
  c.blocked_nodes.assign(net.node_count(), false);
  for (LinkId l : scenario.failed_links) {
    AFDX_REQUIRE(l < net.link_count(),
                 "fault scenario '" + scenario.name + "': link id out of range");
    c.blocked_links[l] = true;
    c.blocked_links[net.reverse(l)] = true;  // cables fail as a whole
  }
  for (NodeId n : scenario.failed_nodes) {
    AFDX_REQUIRE(n < net.node_count(),
                 "fault scenario '" + scenario.name + "': node id out of range");
    c.blocked_nodes[n] = true;
    for (LinkId l : net.links_from(n)) c.blocked_links[l] = true;
    for (LinkId l : net.links_into(n)) c.blocked_links[l] = true;
  }
  return c;
}

}  // namespace

const char* to_string(PathFate fate) noexcept {
  switch (fate) {
    case PathFate::kIntact: return "intact";
    case PathFate::kRerouted: return "rerouted";
    case PathFate::kUnreachable: return "unreachable";
  }
  return "?";
}

DegradedView apply_scenario(const TrafficConfig& healthy,
                            FaultScenario scenario) {
  const Network& net = healthy.network();
  const Network::RouteConstraints constraints =
      build_constraints(net, scenario);

  DegradedView view;
  view.scenario = std::move(scenario);
  view.paths.assign(healthy.all_paths().size(), DegradedPath{});

  std::vector<VirtualLink> surviving_vls;
  std::vector<std::vector<std::vector<LinkId>>> surviving_routes;

  // Healthy all_paths() enumerates (VL ascending, destination ascending);
  // walking VLs in the same order keeps `path_cursor` aligned with it, and
  // the surviving config's all_paths() follows the same rule, so degraded
  // indices are a running counter too.
  std::size_t path_cursor = 0;
  std::size_t degraded_cursor = 0;
  for (VlId v = 0; v < healthy.vl_count(); ++v) {
    const VirtualLink& vl = healthy.vl(v);
    const bool source_down = constraints.node_blocked(vl.source);

    VirtualLink survivor = vl;
    survivor.destinations.clear();
    std::vector<std::vector<LinkId>> survivor_paths;

    for (std::uint32_t d = 0; d < vl.destinations.size(); ++d) {
      DegradedPath& record = view.paths[path_cursor];
      const NodeId dest = vl.destinations[d];
      std::optional<std::vector<LinkId>> rerouted;
      if (!source_down && !constraints.node_blocked(dest)) {
        rerouted = net.shortest_path(vl.source, dest, constraints);
      }
      if (!rerouted.has_value()) {
        record.fate = PathFate::kUnreachable;
        ++view.unreachable;
      } else {
        const bool same = *rerouted == healthy.all_paths()[path_cursor].links;
        record.fate = same ? PathFate::kIntact : PathFate::kRerouted;
        record.degraded_index = degraded_cursor++;
        ++(same ? view.intact : view.rerouted);
        survivor.destinations.push_back(dest);
        survivor_paths.push_back(std::move(*rerouted));
      }
      ++path_cursor;
    }

    if (!survivor.destinations.empty()) {
      surviving_vls.push_back(std::move(survivor));
      surviving_routes.push_back(std::move(survivor_paths));
    }
  }
  AFDX_ASSERT(path_cursor == healthy.all_paths().size(),
              "apply_scenario: path cursor out of sync");

  if (!surviving_vls.empty()) {
    view.config.emplace(net, std::move(surviving_vls),
                        std::move(surviving_routes));
    AFDX_ASSERT(view.config->all_paths().size() == degraded_cursor,
                "apply_scenario: degraded index map out of sync");
  }
  return view;
}

}  // namespace afdx::faults

#include "common/error.hpp"

#include <sstream>

namespace afdx::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream os;
  os << "AFDX internal assertion failed: " << expr << " at " << file << ":"
     << line << " -- " << msg;
  throw LogicError(os.str());
}

}  // namespace afdx::detail

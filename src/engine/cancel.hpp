// Cooperative cancellation for long-running analyses.
//
// A CancelToken is a tiny thread-safe flag (plus an optional deadline on
// the steady clock) that the analysis engine, the fault-scenario sweeps
// and the fuzzing campaigns poll between units of work. Cancelling never
// interrupts a computation mid-port or mid-path: the holder finishes the
// current unit, marks the remaining work `skipped`, and returns whatever
// partial results it already has. cancel() is a single relaxed atomic
// store, so it is safe to call from a POSIX signal handler.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/units.hpp"

namespace afdx::engine {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Async-signal-safe.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the deadline `us` microseconds from now (replacing any earlier
  /// deadline). Non-positive values expire immediately.
  void set_deadline_after(Microseconds us) noexcept {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(us * 1000.0);
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancel() was called or the armed deadline has passed.
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled()) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           deadline;
  }

  /// Why expired() holds: "cancelled" beats "deadline exceeded".
  [[nodiscard]] const char* reason() const noexcept {
    return cancelled() ? "cancelled" : "deadline exceeded";
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock deadline in ns since epoch; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace afdx::engine

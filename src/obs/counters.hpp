// Process-wide counter / histogram registry.
//
// Absorbs and extends engine::RunMetrics: layers increment named counters
// (cache hits, ports computed, fixed-point rounds, ...) and observe named
// histograms (per-level parallelism, per-phase wall time, ...) without
// threading a metrics object through every call.
//
// Hot-path contract: resolve the counter once per call site
// (`static obs::Counter& c = obs::registry().counter("x");`), then each
// update is a single relaxed atomic add. Registration is mutex-guarded and
// returns stable references (nodes are heap-allocated, never moved).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace afdx::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raise the counter to at least `candidate` (e.g. max queue depth seen).
  void record_max(std::uint64_t candidate) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !value_.compare_exchange_weak(cur, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Power-of-two bucketed histogram over non-negative integer observations
/// (bucket b counts values v with 2^(b-1) <= v < 2^b; bucket 0 counts v==0).
/// Tracks count / sum / min / max exactly.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  // 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  // 0 when empty
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create; returned reference is stable for the process lifetime.
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] std::vector<CounterSnapshot> counters() const;
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

  /// Zero every counter and histogram (names stay registered).
  void reset();

  /// Human-readable dump, sorted by name; used by `--metrics`-style output.
  void print(std::ostream& out) const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// Shorthand for Registry::instance().
[[nodiscard]] inline Registry& registry() { return Registry::instance(); }

}  // namespace afdx::obs

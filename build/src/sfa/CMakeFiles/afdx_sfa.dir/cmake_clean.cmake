file(REMOVE_RECURSE
  "CMakeFiles/afdx_sfa.dir/sfa_analyzer.cpp.o"
  "CMakeFiles/afdx_sfa.dir/sfa_analyzer.cpp.o.d"
  "libafdx_sfa.a"
  "libafdx_sfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_sfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env python3
"""Compare two afdx-bench/1 documents and print per-phase speedups.

Usage:
    bench_compare.py OLD NEW [--max-regression PCT]

OLD and NEW are afdx-bench/1 JSON files as written by the bench binaries
via --out=FILE (or the legacy --bench-json=FILE). Either argument may address a sub-document of a
combined baseline file (schema afdx-bench-baseline/1, e.g. the committed
BENCH_baseline.json) with `file.json#dotted.path`, for example:

    bench_compare.py BENCH_baseline.json#benches.table1_industrial.after \
        fresh_table1.json --max-regression 10%

Per-phase wall times come from the optional "metrics" object (engine
phase breakdown); documents without one (e.g. fig7_smax_sweep) are
compared on the wall-time fields of their "results" object instead. The
exit status is non-zero only when --max-regression is given and one of
the gated totals (metrics.total_wall_us, or every results.*_wall_ms /
*_wall_us when there is no metrics object) regressed by more than the
threshold.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

PHASE_KEYS = [
    "netcalc_wall_us",
    "trajectory_wall_us",
    "combine_wall_us",
    "total_wall_us",
]
WALL_RE = re.compile(r"_(wall_ms|wall_us)$")


def load_doc(spec: str):
    path, _, sub = spec.partition("#")
    with open(path) as f:
        doc = json.load(f)
    for part in filter(None, sub.split(".")):
        if not isinstance(doc, dict) or part not in doc:
            raise SystemExit(f"{spec}: no sub-document '{part}'")
        doc = doc[part]
    if not isinstance(doc, dict):
        raise SystemExit(f"{spec}: not a JSON object")
    return doc


def wall_entries(doc: dict) -> tuple[dict[str, float], list[str]]:
    """(name -> wall time) plus the subset of names gating --max-regression."""
    entries: dict[str, float] = {}
    gated: list[str] = []
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        for key in PHASE_KEYS:
            value = metrics.get(key)
            if isinstance(value, (int, float)):
                entries[f"metrics.{key}"] = float(value)
        if "metrics.total_wall_us" in entries:
            gated.append("metrics.total_wall_us")
    results = doc.get("results")
    if isinstance(results, dict):
        for key, value in results.items():
            if WALL_RE.search(key) and isinstance(value, (int, float)):
                entries[f"results.{key}"] = float(value)
        if not isinstance(metrics, dict):
            gated.extend(
                name for name in entries if name.startswith("results.")
            )
    if not entries:
        # Documents without a metrics/results wall field (e.g. sweep
        # benches reporting bounds, not timings) still carry per-phase
        # wall-time histograms from the obs registry.
        histograms = doc.get("histograms")
        if isinstance(histograms, dict):
            for key, value in histograms.items():
                if key.endswith(".wall_us") and isinstance(value, dict):
                    total = value.get("sum")
                    if isinstance(total, (int, float)):
                        name = f"histograms.{key}.sum"
                        entries[name] = float(total)
                        gated.append(name)
    return entries, gated


def parse_pct(text: str) -> float:
    return float(text.rstrip("%")) / 100.0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two afdx-bench/1 documents."
    )
    parser.add_argument("old", help="baseline document (file or file#path)")
    parser.add_argument("new", help="candidate document (file or file#path)")
    parser.add_argument(
        "--max-regression",
        type=parse_pct,
        default=None,
        metavar="PCT",
        help="fail when a gated total is more than PCT slower (e.g. 10%%)",
    )
    args = parser.parse_args()

    old_doc = load_doc(args.old)
    new_doc = load_doc(args.new)
    if old_doc.get("bench") != new_doc.get("bench"):
        print(
            f"note: comparing different benches "
            f"({old_doc.get('bench')} vs {new_doc.get('bench')})",
            file=sys.stderr,
        )

    old_entries, old_gated = wall_entries(old_doc)
    new_entries, _ = wall_entries(new_doc)
    shared = [k for k in old_entries if k in new_entries]
    if not shared:
        print("no comparable wall-time fields found", file=sys.stderr)
        return 2

    # Wall times below this floor are timer noise in quick mode: compare
    # them informationally, but never gate the exit status on them.
    def gateable(name: str, old_v: float) -> bool:
        floor = 10.0 if name.endswith("_wall_ms") else 10_000.0
        return old_v >= floor

    name_w = max(len(k) for k in shared)
    print(f"bench: {new_doc.get('bench', '?')} "
          f"(mode {old_doc.get('mode', '?')} -> {new_doc.get('mode', '?')})")
    print(f"{'phase'.ljust(name_w)}  {'old':>14}  {'new':>14}  speedup")
    failures = []
    threshold = args.max_regression
    for key in shared:
        old_v, new_v = old_entries[key], new_entries[key]
        speedup = old_v / new_v if new_v > 0 else float("inf")
        flag = ""
        if (
            threshold is not None
            and key in old_gated
            and gateable(key, old_v)
            and new_v > old_v * (1.0 + threshold)
        ):
            failures.append(key)
            flag = "  REGRESSION"
        print(
            f"{key.ljust(name_w)}  {old_v:14.1f}  {new_v:14.1f}  "
            f"{speedup:6.2f}x{flag}"
        )

    if failures:
        pct = threshold * 100.0
        print(
            f"FAIL: {', '.join(failures)} regressed beyond {pct:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

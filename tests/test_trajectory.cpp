// Unit tests for the trajectory-approach analyzer. Expected values on the
// paper's sample configuration are hand-derived (DESIGN.md section 3.2) and
// cross-checked against the simulator, which achieves 272 us on this
// configuration -- the trajectory bound is exactly tight there.
#include "trajectory/trajectory_analyzer.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "trajectory/sweep.hpp"

namespace afdx::trajectory {
namespace {

TrafficConfig chain_config(int switches) {
  Network net;
  const NodeId src = net.add_end_system("src");
  const NodeId dst = net.add_end_system("dst");
  std::vector<NodeId> sw;
  for (int i = 0; i < switches; ++i) {
    sw.push_back(net.add_switch("S" + std::to_string(i + 1)));
    if (i > 0) net.connect(sw[i - 1], sw[i]);
  }
  net.connect(src, sw.front());
  net.connect(sw.back(), dst);
  std::vector<VirtualLink> vls{
      {"v", src, {dst}, microseconds_from_ms(4.0), 64, 500}};
  return TrafficConfig(std::move(net), std::move(vls));
}

TEST(Trajectory, IsolatedFlowIsStoreAndForwardExact) {
  // One switch: C + L + C = 40 + 16 + 40.
  EXPECT_NEAR(analyze(chain_config(1)).path_bounds[0], 96.0, 1e-9);
  // Three switches: 4 C + 3 L.
  EXPECT_NEAR(analyze(chain_config(3)).path_bounds[0], 4 * 40.0 + 3 * 16.0,
              1e-9);
}

TEST(Trajectory, SampleConfigBounds) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  // v1..v4 are symmetric: 272 us (achieved by the simulator => tight).
  for (int p = 0; p < 4; ++p) EXPECT_NEAR(r.path_bounds[p], 272.0, 1e-6);
  EXPECT_NEAR(r.path_bounds[4], 96.0, 1e-9);  // v5 is alone
}

TEST(Trajectory, NonSerializedVariantAddsSimultaneitySurcharge) {
  const TrafficConfig cfg = config::sample_config();
  Options naive;
  naive.serialization = false;
  const Result r = analyze(cfg, naive);
  // The paper's Fig. 3 scenario: v3 and v4 (and the symmetric pair) assumed
  // simultaneous: + 40 us over the serialized bound.
  for (int p = 0; p < 4; ++p) EXPECT_NEAR(r.path_bounds[p], 312.0, 1e-6);
  EXPECT_NEAR(r.path_bounds[4], 96.0, 1e-9);
}

TEST(Trajectory, SerializationNeverLoosens) {
  const TrafficConfig cfg = config::illustrative_config();
  Options naive;
  naive.serialization = false;
  const Result enhanced = analyze(cfg);
  const Result plain = analyze(cfg, naive);
  for (std::size_t i = 0; i < enhanced.path_bounds.size(); ++i) {
    EXPECT_LE(enhanced.path_bounds[i], plain.path_bounds[i] + 1e-9);
  }
}

TEST(Trajectory, LooseBoundaryPacketNeverTightens) {
  const TrafficConfig cfg = config::illustrative_config();
  Options loose;
  loose.loose_boundary_packet = true;
  const Result refined = analyze(cfg);
  const Result paper_worded = analyze(cfg, loose);
  for (std::size_t i = 0; i < refined.path_bounds.size(); ++i) {
    EXPECT_LE(refined.path_bounds[i], paper_worded.path_bounds[i] + 1e-9);
  }
}

TEST(Trajectory, PrefixBoundsOnSampleConfig) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  Analyzer an(cfg);
  const VlId v1 = *cfg.find_vl("v1");
  const auto& path = cfg.route(v1).paths()[0];
  EXPECT_NEAR(an.bound_to_link(v1, path[0]), 40.0, 1e-9);   // alone at e1
  EXPECT_NEAR(an.bound_to_link(v1, path[1]), 136.0, 1e-6);  // behind v2
  EXPECT_NEAR(an.bound_to_link(v1, path[2]), 272.0, 1e-6);
  (void)net;
}

TEST(Trajectory, ArrivalTimeAccessors) {
  const TrafficConfig cfg = config::sample_config();
  Analyzer an(cfg);
  const VlId v1 = *cfg.find_vl("v1");
  const auto& path = cfg.route(v1).paths()[0];
  EXPECT_NEAR(an.min_arrival_at(v1, path[0]), 0.0, 1e-12);
  // 64-byte best case: 5.12 us transmission + 16 us latency per stage.
  EXPECT_NEAR(an.min_arrival_at(v1, path[1]), 5.12 + 16.0, 1e-9);
  EXPECT_NEAR(an.min_arrival_at(v1, path[2]), 2 * (5.12 + 16.0), 1e-9);
  EXPECT_NEAR(an.max_arrival_at(v1, path[0]), 0.0, 1e-12);
  EXPECT_NEAR(an.max_arrival_at(v1, path[2]), 136.0 + 16.0, 1e-6);
}

TEST(Trajectory, BoundIsInsensitiveToOwnBag) {
  // The paper's Figure 8: the trajectory bound of v1 does not move with
  // BAG(v1).
  for (double ms : {1.0, 2.0, 8.0, 64.0, 128.0}) {
    config::SampleOptions o;
    o.bag_v1 = microseconds_from_ms(ms);
    const Result r = analyze(config::sample_config(o));
    EXPECT_NEAR(r.path_bounds[0], 272.0, 1e-6) << "BAG(v1) = " << ms << " ms";
  }
}

TEST(Trajectory, CrossoverAgainstNetcalcInSmax) {
  // The paper's Figure 7: WCNC is tighter for small s_max(v1), the
  // trajectory approach for s_max(v1) >= the other VLs' 500 B.
  {
    config::SampleOptions o;
    o.s_max_v1 = 100;
    const TrafficConfig cfg = config::sample_config(o);
    EXPECT_GT(analyze(cfg).path_bounds[0],
              netcalc::analyze(cfg).path_bounds[0]);
  }
  {
    const TrafficConfig cfg = config::sample_config();
    EXPECT_LT(analyze(cfg).path_bounds[0],
              netcalc::analyze(cfg).path_bounds[0]);
  }
}

TEST(Trajectory, GrowsMonotonicallyWithOwnSmax) {
  Microseconds prev = 0.0;
  for (Bytes s : {100u, 300u, 500u, 900u, 1500u}) {
    config::SampleOptions o;
    o.s_max_v1 = s;
    const Microseconds b = analyze(config::sample_config(o)).path_bounds[0];
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Trajectory, MulticastPathsBoundedIndependently) {
  const TrafficConfig cfg = config::illustrative_config();
  Analyzer an(cfg);
  const VlId v6 = *cfg.find_vl("v6");
  const Microseconds b0 = an.path_bound(PathRef{v6, 0});
  const Microseconds b1 = an.path_bound(PathRef{v6, 1});
  EXPECT_GT(b0, 0.0);
  EXPECT_GT(b1, 0.0);
  // Both include at least the store-and-forward floor of three hops.
  const Microseconds c = cfg.vl(v6).max_transmission_time(100.0);
  EXPECT_GE(b0, 3 * c + 2 * 16.0 - 1e-9);
}

TEST(Trajectory, CyclicConfigurationThrows) {
  Network net;
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  const NodeId a = net.add_end_system("a");
  const NodeId b = net.add_end_system("b");
  const NodeId c = net.add_end_system("c");
  net.connect(s1, s2);
  net.connect(s2, s3);
  net.connect(s3, s1);
  net.connect(a, s1);
  net.connect(b, s2);
  net.connect(c, s3);
  auto link = [&](NodeId x, NodeId y) { return *net.link_between(x, y); };
  std::vector<VirtualLink> vls{
      {"f1", a, {c}, microseconds_from_ms(4.0), 64, 500},
      {"f2", b, {a}, microseconds_from_ms(4.0), 64, 500},
      {"f3", c, {b}, microseconds_from_ms(4.0), 64, 500}};
  std::vector<std::vector<std::vector<LinkId>>> routes{
      {{link(a, s1), link(s1, s2), link(s2, s3), link(s3, c)}},
      {{link(b, s2), link(s2, s3), link(s3, s1), link(s1, a)}},
      {{link(c, s3), link(s3, s1), link(s1, s2), link(s2, b)}}};
  const TrafficConfig cfg(std::move(net), std::move(vls), std::move(routes));
  EXPECT_THROW(analyze(cfg), Error);
}

TEST(Trajectory, ResultLookupAndErrors) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  EXPECT_NEAR(r.bound_for(cfg, PathRef{*cfg.find_vl("v2"), 0}), 272.0, 1e-6);
  EXPECT_THROW(r.bound_for(cfg, PathRef{99, 0}), Error);
}

TEST(Trajectory, DeterministicAcrossAnalyzerInstances) {
  const TrafficConfig cfg = config::illustrative_config();
  const Result a = analyze(cfg);
  const Result b = analyze(cfg);
  ASSERT_EQ(a.path_bounds.size(), b.path_bounds.size());
  for (std::size_t i = 0; i < a.path_bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.path_bounds[i], b.path_bounds[i]);
  }
}

TEST(Trajectory, HigherInterferingLoadRaisesBound) {
  // Shrinking the other VLs' BAG below the busy period makes their second
  // frames interfere.
  config::SampleOptions tight;
  tight.bag_others = 150.0;  // us; busy period exceeds one period
  const TrafficConfig cfg = config::sample_config(tight);
  const TrafficConfig base = config::sample_config();
  EXPECT_GT(analyze(cfg).path_bounds[0], analyze(base).path_bounds[0]);
}

// v_bad demands ~121 bits/us on 100 bits/us links (every port on its
// route diverges); v_mid shares the final S2->e2 port with v_bad, so its
// bound fails only through v_bad's prefix; v_ok rides disjoint ports and
// is exactly analyzable.
TrafficConfig reuse_after_throw_config() {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId e5 = net.add_end_system("e5");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  net.connect(e1, s1);
  net.connect(s1, s2);
  net.connect(s2, e2);
  net.connect(e3, s2);
  net.connect(s2, e4);
  net.connect(e5, s2);
  std::vector<VirtualLink> vls;
  vls.push_back({"v_bad", e1, {e2}, 100.0, 64, 1518});
  vls.push_back({"v_mid", e5, {e2}, 4000.0, 64, 500});
  vls.push_back({"v_ok", e3, {e4}, 4000.0, 64, 500});
  return TrafficConfig(std::move(net), std::move(vls));
}

// Regression: a throw out of compute_prefix (diverging busy period) used
// to leak the in_progress_ marker of every frame on the recursion stack.
// Analyzer instances are reused across paths by the engine and across the
// ladder's escalation waves, so the next query reaching a leaked
// (vl, link) key falsely failed with the cyclic-dependency error -- and
// that error poisoned paths that were merely downstream victims of the
// genuinely unstable VL. A throwing analyzer must stay indistinguishable
// from a fresh one.
TEST(Trajectory, AnalyzerStaysConsistentAfterDivergenceThrow) {
  const TrafficConfig cfg = reuse_after_throw_config();
  const VlId bad = *cfg.find_vl("v_bad");
  const VlId mid = *cfg.find_vl("v_mid");
  const VlId ok = *cfg.find_vl("v_ok");
  const LinkId bad_last = cfg.route(bad).paths()[0].back();
  const LinkId mid_last = cfg.route(mid).paths()[0].back();
  const LinkId ok_last = cfg.route(ok).paths()[0].back();

  Analyzer an(cfg);
  const auto expect_divergence = [&](VlId vl, LinkId link) {
    try {
      (void)an.bound_to_link(vl, link);
      FAIL() << "expected a divergence Error";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_EQ(msg.find("cyclic"), std::string::npos) << msg;
      EXPECT_NE(msg.find("diverges"), std::string::npos) << msg;
    }
  };

  // The direct failure, twice on the same analyzer: a leaked marker would
  // turn the second attempt into the false cyclic error.
  expect_divergence(bad, bad_last);
  expect_divergence(bad, bad_last);
  // The indirect failure (v_mid fails only through v_bad's prefix) leaks a
  // multi-frame stack under the bug: (v_mid, mid_last) and v_bad's keys.
  expect_divergence(mid, mid_last);
  expect_divergence(mid, mid_last);
  // Healthy work on the much-thrown analyzer is bit-identical to a fresh
  // instance.
  Analyzer control(cfg);
  EXPECT_EQ(an.bound_to_link(ok, ok_last), control.bound_to_link(ok, ok_last));
}

// Every path bound under one sweep kernel, bitwise. Fresh analyzers per
// kernel so no memoized value crosses over.
std::vector<Microseconds> bounds_with_kernel(const TrafficConfig& cfg,
                                             sweep::Kind kind,
                                             const Options& options) {
  sweep::set_active(kind);
  Analyzer an(cfg, options);
  std::vector<Microseconds> out;
  for (const VlPath& p : cfg.all_paths()) {
    out.push_back(an.bound_to_link(p.vl, p.links.back()));
  }
  return out;
}

// Restores the dispatched kernel even when an assertion throws out of the
// test body.
struct KernelGuard {
  sweep::Kind saved = sweep::active();
  ~KernelGuard() { sweep::set_active(saved); }
};

// The SIMD kernel's contract (sweep.hpp): identical bits, not just
// identical up to tolerance. The golden pair: the paper's sample config
// (short candidate lists, envelope exits early) and a grid of fuzzed
// 2-domain industrial configurations sweeping seed, multicast fan-out and
// BAG spread -- thousands of prefixes with long candidate lists, remainder
// tails of every length mod 4, and saturating nodes.
TEST(TrajectorySweep, SimdMatchesScalarBitwiseOnSampleConfig) {
  if (!sweep::simd_available()) GTEST_SKIP() << "AVX2 not available";
  KernelGuard guard;
  const TrafficConfig cfg = config::sample_config();
  for (const bool serialization : {true, false}) {
    Options options;
    options.serialization = serialization;
    const auto scalar =
        bounds_with_kernel(cfg, sweep::Kind::kScalar, options);
    const auto simd = bounds_with_kernel(cfg, sweep::Kind::kSimd, options);
    ASSERT_EQ(scalar.size(), simd.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(scalar[i], simd[i]) << "path " << i;  // exact, no tolerance
    }
  }
}

TEST(TrajectorySweep, SimdMatchesScalarBitwiseOnFuzzedGrid) {
  if (!sweep::simd_available()) GTEST_SKIP() << "AVX2 not available";
  KernelGuard guard;
  for (const std::uint64_t seed : {7ull, 1234ull, 987654ull}) {
    for (const int fanout : {2, 6}) {
      gen::IndustrialOptions go;
      go.seed = seed;
      go.domains = 2;
      go.vl_count = 160;
      go.switch_count = 4;
      go.end_system_count = 12;
      go.max_multicast_fanout = fanout;
      // A narrow BAG band piles many same-period segments onto each node,
      // which is where the dedup + saturation paths get exercised.
      go.min_bag_ms = (seed % 2 == 0) ? 2.0 : 8.0;
      go.max_bag_ms = (seed % 2 == 0) ? 128.0 : 16.0;
      const TrafficConfig cfg = gen::industrial_config(go);
      const auto scalar =
          bounds_with_kernel(cfg, sweep::Kind::kScalar, Options{});
      const auto simd = bounds_with_kernel(cfg, sweep::Kind::kSimd, Options{});
      ASSERT_EQ(scalar.size(), simd.size());
      for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(scalar[i], simd[i])
            << "seed " << seed << " fanout " << fanout << " path " << i;
      }
    }
  }
}

}  // namespace
}  // namespace afdx::trajectory

// Unit tests for the discrete-event AFDX simulator. Hand-traced timelines
// on the paper's sample configuration (all offsets 0):
//   e-ports transmit 0..40, switch arrival at 56 (40 + 16 us latency);
//   S1 serves v1 then v2 (event order), S2 serves v3 then v4;
//   S3->e6 arrivals: v1 @112, v3 @112, v2 @152, v4 @152;
//   deliveries: v1 @152, v3 @192, v2 @232, v4 @272.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "netcalc/netcalc_analyzer.hpp"

namespace afdx::sim {
namespace {

TEST(Simulator, IsolatedFlowDeliversAtStoreAndForwardTime) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  std::vector<VirtualLink> vls{
      {"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500}};
  const TrafficConfig cfg(std::move(net), std::move(vls));

  Options o;
  o.horizon = microseconds_from_ms(40.0);
  const Result r = simulate(cfg, o);
  EXPECT_NEAR(r.max_path_delay[0], 96.0, 1e-9);   // 40 + 16 + 40
  EXPECT_NEAR(r.mean_path_delay[0], 96.0, 1e-9);  // every frame identical
  EXPECT_EQ(r.frames_delivered, 10u);             // 40 ms / 4 ms
}

TEST(Simulator, SampleConfigAlignedTimeline) {
  const TrafficConfig cfg = config::sample_config();
  Options o;
  o.horizon = microseconds_from_ms(4.0);  // a single frame per VL
  const Result r = simulate(cfg, o);
  EXPECT_NEAR(r.max_path_delay[0], 152.0, 1e-9);  // v1
  EXPECT_NEAR(r.max_path_delay[1], 232.0, 1e-9);  // v2
  EXPECT_NEAR(r.max_path_delay[2], 192.0, 1e-9);  // v3
  EXPECT_NEAR(r.max_path_delay[3], 272.0, 1e-9);  // v4
  EXPECT_NEAR(r.max_path_delay[4], 96.0, 1e-9);   // v5 alone
  EXPECT_EQ(r.frames_delivered, 5u);
}

TEST(Simulator, AchievesTheTrajectoryBoundOnTheSampleConfig) {
  // The aligned schedule realizes 272 us for v4 -- exactly the trajectory
  // bound, proving the bound tight on this configuration.
  const TrafficConfig cfg = config::sample_config();
  const Result r = simulate(cfg, Options{});
  EXPECT_NEAR(r.max_delay_for(cfg, PathRef{*cfg.find_vl("v4"), 0}), 272.0,
              1e-9);
}

TEST(Simulator, PortBacklogTracksQueueContent) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const Result r = simulate(cfg, Options{});
  const LinkId s3_port =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  // At t = 152: v3 in service plus v2 and v4 queued = 12000 bits.
  EXPECT_NEAR(r.max_port_backlog[s3_port], 12000.0, 1e-9);
  // Never above the network-calculus buffer bound.
  const auto nc = netcalc::analyze(cfg);
  for (LinkId l = 0; l < net.link_count(); ++l) {
    if (nc.ports[l].used) {
      EXPECT_LE(r.max_port_backlog[l], nc.ports[l].backlog + 1e-6);
    }
  }
}

TEST(Simulator, ExplicitOffsetsShiftContention) {
  const TrafficConfig cfg = config::sample_config();
  Options o;
  o.phasing = Phasing::kExplicit;
  // Spread the emitters 500 us apart: no two frames ever meet.
  o.offsets = {0.0, 500.0, 1000.0, 1500.0, 2000.0};
  o.horizon = microseconds_from_ms(4.0);
  const Result r = simulate(cfg, o);
  for (int p = 0; p < 5; ++p) {
    EXPECT_NEAR(r.max_path_delay[p], 96.0 + (p < 4 ? 16.0 + 40.0 : 0.0),
                1e-9)
        << "path " << p;  // three hops for v1..v4, two for v5
  }
}

TEST(Simulator, ExplicitOffsetsValidated) {
  const TrafficConfig cfg = config::sample_config();
  Options o;
  o.phasing = Phasing::kExplicit;
  o.offsets = {0.0, 0.0};  // wrong size
  EXPECT_THROW(simulate(cfg, o), Error);
  o.offsets = {0.0, 0.0, 0.0, 0.0, -1.0};
  EXPECT_THROW(simulate(cfg, o), Error);
}

TEST(Simulator, RandomPhasingIsDeterministicPerSeed) {
  const TrafficConfig cfg = config::sample_config();
  Options o;
  o.phasing = Phasing::kRandom;
  o.seed = 7;
  const Result a = simulate(cfg, o);
  const Result b = simulate(cfg, o);
  EXPECT_EQ(a.max_path_delay, b.max_path_delay);
  o.seed = 8;
  const Result c = simulate(cfg, o);
  EXPECT_NE(a.max_path_delay, c.max_path_delay);
}

TEST(Simulator, RandomizedSizesStayWithinAnalyticBounds) {
  const TrafficConfig cfg = config::sample_config();
  Options random_sizes;
  random_sizes.randomize_sizes = true;
  random_sizes.seed = 3;
  const Result rs = simulate(cfg, random_sizes);
  const auto nc = netcalc::analyze(cfg);
  for (std::size_t p = 0; p < rs.max_path_delay.size(); ++p) {
    EXPECT_LE(rs.max_path_delay[p], nc.path_bounds[p] + 1e-6);
    EXPECT_GT(rs.max_path_delay[p], 0.0);
  }
}

TEST(Simulator, MeanNeverExceedsMax) {
  const TrafficConfig cfg = config::illustrative_config();
  Options o;
  o.phasing = Phasing::kRandom;
  o.seed = 11;
  const Result r = simulate(cfg, o);
  for (std::size_t p = 0; p < r.max_path_delay.size(); ++p) {
    EXPECT_LE(r.mean_path_delay[p], r.max_path_delay[p] + 1e-9);
    EXPECT_GT(r.max_path_delay[p], 0.0) << "every path must deliver frames";
  }
}

TEST(Simulator, MulticastDeliversToEveryDestination) {
  const TrafficConfig cfg = config::illustrative_config();
  Options o;
  o.horizon = microseconds_from_ms(200.0);
  const Result r = simulate(cfg, o);
  const VlId v6 = *cfg.find_vl("v6");
  EXPECT_GT(r.max_delay_for(cfg, PathRef{v6, 0}), 0.0);
  EXPECT_GT(r.max_delay_for(cfg, PathRef{v6, 1}), 0.0);
}

TEST(Simulator, AdversarialOffsetsAreWellFormed) {
  const TrafficConfig cfg = config::sample_config();
  const auto offsets = adversarial_offsets(cfg, PathRef{*cfg.find_vl("v1"), 0});
  ASSERT_EQ(offsets.size(), cfg.vl_count());
  for (Microseconds off : offsets) EXPECT_GE(off, 0.0);
}

TEST(Simulator, AdversarialPhasingDominatesMostRandomOnes) {
  const TrafficConfig cfg = config::sample_config();
  const PathRef target{*cfg.find_vl("v4"), 0};
  Options adv;
  adv.phasing = Phasing::kExplicit;
  adv.offsets = adversarial_offsets(cfg, target);
  const Microseconds adv_delay = simulate(cfg, adv).max_delay_for(cfg, target);
  Options rnd;
  rnd.phasing = Phasing::kRandom;
  int not_worse = 0;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    rnd.seed = s;
    if (simulate(cfg, rnd).max_delay_for(cfg, target) <= adv_delay + 1e-9) {
      ++not_worse;
    }
  }
  EXPECT_GE(not_worse, 8);
}

TEST(Simulator, RejectsNonPositiveHorizon) {
  const TrafficConfig cfg = config::sample_config();
  Options o;
  o.horizon = 0.0;
  EXPECT_THROW(simulate(cfg, o), Error);
}

TEST(Simulator, MaxDelayForUnknownPathThrows) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = simulate(cfg, Options{});
  EXPECT_THROW(r.max_delay_for(cfg, PathRef{42, 0}), Error);
}

}  // namespace
}  // namespace afdx::sim

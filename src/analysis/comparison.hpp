// Side-by-side evaluation of the two delay-analysis methods, and the
// statistics reported in the paper's Table I and Figures 5 and 6.
//
// The *combined* method is the paper's recommendation: keep, for every VL
// path, the tightest of the two computed upper bounds -- it is never worse
// than network calculus and captures nearly all of the trajectory benefit.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "trajectory/trajectory_analyzer.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::analysis {

/// Bounds of both methods (and their per-path minimum), aligned with
/// TrafficConfig::all_paths().
struct Comparison {
  std::vector<Microseconds> netcalc;
  std::vector<Microseconds> trajectory;
  std::vector<Microseconds> combined;
};

/// Runs both analyzers on the configuration through the analysis engine.
/// The default engine options keep the legacy single-threaded path
/// (threads = 1); pass engine_options.threads = 0 to use every hardware
/// thread -- parallel and serial runs are bit-identical.
[[nodiscard]] Comparison compare(const TrafficConfig& config,
                                 const netcalc::Options& nc_options = {},
                                 const trajectory::Options& tj_options = {},
                                 const engine::Options& engine_options = {});

/// Relative-benefit statistics of `candidate` against `reference`:
/// per-path benefit = (reference - candidate) / reference.
struct BenefitStats {
  double mean = 0.0;
  double max = 0.0;
  double min = 0.0;
  /// Fraction of paths where the candidate bound is strictly tighter.
  double wins_fraction = 0.0;
  /// Paths included in the statistics (pairs with a positive reference
  /// bound; non-positive references cannot express a relative benefit and
  /// are skipped).
  std::size_t paths = 0;
};

/// Throws on a size mismatch; empty input (or no positive reference
/// entry) yields an all-zero BenefitStats instead of dividing by zero.
[[nodiscard]] BenefitStats benefit_stats(
    const std::vector<Microseconds>& reference,
    const std::vector<Microseconds>& candidate);

/// Pessimism of analytic bounds against a per-path *lower* bound on the
/// true worst case (typically the best simulated schedule): per-path ratio
/// bound / lower_bound. A sound analysis has every ratio >= 1; how far
/// above 1 measures the cost of the guarantee. Paths whose lower bound is
/// non-positive (no frame observed) are skipped.
struct PessimismStats {
  double mean = 0.0;
  double max = 0.0;
  /// The smallest ratio -- below 1 it witnesses a soundness violation.
  double min = 0.0;
  /// Paths included (positive lower bound).
  std::size_t paths = 0;
};

/// Throws on a size mismatch; no positive lower-bound entry yields an
/// all-zero PessimismStats.
[[nodiscard]] PessimismStats pessimism_stats(
    const std::vector<Microseconds>& lower_bounds,
    const std::vector<Microseconds>& bounds);

/// Figure 5: mean benefit of the trajectory bound over the WCNC bound,
/// aggregated per BAG value of the path's VL. Returns (BAG, mean benefit)
/// sorted by BAG; BAG values with no path are omitted.
[[nodiscard]] std::vector<std::pair<Microseconds, double>> mean_benefit_by_bag(
    const TrafficConfig& config, const Comparison& comparison);

/// Figure 6: fraction of VL paths for which the WCNC bound is at least as
/// tight as the trajectory bound, aggregated per s_max bucket of the path's
/// VL. Returns (bucket upper edge in bytes, fraction) sorted by size.
[[nodiscard]] std::vector<std::pair<Bytes, double>> wcnc_win_ratio_by_smax(
    const TrafficConfig& config, const Comparison& comparison,
    Bytes bucket_width = 100);

/// One hop of a path's WCNC delay decomposition.
struct HopDelay {
  LinkId port = kInvalidLink;
  /// Names of the port's endpoints, "source>dest".
  std::string port_name;
  /// The WCNC delay bound of this hop for the path's priority class.
  Microseconds delay = 0.0;
};

/// Decomposes a path's WCNC bound into its per-port contributions (their
/// sum is the path bound) -- the "where is the latency spent" view network
/// integrators work with.
[[nodiscard]] std::vector<HopDelay> path_breakdown(
    const TrafficConfig& config, const netcalc::Result& result, PathRef ref);

}  // namespace afdx::analysis

# Empty dependencies file for afdx_gen.
# This may be replaced when dependencies are built.

#include "vl/traffic_config.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace afdx {

// ---------------------------------------------------------------------------
// VlRoute

VlRoute::VlRoute(const Network& net, const VirtualLink& vl,
                 std::vector<std::vector<LinkId>> paths)
    : paths_(std::move(paths)) {
  AFDX_REQUIRE(paths_.size() == vl.destinations.size(),
               "VL " + vl.name + ": route must have one path per destination");

  for (std::size_t d = 0; d < paths_.size(); ++d) {
    const std::vector<LinkId>& p = paths_[d];
    AFDX_REQUIRE(!p.empty(), "VL " + vl.name + ": empty path");
    AFDX_REQUIRE(net.link(p.front()).source == vl.source,
                 "VL " + vl.name + ": path must start at the source");
    AFDX_REQUIRE(net.link(p.back()).dest == vl.destinations[d],
                 "VL " + vl.name + ": path must end at its destination");
    LinkId prev = kInvalidLink;
    for (LinkId l : p) {
      if (prev != kInvalidLink) {
        AFDX_REQUIRE(net.link(prev).dest == net.link(l).source,
                     "VL " + vl.name + ": discontinuous path");
        AFDX_REQUIRE(net.is_switch(net.link(l).source),
                     "VL " + vl.name + ": path traverses an end system");
      }
      auto [it, inserted] = predecessor_.try_emplace(l, prev);
      if (inserted) {
        crossed_links_.push_back(l);
      } else {
        // The link is shared with a previously registered path: the tree
        // property demands the same predecessor.
        AFDX_REQUIRE(it->second == prev,
                     "VL " + vl.name +
                         ": multicast paths do not form a tree (link reached "
                         "via two different predecessors)");
      }
      prev = l;
    }
  }
}

LinkId VlRoute::predecessor(LinkId l) const {
  auto it = predecessor_.find(l);
  AFDX_ASSERT(it != predecessor_.end(), "predecessor: VL does not cross link");
  return it->second;
}

std::vector<LinkId> VlRoute::prefix_before(std::uint32_t dest_index,
                                           LinkId l) const {
  AFDX_ASSERT(dest_index < paths_.size(), "prefix_before: bad destination");
  const std::vector<LinkId>& p = paths_[dest_index];
  std::vector<LinkId> prefix;
  for (LinkId x : p) {
    if (x == l) return prefix;
    prefix.push_back(x);
  }
  AFDX_ASSERT(false, "prefix_before: link not on path");
  return prefix;  // unreachable
}

// ---------------------------------------------------------------------------
// TrafficConfig

TrafficConfig::TrafficConfig(Network network, std::vector<VirtualLink> vls)
    : net_(std::move(network)), vls_(std::move(vls)) {
  build({});
}

TrafficConfig::TrafficConfig(Network network, std::vector<VirtualLink> vls,
                             std::vector<std::vector<std::vector<LinkId>>> routes)
    : net_(std::move(network)), vls_(std::move(vls)) {
  build(std::move(routes));
}

void TrafficConfig::build(std::vector<std::vector<std::vector<LinkId>>> routes) {
  net_.validate();
  AFDX_REQUIRE(routes.empty() || routes.size() == vls_.size(),
               "explicit routes must cover every VL");

  link_vls_.assign(net_.link_count(), {});
  routes_.reserve(vls_.size());

  for (VlId id = 0; id < vls_.size(); ++id) {
    const VirtualLink& vl = vls_[id];
    vl.validate();
    AFDX_REQUIRE(net_.is_end_system(vl.source),
                 "VL " + vl.name + ": source must be an end system");

    std::vector<std::vector<LinkId>> paths(vl.destinations.size());
    for (std::size_t d = 0; d < vl.destinations.size(); ++d) {
      const NodeId dest = vl.destinations[d];
      AFDX_REQUIRE(net_.is_end_system(dest),
                   "VL " + vl.name + ": destination must be an end system");
      if (!routes.empty() && !routes[id].empty() && !routes[id][d].empty()) {
        paths[d] = routes[id][d];
      } else {
        auto sp = net_.shortest_path(vl.source, dest);
        AFDX_REQUIRE(sp.has_value(), "VL " + vl.name +
                                         ": destination " +
                                         net_.node(dest).name + " unreachable");
        paths[d] = std::move(*sp);
      }
    }
    routes_.emplace_back(net_, vl, std::move(paths));

    for (LinkId l : routes_.back().crossed_links()) {
      link_vls_[l].push_back(id);
    }
    for (std::uint32_t d = 0; d < vl.destinations.size(); ++d) {
      all_paths_.push_back(VlPath{id, d, routes_.back().paths()[d]});
    }
  }
}

const VirtualLink& TrafficConfig::vl(VlId id) const {
  AFDX_REQUIRE(id < vls_.size(), "VL id out of range");
  return vls_[id];
}

const VlRoute& TrafficConfig::route(VlId id) const {
  AFDX_REQUIRE(id < routes_.size(), "VL id out of range");
  return routes_[id];
}

std::optional<VlId> TrafficConfig::find_vl(const std::string& name) const {
  for (VlId i = 0; i < vls_.size(); ++i) {
    if (vls_[i].name == name) return i;
  }
  return std::nullopt;
}

const VlPath& TrafficConfig::path(PathRef ref) const {
  for (const VlPath& p : all_paths_) {
    if (p.vl == ref.vl && p.dest_index == ref.dest_index) return p;
  }
  throw Error("path not found");
}

const std::vector<VlId>& TrafficConfig::vls_on_link(LinkId l) const {
  AFDX_REQUIRE(l < link_vls_.size(), "link id out of range");
  return link_vls_[l];
}

double TrafficConfig::utilization(LinkId l) const {
  const Link& link = net_.link(l);
  double total = 0.0;
  for (VlId id : vls_on_link(l)) total += vls_[id].rate_bits_per_us();
  return total / link.rate;
}

double TrafficConfig::max_utilization() const {
  double worst = 0.0;
  for (LinkId l = 0; l < net_.link_count(); ++l) {
    worst = std::max(worst, utilization(l));
  }
  return worst;
}

bool TrafficConfig::stable() const {
  return max_utilization() <= 1.0 + kEpsilon;
}

}  // namespace afdx

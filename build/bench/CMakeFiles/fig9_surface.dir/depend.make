# Empty dependencies file for fig9_surface.
# This may be replaced when dependencies are built.

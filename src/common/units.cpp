#include "common/units.hpp"

#include <cstdio>

namespace afdx {

std::string format_us(Microseconds t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f us", t);
  return buf;
}

std::string format_percent(double ratio) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %%", ratio * 100.0);
  return buf;
}

}  // namespace afdx

#include "obs/bench_json.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the key just written
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ",";
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ << "{";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ << "[";
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ << "\"";
  write_escaped(k);
  out_ << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ << "\"";
  write_escaped(v);
  out_ << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  out_ << tmp.str();
  return *this;
}

JsonWriter& JsonWriter::write_uint(std::uint64_t v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::write_int(std::int64_t v) {
  comma();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\t': out_ << "\\t"; break;
      case '\r': out_ << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out_ << c;
        }
    }
  }
}

OverheadCheck measure_span_overhead(std::size_t iterations) {
  OverheadCheck check;
  check.iterations = iterations;
  if (iterations == 0) return check;

  Tracer& tracer = Tracer::instance();
  const bool was_enabled = tracing_enabled();
  const std::size_t spans_before = tracer.span_count();

  using clock = std::chrono::steady_clock;
  const auto time_loop = [&] {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      AFDX_TRACE_SPAN("obs.selfcheck", "obs");
    }
    const auto t1 = clock::now();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                   .count()) /
           static_cast<double>(iterations);
  };

  tracer.disable();
  check.disabled_ns_per_span = time_loop();
  tracer.enable();
  check.enabled_ns_per_span = time_loop();
  if (!was_enabled) tracer.disable();

  // Don't let calibration spans pollute a real trace: if the buffers were
  // clean before, drop everything we just recorded.
  if (spans_before == 0) tracer.clear();
  return check;
}

void write_registry_json(JsonWriter& w) {
  w.key("counters").begin_object();
  for (const CounterSnapshot& c : registry().counters()) {
    w.field(c.name, c.value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : registry().histograms()) {
    w.key(h.name).begin_object();
    w.field("count", h.count)
        .field("sum", h.sum)
        .field("min", h.min)
        .field("max", h.max)
        .field("mean", h.mean);
    w.end_object();
  }
  w.end_object();
}

}  // namespace afdx::obs

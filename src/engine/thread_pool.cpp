#include "engine/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace afdx::engine {

int ThreadPool::resolve_thread_count(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  AFDX_REQUIRE(threads_ >= 1, "ThreadPool: thread count must be >= 1");
  executed_.assign(static_cast<std::size_t>(threads_), 0);
  failures_.assign(static_cast<std::size_t>(threads_), Failure{});
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::shard(std::size_t n,
                                                      int worker) const {
  const auto t = static_cast<std::size_t>(threads_);
  const auto w = static_cast<std::size_t>(worker);
  return {n * w / t, n * (w + 1) / t};
}

void ThreadPool::run_shard(std::size_t n, int worker) {
  const auto [begin, end] = shard(n, worker);
  const std::function<void(std::size_t, int)>* body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body = body_;
  }
  std::size_t done = 0;
  Failure failure;
  for (std::size_t i = begin; i < end; ++i) {
    try {
      (*body)(i, worker);
      ++done;
    } catch (...) {
      // Abandon the rest of the block: a serial loop would not have
      // reached those indices either.
      failure = Failure{i, std::current_exception()};
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  executed_[static_cast<std::size_t>(worker)] += done;
  failures_[static_cast<std::size_t>(worker)] = failure;
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || batch_seq_ != seen_seq; });
      if (stopping_) return;
      seen_seq = batch_seq_;
      n = batch_n_;
    }
    run_shard(n, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  if (threads_ == 1) {
    // Legacy path: no synchronization, plain ascending loop.
    std::size_t done = 0;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        body(i, 0);
        ++done;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      executed_[0] += done;
      throw;
    }
    std::lock_guard<std::mutex> lock(mu_);
    executed_[0] += done;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    batch_n_ = n;
    pending_workers_ = threads_ - 1;
    for (Failure& f : failures_) f = Failure{};
    ++batch_seq_;
  }
  start_cv_.notify_all();
  run_shard(n, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  body_ = nullptr;

  // Rethrow the failure a serial loop would have hit first.
  const Failure* first = nullptr;
  for (const Failure& f : failures_) {
    if (f.error && (first == nullptr || f.index < first->index)) first = &f;
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

std::vector<ThreadPool::TaskFailure> ThreadPool::parallel_for_contained(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  std::mutex failures_mu;
  std::vector<TaskFailure> failures;
  const auto record = [&](std::size_t i, std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(TaskFailure{i, std::move(message)});
  };
  // The wrapper never lets an exception reach the batch machinery, so no
  // shard is ever abandoned and parallel_for cannot rethrow.
  parallel_for(n, [&](std::size_t i, int worker) {
    try {
      body(i, worker);
    } catch (const std::exception& e) {
      record(i, e.what());
    } catch (...) {
      record(i, "unknown exception");
    }
  });
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

std::vector<std::size_t> ThreadPool::tasks_per_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

}  // namespace afdx::engine


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minplus/curve.cpp" "src/minplus/CMakeFiles/afdx_minplus.dir/curve.cpp.o" "gcc" "src/minplus/CMakeFiles/afdx_minplus.dir/curve.cpp.o.d"
  "/root/repo/src/minplus/operations.cpp" "src/minplus/CMakeFiles/afdx_minplus.dir/operations.cpp.o" "gcc" "src/minplus/CMakeFiles/afdx_minplus.dir/operations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/afdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#!/usr/bin/env bash
# Regenerates the locked golden bounds under tests/golden/ after an
# intentional change to an analyzer. Review the resulting diff carefully:
# every numeric change must be explainable by the code change being made.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target test_golden test_ladder -j >/dev/null

AFDX_REGEN_GOLDEN=1 "$BUILD_DIR"/tests/test_golden
AFDX_REGEN_GOLDEN=1 "$BUILD_DIR"/tests/test_ladder \
    --gtest_filter='LadderGolden.*'
echo "regenerated tests/golden/ -- review with: git diff tests/golden"

#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

namespace afdx::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void write_json_escaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

void Tracer::enable() noexcept {
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() noexcept {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // shared_ptr keeps the buffer alive in `buffers_` after the owning thread
  // exits, so spans from short-lived pool workers survive until export.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    b->tid = next_tid_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void Tracer::record(const char* name, const char* category, double start_us,
                    double duration_us) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.spans.size() >= kMaxSpansPerThread) {
    ++buf.dropped;
    return;
  }
  buf.spans.push_back(SpanRecord{name, category, start_us, duration_us});
}

double Tracer::now_us() const noexcept {
  return static_cast<double>(steady_now_ns() - epoch_ns_) * 1e-3;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t total = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    total += b->spans.size();
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    total += b->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->spans.clear();
    b->dropped = 0;
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> all;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& b : buffers_) {
      std::lock_guard<std::mutex> blk(b->mu);
      all.insert(all.end(), b->spans.begin(), b->spans.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return all;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  // Fixed-point microseconds: default float formatting would round long
  // timestamps to 6 significant digits and fold nearby spans together.
  const std::ios_base::fmtflags flags = out.flags();
  const std::streamsize precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& b : buffers_) {
    std::lock_guard<std::mutex> blk(b->mu);
    for (const SpanRecord& s : b->spans) {
      if (!first) out << ",";
      first = false;
      out << "\n{\"name\":\"";
      write_json_escaped(out, s.name);
      out << "\",\"cat\":\"";
      write_json_escaped(out, s.category);
      out << "\",\"ph\":\"X\",\"ts\":" << s.start_us
          << ",\"dur\":" << s.duration_us << ",\"pid\":1,\"tid\":" << b->tid
          << "}";
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  out.flags(flags);
  out.precision(precision);
}

double ScopedSpan::start_now() noexcept { return Tracer::instance().now_us(); }

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  Tracer& tracer = Tracer::instance();
  const double end_us = tracer.now_us();
  tracer.record(name_, category_, start_us_, end_us - start_us_);
}

}  // namespace afdx::obs

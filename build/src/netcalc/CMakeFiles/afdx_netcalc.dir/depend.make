# Empty dependencies file for afdx_netcalc.
# This may be replaced when dependencies are built.

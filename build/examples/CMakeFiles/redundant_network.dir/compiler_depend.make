# Empty compiler generated dependencies file for redundant_network.
# This may be replaced when dependencies are built.

// E5 -- Figure 7 of the paper: effect of s_max(v1) on the end-to-end delay
// bounds of v1 on the sample configuration (both methods).
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E5 / Figure 7: bounds on v1 while sweeping s_max(v1), other VLs "
         "at 500 B\n\n";

  report::Table t({"s_max(v1) (B)", "Trajectory (us)", "WCNC (us)",
                   "tightest"});
  report::Series traj_series, nc_series;
  traj_series.name = "Trajectory";
  traj_series.marker = 'T';
  nc_series.name = "WCNC";
  nc_series.marker = 'N';

  for (Bytes s = 100; s <= 1500; s += 100) {
    config::SampleOptions o;
    o.s_max_v1 = s;
    const TrafficConfig cfg = config::sample_config(o);
    const analysis::Comparison c = analysis::compare(cfg);
    t.add_row({std::to_string(s), report::fmt(c.trajectory[0]),
               report::fmt(c.netcalc[0]),
               c.trajectory[0] < c.netcalc[0] ? "trajectory" : "WCNC"});
    traj_series.points.push_back({static_cast<double>(s), c.trajectory[0]});
    nc_series.points.push_back({static_cast<double>(s), c.netcalc[0]});
  }
  t.print(out);
  out << "\n";
  report::line_chart(out, {traj_series, nc_series}, 64, 16);
  out << "\npaper shape: the two curves intersect around the other VLs'\n"
         "frame size (500 B); below it WCNC is tighter and the gap widens\n"
         "as s_max(v1) decreases, above it the trajectory bound stays\n"
         "slightly tighter.\n";
}

void BM_SweepPoint(benchmark::State& state) {
  config::SampleOptions o;
  o.s_max_v1 = static_cast<Bytes>(state.range(0));
  const TrafficConfig cfg = config::sample_config(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compare(cfg));
  }
}
BENCHMARK(BM_SweepPoint)->Arg(100)->Arg(500)->Arg(1500);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

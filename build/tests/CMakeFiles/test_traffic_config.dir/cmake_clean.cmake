file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_config.dir/test_traffic_config.cpp.o"
  "CMakeFiles/test_traffic_config.dir/test_traffic_config.cpp.o.d"
  "test_traffic_config"
  "test_traffic_config.pdb"
  "test_traffic_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Tests for the reporting helpers (tables and ASCII charts).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace afdx::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Both data lines end with the value, aligned after padded names.
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, FmtFormatsDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

TEST(LineChart, RendersMarkersAndLegend) {
  Series s;
  s.name = "bound";
  s.marker = '*';
  for (double x = 1.0; x <= 10.0; x += 1.0) s.points.push_back({x, x * x});
  std::ostringstream os;
  line_chart(os, {s});
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("bound"), std::string::npos);
  EXPECT_NE(out.find("1.0"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(LineChart, SupportsLogX) {
  Series s;
  s.name = "bag-sweep";
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) s.points.push_back({x, x});
  std::ostringstream os;
  line_chart(os, {s}, 64, 12, /*log_x=*/true);
  EXPECT_NE(os.str().find("(log x)"), std::string::npos);
}

TEST(LineChart, RejectsBadInput) {
  std::ostringstream os;
  EXPECT_THROW(line_chart(os, {}), Error);  // no points at all
  Series empty;
  empty.name = "empty";
  EXPECT_THROW(line_chart(os, {empty}), Error);
  Series neg;
  neg.points.push_back({-1.0, 1.0});
  EXPECT_THROW(line_chart(os, {neg}, 64, 12, /*log_x=*/true), Error);
  Series ok;
  ok.points.push_back({1.0, 1.0});
  EXPECT_THROW(line_chart(os, {ok}, 4, 2), Error);  // grid too small
}

TEST(LineChart, TwoSeriesBothVisible) {
  Series a, b;
  a.name = "traj";
  a.marker = 'T';
  b.name = "wcnc";
  b.marker = 'N';
  for (double x = 0.0; x < 5.0; ++x) {
    a.points.push_back({x, x});
    b.points.push_back({x, 2 * x + 1});
  }
  std::ostringstream os;
  line_chart(os, {a, b});
  EXPECT_NE(os.str().find('T'), std::string::npos);
  EXPECT_NE(os.str().find('N'), std::string::npos);
}

TEST(SignedHeatmap, ShadesSigns) {
  std::ostringstream os;
  signed_heatmap(os, {{5.0, -5.0}, {0.0, 2.0}}, {"row1", "row2"},
                 {"c1", "c2"});
  const std::string out = os.str();
  EXPECT_NE(out.find('#'), std::string::npos);   // strong positive
  EXPECT_NE(out.find('%'), std::string::npos);   // strong negative
  EXPECT_NE(out.find('0'), std::string::npos);   // near-zero
  EXPECT_NE(out.find("row1"), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
}

TEST(SignedHeatmap, ValidatesShape) {
  std::ostringstream os;
  EXPECT_THROW(signed_heatmap(os, {}, {}, {}), Error);
  EXPECT_THROW(signed_heatmap(os, {{1.0}}, {"r1", "r2"}, {"c1"}), Error);
  EXPECT_THROW(signed_heatmap(os, {{1.0, 2.0}}, {"r1"}, {"c1"}), Error);
}

TEST(SignedHeatmap, AllZeroMatrixIsStable) {
  std::ostringstream os;
  signed_heatmap(os, {{0.0, 0.0}}, {"r"}, {"a", "b"});
  EXPECT_NE(os.str().find("00"), std::string::npos);
}

}  // namespace
}  // namespace afdx::report

file(REMOVE_RECURSE
  "CMakeFiles/afdx_common.dir/error.cpp.o"
  "CMakeFiles/afdx_common.dir/error.cpp.o.d"
  "CMakeFiles/afdx_common.dir/rng.cpp.o"
  "CMakeFiles/afdx_common.dir/rng.cpp.o.d"
  "CMakeFiles/afdx_common.dir/units.cpp.o"
  "CMakeFiles/afdx_common.dir/units.cpp.o.d"
  "libafdx_common.a"
  "libafdx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

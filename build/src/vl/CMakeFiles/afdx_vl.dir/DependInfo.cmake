
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vl/traffic_config.cpp" "src/vl/CMakeFiles/afdx_vl.dir/traffic_config.cpp.o" "gcc" "src/vl/CMakeFiles/afdx_vl.dir/traffic_config.cpp.o.d"
  "/root/repo/src/vl/virtual_link.cpp" "src/vl/CMakeFiles/afdx_vl.dir/virtual_link.cpp.o" "gcc" "src/vl/CMakeFiles/afdx_vl.dir/virtual_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/afdx_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/afdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Plain-text tables for the benchmark harnesses: each bench prints the rows
// the paper's tables/figures report, via this small formatter, plus a CSV
// form for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace afdx::report {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-padded columns.
  void print(std::ostream& out) const;

  /// Renders as CSV (comma-separated, no quoting -- cells must not contain
  /// commas).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

}  // namespace afdx::report

// Campaign checkpoint files: resume an interrupted fuzz run.
//
// A checkpoint persists every *completed* campaign outcome of a run (its
// counters, pessimism statistics and violation records -- everything the
// JSON report derives from, wall times aside). An interrupted run flushes
// a checkpoint on SIGINT/SIGTERM or deadline expiry; the next invocation
// with the same (seed, campaigns) loads it, replays the recorded outcomes
// into their slots and only executes the campaigns that never ran.
// Campaign specs are NOT stored: spec_for() is a pure function of (grid,
// seed, index), so they are recomputed on resume -- a checkpoint can never
// smuggle in a stale generator spec.
//
// Format: line-oriented `key=value` records ("afdx-fuzz-checkpoint v1"
// header; `run`, `outcome`, `pess` and `viol` lines), with free-text
// values percent-escaped so every record stays one line. Doubles are
// written with max_digits10 and round-trip exactly; a resumed report is
// bit-identical (timing aside) to the uninterrupted one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "valid/campaign.hpp"

namespace afdx::valid {

/// The restartable state of one interrupted campaign run.
struct Checkpoint {
  std::uint64_t seed = 0;
  std::size_t campaigns = 0;
  /// Completed (or generator-skipped) outcomes, in campaign-index order;
  /// interrupted campaigns are never recorded.
  std::vector<CampaignOutcome> outcomes;
};

/// Writes the completed outcomes of `report` to `path` (atomically: a temp
/// file is renamed into place, so a crash mid-write never corrupts an
/// existing checkpoint). Throws afdx::Error when the file cannot be
/// written.
void write_checkpoint(const CampaignReport& report, const std::string& path);

/// Reads a checkpoint back. Returns nullopt when the file does not exist;
/// throws afdx::Error on a malformed or wrong-version file.
[[nodiscard]] std::optional<Checkpoint> read_checkpoint(
    const std::string& path);

}  // namespace afdx::valid

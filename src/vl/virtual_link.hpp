// ARINC 664 Virtual Link definition.
//
// A Virtual Link (VL) is a statically defined, unidirectional, mono-emitter
// multicast flow. Its traffic contract is the pair (BAG, s_max):
//   * BAG — Bandwidth Allocation Gap, the minimum separation between two
//     consecutive frames of the VL at the source end system;
//   * s_min / s_max — minimum / maximum Ethernet frame size in bytes.
// The contract induces the leaky-bucket envelope used by network calculus
// (burst 8*s_max bits, rate 8*s_max/BAG) and the sporadic flow model used by
// the trajectory approach (period BAG, per-node transmission time
// 8*s_max/R).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "topology/network.hpp"

namespace afdx {

/// Index of a virtual link inside a TrafficConfig.
using VlId = std::uint32_t;

inline constexpr VlId kInvalidVl = static_cast<VlId>(-1);

/// Minimum / maximum legal Ethernet frame sizes on an AFDX network (bytes,
/// including headers and CRC, per ARINC 664 part 7).
inline constexpr Bytes kMinEthernetFrame = 64;
inline constexpr Bytes kMaxEthernetFrame = 1518;

/// Static definition of a virtual link.
struct VirtualLink {
  std::string name;
  /// Source end system (the unique emitter).
  NodeId source = kInvalidNode;
  /// Destination end systems (>= 1; more than one makes the VL multicast).
  std::vector<NodeId> destinations;
  /// Bandwidth Allocation Gap: minimum inter-frame time at the source.
  Microseconds bag = 0.0;
  /// Frame size bounds in bytes.
  Bytes s_min = kMinEthernetFrame;
  Bytes s_max = kMinEthernetFrame;
  /// Maximum release jitter at the source end system: a frame nominally due
  /// at k*BAG may be enqueued anywhere in [k*BAG, k*BAG + jitter]. Zero for
  /// an ideal shaping unit (the paper's model); companion papers study the
  /// effect of end-system scheduling with non-zero jitter.
  Microseconds max_release_jitter = 0.0;
  /// Static priority class: 0 is the highest. With a single class every
  /// port is plain FIFO (the paper's model); with several, ports serve the
  /// non-empty queue of the smallest value, non-preemptively, FIFO within a
  /// class (the SPQ extension studied in the authors' companion papers).
  std::uint8_t priority = 0;

  /// Leaky-bucket burst: the largest frame, in bits.
  [[nodiscard]] Bits burst_bits() const noexcept { return bits_from_bytes(s_max); }

  /// Leaky-bucket long-term rate in bits/us.
  [[nodiscard]] BitsPerMicrosecond rate_bits_per_us() const noexcept {
    return burst_bits() / bag;
  }

  /// Transmission time of the largest frame on a link of rate `link_rate`.
  [[nodiscard]] Microseconds max_transmission_time(BitsPerMicrosecond link_rate) const noexcept {
    return transmission_time(burst_bits(), link_rate);
  }

  /// Transmission time of the smallest frame on a link of rate `link_rate`.
  [[nodiscard]] Microseconds min_transmission_time(BitsPerMicrosecond link_rate) const noexcept {
    return transmission_time(bits_from_bytes(s_min), link_rate);
  }

  /// Checks the contract fields (positive BAG, frame-size ordering and legal
  /// Ethernet range); throws afdx::Error on violation.
  void validate() const;
};

}  // namespace afdx

// Shared scaffolding for the experiment benches. Every bench binary
// reproduces one table/figure of the paper: it first prints the
// reproduction (tables / ASCII charts), then runs its google-benchmark
// timings of the underlying analyses.
//
// AFDX_BENCH_MAIN(run) expands to a main() that prints the experiment via
// `run(std::cout)` and then executes the registered benchmarks.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#define AFDX_BENCH_MAIN(run_experiment)                  \
  int main(int argc, char** argv) {                      \
    run_experiment(std::cout);                           \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    std::cout << "\n-- timings "                         \
                 "------------------------------------------------\n"; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    return 0;                                            \
  }

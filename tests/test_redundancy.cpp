// Tests for the dual-network redundancy analysis.
#include "redundancy/redundancy.hpp"

#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "config/serialization.hpp"
#include "sim/simulator.hpp"

namespace afdx::redundancy {
namespace {

/// An exact copy of the sample configuration (network B mirrors A).
TrafficConfig mirrored_sample() {
  return config::load_config_string(
      config::save_config_string(config::sample_config()));
}

/// Sample configuration with a slower switch latency (a degraded network
/// B: same wiring and VLs, higher technological latency).
TrafficConfig degraded_sample() {
  config::SampleOptions o;
  o.switch_latency = 40.0;
  return config::sample_config(o);
}

TEST(Redundancy, IdenticalNetworksGiveBoundAndPositiveSkew) {
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = mirrored_sample();
  const auto ca = analysis::compare(a);
  const auto cb = analysis::compare(b);
  const Result r = analyze(a, ca.combined, b, cb.combined);

  ASSERT_EQ(r.paths.size(), a.all_paths().size());
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.paths[i].first_arrival_bound, ca.combined[i]);
    // Skew = bound - floor on identical networks.
    const Microseconds floor = path_floor(a, a.all_paths()[i]);
    EXPECT_NEAR(r.paths[i].skew_max, ca.combined[i] - floor, 1e-9);
    EXPECT_GE(r.paths[i].skew_max, 0.0);
    // Contended paths (v1..v4) have real queueing slack, so a real skew.
    if (i < 4) EXPECT_GT(r.paths[i].skew_max, 0.0);
  }
}

TEST(Redundancy, HandComputedSkewOnIsolatedFlow) {
  // v5 is alone: bound 272?? no -- v5: 96 us on network A. Floor of v5:
  // two hops of 40 us plus one switch latency of 16 us = 96 us, so the skew
  // on identical networks is exactly 0 for a contention-free flow.
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = mirrored_sample();
  const auto ca = analysis::compare(a);
  const auto cb = analysis::compare(b);
  const Result r = analyze(a, ca.combined, b, cb.combined);
  const VlId v5 = *a.find_vl("v5");
  EXPECT_NEAR(r.for_path(a, PathRef{v5, 0}).skew_max, 0.0, 1e-9);
  EXPECT_NEAR(r.for_path(a, PathRef{v5, 0}).first_arrival_bound, 96.0, 1e-9);
}

TEST(Redundancy, AsymmetricNetworksTakeTheBetterBoundAndWiderSkew) {
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = degraded_sample();  // 40 us switch latency
  const auto ca = analysis::compare(a);
  const auto cb = analysis::compare(b);
  const Result r = analyze(a, ca.combined, b, cb.combined);
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    // The faster network A dominates the first arrival.
    EXPECT_DOUBLE_EQ(r.paths[i].first_arrival_bound, ca.combined[i]);
    // The slow copy may lag: skew driven by network B's bound against A's
    // floor.
    EXPECT_NEAR(r.paths[i].skew_max,
                cb.combined[i] - path_floor(a, a.all_paths()[i]), 1e-9);
  }
}

TEST(Redundancy, PathFloorHandComputed) {
  const TrafficConfig a = config::sample_config();
  const VlId v1 = *a.find_vl("v1");
  // Three 40 us hops and two 16 us switch latencies.
  EXPECT_NEAR(path_floor(a, a.path(PathRef{v1, 0})), 3 * 40.0 + 2 * 16.0,
              1e-9);
}

TEST(Redundancy, SkewBoundsObservedSkewInSimulation) {
  // Simulate both identical networks with different phasings (models the
  // asynchronous A/B switches) and check every observed copy gap.
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = mirrored_sample();
  const auto ca = analysis::compare(a);
  const auto cb = analysis::compare(b);
  const Result r = analyze(a, ca.combined, b, cb.combined);

  sim::Options oa, ob;
  oa.phasing = sim::Phasing::kRandom;
  oa.seed = 3;
  ob.phasing = sim::Phasing::kRandom;
  ob.seed = 9;
  const sim::Result ra = sim::simulate(a, oa);
  const sim::Result rb = sim::simulate(b, ob);
  for (std::size_t i = 0; i < r.paths.size(); ++i) {
    // Conservative observable check: worst copy gap <= max observed delay
    // difference bound.
    const Microseconds gap =
        std::max(ra.max_path_delay[i] - path_floor(b, b.all_paths()[i]),
                 rb.max_path_delay[i] - path_floor(a, a.all_paths()[i]));
    EXPECT_LE(gap, r.paths[i].skew_max + 1e-6);
  }
}

TEST(Redundancy, RejectsMismatchedVlSets) {
  const TrafficConfig a = config::sample_config();
  config::SampleOptions o;
  o.s_max_v1 = 1000;  // different contract on network B
  const TrafficConfig b = config::sample_config(o);
  EXPECT_THROW(require_mirrored_vls(a, b), Error);

  const TrafficConfig c = config::illustrative_config();
  EXPECT_THROW(require_mirrored_vls(a, c), Error);
}

TEST(Redundancy, RejectsMisalignedBounds) {
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = mirrored_sample();
  EXPECT_THROW(analyze(a, {1.0}, b, {1.0}), Error);
}

TEST(Redundancy, ForPathLookupValidates) {
  const TrafficConfig a = config::sample_config();
  const TrafficConfig b = mirrored_sample();
  const auto ca = analysis::compare(a);
  const auto cb = analysis::compare(b);
  const Result r = analyze(a, ca.combined, b, cb.combined);
  EXPECT_THROW(r.for_path(a, PathRef{99, 0}), Error);
}

}  // namespace
}  // namespace afdx::redundancy

// ARINC 664 network redundancy analysis.
//
// The industrial configuration of the paper runs every VL over two
// redundant AFDX sub-networks (A and B): each frame is sent on both, and
// the receiving end system's redundancy management (RM) keeps the first
// valid copy and discards the second. Two figures follow from the per-
// network delay analyses:
//
//   * first-arrival bound — the worst case of min(delay_A, delay_B) is at
//     most min(bound_A, bound_B): the latency the application actually
//     experiences;
//   * worst-case skew — the RM window must absorb the largest possible gap
//     between the two copies of a frame, bounded by
//     max(bound_A - floor_B, bound_B - floor_A), where floor_X is the
//     jitter-free store-and-forward traversal of network X (a frame can
//     never be faster than it).
//
// The two networks must carry the same VL set (same names, contracts,
// sources and destinations); topologies and routes may differ.
#pragma once

#include <vector>

#include "vl/traffic_config.hpp"

namespace afdx::redundancy {

/// Per-VL-path redundancy figures, aligned with TrafficConfig::all_paths()
/// of network A (which network B must mirror path-for-path).
struct PathRedundancy {
  /// Upper bound on the delay of the first copy to arrive.
  Microseconds first_arrival_bound = 0.0;
  /// Upper bound on the arrival gap between the two copies (the minimum
  /// receiver RM window that never drops a legitimate second copy).
  Microseconds skew_max = 0.0;
};

struct Result {
  std::vector<PathRedundancy> paths;

  [[nodiscard]] const PathRedundancy& for_path(const TrafficConfig& config_a,
                                               PathRef ref) const;
};

/// Checks that the two configurations carry the same VL set (names, BAG,
/// frame sizes, priorities, source/destination end-system names, in the
/// same order); throws afdx::Error otherwise.
void require_mirrored_vls(const TrafficConfig& a, const TrafficConfig& b);

/// Jitter-free store-and-forward traversal time of one path (the fastest a
/// maximum-size frame can ever cross it).
[[nodiscard]] Microseconds path_floor(const TrafficConfig& config,
                                      const VlPath& path);

/// The redundancy figures of one path from its two per-network bounds and
/// floors. Tolerates an infinite bound (a copy lost to a fault scenario):
/// the first-arrival bound then degrades to the surviving network's bound
/// and the skew becomes infinite -- the RM window can no longer expect the
/// second copy at all.
[[nodiscard]] PathRedundancy combine(Microseconds bound_a,
                                     Microseconds floor_a,
                                     Microseconds bound_b,
                                     Microseconds floor_b);

/// Combines per-network delay bounds into the redundancy figures.
/// `bounds_a` / `bounds_b` are aligned with the respective
/// TrafficConfig::all_paths() (e.g. the combined bounds of
/// analysis::compare).
[[nodiscard]] Result analyze(const TrafficConfig& a,
                             const std::vector<Microseconds>& bounds_a,
                             const TrafficConfig& b,
                             const std::vector<Microseconds>& bounds_b);

}  // namespace afdx::redundancy

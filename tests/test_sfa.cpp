// Tests for the SFA (pay-bursts-only-once) baseline analyzer.
#include "sfa/sfa_analyzer.hpp"

#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "sim/simulator.hpp"

namespace afdx::sfa {
namespace {

TEST(Sfa, IsolatedFlowIsStoreAndForwardExact) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  const TrafficConfig cfg(std::move(net),
                          {{"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500}});
  // Fluid bound 16 + 40 plus one packetization hop of 40.
  EXPECT_NEAR(analyze(cfg).path_bounds[0], 96.0, 1e-9);
}

TEST(Sfa, SampleConfigHandValues) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  for (int p = 0; p < 4; ++p) EXPECT_NEAR(r.path_bounds[p], 322.64, 0.05);
  EXPECT_NEAR(r.path_bounds[4], 96.0, 1e-9);
}

TEST(Sfa, EndToEndServiceIsConvexAndStartsAtZero) {
  const TrafficConfig cfg = config::sample_config();
  const minplus::Curve service =
      end_to_end_service(cfg, PathRef{*cfg.find_vl("v1"), 0});
  EXPECT_TRUE(service.is_convex());
  EXPECT_TRUE(service.is_non_decreasing());
  EXPECT_NEAR(service.value(0.0), 0.0, 1e-9);
  // The long-term rate left to v1 is the link rate minus the cross rates
  // met along the path; at least R - 3 rho = 97 here.
  EXPECT_GE(service.final_slope(), 97.0 - 1e-9);
}

TEST(Sfa, DominatedByNeitherButSoundOnTheSampleConfig) {
  // The specialized analyses beat SFA on AFDX (the paper's motivation), and
  // SFA must still clear the simulator-achieved 272 us.
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  const analysis::Comparison c = analysis::compare(cfg);
  for (std::size_t i = 0; i < r.path_bounds.size(); ++i) {
    EXPECT_GE(r.path_bounds[i] + 1e-9, c.combined[i]);
  }
  const sim::Result observed = sim::simulate(cfg, {});
  for (std::size_t i = 0; i < r.path_bounds.size(); ++i) {
    EXPECT_LE(observed.max_path_delay[i], r.path_bounds[i] + 1e-6);
  }
}

TEST(Sfa, WorksOnPriorityConfigurations) {
  // The blind-multiplexing residual is scheduling-agnostic: SFA must accept
  // SPQ configurations (which the trajectory analyzer rejects).
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId sink = net.add_end_system("sink");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(e2, s1);
  net.connect(s1, sink);
  VirtualLink hi{"hi", e1, {sink}, microseconds_from_ms(4.0), 64, 500};
  VirtualLink lo{"lo", e2, {sink}, microseconds_from_ms(4.0), 64, 500};
  hi.priority = 0;
  lo.priority = 1;
  const TrafficConfig cfg(std::move(net), {hi, lo});
  const Result r = analyze(cfg);
  const auto nc = netcalc::analyze(cfg).path_bounds;
  // Sound (above the per-class exact bounds is not required, but SFA must
  // cover the worst class since it ignores priorities).
  EXPECT_GE(r.path_bounds[1] + 1e-9, 0.0);
  for (std::size_t i = 0; i < r.path_bounds.size(); ++i) {
    EXPECT_GT(r.path_bounds[i], 0.0);
    // Blind multiplexing covers any service order, so it must dominate the
    // simulated SPQ schedule.
    (void)nc;
  }
  const sim::Result observed = sim::simulate(cfg, {});
  for (std::size_t i = 0; i < r.path_bounds.size(); ++i) {
    EXPECT_LE(observed.max_path_delay[i], r.path_bounds[i] + 1e-6);
  }
}

TEST(Sfa, UnstablePortThrows) {
  Network net;
  const NodeId s1 = net.add_switch("S1");
  const NodeId sink = net.add_end_system("sink");
  net.connect(s1, sink);
  std::vector<VirtualLink> vls;
  for (int i = 0; i < 20; ++i) {
    const NodeId e = net.add_end_system("e" + std::to_string(i));
    net.connect(e, s1);
    vls.push_back({"v" + std::to_string(i), e, {sink},
                   microseconds_from_ms(2.0), 64, 1518});
  }
  const TrafficConfig cfg(std::move(net), std::move(vls));
  EXPECT_THROW(analyze(cfg), Error);
}

TEST(Sfa, BoundForLookup) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  EXPECT_NEAR(r.bound_for(cfg, PathRef{*cfg.find_vl("v5"), 0}), 96.0, 1e-9);
  EXPECT_THROW(r.bound_for(cfg, PathRef{77, 0}), Error);
}

class SfaSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SfaSoundness, DominatesSimulatedSchedules) {
  gen::IndustrialOptions o;
  o.seed = GetParam();
  o.vl_count = 40;
  o.end_system_count = 14;
  o.switch_count = 5;
  const TrafficConfig cfg = gen::industrial_config(o);
  const Result r = analyze(cfg);
  for (std::uint64_t s = 0; s <= 2; ++s) {
    sim::Options so;
    so.phasing = s == 0 ? sim::Phasing::kAligned : sim::Phasing::kRandom;
    so.seed = GetParam() * 31 + s;
    const sim::Result observed = sim::simulate(cfg, so);
    for (std::size_t i = 0; i < r.path_bounds.size(); ++i) {
      EXPECT_LE(observed.max_path_delay[i], r.path_bounds[i] + 1e-6)
          << "path " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfaSoundness,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace afdx::sfa

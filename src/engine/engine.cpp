#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <memory>
#include <limits>
#include <mutex>
#include <optional>
#include <ostream>
#include <unordered_map>

#include <ctime>

#include "common/error.hpp"
#include "engine/incremental.hpp"
#include "netcalc/flow_index.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::engine {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

Microseconds elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Process-wide CPU time (all threads) in microseconds; wall vs cpu is how
/// the metrics expose effective parallelism.
Microseconds cpu_now_us() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<Microseconds>(ts.tv_sec) * 1e6 +
           static_cast<Microseconds>(ts.tv_nsec) * 1e-3;
  }
#endif
  return static_cast<Microseconds>(std::clock()) * 1e6 /
         static_cast<Microseconds>(CLOCKS_PER_SEC);
}

/// Per-phase wall-time histograms in the global observability registry;
/// resolved once, then each observation is an atomic add.
void observe_phase_us(const char* phase, Microseconds wall_us) {
  obs::registry()
      .histogram(std::string("engine.phase.") + phase + ".wall_us")
      .observe(wall_us > 0.0 ? static_cast<std::uint64_t>(wall_us) : 0u);
}

/// Throughput guarded against zero-path / zero-duration runs (a trivial
/// configuration or a clock too coarse for the run must yield 0, not NaN).
double safe_paths_per_second(std::size_t paths, Microseconds wall_us) {
  if (paths == 0 || !(wall_us > 0.0)) return 0.0;
  return static_cast<double>(paths) / (wall_us * 1e-6);
}

/// 0.0 instead of NaN/inf for degenerate inputs, keeping printed metrics
/// sane on trivial runs.
double finite_or_zero(double value) {
  return std::isfinite(value) ? value : 0.0;
}

// Tripwire: trajectory_options_key below must fingerprint EVERY field of
// trajectory::Options, same contract as PortCache::options_key.
static_assert(sizeof(trajectory::Options) == 8,
              "trajectory::Options changed: update trajectory_options_key to "
              "mix in every field, then bump this expected size");

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v,
                      unsigned bytes) noexcept {
  for (unsigned i = 0; i < bytes; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

/// FNV-1a digest of the trajectory option fields prefix bounds depend on.
std::uint64_t trajectory_options_key(const trajectory::Options& o) noexcept {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  h = fnv_mix(h, o.serialization ? 1u : 0u, 1);
  h = fnv_mix(h, o.loose_boundary_packet ? 1u : 0u, 1);
  h = fnv_mix(h,
              static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(o.max_busy_iterations)),
              sizeof(o.max_busy_iterations));
  return h;
}

/// Bitwise digest of a serialization-caps vector. Prefix bounds are pure
/// functions of (configuration, options, caps); together with the options
/// digest this keys the engine's shared prefix caches.
std::uint64_t caps_signature(
    const std::optional<std::vector<Microseconds>>& caps) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  if (!caps.has_value()) return fnv_mix(h, 0x9e3779b97f4a7c15ull, 8);
  h = fnv_mix(h, caps->size(), 8);
  for (Microseconds c : *caps) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(c));
    std::memcpy(&bits, &c, sizeof(bits));
    h = fnv_mix(h, bits, 8);
  }
  return h;
}

}  // namespace

const char* to_string(PathState state) noexcept {
  switch (state) {
    case PathState::kOk:
      return "ok";
    case PathState::kFailed:
      return "failed";
    case PathState::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool RunResult::complete() const noexcept {
  for (const PathStatus& s : status) {
    if (!s.ok()) return false;
  }
  return true;
}

void RunMetrics::print(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "engine: " << threads << " thread" << (threads == 1 ? "" : "s")
      << ", " << paths << " paths, " << std::setprecision(0)
      << finite_or_zero(paths_per_second) << " paths/s\n"
      << std::setprecision(3) << "  wall ms: netcalc "
      << netcalc_wall_us / 1000.0 << " | trajectory "
      << trajectory_wall_us / 1000.0 << " | combine "
      << combine_wall_us / 1000.0 << " | total " << total_wall_us / 1000.0
      << "\n"
      << "  cpu ms: " << total_cpu_us / 1000.0 << " ("
      << std::setprecision(2)
      << finite_or_zero(total_wall_us > 0.0 ? total_cpu_us / total_wall_us
                                            : 0.0)
      << "x parallelism)\n"
      << std::setprecision(3) << "  levels: " << levels << " (max width "
      << max_level_width << ")\n"
      << "  port cache: " << cache.hits << " hits / " << cache.misses
      << " misses (" << std::setprecision(1)
      << finite_or_zero(cache.hit_rate()) * 100.0 << " % hit rate, "
      << cache.seeded << " seeded, " << cache.evicted << " evicted)\n"
      << "  prefix cache: " << prefix.hits << " hits / " << prefix.misses
      << " misses (" << finite_or_zero(prefix.hit_rate()) * 100.0
      << " % hit rate, " << prefix.seeded << " seeded)\n"
      << "  steals: " << steals << "\n";
  if (!shards.empty()) {
    out << "  shards:";
    for (const ShardMetrics& s : shards) {
      out << " [" << s.vls << " vls, " << s.paths << " paths, "
          << finite_or_zero(s.hit_rate()) * 100.0 << " % memo hits]";
    }
    out << "\n";
  }
  if (incremental.attempted) {
    if (incremental.full_fallback) {
      out << "  incremental: full fallback ("
          << incremental.fallback_reason << ")\n";
    } else {
      out << "  incremental: " << incremental.changed_links
          << " changed links -> " << incremental.dirty_ports
          << " dirty ports, " << incremental.seeded_ports
          << " ports + " << incremental.seeded_prefixes
          << " prefixes seeded, " << incremental.transplanted_paths
          << " paths transplanted\n";
    }
  }
  out << "  tasks/thread:";
  for (std::size_t n : tasks_per_thread) out << " " << n;
  out << "\n";
  out.flags(flags);
  out.precision(precision);
}

AnalysisEngine::AnalysisEngine(const TrafficConfig& config, Options options)
    : cfg_(config), pool_(ThreadPool::resolve_thread_count(options.threads)) {}

netcalc::Result AnalysisEngine::run_netcalc(const netcalc::Options& options) {
  AFDX_TRACE_SPAN("engine.netcalc", "engine");
  const std::size_t n_links = cfg_.network().link_count();
  const std::uint64_t okey = PortCache::options_key(options);
  metrics_.levels = 0;
  metrics_.max_level_width = 0;

  netcalc::Result result;
  result.ports.assign(n_links, netcalc::PortReport{});
  netcalc::DelayTable delays(cfg_);

  const auto levels = netcalc::propagation_levels(cfg_);
  if (!levels.has_value()) {
    // Cyclic configuration: the fixed point is inherently sequential.
    // Serve fully-cached reruns from the per-port cache; otherwise run the
    // serial analyzer once and memoize its converged bounds.
    std::vector<LinkId> used_ports;
    for (LinkId l = 0; l < n_links; ++l) {
      if (!cfg_.vls_on_link(l).empty()) used_ports.push_back(l);
    }
    const auto rounds = iterations_.find(okey);
    if (rounds != iterations_.end() && cache_.covers(okey, used_ports)) {
      for (LinkId port : used_ports) {
        const auto bounds = cache_.lookup(okey, port);
        delays.assign(port, bounds->level_delays);
        result.ports[port] =
            netcalc::make_report(*bounds, cfg_.utilization(port));
      }
      result.iterations = rounds->second;
      result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
      return result;
    }
    result = netcalc::analyze(cfg_, options);
    for (LinkId port : used_ports) {
      const netcalc::PortReport& r = result.ports[port];
      cache_.store(okey, port,
                   netcalc::PortBounds{r.level_delays, r.backlog,
                                       r.queue_backlog});
    }
    iterations_[okey] = result.iterations;
    return result;
  }

  // Feed-forward: propagate level by level; ports of one level have no
  // mutual dependency, so each level is chunked dynamically across the
  // pool (work stealing). Results land in per-port slots, making the pass
  // order-independent and bit-identical to the serial analyzer.
  metrics_.levels = levels->size();
  static obs::Histogram& level_width =
      obs::registry().histogram("engine.level.width");
  const netcalc::PortFlowIndex& index = flow_index();
  std::vector<netcalc::PortBounds> bounds(n_links);
  for (const std::vector<LinkId>& level : *levels) {
    AFDX_TRACE_SPAN("engine.netcalc.level", "engine");
    level_width.observe(level.size());
    metrics_.max_level_width = std::max(metrics_.max_level_width,
                                        level.size());
    pool_.parallel_for_dynamic(level.size(), [&](std::size_t i, int) {
      const LinkId port = level[i];
      if (auto hit = cache_.lookup(okey, port); hit.has_value()) {
        bounds[port] = std::move(*hit);
      } else {
        bounds[port] =
            netcalc::compute_port_bounds(cfg_, port, options, delays, index);
        cache_.store(okey, port, bounds[port]);
      }
    });
    for (LinkId port : level) {
      delays.assign(port, bounds[port].level_delays);
      result.ports[port] =
          netcalc::make_report(bounds[port], cfg_.utilization(port));
    }
  }
  result.iterations = 1;
  result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
  return result;
}

AnalysisEngine::TrajectoryContext AnalysisEngine::resolve_trajectory_context(
    const trajectory::Options& options, const netcalc::Result* nc_result,
    const std::vector<PortOutcome>* nc_ports) {
  TrajectoryContext ctx;
  ctx.options = options;
  const std::size_t n_links = cfg_.network().link_count();
  if (options.serialization) {
    ctx.caps.emplace(n_links, kInf);
    if (nc_result == nullptr) {
      // Serialization caps from the shared default-options WCNC run -- the
      // same envelopes Analyzer::backlog_caps() would derive per instance.
      try {
        const netcalc::Result nc = run_netcalc(netcalc::Options{});
        for (LinkId l = 0; l < n_links; ++l) {
          if (nc.ports[l].used) {
            (*ctx.caps)[l] =
                nc.ports[l].queue_backlog / cfg_.network().link(l).rate;
          }
        }
      } catch (const Error&) {
        // The envelope analysis fails only on unstable ports, where the
        // busy period diverges anyway; fall back to uncapped, exactly like
        // the legacy analyzer.
      }
    } else {
      // Caps from the contained WCNC pass: ports that failed or were
      // skipped stay uncapped (an infinite cap is simply no refinement).
      for (LinkId l = 0; l < n_links; ++l) {
        if ((*nc_ports)[l].state == PathState::kOk &&
            nc_result->ports[l].used) {
          (*ctx.caps)[l] =
              nc_result->ports[l].queue_backlog / cfg_.network().link(l).rate;
        }
      }
    }
  }
  ctx.tj_key = trajectory_options_key(options);
  ctx.caps_sig = caps_signature(ctx.caps);
  ctx.pcache = prefix_cache_for(ctx.tj_key, ctx.caps_sig);
  return ctx;
}

const std::vector<VlId>& AnalysisEngine::locality_vl_order() {
  if (!locality_order_.has_value()) {
    const std::vector<VlPath>& paths = cfg_.all_paths();
    std::vector<const std::vector<LinkId>*> route(cfg_.vl_count(), nullptr);
    std::vector<VlId> order;
    for (const VlPath& p : paths) {
      if (route[p.vl] == nullptr) {
        route[p.vl] = &p.links;
        order.push_back(p.vl);
      }
    }
    // Lexicographic by route: VLs sharing their source port (and deeper
    // prefixes) become contiguous, so the chunk a worker claims (or
    // steals -- the scheduler moves contiguous blocks) covers one
    // neighbourhood of the topology and its prefix recursions overlap.
    // Ties (identical first routes, e.g. same-route multicast siblings)
    // fall back to the id for a total, deterministic order.
    std::sort(order.begin(), order.end(), [&](VlId a, VlId b) {
      const std::vector<LinkId>& la = *route[a];
      const std::vector<LinkId>& lb = *route[b];
      if (la == lb) return a < b;
      return std::lexicographical_compare(la.begin(), la.end(), lb.begin(),
                                          lb.end());
    });
    locality_order_ = std::move(order);
  }
  return *locality_order_;
}

std::vector<Microseconds> AnalysisEngine::run_trajectory(
    const TrajectoryContext& ctx) {
  AFDX_TRACE_SPAN("engine.trajectory", "engine");
  const std::vector<VlPath>& paths = cfg_.all_paths();
  std::vector<Microseconds> out(paths.size(), 0.0);

  // Baseline prefixes queued by run_incremental are transplanted into the
  // run's shared cache first.
  const std::shared_ptr<trajectory::PrefixCache>& pcache = ctx.pcache;
  for (const PrefixSeed& s : pending_prefix_seeds_) {
    pcache->seed(s.vl, s.link, s.bound);
  }
  pending_prefix_seeds_.clear();
  pending_path_transplants_.clear();
  last_prefix_cache_ = pcache;

  // Work items are whole VLs in locality order: paths of one VL share
  // their prefix recursion, so keeping a VL in one chunk preserves the
  // analyzer's local memoization, and route-sorted neighbours make the
  // chunk cover one topology neighbourhood. Every bound is a pure
  // function of (configuration, options, caps), so dynamic (stolen)
  // assignment of VLs to workers stays bit-identical.
  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    vl_paths[paths[i].vl].push_back(i);
  }
  const std::vector<VlId>& vl_order = locality_vl_order();

  struct Shard {
    std::unique_ptr<trajectory::Analyzer> analyzer;
    std::size_t vls = 0;
    std::size_t paths_done = 0;
  };
  std::vector<Shard> local(static_cast<std::size_t>(pool_.thread_count()));
  pool_.parallel_for_dynamic(vl_order.size(), [&](std::size_t k, int w) {
    Shard& shard = local[static_cast<std::size_t>(w)];
    if (!shard.analyzer) {
      AFDX_TRACE_SPAN("engine.trajectory.shard", "engine");
      shard.analyzer = std::make_unique<trajectory::Analyzer>(cfg_, ctx.options);
      if (ctx.caps.has_value()) shard.analyzer->set_backlog_caps(*ctx.caps);
      shard.analyzer->set_prefix_cache(pcache.get());
    }
    ++shard.vls;
    for (std::size_t i : vl_paths[vl_order[k]]) {
      out[i] = shard.analyzer->bound_to_link(paths[i].vl, paths[i].links.back());
      ++shard.paths_done;
    }
  });

  metrics_.shards.clear();
  for (const Shard& shard : local) {
    if (!shard.analyzer) continue;
    const trajectory::Analyzer::CacheCounters& c = shard.analyzer->counters();
    metrics_.shards.push_back(ShardMetrics{shard.vls, shard.paths_done,
                                           c.lookups, c.local_hits,
                                           c.shared_hits});
  }
  return out;
}

RunResult AnalysisEngine::run(const netcalc::Options& nc_options,
                              const trajectory::Options& tj_options) {
  AFDX_TRACE_SPAN("engine.run", "engine");
  RunResult result;
  const CacheStats cache0 = cache_.stats();
  const trajectory::PrefixCacheStats prefix0 = prefix_stats_total();
  const auto t0 = Clock::now();
  const Microseconds cpu0 = cpu_now_us();
  result.netcalc_result = run_netcalc(nc_options);
  result.netcalc = result.netcalc_result.path_bounds;
  const auto t1 = Clock::now();
  const TrajectoryContext tj_ctx =
      resolve_trajectory_context(tj_options, nullptr, nullptr);
  result.trajectory = run_trajectory(tj_ctx);
  const auto t2 = Clock::now();
  AFDX_ASSERT(result.netcalc.size() == result.trajectory.size(),
              "engine: method results misaligned");
  {
    AFDX_TRACE_SPAN("engine.combine", "engine");
    result.combined.reserve(result.netcalc.size());
    for (std::size_t i = 0; i < result.netcalc.size(); ++i) {
      result.combined.push_back(
          std::min(result.netcalc[i], result.trajectory[i]));
    }
  }
  const auto t3 = Clock::now();

  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.combine_wall_us += elapsed_us(t2, t3);
  metrics_.total_wall_us += elapsed_us(t0, t3);
  metrics_.total_cpu_us += cpu_now_us() - cpu0;
  metrics_.paths = result.combined.size();
  metrics_.paths_per_second =
      safe_paths_per_second(metrics_.paths, elapsed_us(t0, t3));
  observe_phase_us("netcalc", elapsed_us(t0, t1));
  observe_phase_us("trajectory", elapsed_us(t1, t2));
  observe_phase_us("combine", elapsed_us(t2, t3));
  obs::registry().counter("engine.runs").add();
  obs::registry().counter("engine.paths").add(result.combined.size());
  metrics_.cache_run = cache_.stats() - cache0;
  metrics_.prefix_run = prefix_stats_total() - prefix0;
  result.status.assign(result.combined.size(), PathStatus{});
  result.nc_options_key = PortCache::options_key(nc_options);
  result.tj_options_key = tj_ctx.tj_key;
  result.prefixes = last_prefix_cache_;
  result.metrics = metrics();
  return result;
}

netcalc::Result AnalysisEngine::run_netcalc_contained(
    const netcalc::Options& options, const RunControl& control,
    std::vector<PortOutcome>& ports) {
  AFDX_TRACE_SPAN("engine.netcalc.contained", "engine");
  const Network& net = cfg_.network();
  const std::size_t n_links = net.link_count();

  netcalc::Result result;
  result.ports.assign(n_links, netcalc::PortReport{});
  result.iterations = 1;
  ports.assign(n_links, PortOutcome{});

  const auto port_name = [&](LinkId l) {
    return net.node(net.link(l).source).name + ">" +
           net.node(net.link(l).dest).name;
  };
  const auto mark_all_used = [&](PathState state, const std::string& msg) {
    for (LinkId l = 0; l < n_links; ++l) {
      if (!cfg_.vls_on_link(l).empty()) ports[l] = PortOutcome{state, msg};
    }
  };
  const auto expired = [&] {
    return control.cancel != nullptr && control.cancel->expired();
  };

  const auto levels = netcalc::propagation_levels(cfg_);
  if (!levels.has_value()) {
    // Cyclic configuration: the fixed point is inherently all-or-nothing,
    // so containment degrades to whole-phase granularity.
    if (expired()) {
      mark_all_used(PathState::kSkipped, control.cancel->reason());
      result.iterations = 0;
      return result;
    }
    try {
      return run_netcalc(options);
    } catch (const std::exception& e) {
      mark_all_used(PathState::kFailed, e.what());
      result.iterations = 0;
      return result;
    }
  }

  const std::uint64_t okey = PortCache::options_key(options);
  const netcalc::PortFlowIndex& index = flow_index();
  std::vector<netcalc::PortBounds> bounds(n_links);
  netcalc::DelayTable delays(cfg_);
  bool abandoned = false;
  for (const std::vector<LinkId>& level : *levels) {
    if (!abandoned && expired()) abandoned = true;
    if (abandoned) {
      for (LinkId port : level) {
        ports[port] = PortOutcome{PathState::kSkipped,
                                  control.cancel->reason()};
      }
      continue;
    }

    // Dependency screen (serial; only reads outcomes of earlier levels): a
    // port whose crossing VLs arrive via a failed or skipped port cannot be
    // computed -- its inputs are unknown -- and is skipped, which in turn
    // taints everything downstream of it.
    std::vector<LinkId> compute;
    compute.reserve(level.size());
    for (LinkId port : level) {
      LinkId bad = kInvalidLink;
      for (VlId v : cfg_.vls_on_link(port)) {
        const LinkId pred = cfg_.route(v).predecessor(port);
        if (pred != kInvalidLink && ports[pred].state != PathState::kOk) {
          bad = pred;
          break;
        }
      }
      if (bad != kInvalidLink) {
        ports[port] = PortOutcome{
            PathState::kSkipped, "upstream port " + port_name(bad) +
                                     " unavailable (" +
                                     to_string(ports[bad].state) + ")"};
      } else {
        compute.push_back(port);
      }
    }

    const auto failures = pool_.parallel_for_dynamic_contained(
        compute.size(), [&](std::size_t i, int) {
          const LinkId port = compute[i];
          if (auto hit = cache_.lookup(okey, port); hit.has_value()) {
            bounds[port] = std::move(*hit);
          } else {
            bounds[port] = netcalc::compute_port_bounds(cfg_, port, options,
                                                        delays, index);
            cache_.store(okey, port, bounds[port]);
          }
        });
    for (const ThreadPool::TaskFailure& f : failures) {
      ports[compute[f.index]] = PortOutcome{PathState::kFailed, f.message};
    }
    for (LinkId port : level) {
      if (ports[port].state != PathState::kOk) continue;
      delays.assign(port, bounds[port].level_delays);
      result.ports[port] =
          netcalc::make_report(bounds[port], cfg_.utilization(port));
    }
  }
  return result;
}

std::vector<Microseconds> AnalysisEngine::run_trajectory_contained(
    const TrajectoryContext& ctx, const RunControl& control,
    std::vector<PathStatus>& path_status) {
  AFDX_TRACE_SPAN("engine.trajectory.contained", "engine");
  const std::vector<VlPath>& paths = cfg_.all_paths();
  std::vector<Microseconds> out(paths.size(), kInf);
  path_status.assign(paths.size(), PathStatus{});

  // Queued baseline prefixes are only transplanted into the run's shared
  // cache when the WCNC phase ran to its natural end: an expired cancel
  // token means the context's caps may be uncapped placeholders rather
  // than the baseline's values, which would poison the persistent cache.
  // (A port-level WCNC failure cannot get here seeded wrong: seeded clean
  // ports always hit the cache.)
  const std::shared_ptr<trajectory::PrefixCache>& pcache = ctx.pcache;
  const bool expired = control.cancel != nullptr && control.cancel->expired();
  if (!expired) {
    for (const PrefixSeed& s : pending_prefix_seeds_) {
      pcache->seed(s.vl, s.link, s.bound);
    }
  }
  pending_prefix_seeds_.clear();
  last_prefix_cache_ = pcache;

  // Paths fully outside the dirty cone keep their baseline trajectory
  // bound verbatim: every input of their recursion (own route, competing
  // VLs, their upstream chains, the serialization caps of every port
  // involved) is bit-identical by the dirty closure, so recomputing could
  // only reproduce the same number. Skipping them makes a small-cone
  // what-if cost proportional to its cone, not to the network.
  std::vector<char> transplanted(paths.size(), 0);
  for (const PathTransplant& t : pending_path_transplants_) {
    out[t.path] = t.trajectory;
    transplanted[t.path] = 1;
  }
  pending_path_transplants_.clear();

  // Locality-ordered VL work items; VLs whose every path was transplanted
  // drop out before any shard would touch them.
  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (transplanted[i]) continue;
    vl_paths[paths[i].vl].push_back(i);
  }
  const std::vector<VlId>& order_all = locality_vl_order();
  std::vector<VlId> vl_order;
  vl_order.reserve(order_all.size());
  for (VlId v : order_all) {
    if (!vl_paths[v].empty()) vl_order.push_back(v);
  }

  // Per-worker analyzer state for the work-stealing loop. A throw
  // mid-recursion leaves the analyzer consistent -- the in-progress
  // markers unwind with the stack (RAII) and the memo only ever holds
  // successfully computed bounds -- so the worker keeps its instance (and
  // its memo) across contained per-path failures.
  struct Shard {
    std::optional<trajectory::Analyzer> analyzer;
    std::string construct_error;
    bool alive = false;
    bool initialized = false;
    std::size_t vls = 0;
    std::size_t paths_done = 0;
  };
  std::vector<Shard> local(static_cast<std::size_t>(pool_.thread_count()));
  const auto fresh = [&](Shard& shard) {
    try {
      shard.analyzer.emplace(cfg_, ctx.options);
      if (ctx.caps.has_value()) shard.analyzer->set_backlog_caps(*ctx.caps);
      shard.analyzer->set_prefix_cache(pcache.get());
      shard.alive = true;
    } catch (const std::exception& e) {
      shard.construct_error = e.what();
      shard.alive = false;
    }
  };
  // The body never throws (all analysis errors are contained per path), so
  // the plain dynamic loop is enough.
  pool_.parallel_for_dynamic(vl_order.size(), [&](std::size_t k, int w) {
    Shard& shard = local[static_cast<std::size_t>(w)];
    if (!shard.initialized) {
      shard.initialized = true;
      fresh(shard);
    }
    ++shard.vls;
    for (std::size_t i : vl_paths[vl_order[k]]) {
      if (control.cancel != nullptr && control.cancel->expired()) {
        path_status[i] =
            PathStatus{PathState::kSkipped, control.cancel->reason()};
        continue;
      }
      if (!shard.alive) {
        path_status[i] = PathStatus{PathState::kFailed, shard.construct_error};
        continue;
      }
      try {
        out[i] =
            shard.analyzer->bound_to_link(paths[i].vl, paths[i].links.back());
        ++shard.paths_done;
      } catch (const std::exception& e) {
        path_status[i] = PathStatus{PathState::kFailed, e.what()};
      }
    }
  });

  metrics_.shards.clear();
  for (const Shard& shard : local) {
    if (!shard.analyzer.has_value()) continue;
    const trajectory::Analyzer::CacheCounters& c = shard.analyzer->counters();
    metrics_.shards.push_back(ShardMetrics{shard.vls, shard.paths_done,
                                           c.lookups, c.local_hits,
                                           c.shared_hits});
  }
  return out;
}

RunResult AnalysisEngine::run_resilient(const netcalc::Options& nc_options,
                                        const trajectory::Options& tj_options,
                                        const RunControl& control) {
  const Network& net = cfg_.network();
  const std::vector<VlPath>& paths = cfg_.all_paths();
  const std::size_t n = paths.size();
  const auto port_name = [&](LinkId l) {
    return net.node(net.link(l).source).name + ">" +
           net.node(net.link(l).dest).name;
  };

  AFDX_TRACE_SPAN("engine.run_resilient", "engine");
  RunResult result;
  const CacheStats cache0 = cache_.stats();
  const trajectory::PrefixCacheStats prefix0 = prefix_stats_total();
  const auto t0 = Clock::now();
  const Microseconds cpu0 = cpu_now_us();
  std::vector<PortOutcome> nc_ports;
  result.netcalc_result = run_netcalc_contained(nc_options, control, nc_ports);

  // Per-path WCNC assembly: a path is only as good as every port it
  // crosses; the first non-ok port carries the explanation.
  result.netcalc.assign(n, kInf);
  std::vector<PathStatus> nc_status(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VlPath& p = paths[i];
    const std::uint8_t level = cfg_.vl(p.vl).priority;
    Microseconds total = 0.0;
    for (LinkId l : p.links) {
      if (nc_ports[l].state != PathState::kOk) {
        nc_status[i] = PathStatus{
            nc_ports[l].state,
            "wcnc: port " + port_name(l) + " " +
                std::string(to_string(nc_ports[l].state)) +
                (nc_ports[l].message.empty() ? "" : ": " + nc_ports[l].message)};
        total = kInf;
        break;
      }
      const auto& delays = result.netcalc_result.ports[l].level_delays;
      const auto it = delays.find(level);
      AFDX_ASSERT(it != delays.end(), "engine: missing level delay");
      total += it->second;
    }
    result.netcalc[i] = total;
  }
  result.netcalc_result.path_bounds = result.netcalc;
  const auto t1 = Clock::now();

  std::vector<PathStatus> tj_status;
  const TrajectoryContext tj_ctx = resolve_trajectory_context(
      tj_options, &result.netcalc_result, &nc_ports);
  result.trajectory = run_trajectory_contained(tj_ctx, control, tj_status);
  const auto t2 = Clock::now();

  // Combine: the per-path minimum over the methods that did produce a
  // bound. A path is ok as long as one method survived; the message still
  // records the degraded method so nothing fails silently.
  result.combined.assign(n, kInf);
  result.status.assign(n, PathStatus{});
  for (std::size_t i = 0; i < n; ++i) {
    result.combined[i] = std::min(result.netcalc[i], result.trajectory[i]);
    std::string message = nc_status[i].message;
    if (!tj_status[i].ok()) {
      if (!message.empty()) message += "; ";
      message += "trajectory " + std::string(to_string(tj_status[i].state)) +
                 ": " + tj_status[i].message;
    }
    if (std::isfinite(result.combined[i])) {
      result.status[i] = PathStatus{PathState::kOk, std::move(message)};
    } else {
      const bool failed = nc_status[i].state == PathState::kFailed ||
                          tj_status[i].state == PathState::kFailed;
      result.status[i] = PathStatus{
          failed ? PathState::kFailed : PathState::kSkipped,
          std::move(message)};
    }
  }
  const auto t3 = Clock::now();

  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.combine_wall_us += elapsed_us(t2, t3);
  metrics_.total_wall_us += elapsed_us(t0, t3);
  metrics_.total_cpu_us += cpu_now_us() - cpu0;
  metrics_.paths = n;
  metrics_.paths_per_second = safe_paths_per_second(n, elapsed_us(t0, t3));
  observe_phase_us("netcalc", elapsed_us(t0, t1));
  observe_phase_us("trajectory", elapsed_us(t1, t2));
  observe_phase_us("combine", elapsed_us(t2, t3));
  obs::registry().counter("engine.runs").add();
  obs::registry().counter("engine.paths").add(n);
  metrics_.cache_run = cache_.stats() - cache0;
  metrics_.prefix_run = prefix_stats_total() - prefix0;
  result.nc_options_key = PortCache::options_key(nc_options);
  result.tj_options_key = tj_ctx.tj_key;
  result.prefixes = last_prefix_cache_;
  result.metrics = metrics();
  return result;
}

StreamSummary AnalysisEngine::run_streaming(
    const StreamSink& sink, const netcalc::Options& nc_options,
    const trajectory::Options& tj_options, const RunControl& control) {
  AFDX_TRACE_SPAN("engine.run_streaming", "engine");
  const Network& net = cfg_.network();
  const std::vector<VlPath>& paths = cfg_.all_paths();
  const auto port_name = [&](LinkId l) {
    return net.node(net.link(l).source).name + ">" +
           net.node(net.link(l).dest).name;
  };

  const auto t0 = Clock::now();
  const Microseconds cpu0 = cpu_now_us();
  const CacheStats cache0 = cache_.stats();
  const trajectory::PrefixCacheStats prefix0 = prefix_stats_total();

  // Contained WCNC pass: per-port state, O(ports) not O(paths).
  std::vector<PortOutcome> nc_ports;
  const netcalc::Result nc_result =
      run_netcalc_contained(nc_options, control, nc_ports);
  const auto t1 = Clock::now();

  const TrajectoryContext ctx =
      resolve_trajectory_context(tj_options, &nc_result, &nc_ports);
  const std::shared_ptr<trajectory::PrefixCache>& pcache = ctx.pcache;
  // Streaming runs are always full runs: discard incremental leftovers.
  pending_prefix_seeds_.clear();
  pending_path_transplants_.clear();
  last_prefix_cache_ = pcache;

  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    vl_paths[paths[i].vl].push_back(i);
  }
  const std::vector<VlId>& order_all = locality_vl_order();
  std::vector<VlId> vl_order;
  vl_order.reserve(order_all.size());
  for (VlId v : order_all) {
    if (!vl_paths[v].empty()) vl_order.push_back(v);
  }

  struct Shard {
    std::optional<trajectory::Analyzer> analyzer;
    std::string construct_error;
    bool alive = false;
    bool initialized = false;
    std::size_t vls = 0;
    std::size_t paths_done = 0;
  };
  std::vector<Shard> local(static_cast<std::size_t>(pool_.thread_count()));
  const auto fresh = [&](Shard& shard) {
    try {
      shard.analyzer.emplace(cfg_, ctx.options);
      if (ctx.caps.has_value()) shard.analyzer->set_backlog_caps(*ctx.caps);
      shard.analyzer->set_prefix_cache(pcache.get());
      shard.alive = true;
    } catch (const std::exception& e) {
      shard.construct_error = e.what();
      shard.alive = false;
    }
  };

  StreamSummary summary;
  std::mutex sink_mu;
  pool_.parallel_for_dynamic(vl_order.size(), [&](std::size_t k, int w) {
    Shard& shard = local[static_cast<std::size_t>(w)];
    if (!shard.initialized) {
      shard.initialized = true;
      fresh(shard);
    }
    ++shard.vls;
    for (std::size_t i : vl_paths[vl_order[k]]) {
      const VlPath& p = paths[i];
      StreamPathResult r;
      r.path_index = i;
      r.vl = p.vl;
      r.dest_index = p.dest_index;

      // Per-path WCNC assembly, same contract as run_resilient: a path is
      // only as good as every port it crosses.
      const std::uint8_t level = cfg_.vl(p.vl).priority;
      PathStatus nc_status;
      Microseconds nc_total = 0.0;
      for (LinkId l : p.links) {
        if (nc_ports[l].state != PathState::kOk) {
          nc_status = PathStatus{
              nc_ports[l].state,
              "wcnc: port " + port_name(l) + " " +
                  std::string(to_string(nc_ports[l].state)) +
                  (nc_ports[l].message.empty() ? ""
                                               : ": " + nc_ports[l].message)};
          nc_total = kInf;
          break;
        }
        const auto& delays = nc_result.ports[l].level_delays;
        const auto it = delays.find(level);
        AFDX_ASSERT(it != delays.end(), "engine: missing level delay");
        nc_total += it->second;
      }
      r.netcalc = nc_total;

      PathStatus tj_status;
      r.trajectory = kInf;
      if (control.cancel != nullptr && control.cancel->expired()) {
        tj_status = PathStatus{PathState::kSkipped, control.cancel->reason()};
      } else if (!shard.alive) {
        tj_status = PathStatus{PathState::kFailed, shard.construct_error};
      } else {
        try {
          r.trajectory = shard.analyzer->bound_to_link(p.vl, p.links.back());
          ++shard.paths_done;
        } catch (const std::exception& e) {
          tj_status = PathStatus{PathState::kFailed, e.what()};
        }
      }

      r.combined = std::min(r.netcalc, r.trajectory);
      std::string message = nc_status.message;
      if (!tj_status.ok()) {
        if (!message.empty()) message += "; ";
        message += "trajectory " + std::string(to_string(tj_status.state)) +
                   ": " + tj_status.message;
      }
      if (std::isfinite(r.combined)) {
        r.state = PathState::kOk;
      } else {
        const bool failed = nc_status.state == PathState::kFailed ||
                            tj_status.state == PathState::kFailed;
        r.state = failed ? PathState::kFailed : PathState::kSkipped;
      }
      r.message = std::move(message);

      {
        std::lock_guard<std::mutex> lock(sink_mu);
        ++summary.paths;
        switch (r.state) {
          case PathState::kOk:
            ++summary.ok;
            summary.sum_combined += r.combined;
            if (summary.ok == 1 || r.combined > summary.max_combined) {
              summary.max_combined = r.combined;
              summary.worst_path = i;
              summary.worst_vl = p.vl;
            }
            break;
          case PathState::kFailed:
            ++summary.failed;
            break;
          case PathState::kSkipped:
            ++summary.skipped;
            break;
        }
        if (sink) sink(r);
      }
    }
  });
  const auto t2 = Clock::now();

  // Per-shard cache effectiveness plus the run's overall cache deltas --
  // the summary carries them so a streaming caller can observe reuse
  // (e.g. a warm second run) without reaching into engine metrics.
  metrics_.shards.clear();
  for (const Shard& shard : local) {
    if (!shard.analyzer.has_value()) continue;
    const trajectory::Analyzer::CacheCounters& c = shard.analyzer->counters();
    metrics_.shards.push_back(ShardMetrics{shard.vls, shard.paths_done,
                                           c.lookups, c.local_hits,
                                           c.shared_hits});
  }
  summary.shards = metrics_.shards;
  summary.port_cache = cache_.stats() - cache0;
  summary.prefix_cache = prefix_stats_total() - prefix0;
  metrics_.cache_run = summary.port_cache;
  metrics_.prefix_run = summary.prefix_cache;

  summary.wall_us = elapsed_us(t0, t2);
  summary.paths_per_second =
      safe_paths_per_second(summary.paths, summary.wall_us);
  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.total_wall_us += summary.wall_us;
  metrics_.total_cpu_us += cpu_now_us() - cpu0;
  metrics_.paths = summary.paths;
  metrics_.paths_per_second = summary.paths_per_second;
  observe_phase_us("netcalc", elapsed_us(t0, t1));
  observe_phase_us("trajectory", elapsed_us(t1, t2));
  obs::registry().counter("engine.runs").add();
  obs::registry().counter("engine.paths").add(summary.paths);
  return summary;
}

RunResult AnalysisEngine::run_incremental(const TrafficConfig& baseline_config,
                                          const RunResult& baseline,
                                          const std::vector<LinkId>& changed_links,
                                          const netcalc::Options& nc_options,
                                          const trajectory::Options& tj_options,
                                          const RunControl& control) {
  AFDX_TRACE_SPAN("engine.run_incremental", "engine");
  IncrementalStats inc;
  inc.attempted = true;
  inc.changed_links = changed_links.size();

  const auto fallback = [&](std::string reason) {
    inc.full_fallback = true;
    inc.fallback_reason = std::move(reason);
    metrics_.incremental = inc;
    pending_prefix_seeds_.clear();
    pending_path_transplants_.clear();
    return run_resilient(nc_options, tj_options, control);
  };

  const std::uint64_t okey = PortCache::options_key(nc_options);
  if (baseline.nc_options_key != okey) {
    return fallback("baseline was computed under different WCNC options");
  }
  if (baseline.netcalc_result.ports.size() !=
      baseline_config.network().link_count()) {
    return fallback("baseline result does not match the baseline "
                    "configuration");
  }
  const IncrementalPlan plan =
      plan_incremental(baseline_config, cfg_, changed_links);
  if (!plan.compatible) return fallback(plan.reason);
  inc.dirty_ports = plan.dirty_ports.size();

  // Transplant the WCNC bounds of every clean port the baseline actually
  // computed, and drop whatever this engine may still cache for the dirty
  // ones (defensive: entries of this engine are valid for its own fixed
  // configuration, but a prior seed from another baseline might not be).
  for (LinkId l : plan.clean_ports) {
    const netcalc::PortReport& r = baseline.netcalc_result.ports[l];
    if (!r.used) continue;
    cache_.seed(okey, l,
                netcalc::PortBounds{r.level_delays, r.backlog,
                                    r.queue_backlog});
    ++inc.seeded_ports;
  }
  cache_.evict(okey, plan.dirty_ports);

  // Transplant trajectory prefixes whose whole upstream chain is clean --
  // only from a baseline computed under the same trajectory options whose
  // WCNC phase completed (otherwise its serialization caps, and therefore
  // its prefixes, may not match what this run will derive).
  pending_prefix_seeds_.clear();
  bool baseline_complete =
      baseline.prefixes != nullptr &&
      baseline.tj_options_key == trajectory_options_key(tj_options);
  if (baseline_complete) {
    const std::size_t bn = baseline_config.network().link_count();
    for (LinkId l = 0; l < bn; ++l) {
      if (!baseline_config.vls_on_link(l).empty() &&
          !baseline.netcalc_result.ports[l].used) {
        baseline_complete = false;
        break;
      }
    }
  }
  if (baseline_complete) {
    for (VlId v = 0; v < cfg_.vl_count(); ++v) {
      const VlId bv = plan.base_vl[v];
      if (bv == kInvalidVl) continue;
      const VlRoute& route = cfg_.route(v);
      for (LinkId l : route.crossed_links()) {
        bool chain_clean = true;
        for (LinkId cur = l; cur != kInvalidLink;
             cur = route.predecessor(cur)) {
          if (plan.dirty[cur]) {
            chain_clean = false;
            break;
          }
        }
        if (!chain_clean) continue;
        if (const auto bound = baseline.prefixes->peek(bv, l);
            bound.has_value()) {
          pending_prefix_seeds_.push_back(PrefixSeed{v, l, *bound});
        }
      }
    }
  }
  inc.seeded_prefixes = pending_prefix_seeds_.size();

  // Whole-path transplants: a path whose every crossed port is clean reads
  // bit-identical inputs end to end (the dirty closure already propagated
  // any upstream change of any competing VL into its ports), so its final
  // trajectory bound is carried over and the trajectory phase skips it.
  // Only from a complete baseline whose per-path vectors line up, and only
  // finite bounds (a failed path re-runs so its status is re-derived).
  pending_path_transplants_.clear();
  const std::vector<VlPath>& bpaths = baseline_config.all_paths();
  if (baseline_complete && baseline.trajectory.size() == bpaths.size()) {
    // Baseline path index by (baseline VL, terminal link).
    std::unordered_map<std::uint64_t, std::size_t> base_path;
    base_path.reserve(bpaths.size());
    const auto path_key = [n = baseline_config.network().link_count()](
                              VlId v, LinkId last) {
      return static_cast<std::uint64_t>(v) * n + last;
    };
    for (std::size_t i = 0; i < bpaths.size(); ++i) {
      base_path.emplace(path_key(bpaths[i].vl, bpaths[i].links.back()), i);
    }
    const std::vector<VlPath>& cpaths = cfg_.all_paths();
    for (std::size_t i = 0; i < cpaths.size(); ++i) {
      const VlPath& p = cpaths[i];
      const VlId bv = plan.base_vl[p.vl];
      if (bv == kInvalidVl) continue;
      bool clean = true;
      for (LinkId l : p.links) {
        if (plan.dirty[l]) {
          clean = false;
          break;
        }
      }
      if (!clean) continue;
      const auto it = base_path.find(path_key(bv, p.links.back()));
      if (it == base_path.end()) continue;
      if (bpaths[it->second].links != p.links) continue;
      const Microseconds bound = baseline.trajectory[it->second];
      if (!std::isfinite(bound)) continue;
      pending_path_transplants_.push_back(PathTransplant{i, bound});
    }
  }
  inc.transplanted_paths = pending_path_transplants_.size();
  metrics_.incremental = inc;
  return run_resilient(nc_options, tj_options, control);
}

netcalc::Result AnalysisEngine::netcalc_only(
    const netcalc::Options& nc_options) {
  const auto t0 = Clock::now();
  netcalc::Result result = run_netcalc(nc_options);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.netcalc_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.path_bounds.size();
  metrics_.paths_per_second = safe_paths_per_second(metrics_.paths, dt);
  return result;
}

std::vector<Microseconds> AnalysisEngine::trajectory_only(
    const trajectory::Options& tj_options) {
  const auto t0 = Clock::now();
  const TrajectoryContext ctx =
      resolve_trajectory_context(tj_options, nullptr, nullptr);
  std::vector<Microseconds> result = run_trajectory(ctx);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.trajectory_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.size();
  metrics_.paths_per_second = safe_paths_per_second(result.size(), dt);
  return result;
}

const netcalc::PortFlowIndex& AnalysisEngine::flow_index() {
  if (!flow_index_.has_value()) {
    flow_index_.emplace(netcalc::build_port_flow_index(cfg_));
  }
  return *flow_index_;
}

std::shared_ptr<trajectory::PrefixCache> AnalysisEngine::prefix_cache_for(
    std::uint64_t tj_key, std::uint64_t caps_sig) {
  // One more FNV round folds the two digests into the map key.
  const std::uint64_t key = fnv_mix(tj_key, caps_sig, 8);
  auto& slot = prefix_caches_[key];
  if (slot == nullptr) slot = std::make_shared<trajectory::PrefixCache>();
  return slot;
}

trajectory::PrefixCacheStats AnalysisEngine::prefix_stats_total() const {
  trajectory::PrefixCacheStats total;
  for (const auto& [key, cache] : prefix_caches_) {
    const trajectory::PrefixCacheStats s = cache->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.seeded += s.seeded;
  }
  return total;
}

RunMetrics AnalysisEngine::metrics() const {
  RunMetrics m = metrics_;
  m.cache = cache_.stats();
  m.prefix = prefix_stats_total();
  m.steals = pool_.steal_count();
  m.threads = pool_.thread_count();
  m.tasks_per_thread = pool_.tasks_per_thread();
  return m;
}

}  // namespace afdx::engine

#include "analysis/comparison.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace afdx::analysis {

Comparison compare(const TrafficConfig& config,
                   const netcalc::Options& nc_options,
                   const trajectory::Options& tj_options,
                   const engine::Options& engine_options) {
  engine::AnalysisEngine eng(config, engine_options);
  engine::RunResult run = eng.run(nc_options, tj_options);
  Comparison out;
  out.netcalc = std::move(run.netcalc);
  out.trajectory = std::move(run.trajectory);
  out.combined = std::move(run.combined);
  return out;
}

BenefitStats benefit_stats(const std::vector<Microseconds>& reference,
                           const std::vector<Microseconds>& candidate) {
  AFDX_REQUIRE(reference.size() == candidate.size(),
               "benefit_stats: size mismatch");
  BenefitStats stats;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // A non-positive reference bound cannot express a relative benefit;
    // skip it instead of dividing by zero.
    if (reference[i] <= 0.0) continue;
    const double b = (reference[i] - candidate[i]) / reference[i];
    if (stats.paths == 0) {
      stats.max = b;
      stats.min = b;
    } else {
      stats.max = std::max(stats.max, b);
      stats.min = std::min(stats.min, b);
    }
    stats.mean += b;
    if (candidate[i] < reference[i] - kEpsilon) ++wins;
    ++stats.paths;
  }
  if (stats.paths == 0) return BenefitStats{};
  stats.mean /= static_cast<double>(stats.paths);
  stats.wins_fraction =
      static_cast<double>(wins) / static_cast<double>(stats.paths);
  return stats;
}

PessimismStats pessimism_stats(const std::vector<Microseconds>& lower_bounds,
                               const std::vector<Microseconds>& bounds) {
  AFDX_REQUIRE(lower_bounds.size() == bounds.size(),
               "pessimism_stats: size mismatch");
  PessimismStats stats;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (lower_bounds[i] <= 0.0) continue;
    const double r = bounds[i] / lower_bounds[i];
    if (stats.paths == 0) {
      stats.max = r;
      stats.min = r;
    } else {
      stats.max = std::max(stats.max, r);
      stats.min = std::min(stats.min, r);
    }
    stats.mean += r;
    ++stats.paths;
  }
  if (stats.paths == 0) return PessimismStats{};
  stats.mean /= static_cast<double>(stats.paths);
  return stats;
}

std::vector<std::pair<Microseconds, double>> mean_benefit_by_bag(
    const TrafficConfig& config, const Comparison& comparison) {
  std::map<Microseconds, std::pair<double, std::size_t>> acc;
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const VirtualLink& vl = config.vl(paths[i].vl);
    const double b = (comparison.netcalc[i] - comparison.trajectory[i]) /
                     comparison.netcalc[i];
    auto& [total, count] = acc[vl.bag];
    total += b;
    ++count;
  }
  std::vector<std::pair<Microseconds, double>> out;
  out.reserve(acc.size());
  for (const auto& [bag, tc] : acc) {
    out.emplace_back(bag, tc.first / static_cast<double>(tc.second));
  }
  return out;
}

std::vector<std::pair<Bytes, double>> wcnc_win_ratio_by_smax(
    const TrafficConfig& config, const Comparison& comparison,
    Bytes bucket_width) {
  AFDX_REQUIRE(bucket_width > 0, "wcnc_win_ratio_by_smax: zero bucket width");
  std::map<Bytes, std::pair<std::size_t, std::size_t>> acc;  // wins, total
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const VirtualLink& vl = config.vl(paths[i].vl);
    const Bytes bucket =
        ((vl.s_max + bucket_width - 1) / bucket_width) * bucket_width;
    auto& [wins, total] = acc[bucket];
    // "WCNC outperforms": the trajectory bound is not strictly tighter.
    if (comparison.netcalc[i] <= comparison.trajectory[i] + kEpsilon) ++wins;
    ++total;
  }
  std::vector<std::pair<Bytes, double>> out;
  out.reserve(acc.size());
  for (const auto& [bucket, wt] : acc) {
    out.emplace_back(bucket, static_cast<double>(wt.first) /
                                 static_cast<double>(wt.second));
  }
  return out;
}

std::vector<HopDelay> path_breakdown(const TrafficConfig& config,
                                     const netcalc::Result& result,
                                     PathRef ref) {
  const VlPath& path = config.path(ref);
  const std::uint8_t level = config.vl(path.vl).priority;
  std::vector<HopDelay> out;
  out.reserve(path.links.size());
  for (LinkId l : path.links) {
    AFDX_REQUIRE(result.ports[l].used,
                 "path_breakdown: result does not cover the path's ports");
    auto it = result.ports[l].level_delays.find(level);
    AFDX_REQUIRE(it != result.ports[l].level_delays.end(),
                 "path_breakdown: missing priority class at a port");
    const Link& link = config.network().link(l);
    out.push_back(HopDelay{l,
                           config.network().node(link.source).name + ">" +
                               config.network().node(link.dest).name,
                           it->second});
  }
  return out;
}

}  // namespace afdx::analysis

file(REMOVE_RECURSE
  "CMakeFiles/ext_spq_classes.dir/ext_spq_classes.cpp.o"
  "CMakeFiles/ext_spq_classes.dir/ext_spq_classes.cpp.o.d"
  "ext_spq_classes"
  "ext_spq_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spq_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libafdx_common.a"
)

file(REMOVE_RECURSE
  "libafdx_vl.a"
)

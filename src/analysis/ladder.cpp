#include "analysis/ladder.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "sfa/sfa_analyzer.hpp"

namespace afdx::analysis {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();
constexpr std::size_t kDefaultWave = 32;

[[nodiscard]] Microseconds elapsed_us(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             b - a)
      .count();
}

/// Budget gate of one ladder run. `allow` is called once per unit of work
/// (one whole-config rung or one wave x rung application) with the tokens
/// that unit would spend; the first refusal latches the exhaustion flag
/// and its reason. Token checks happen only here -- at unit boundaries --
/// so token-budgeted runs are deterministic across thread counts.
class Budget {
 public:
  Budget(const LadderOptions& options, const std::uint64_t& spent)
      : options_(options), spent_(spent) {
    if (options.budget_ms > 0.0) {
      deadline_.set_deadline_after(options.budget_ms * 1000.0);
      armed_ = true;
    }
  }

  [[nodiscard]] bool allow(std::uint64_t upcoming_evals) {
    if (exhausted_) return false;
    if (options_.cancel != nullptr && options_.cancel->expired()) {
      const char* why = options_.cancel->reason();
      exhaust(why != nullptr && *why != '\0' ? why : "cancelled");
      return false;
    }
    if (armed_ && deadline_.expired()) {
      exhaust("deadline exceeded");
      return false;
    }
    if (options_.max_path_evals > 0 &&
        spent_ + upcoming_evals > options_.max_path_evals) {
      exhaust("path-evaluation budget spent");
      return false;
    }
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  void exhaust(std::string why) {
    exhausted_ = true;
    reason_ = std::move(why);
  }

  const LadderOptions& options_;
  const std::uint64_t& spent_;
  engine::CancelToken deadline_;
  bool armed_ = false;
  bool exhausted_ = false;
  std::string reason_;
};

/// Shared state of one per-path trajectory rung across escalation waves:
/// the serialization caps (derived once, exactly like
/// AnalysisEngine::run_trajectory derives them, so escalated bounds are
/// bit-identical to engine.trajectory_only), one shared prefix cache, and
/// one lazily-built analyzer per pool worker.
struct TrajectoryRungState {
  trajectory::Options opts;
  bool caps_ready = false;
  std::optional<std::vector<Microseconds>> caps;
  std::shared_ptr<trajectory::PrefixCache> pcache =
      std::make_shared<trajectory::PrefixCache>();
  std::vector<std::unique_ptr<trajectory::Analyzer>> local;
};

/// Applies one rung's freshly computed raw bounds for `targets` to the
/// cumulative result.
void apply_raw(LadderResult& res, Rung rung,
               const std::vector<Microseconds>& raw,
               const std::vector<std::size_t>& targets, bool escalation) {
  RungStats& stats = res.rungs[static_cast<std::size_t>(rung)];
  for (std::size_t i : targets) {
    stats.paths_bounded += 1;
    PathProvenance& prov = res.provenance[i];
    prov.attempted_mask |= static_cast<std::uint8_t>(
        1u << static_cast<unsigned>(rung));
    if (escalation && !prov.escalated) {
      prov.escalated = true;
      res.paths_escalated += 1;
    }
    // Strict < keeps the winner at the cheapest rung on exact ties, which
    // is what makes provenance deterministic and ties "free".
    if (raw[i] < res.bounds[i]) {
      res.bounds[i] = raw[i];
      prov.winner = rung;
    }
    prov.final_bound_us = res.bounds[i];
  }
}

}  // namespace

const char* to_string(Rung rung) noexcept {
  switch (rung) {
    case Rung::kSfa:
      return "sfa";
    case Rung::kWcnc:
      return "wcnc";
    case Rung::kWcncGrouping:
      return "wcnc_grouping";
    case Rung::kTrajectory:
      return "trajectory";
    case Rung::kTrajectoryPruned:
      return "trajectory_pruned";
  }
  return "unknown";
}

Microseconds LadderResult::ladder_bound(std::size_t path, Rung rung) const {
  Microseconds best = kInf;
  for (std::size_t k = 0; k <= static_cast<std::size_t>(rung); ++k) {
    const std::vector<Microseconds>& raw = rung_bounds[k];
    if (raw.empty() || path >= raw.size()) continue;
    if (!provenance[path].attempted(static_cast<Rung>(k))) continue;
    best = std::min(best, raw[path]);
  }
  return best;
}

BoundLadder::BoundLadder(const TrafficConfig& config,
                         const engine::Options& engine_options)
    : cfg_(config),
      engine_(std::make_unique<engine::AnalysisEngine>(config,
                                                       engine_options)) {}

void BoundLadder::register_rung(RungDef def) {
  const auto k = static_cast<std::size_t>(def.id);
  rungs_[k] = std::move(def);
  user_rung_[k] = true;
}

void BoundLadder::register_standard_rungs(const LadderOptions& options) {
  const std::vector<VlPath>& paths = cfg_.all_paths();
  const std::size_t n = paths.size();

  // Structural cost drivers. Hops is the number of (path, crossed port)
  // pairs -- the unit of per-hop work of the cheap rungs; the trajectory
  // rungs additionally sweep busy-period candidates per hop, which the
  // estimates fold in as a constant factor. The estimates only need to be
  // *relatively* right: they order the rungs cheapest-first and let the
  // planner report predicted vs. actual spend.
  std::size_t hops = 0;
  for (const VlPath& p : paths) hops += p.links.size();
  const double base = static_cast<double>(n) +
                      static_cast<double>(hops) / 4.0;

  const auto set = [this](RungDef def) {
    const auto k = static_cast<std::size_t>(def.id);
    if (user_rung_[k]) return;  // keep the caller's replacement
    rungs_[k] = std::move(def);
  };

  // SFA: one residual + convolution per hop on top of an embedded WCNC
  // pass -- the cheapest usable whole-network bound.
  {
    sfa::Options sfa_opts;
    sfa_opts.netcalc_options = options.netcalc;
    set(RungDef{
        .id = Rung::kSfa,
        .cost_estimate = [base] { return base; },
        .compute =
            [this, sfa_opts] {
              return sfa::analyze(cfg_, sfa_opts).path_bounds;
            },
        .compute_paths = nullptr,
    });
  }
  // WCNC without grouping, then with grouping: one fixed point per used
  // port; grouping adds the per-input-link envelope assembly.
  {
    netcalc::Options nc = options.netcalc;
    nc.grouping = false;
    set(RungDef{
        .id = Rung::kWcnc,
        .cost_estimate = [base] { return base * 1.5; },
        .compute =
            [this, nc] { return engine_->netcalc_only(nc).path_bounds; },
        .compute_paths = nullptr,
    });
  }
  {
    netcalc::Options nc = options.netcalc;
    nc.grouping = true;
    set(RungDef{
        .id = Rung::kWcncGrouping,
        .cost_estimate = [base] { return base * 2.0; },
        .compute =
            [this, nc] { return engine_->netcalc_only(nc).path_bounds; },
        .compute_paths = nullptr,
    });
  }
  // The trajectory rungs support per-path escalation. Both share the
  // same machinery; they differ only in the serialization flag (and so in
  // their caps context and prefix-cache identity).
  const auto make_trajectory_rung = [this, &options, &set, base](
                                        Rung id, bool serialization,
                                        double cost_factor) {
    trajectory::Options tj = options.trajectory;
    tj.serialization = serialization;
    auto state = std::make_shared<TrajectoryRungState>();
    state->opts = tj;
    auto compute_paths = [this, state](const std::vector<std::size_t>& targets,
                                       std::vector<Microseconds>& out) {
      const std::vector<VlPath>& all = cfg_.all_paths();
      // Serialization caps from the shared default-options WCNC run --
      // derived exactly like AnalysisEngine::run_trajectory so the
      // escalated bounds are bit-identical to engine.trajectory_only.
      if (!state->caps_ready) {
        state->caps_ready = true;
        if (state->opts.serialization) {
          state->caps.emplace(cfg_.network().link_count(), kInf);
          try {
            const netcalc::Result nc = engine_->netcalc_only(netcalc::Options{});
            for (LinkId l = 0; l < cfg_.network().link_count(); ++l) {
              if (nc.ports[l].used) {
                (*state->caps)[l] =
                    nc.ports[l].queue_backlog / cfg_.network().link(l).rate;
              }
            }
          } catch (const Error&) {
            // Unstable port: fall back to uncapped, like the engine.
          }
        }
      }
      // Work items are whole VLs (paths of one VL share their prefix
      // recursion); bounds are pure functions of (config, options, caps),
      // so work stealing stays bit-identical.
      std::vector<VlId> vl_order;
      std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
      for (std::size_t i : targets) {
        if (vl_paths[all[i].vl].empty()) vl_order.push_back(all[i].vl);
        vl_paths[all[i].vl].push_back(i);
      }
      engine::ThreadPool& pool = engine_->pool();
      state->local.resize(static_cast<std::size_t>(pool.thread_count()));
      pool.parallel_for_dynamic(vl_order.size(), [&](std::size_t k, int w) {
        auto& analyzer = state->local[static_cast<std::size_t>(w)];
        if (!analyzer) {
          analyzer = std::make_unique<trajectory::Analyzer>(cfg_, state->opts);
          if (state->caps.has_value()) {
            analyzer->set_backlog_caps(*state->caps);
          }
          analyzer->set_prefix_cache(state->pcache.get());
        }
        for (std::size_t i : vl_paths[vl_order[k]]) {
          out[i] = analyzer->bound_to_link(all[i].vl, all[i].links.back());
        }
      });
    };
    RungDef def;
    def.id = id;
    def.cost_estimate = [base, cost_factor] { return base * cost_factor; };
    def.compute = [this, compute_paths] {
      std::vector<std::size_t> everything(cfg_.all_paths().size());
      std::iota(everything.begin(), everything.end(), std::size_t{0});
      std::vector<Microseconds> out(everything.size(), kInf);
      compute_paths(everything, out);
      return out;
    };
    def.compute_paths = compute_paths;
    set(std::move(def));
  };
  make_trajectory_rung(Rung::kTrajectory, /*serialization=*/false, 6.0);
  make_trajectory_rung(Rung::kTrajectoryPruned, /*serialization=*/true, 8.0);
}

LadderResult BoundLadder::run(const LadderOptions& options) {
  const auto t0 = Clock::now();
  register_standard_rungs(options);

  const std::size_t n = cfg_.all_paths().size();
  LadderResult res;
  res.bounds.assign(n, kInf);
  res.provenance.assign(n, PathProvenance{});
  res.status.assign(n, engine::PathStatus{});
  for (std::size_t k = 0; k < kRungCount; ++k) {
    res.rungs[k].cost_estimate =
        rungs_[k].cost_estimate ? rungs_[k].cost_estimate() : 0.0;
  }

  std::vector<std::size_t> everything(n);
  std::iota(everything.begin(), everything.end(), std::size_t{0});

  Budget budget(options, res.path_evals);

  // Runs rung k on the whole configuration; returns false when the rung
  // itself failed (its stats record the reason).
  const auto run_whole = [&](std::size_t k) {
    RungStats& stats = res.rungs[k];
    stats.attempted = true;
    const auto r0 = Clock::now();
    try {
      std::vector<Microseconds> raw = rungs_[k].compute();
      AFDX_ASSERT(raw.size() == n, "ladder: rung results misaligned");
      res.rung_bounds[k] = std::move(raw);
      stats.completed = true;
    } catch (const Error& e) {
      stats.failed = true;
      stats.message = e.what();
    }
    stats.wall_us += elapsed_us(r0, Clock::now());
    if (!stats.completed) return false;
    res.path_evals += n;
    apply_raw(res, static_cast<Rung>(k), res.rung_bounds[k], everything,
              /*escalation=*/false);
    return true;
  };

  // Phase 1 -- the cheapest rung runs on every path *unconditionally*
  // (even with an already-expired budget): no path is ever left without a
  // bound. Rungs that fail outright (SFA on an unstable port) fall
  // through to the next rung up.
  std::size_t base_rung = kRungCount;
  for (std::size_t k = 0; k < kRungCount; ++k) {
    if (run_whole(k)) {
      base_rung = k;
      break;
    }
  }
  if (base_rung == kRungCount) {
    // Every rung failed; report the failure chain on every path.
    std::string detail = "ladder: every rung failed:";
    for (std::size_t k = 0; k < kRungCount; ++k) {
      detail += " [" + std::string(to_string(static_cast<Rung>(k))) + "] " +
                res.rungs[k].message;
    }
    for (std::size_t i = 0; i < n; ++i) {
      res.status[i].state = engine::PathState::kFailed;
      res.status[i].message = detail;
    }
    res.wall_us = elapsed_us(t0, Clock::now());
    return res;
  }
  for (std::size_t i = 0; i < n; ++i) {
    res.provenance[i].first_bound_us = res.bounds[i];
  }

  // Phase 2 -- remaining whole-config rungs, cheapest first, while the
  // budget allows. The per-path trajectory rungs are left for phase 3.
  for (std::size_t k = base_rung + 1; k < kRungCount; ++k) {
    if (rungs_[k].compute_paths) continue;
    if (!budget.allow(n)) break;
    (void)run_whole(k);
  }

  // Phase 3 -- per-path escalation through the trajectory rungs, most
  // disagreeing paths first. Disagreement of a path is the spread between
  // the loosest and the tightest raw bound the attempted rungs produced
  // for it: where the cheap rungs disagree most, climbing is most likely
  // to pay. Waves keep the budget checks coarse enough to stay
  // deterministic.
  std::vector<std::size_t> order;
  if (!budget.exhausted()) {
    std::vector<Microseconds> spread(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      Microseconds lo = kInf;
      Microseconds hi = -kInf;
      for (std::size_t k = 0; k < kRungCount; ++k) {
        if (res.rung_bounds[k].empty()) continue;
        if (!res.provenance[i].attempted(static_cast<Rung>(k))) continue;
        lo = std::min(lo, res.rung_bounds[k][i]);
        hi = std::max(hi, res.rung_bounds[k][i]);
      }
      spread[i] = (hi > lo) ? hi - lo : 0.0;
    }
    order = everything;
    std::stable_sort(order.begin(), order.end(),
                     [&spread](std::size_t a, std::size_t b) {
                       if (spread[a] != spread[b]) return spread[a] > spread[b];
                       return a < b;
                     });
  }
  const std::size_t wave_size =
      options.wave > 0 ? options.wave : kDefaultWave;
  for (std::size_t begin = 0; begin < order.size() && !budget.exhausted();
       begin += wave_size) {
    const std::size_t end = std::min(order.size(), begin + wave_size);
    std::vector<std::size_t> wave(order.begin() +
                                      static_cast<std::ptrdiff_t>(begin),
                                  order.begin() +
                                      static_cast<std::ptrdiff_t>(end));
    for (std::size_t k = base_rung + 1; k < kRungCount; ++k) {
      if (!rungs_[k].compute_paths) continue;
      // Drop the paths this rung already bounded (a trajectory rung can
      // have served as the base rung).
      std::vector<std::size_t> todo;
      todo.reserve(wave.size());
      for (std::size_t i : wave) {
        if (!res.provenance[i].attempted(static_cast<Rung>(k))) {
          todo.push_back(i);
        }
      }
      if (todo.empty()) continue;
      if (!budget.allow(todo.size())) break;
      RungStats& stats = res.rungs[k];
      stats.attempted = true;
      if (res.rung_bounds[k].empty()) res.rung_bounds[k].assign(n, kInf);
      const auto r0 = Clock::now();
      try {
        rungs_[k].compute_paths(todo, res.rung_bounds[k]);
      } catch (const Error& e) {
        stats.failed = true;
        stats.message = e.what();
        stats.wall_us += elapsed_us(r0, Clock::now());
        continue;
      }
      stats.wall_us += elapsed_us(r0, Clock::now());
      res.path_evals += todo.size();
      apply_raw(res, static_cast<Rung>(k), res.rung_bounds[k], todo,
                /*escalation=*/true);
      stats.completed = stats.paths_bounded == n;
    }
  }

  res.budget_exhausted = budget.exhausted();
  res.budget_reason = budget.reason();

  // Partial provenance: when a budget cut the climb, every path stranded
  // below the top of the ladder keeps its cheapest completed bound, with
  // a PathStatus message naming the rung that bound came from -- degraded
  // but never missing.
  if (res.budget_exhausted) {
    std::size_t target = kRungCount - 1;
    while (target > 0 && res.rungs[target].failed) --target;
    for (std::size_t i = 0; i < n; ++i) {
      if (!res.provenance[i].attempted(static_cast<Rung>(target))) {
        res.status[i].message =
            "ladder: budget exhausted before full escalation (bound from "
            "rung " +
            std::string(to_string(res.provenance[i].winner)) + ")";
      }
    }
  }

  res.wall_us = elapsed_us(t0, Clock::now());
  return res;
}

LadderResult run_ladder(const TrafficConfig& config,
                        const LadderOptions& options,
                        const engine::Options& engine_options) {
  BoundLadder ladder(config, engine_options);
  return ladder.run(options);
}

}  // namespace afdx::analysis

// Worst-Case Network Calculus (WCNC) analyzer for AFDX, as used for A380
// certification and described in Section II of the paper.
//
// Model:
//   * each VL enters the network constrained by the leaky bucket
//     alpha_v(t) = 8 s_max + (8 s_max / BAG) t;
//   * each output port (ES or switch) offers the rate-latency service
//     beta(t) = R (t - L)+ to the FIFO aggregate of its crossing VLs;
//   * the port delay bound is the horizontal deviation h(aggregate, beta);
//   * crossing a port with delay bound D inflates a VL's burst by rho * D
//     (holistic propagation of the worst-case jitter);
//   * end-to-end bound of a path = sum of its port delay bounds.
//
// Grouping technique (the paper's refinement, enabled by default): at a
// switch port, the VLs arriving on one shared input link are serialized by
// that link, so their joint arrival is additionally capped by the leaky
// bucket (largest member frame, input-link rate). The vertical deviation of
// the same curves gives the port backlog bound used for buffer sizing.
//
// Ports are processed following the propagation partial order; when VL
// routes make that order cyclic the analyzer falls back to a monotone
// fixed-point iteration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "minplus/curve.hpp"
#include "netcalc/flow_index.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::netcalc {

struct Options {
  /// Apply the input-link serialization (grouping) refinement. Disabling it
  /// gives the historical, more pessimistic WCNC (ablation E8 of DESIGN.md).
  bool grouping = true;
  /// Maximum rounds of the fixed-point fallback for cyclic configurations.
  int max_iterations = 1000;
};

/// Analysis output for one output port.
struct PortReport {
  /// False when no VL crosses the port (other fields meaningless).
  bool used = false;
  /// Worst-case delay through the port (queueing + own transmission +
  /// technological latency). With several static-priority classes this is
  /// the worst class's delay; see level_delays for the per-class bounds.
  Microseconds delay = 0.0;
  /// Per-priority-class delay bounds (one entry per class crossing the
  /// port; FIFO configurations have a single class 0). Classes are served
  /// non-preemptively, highest (smallest value) first, FIFO within a class.
  std::map<std::uint8_t, Microseconds> level_delays;
  /// Worst-case FIFO buffer occupancy in bits (switch memory sizing),
  /// against the full rate-latency service model.
  Bits backlog = 0.0;
  /// Worst-case queue content in bits against the pure-rate service (the
  /// technological latency modelled at queue entry instead). This is the
  /// "work ahead of an arriving frame" bound the trajectory analyzer uses
  /// as its serialization cap; backlog - queue_backlog <= R * L.
  Bits queue_backlog = 0.0;
  /// Long-term utilization of the port.
  double utilization = 0.0;
};

/// Full analysis result.
struct Result {
  /// Per-port reports, indexed by LinkId.
  std::vector<PortReport> ports;
  /// End-to-end bounds, aligned with TrafficConfig::all_paths().
  std::vector<Microseconds> path_bounds;
  /// Number of fixed-point rounds used (1 when the config is feed-forward).
  int iterations = 0;

  /// Bound for a specific path; throws when the path does not exist.
  [[nodiscard]] Microseconds bound_for(const TrafficConfig& config,
                                       PathRef ref) const;
};

/// Runs the WCNC analysis. Throws afdx::Error when some port is unstable
/// (utilization > 1) or the fixed point does not converge.
[[nodiscard]] Result analyze(const TrafficConfig& config,
                             const Options& options = {});

/// Bounds of one output port -- the unit of work the parallel analysis
/// engine schedules across threads and memoizes per port.
struct PortBounds {
  std::map<std::uint8_t, Microseconds> level_delays;
  Bits backlog = 0.0;
  Bits queue_backlog = 0.0;
};

/// Computes the bounds of one output port, given the per-port per-class
/// delays of every upstream port (entries for ports not yet processed may
/// be empty as long as no crossing VL depends on them). Deterministic:
/// depends only on (config, port, options, upstream delays).
[[nodiscard]] PortBounds compute_port_bounds(
    const TrafficConfig& config, LinkId port, const Options& options,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays);

/// Flat-table overload of the per-port computation: same bounds, bit for
/// bit (the index fixes the original aggregation order), without the
/// per-call partition rebuild and per-upstream-port map lookups. This is
/// the hot-path variant used by analyze() and the parallel engine.
[[nodiscard]] PortBounds compute_port_bounds(const TrafficConfig& config,
                                             LinkId port,
                                             const Options& options,
                                             const DelayTable& delays,
                                             const PortFlowIndex& index);

/// Expands computed bounds into the public per-port report.
[[nodiscard]] PortReport make_report(const PortBounds& bounds,
                                     double utilization);

/// The used output ports grouped into propagation levels: every
/// predecessor of a level-k port sits in a level < k, so the ports of one
/// level are mutually independent and may be computed concurrently.
/// Returns nullopt when the VL routes make the dependency graph cyclic
/// (the fixed-point fallback applies instead).
[[nodiscard]] std::optional<std::vector<std::vector<LinkId>>>
propagation_levels(const TrafficConfig& config);

/// Sums the converged per-port per-class delays along every path of the
/// configuration (the final assembly step of the analysis), aligned with
/// TrafficConfig::all_paths().
[[nodiscard]] std::vector<Microseconds> path_bounds_from(
    const TrafficConfig& config,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays);

/// Flat-table overload of the path assembly.
[[nodiscard]] std::vector<Microseconds> path_bounds_from(
    const TrafficConfig& config, const DelayTable& delays);

/// The arrival curve of VL `vl` when it reaches port `port`, given the
/// already-known per-priority-class delays of upstream ports. Exposed for
/// tests.
[[nodiscard]] minplus::Curve arrival_curve_at(
    const TrafficConfig& config, VlId vl, LinkId port,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays);

/// The grouped arrival aggregate of the VLs crossing `port` (all priority
/// classes summed), optionally excluding one VL -- the cross-traffic curve
/// other analyses (e.g. the SFA residual-service method) build on. Exposed
/// as advanced API.
[[nodiscard]] minplus::Curve port_aggregate(
    const TrafficConfig& config, LinkId port, const Options& options,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays,
    VlId exclude = kInvalidVl);

/// Reconstructs the per-port, per-class delay vector from an analysis
/// result (the `port_delays` input of arrival_curve_at / port_aggregate).
[[nodiscard]] std::vector<std::map<std::uint8_t, Microseconds>> delay_table(
    const Result& result);

}  // namespace afdx::netcalc

// What-if exploration during network design: an integrator wants to add a
// new VL to an existing configuration and needs the admissible (BAG, s_max)
// region under a latency budget -- the workflow the paper's Figures 7-9
// sweeps come from.
//
//   $ ./incremental_design [budget_us]
#include <cstdlib>
#include <iostream>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "report/table.hpp"

using namespace afdx;

namespace {

/// Rebuilds the sample configuration with an extra VL "vNew" from e2 to e6
/// (sharing both switch hops with v1) and returns the combined bound of the
/// new VL's path.
Microseconds bound_with_new_vl(Microseconds bag, Bytes s_max) {
  const TrafficConfig base = config::sample_config();
  // Rebuild network and VLs through the public API; TrafficConfig is
  // immutable by design, so design iterations recreate it.
  Network net;
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < base.network().node_count(); ++n) {
    const Node& node = base.network().node(n);
    nodes.push_back(node.kind == NodeKind::kEndSystem
                        ? net.add_end_system(node.name)
                        : net.add_switch(node.name));
  }
  for (LinkId l = 0; l < base.network().link_count(); l += 2) {
    const Link& link = base.network().link(l);
    LinkParams lp;
    lp.rate = link.rate;
    net.connect(nodes[link.source], nodes[link.dest], lp);
  }
  std::vector<VirtualLink> vls;
  for (VlId v = 0; v < base.vl_count(); ++v) vls.push_back(base.vl(v));
  vls.push_back({"vNew", *net.find_node("e2"), {*net.find_node("e6")}, bag,
                 64, s_max});
  const TrafficConfig candidate(std::move(net), std::move(vls));
  const analysis::Comparison c = analysis::compare(candidate);
  return c.combined.back();  // the new VL's path is the last one
}

}  // namespace

int main(int argc, char** argv) {
  const Microseconds budget =
      argc > 1 ? std::strtod(argv[1], nullptr) : 400.0;
  std::cout << "admissible (BAG, s_max) region for a new e2 -> e6 VL under a "
            << format_us(budget) << " latency budget\n"
            << "(each cell: guaranteed bound in us; '*' = admissible)\n\n";

  report::Table t({"BAG \\ s_max", "200 B", "500 B", "1000 B", "1518 B"});
  for (double ms : {2.0, 4.0, 16.0, 64.0}) {
    std::vector<std::string> row{report::fmt(ms, 0) + " ms"};
    for (Bytes s : {200u, 500u, 1000u, 1518u}) {
      const Microseconds b = bound_with_new_vl(microseconds_from_ms(ms), s);
      row.push_back(report::fmt(b, 1) + (b <= budget ? " *" : ""));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout << "\nNote how the guaranteed bound grows with s_max but barely\n"
               "moves with the BAG -- the paper's Figure 9 in design-rule "
               "form.\n";
  return 0;
}

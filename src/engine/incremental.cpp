#include "engine/incremental.hpp"

#include <algorithm>
#include <unordered_map>

namespace afdx::engine {

namespace {

/// Everything the per-port computation reads about one crossing VL. Exact
/// (bitwise) comparison on purpose: any numeric drift must dirty the port.
struct CrossTuple {
  std::string name;
  LinkId pred = kInvalidLink;
  Microseconds bag = 0.0;
  Bytes s_min = 0;
  Bytes s_max = 0;
  Microseconds release_jitter = 0.0;
  std::uint8_t priority = 0;

  bool operator==(const CrossTuple&) const = default;
};

std::vector<CrossTuple> port_tuples(const TrafficConfig& cfg, LinkId port) {
  std::vector<CrossTuple> out;
  out.reserve(cfg.vls_on_link(port).size());
  for (VlId v : cfg.vls_on_link(port)) {
    const VirtualLink& vl = cfg.vl(v);
    out.push_back(CrossTuple{vl.name, cfg.route(v).predecessor(port), vl.bag,
                             vl.s_min, vl.s_max, vl.max_release_jitter,
                             vl.priority});
  }
  // Set comparison: VL names are unique within a configuration, so sorting
  // by (name, pred) makes the encounter order irrelevant.
  std::sort(out.begin(), out.end(),
            [](const CrossTuple& a, const CrossTuple& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.pred < b.pred;
            });
  return out;
}

}  // namespace

IncrementalPlan plan_incremental(const TrafficConfig& baseline,
                                 const TrafficConfig& current,
                                 const std::vector<LinkId>& changed_links) {
  IncrementalPlan plan;
  const Network& bnet = baseline.network();
  const Network& cnet = current.network();
  const std::size_t n = cnet.link_count();

  if (bnet.link_count() != n) {
    plan.reason = "baseline and current networks have different link sets";
    return plan;
  }
  for (LinkId l = 0; l < n; ++l) {
    const Link& a = bnet.link(l);
    const Link& b = cnet.link(l);
    if (a.source != b.source || a.dest != b.dest || a.rate != b.rate ||
        a.latency != b.latency) {
      plan.reason = "link " + std::to_string(l) + " parameters differ";
      return plan;
    }
  }
  for (LinkId l : changed_links) {
    if (l >= n) {
      plan.reason = "changed link id out of range";
      return plan;
    }
  }

  plan.base_vl.assign(current.vl_count(), kInvalidVl);
  std::unordered_map<std::string, VlId> baseline_by_name;
  baseline_by_name.reserve(baseline.vl_count());
  for (VlId v = 0; v < baseline.vl_count(); ++v) {
    baseline_by_name.emplace(baseline.vl(v).name, v);
  }
  for (VlId v = 0; v < current.vl_count(); ++v) {
    const auto it = baseline_by_name.find(current.vl(v).name);
    if (it != baseline_by_name.end()) plan.base_vl[v] = it->second;
  }

  // Seeds: the changed links themselves plus every port whose crossing
  // tuple set differs (reroutes, dropped VLs, parameter edits).
  plan.dirty.assign(n, 0);
  for (LinkId l : changed_links) plan.dirty[l] = 1;
  for (LinkId l = 0; l < n; ++l) {
    if (plan.dirty[l]) continue;
    if (port_tuples(baseline, l) != port_tuples(current, l)) plan.dirty[l] = 1;
  }

  // Downstream closure along the changed configuration's propagation
  // edges.
  std::vector<std::vector<LinkId>> successors(n);
  for (LinkId port = 0; port < n; ++port) {
    for (VlId v : current.vls_on_link(port)) {
      const LinkId pred = current.route(v).predecessor(port);
      if (pred != kInvalidLink) successors[pred].push_back(port);
    }
  }
  std::vector<LinkId> stack;
  for (LinkId l = 0; l < n; ++l) {
    if (plan.dirty[l]) stack.push_back(l);
  }
  while (!stack.empty()) {
    const LinkId p = stack.back();
    stack.pop_back();
    for (LinkId s : successors[p]) {
      if (!plan.dirty[s]) {
        plan.dirty[s] = 1;
        stack.push_back(s);
      }
    }
  }

  for (LinkId l = 0; l < n; ++l) {
    if (current.vls_on_link(l).empty()) continue;
    (plan.dirty[l] ? plan.dirty_ports : plan.clean_ports).push_back(l);
  }
  plan.compatible = true;
  return plan;
}

}  // namespace afdx::engine

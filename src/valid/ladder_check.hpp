// The accuracy/cost ladder oracle of the differential fuzzing stack.
//
// check_ladder() runs the BoundLadder twice on one configuration -- once
// with an unlimited budget, once with a deliberately tight deterministic
// token budget -- and appends a Violation for every falsified ladder
// invariant:
//
//   ladder-dominance
//     * the cumulative rung bounds dominate every simulated schedule
//       (sim <= ladder(trajectory_pruned) <= ... <= ladder(sfa));
//     * the cumulative chain is monotone non-increasing up the ladder;
//     * the raw refinement edges only tighten: raw wcnc_grouping <= raw
//       wcnc, raw trajectory_pruned <= raw trajectory.
//   ladder-provenance
//     * provenance covers 100% of the paths, every non-failed path has a
//       finite, non-zero bound;
//     * the final bound equals the tightest rung the ladder ran on the
//       path and the recorded winner is that rung;
//     * the budgeted run is sandwiched: cheapest-rung bound >= budgeted
//       bound >= unlimited bound, every stranded path carries a partial
//       PathStatus message, and the budgeted run reports exhaustion.
//
// Fault::kLoosenLadderRung inflates the wcnc_grouping rung's raw bounds
// before checking -- the harness's way of proving the oracle would catch
// a rung whose refinement silently loosened.
#pragma once

#include "valid/validation.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::valid {

/// Appends ladder violations to `out.violations` and fills `out.ladder`.
/// Requires `out.simulated` to be filled (check_config calls it after the
/// schedule battery). Exposed for the ladder self-test and tests.
void check_ladder(const TrafficConfig& config, const CheckOptions& options,
                  CheckResult& out);

}  // namespace afdx::valid

file(REMOVE_RECURSE
  "libafdx_sfa.a"
)

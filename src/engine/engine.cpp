#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iomanip>
#include <limits>
#include <optional>
#include <ostream>

#include <ctime>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::engine {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

Microseconds elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Process-wide CPU time (all threads) in microseconds; wall vs cpu is how
/// the metrics expose effective parallelism.
Microseconds cpu_now_us() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<Microseconds>(ts.tv_sec) * 1e6 +
           static_cast<Microseconds>(ts.tv_nsec) * 1e-3;
  }
#endif
  return static_cast<Microseconds>(std::clock()) * 1e6 /
         static_cast<Microseconds>(CLOCKS_PER_SEC);
}

/// Per-phase wall-time histograms in the global observability registry;
/// resolved once, then each observation is an atomic add.
void observe_phase_us(const char* phase, Microseconds wall_us) {
  obs::registry()
      .histogram(std::string("engine.phase.") + phase + ".wall_us")
      .observe(wall_us > 0.0 ? static_cast<std::uint64_t>(wall_us) : 0u);
}

/// Throughput guarded against zero-path / zero-duration runs (a trivial
/// configuration or a clock too coarse for the run must yield 0, not NaN).
double safe_paths_per_second(std::size_t paths, Microseconds wall_us) {
  if (paths == 0 || !(wall_us > 0.0)) return 0.0;
  return static_cast<double>(paths) / (wall_us * 1e-6);
}

/// 0.0 instead of NaN/inf for degenerate inputs, keeping printed metrics
/// sane on trivial runs.
double finite_or_zero(double value) {
  return std::isfinite(value) ? value : 0.0;
}

}  // namespace

const char* to_string(PathState state) noexcept {
  switch (state) {
    case PathState::kOk:
      return "ok";
    case PathState::kFailed:
      return "failed";
    case PathState::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool RunResult::complete() const noexcept {
  for (const PathStatus& s : status) {
    if (!s.ok()) return false;
  }
  return true;
}

void RunMetrics::print(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "engine: " << threads << " thread" << (threads == 1 ? "" : "s")
      << ", " << paths << " paths, " << std::setprecision(0)
      << finite_or_zero(paths_per_second) << " paths/s\n"
      << std::setprecision(3) << "  wall ms: netcalc "
      << netcalc_wall_us / 1000.0 << " | trajectory "
      << trajectory_wall_us / 1000.0 << " | combine "
      << combine_wall_us / 1000.0 << " | total " << total_wall_us / 1000.0
      << "\n"
      << "  cpu ms: " << total_cpu_us / 1000.0 << " ("
      << std::setprecision(2)
      << finite_or_zero(total_wall_us > 0.0 ? total_cpu_us / total_wall_us
                                            : 0.0)
      << "x parallelism)\n"
      << std::setprecision(3) << "  levels: " << levels << " (max width "
      << max_level_width << ")\n"
      << "  port cache: " << cache.hits << " hits / " << cache.misses
      << " misses (" << std::setprecision(1)
      << finite_or_zero(cache.hit_rate()) * 100.0 << " % hit rate)\n"
      << "  tasks/thread:";
  for (std::size_t n : tasks_per_thread) out << " " << n;
  out << "\n";
  out.flags(flags);
  out.precision(precision);
}

AnalysisEngine::AnalysisEngine(const TrafficConfig& config, Options options)
    : cfg_(config), pool_(ThreadPool::resolve_thread_count(options.threads)) {}

netcalc::Result AnalysisEngine::run_netcalc(const netcalc::Options& options) {
  AFDX_TRACE_SPAN("engine.netcalc", "engine");
  const std::size_t n_links = cfg_.network().link_count();
  const std::uint64_t okey = PortCache::options_key(options);
  metrics_.levels = 0;
  metrics_.max_level_width = 0;

  netcalc::Result result;
  result.ports.assign(n_links, netcalc::PortReport{});
  std::vector<std::map<std::uint8_t, Microseconds>> delays(n_links);

  const auto levels = netcalc::propagation_levels(cfg_);
  if (!levels.has_value()) {
    // Cyclic configuration: the fixed point is inherently sequential.
    // Serve fully-cached reruns from the per-port cache; otherwise run the
    // serial analyzer once and memoize its converged bounds.
    std::vector<LinkId> used_ports;
    for (LinkId l = 0; l < n_links; ++l) {
      if (!cfg_.vls_on_link(l).empty()) used_ports.push_back(l);
    }
    const auto rounds = iterations_.find(okey);
    if (rounds != iterations_.end() && cache_.covers(okey, used_ports)) {
      for (LinkId port : used_ports) {
        const auto bounds = cache_.lookup(okey, port);
        delays[port] = bounds->level_delays;
        result.ports[port] =
            netcalc::make_report(*bounds, cfg_.utilization(port));
      }
      result.iterations = rounds->second;
      result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
      return result;
    }
    result = netcalc::analyze(cfg_, options);
    for (LinkId port : used_ports) {
      const netcalc::PortReport& r = result.ports[port];
      cache_.store(okey, port,
                   netcalc::PortBounds{r.level_delays, r.backlog,
                                       r.queue_backlog});
    }
    iterations_[okey] = result.iterations;
    return result;
  }

  // Feed-forward: propagate level by level; ports of one level have no
  // mutual dependency, so each level is sharded across the pool. Results
  // land in per-port slots, making the pass order-independent and
  // bit-identical to the serial analyzer.
  metrics_.levels = levels->size();
  static obs::Histogram& level_width =
      obs::registry().histogram("engine.level.width");
  std::vector<netcalc::PortBounds> bounds(n_links);
  for (const std::vector<LinkId>& level : *levels) {
    AFDX_TRACE_SPAN("engine.netcalc.level", "engine");
    level_width.observe(level.size());
    metrics_.max_level_width = std::max(metrics_.max_level_width,
                                        level.size());
    pool_.parallel_for(level.size(), [&](std::size_t i, int) {
      const LinkId port = level[i];
      if (auto hit = cache_.lookup(okey, port); hit.has_value()) {
        bounds[port] = std::move(*hit);
      } else {
        bounds[port] =
            netcalc::compute_port_bounds(cfg_, port, options, delays);
        cache_.store(okey, port, bounds[port]);
      }
    });
    for (LinkId port : level) {
      delays[port] = bounds[port].level_delays;
      result.ports[port] =
          netcalc::make_report(bounds[port], cfg_.utilization(port));
    }
  }
  result.iterations = 1;
  result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
  return result;
}

std::vector<Microseconds> AnalysisEngine::run_trajectory(
    const trajectory::Options& options) {
  AFDX_TRACE_SPAN("engine.trajectory", "engine");
  const std::vector<VlPath>& paths = cfg_.all_paths();
  std::vector<Microseconds> out(paths.size(), 0.0);

  // Serialization caps from the shared default-options WCNC run -- the
  // same envelopes Analyzer::backlog_caps() would derive per instance.
  std::optional<std::vector<Microseconds>> caps;
  if (options.serialization) {
    caps.emplace(cfg_.network().link_count(),
                 std::numeric_limits<Microseconds>::infinity());
    try {
      const netcalc::Result nc = run_netcalc(netcalc::Options{});
      for (LinkId l = 0; l < cfg_.network().link_count(); ++l) {
        if (nc.ports[l].used) {
          (*caps)[l] =
              nc.ports[l].queue_backlog / cfg_.network().link(l).rate;
        }
      }
    } catch (const Error&) {
      // The envelope analysis fails only on unstable ports, where the
      // busy period diverges anyway; fall back to uncapped, exactly like
      // the legacy analyzer.
    }
  }

  // Shards own whole VLs: paths of one VL share their prefix recursion,
  // so keeping a VL on one worker preserves the analyzer's memoization.
  std::vector<VlId> vl_order;
  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (vl_paths[paths[i].vl].empty()) vl_order.push_back(paths[i].vl);
    vl_paths[paths[i].vl].push_back(i);
  }

  const auto shards = static_cast<std::size_t>(pool_.thread_count());
  pool_.parallel_for(shards, [&](std::size_t w, int) {
    const std::size_t begin = vl_order.size() * w / shards;
    const std::size_t end = vl_order.size() * (w + 1) / shards;
    if (begin == end) return;
    AFDX_TRACE_SPAN("engine.trajectory.shard", "engine");
    trajectory::Analyzer analyzer(cfg_, options);
    if (caps.has_value()) analyzer.set_backlog_caps(*caps);
    for (std::size_t k = begin; k < end; ++k) {
      for (std::size_t i : vl_paths[vl_order[k]]) {
        out[i] = analyzer.bound_to_link(paths[i].vl, paths[i].links.back());
      }
    }
  });
  return out;
}

RunResult AnalysisEngine::run(const netcalc::Options& nc_options,
                              const trajectory::Options& tj_options) {
  AFDX_TRACE_SPAN("engine.run", "engine");
  RunResult result;
  const auto t0 = Clock::now();
  const Microseconds cpu0 = cpu_now_us();
  result.netcalc_result = run_netcalc(nc_options);
  result.netcalc = result.netcalc_result.path_bounds;
  const auto t1 = Clock::now();
  result.trajectory = run_trajectory(tj_options);
  const auto t2 = Clock::now();
  AFDX_ASSERT(result.netcalc.size() == result.trajectory.size(),
              "engine: method results misaligned");
  {
    AFDX_TRACE_SPAN("engine.combine", "engine");
    result.combined.reserve(result.netcalc.size());
    for (std::size_t i = 0; i < result.netcalc.size(); ++i) {
      result.combined.push_back(
          std::min(result.netcalc[i], result.trajectory[i]));
    }
  }
  const auto t3 = Clock::now();

  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.combine_wall_us += elapsed_us(t2, t3);
  metrics_.total_wall_us += elapsed_us(t0, t3);
  metrics_.total_cpu_us += cpu_now_us() - cpu0;
  metrics_.paths = result.combined.size();
  metrics_.paths_per_second =
      safe_paths_per_second(metrics_.paths, elapsed_us(t0, t3));
  observe_phase_us("netcalc", elapsed_us(t0, t1));
  observe_phase_us("trajectory", elapsed_us(t1, t2));
  observe_phase_us("combine", elapsed_us(t2, t3));
  obs::registry().counter("engine.runs").add();
  obs::registry().counter("engine.paths").add(result.combined.size());
  result.status.assign(result.combined.size(), PathStatus{});
  result.metrics = metrics();
  return result;
}

netcalc::Result AnalysisEngine::run_netcalc_contained(
    const netcalc::Options& options, const RunControl& control,
    std::vector<PortOutcome>& ports) {
  AFDX_TRACE_SPAN("engine.netcalc.contained", "engine");
  const Network& net = cfg_.network();
  const std::size_t n_links = net.link_count();

  netcalc::Result result;
  result.ports.assign(n_links, netcalc::PortReport{});
  result.iterations = 1;
  ports.assign(n_links, PortOutcome{});

  const auto port_name = [&](LinkId l) {
    return net.node(net.link(l).source).name + ">" +
           net.node(net.link(l).dest).name;
  };
  const auto mark_all_used = [&](PathState state, const std::string& msg) {
    for (LinkId l = 0; l < n_links; ++l) {
      if (!cfg_.vls_on_link(l).empty()) ports[l] = PortOutcome{state, msg};
    }
  };
  const auto expired = [&] {
    return control.cancel != nullptr && control.cancel->expired();
  };

  const auto levels = netcalc::propagation_levels(cfg_);
  if (!levels.has_value()) {
    // Cyclic configuration: the fixed point is inherently all-or-nothing,
    // so containment degrades to whole-phase granularity.
    if (expired()) {
      mark_all_used(PathState::kSkipped, control.cancel->reason());
      result.iterations = 0;
      return result;
    }
    try {
      return run_netcalc(options);
    } catch (const std::exception& e) {
      mark_all_used(PathState::kFailed, e.what());
      result.iterations = 0;
      return result;
    }
  }

  const std::uint64_t okey = PortCache::options_key(options);
  std::vector<netcalc::PortBounds> bounds(n_links);
  std::vector<std::map<std::uint8_t, Microseconds>> delays(n_links);
  bool abandoned = false;
  for (const std::vector<LinkId>& level : *levels) {
    if (!abandoned && expired()) abandoned = true;
    if (abandoned) {
      for (LinkId port : level) {
        ports[port] = PortOutcome{PathState::kSkipped,
                                  control.cancel->reason()};
      }
      continue;
    }

    // Dependency screen (serial; only reads outcomes of earlier levels): a
    // port whose crossing VLs arrive via a failed or skipped port cannot be
    // computed -- its inputs are unknown -- and is skipped, which in turn
    // taints everything downstream of it.
    std::vector<LinkId> compute;
    compute.reserve(level.size());
    for (LinkId port : level) {
      LinkId bad = kInvalidLink;
      for (VlId v : cfg_.vls_on_link(port)) {
        const LinkId pred = cfg_.route(v).predecessor(port);
        if (pred != kInvalidLink && ports[pred].state != PathState::kOk) {
          bad = pred;
          break;
        }
      }
      if (bad != kInvalidLink) {
        ports[port] = PortOutcome{
            PathState::kSkipped, "upstream port " + port_name(bad) +
                                     " unavailable (" +
                                     to_string(ports[bad].state) + ")"};
      } else {
        compute.push_back(port);
      }
    }

    const auto failures =
        pool_.parallel_for_contained(compute.size(), [&](std::size_t i, int) {
          const LinkId port = compute[i];
          if (auto hit = cache_.lookup(okey, port); hit.has_value()) {
            bounds[port] = std::move(*hit);
          } else {
            bounds[port] =
                netcalc::compute_port_bounds(cfg_, port, options, delays);
            cache_.store(okey, port, bounds[port]);
          }
        });
    for (const ThreadPool::TaskFailure& f : failures) {
      ports[compute[f.index]] = PortOutcome{PathState::kFailed, f.message};
    }
    for (LinkId port : level) {
      if (ports[port].state != PathState::kOk) continue;
      delays[port] = bounds[port].level_delays;
      result.ports[port] =
          netcalc::make_report(bounds[port], cfg_.utilization(port));
    }
  }
  return result;
}

std::vector<Microseconds> AnalysisEngine::run_trajectory_contained(
    const trajectory::Options& options, const RunControl& control,
    const netcalc::Result& nc_result,
    const std::vector<PortOutcome>& nc_ports,
    std::vector<PathStatus>& path_status) {
  AFDX_TRACE_SPAN("engine.trajectory.contained", "engine");
  const std::vector<VlPath>& paths = cfg_.all_paths();
  const std::size_t n_links = cfg_.network().link_count();
  std::vector<Microseconds> out(paths.size(), kInf);
  path_status.assign(paths.size(), PathStatus{});

  // Serialization caps from the contained WCNC pass: ports that failed or
  // were skipped stay uncapped (an infinite cap is simply no refinement),
  // exactly like the legacy fallback on a throwing envelope analysis.
  std::optional<std::vector<Microseconds>> caps;
  if (options.serialization) {
    caps.emplace(n_links, kInf);
    for (LinkId l = 0; l < n_links; ++l) {
      if (nc_ports[l].state == PathState::kOk && nc_result.ports[l].used) {
        (*caps)[l] =
            nc_result.ports[l].queue_backlog / cfg_.network().link(l).rate;
      }
    }
  }

  std::vector<VlId> vl_order;
  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (vl_paths[paths[i].vl].empty()) vl_order.push_back(paths[i].vl);
    vl_paths[paths[i].vl].push_back(i);
  }

  const auto shards = static_cast<std::size_t>(pool_.thread_count());
  pool_.parallel_for(shards, [&](std::size_t w, int) {
    const std::size_t begin = vl_order.size() * w / shards;
    const std::size_t end = vl_order.size() * (w + 1) / shards;
    if (begin == end) return;
    // The analyzer's memoized prefix state may be left inconsistent by a
    // throw mid-recursion, so a failed path gets a fresh instance before
    // the shard continues.
    std::optional<trajectory::Analyzer> analyzer;
    std::string construct_error;
    const auto fresh = [&]() -> bool {
      try {
        analyzer.emplace(cfg_, options);
        if (caps.has_value()) analyzer->set_backlog_caps(*caps);
        return true;
      } catch (const std::exception& e) {
        construct_error = e.what();
        return false;
      }
    };
    bool alive = fresh();
    for (std::size_t k = begin; k < end; ++k) {
      for (std::size_t i : vl_paths[vl_order[k]]) {
        if (control.cancel != nullptr && control.cancel->expired()) {
          path_status[i] =
              PathStatus{PathState::kSkipped, control.cancel->reason()};
          continue;
        }
        if (!alive) {
          path_status[i] = PathStatus{PathState::kFailed, construct_error};
          continue;
        }
        try {
          out[i] = analyzer->bound_to_link(paths[i].vl, paths[i].links.back());
        } catch (const std::exception& e) {
          path_status[i] = PathStatus{PathState::kFailed, e.what()};
          alive = fresh();
        }
      }
    }
  });
  return out;
}

RunResult AnalysisEngine::run_resilient(const netcalc::Options& nc_options,
                                        const trajectory::Options& tj_options,
                                        const RunControl& control) {
  const Network& net = cfg_.network();
  const std::vector<VlPath>& paths = cfg_.all_paths();
  const std::size_t n = paths.size();
  const auto port_name = [&](LinkId l) {
    return net.node(net.link(l).source).name + ">" +
           net.node(net.link(l).dest).name;
  };

  AFDX_TRACE_SPAN("engine.run_resilient", "engine");
  RunResult result;
  const auto t0 = Clock::now();
  const Microseconds cpu0 = cpu_now_us();
  std::vector<PortOutcome> nc_ports;
  result.netcalc_result = run_netcalc_contained(nc_options, control, nc_ports);

  // Per-path WCNC assembly: a path is only as good as every port it
  // crosses; the first non-ok port carries the explanation.
  result.netcalc.assign(n, kInf);
  std::vector<PathStatus> nc_status(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VlPath& p = paths[i];
    const std::uint8_t level = cfg_.vl(p.vl).priority;
    Microseconds total = 0.0;
    for (LinkId l : p.links) {
      if (nc_ports[l].state != PathState::kOk) {
        nc_status[i] = PathStatus{
            nc_ports[l].state,
            "wcnc: port " + port_name(l) + " " +
                std::string(to_string(nc_ports[l].state)) +
                (nc_ports[l].message.empty() ? "" : ": " + nc_ports[l].message)};
        total = kInf;
        break;
      }
      const auto& delays = result.netcalc_result.ports[l].level_delays;
      const auto it = delays.find(level);
      AFDX_ASSERT(it != delays.end(), "engine: missing level delay");
      total += it->second;
    }
    result.netcalc[i] = total;
  }
  result.netcalc_result.path_bounds = result.netcalc;
  const auto t1 = Clock::now();

  std::vector<PathStatus> tj_status;
  result.trajectory = run_trajectory_contained(tj_options, control,
                                               result.netcalc_result, nc_ports,
                                               tj_status);
  const auto t2 = Clock::now();

  // Combine: the per-path minimum over the methods that did produce a
  // bound. A path is ok as long as one method survived; the message still
  // records the degraded method so nothing fails silently.
  result.combined.assign(n, kInf);
  result.status.assign(n, PathStatus{});
  for (std::size_t i = 0; i < n; ++i) {
    result.combined[i] = std::min(result.netcalc[i], result.trajectory[i]);
    std::string message = nc_status[i].message;
    if (!tj_status[i].ok()) {
      if (!message.empty()) message += "; ";
      message += "trajectory " + std::string(to_string(tj_status[i].state)) +
                 ": " + tj_status[i].message;
    }
    if (std::isfinite(result.combined[i])) {
      result.status[i] = PathStatus{PathState::kOk, std::move(message)};
    } else {
      const bool failed = nc_status[i].state == PathState::kFailed ||
                          tj_status[i].state == PathState::kFailed;
      result.status[i] = PathStatus{
          failed ? PathState::kFailed : PathState::kSkipped,
          std::move(message)};
    }
  }
  const auto t3 = Clock::now();

  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.combine_wall_us += elapsed_us(t2, t3);
  metrics_.total_wall_us += elapsed_us(t0, t3);
  metrics_.total_cpu_us += cpu_now_us() - cpu0;
  metrics_.paths = n;
  metrics_.paths_per_second = safe_paths_per_second(n, elapsed_us(t0, t3));
  observe_phase_us("netcalc", elapsed_us(t0, t1));
  observe_phase_us("trajectory", elapsed_us(t1, t2));
  observe_phase_us("combine", elapsed_us(t2, t3));
  obs::registry().counter("engine.runs").add();
  obs::registry().counter("engine.paths").add(n);
  result.metrics = metrics();
  return result;
}

netcalc::Result AnalysisEngine::netcalc_only(
    const netcalc::Options& nc_options) {
  const auto t0 = Clock::now();
  netcalc::Result result = run_netcalc(nc_options);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.netcalc_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.path_bounds.size();
  metrics_.paths_per_second = safe_paths_per_second(metrics_.paths, dt);
  return result;
}

std::vector<Microseconds> AnalysisEngine::trajectory_only(
    const trajectory::Options& tj_options) {
  const auto t0 = Clock::now();
  std::vector<Microseconds> result = run_trajectory(tj_options);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.trajectory_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.size();
  metrics_.paths_per_second = safe_paths_per_second(result.size(), dt);
  return result;
}

RunMetrics AnalysisEngine::metrics() const {
  RunMetrics m = metrics_;
  m.cache = cache_.stats();
  m.threads = pool_.thread_count();
  m.tasks_per_thread = pool_.tasks_per_thread();
  return m;
}

}  // namespace afdx::engine

// Extension bench: the generic network-calculus baseline (SFA, as in
// general-purpose tools like DiscoDNC) against the paper's two specialized
// AFDX analyses -- quantifying the value of exploiting the AFDX FIFO
// structure, which is the paper's raison d'etre.
#include <numeric>

#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "sfa/sfa_analyzer.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "EXT / generic SFA baseline vs the paper's specialized analyses\n\n";

  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);
  const auto sfa_bounds = sfa::analyze(cfg).path_bounds;

  auto mean_of = [](const std::vector<Microseconds>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  std::size_t sfa_wins = 0;
  for (std::size_t i = 0; i < sfa_bounds.size(); ++i) {
    if (sfa_bounds[i] < c.combined[i] - kEpsilon) ++sfa_wins;
  }

  report::Table t({"method", "mean bound (us)", "vs combined"});
  const double combined_mean = mean_of(c.combined);
  auto rel = [&](double m) {
    return report::fmt((m - combined_mean) / combined_mean * 100.0) + " %";
  };
  t.add_row({"SFA (generic, DiscoDNC-style)", report::fmt(mean_of(sfa_bounds)),
             rel(mean_of(sfa_bounds))});
  t.add_row({"WCNC grouped (paper)", report::fmt(mean_of(c.netcalc)),
             rel(mean_of(c.netcalc))});
  t.add_row({"Trajectory (paper)", report::fmt(mean_of(c.trajectory)),
             rel(mean_of(c.trajectory))});
  t.add_row({"Combined (paper)", report::fmt(combined_mean), "--"});
  t.print(out);

  out << "\nSFA is strictly tighter than the combined method on " << sfa_wins
      << " of " << sfa_bounds.size()
      << " paths: the specialized FIFO-aware analyses dominate the generic\n"
         "tooling on AFDX, which is exactly the paper's motivation.\n";
}

void BM_SfaIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfa::analyze(cfg));
  }
}
BENCHMARK(BM_SfaIndustrial)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

#include "redundancy/redundancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace afdx::redundancy {

const PathRedundancy& Result::for_path(const TrafficConfig& config_a,
                                       PathRef ref) const {
  const auto& all = config_a.all_paths();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].vl == ref.vl && all[i].dest_index == ref.dest_index) {
      return paths[i];
    }
  }
  throw Error("redundancy Result::for_path: unknown path");
}

void require_mirrored_vls(const TrafficConfig& a, const TrafficConfig& b) {
  AFDX_REQUIRE(a.vl_count() == b.vl_count(),
               "redundancy: the two networks carry different VL counts");
  for (VlId v = 0; v < a.vl_count(); ++v) {
    const VirtualLink& va = a.vl(v);
    const VirtualLink& vb = b.vl(v);
    AFDX_REQUIRE(va.name == vb.name,
                 "redundancy: VL order/name mismatch at index " +
                     std::to_string(v));
    AFDX_REQUIRE(nearly_equal(va.bag, vb.bag) && va.s_min == vb.s_min &&
                     va.s_max == vb.s_max && va.priority == vb.priority,
                 "redundancy: VL " + va.name +
                     " has different contracts on the two networks");
    AFDX_REQUIRE(a.network().node(va.source).name ==
                     b.network().node(vb.source).name,
                 "redundancy: VL " + va.name + " has different sources");
    AFDX_REQUIRE(va.destinations.size() == vb.destinations.size(),
                 "redundancy: VL " + va.name +
                     " has different destination counts");
    for (std::size_t d = 0; d < va.destinations.size(); ++d) {
      AFDX_REQUIRE(a.network().node(va.destinations[d]).name ==
                       b.network().node(vb.destinations[d]).name,
                   "redundancy: VL " + va.name +
                       " has different destinations");
    }
  }
}

Microseconds path_floor(const TrafficConfig& config, const VlPath& path) {
  const VirtualLink& vl = config.vl(path.vl);
  Microseconds floor = 0.0;
  for (LinkId l : path.links) {
    floor += vl.max_transmission_time(config.network().link(l).rate);
    if (config.route(path.vl).predecessor(l) != kInvalidLink) {
      floor += config.network().link(l).latency;
    }
  }
  return floor;
}

PathRedundancy combine(Microseconds bound_a, Microseconds floor_a,
                       Microseconds bound_b, Microseconds floor_b) {
  PathRedundancy pr;
  pr.first_arrival_bound = std::min(bound_a, bound_b);
  pr.skew_max = std::max(bound_a - floor_b, bound_b - floor_a);
  return pr;
}

Result analyze(const TrafficConfig& a,
               const std::vector<Microseconds>& bounds_a,
               const TrafficConfig& b,
               const std::vector<Microseconds>& bounds_b) {
  require_mirrored_vls(a, b);
  AFDX_REQUIRE(bounds_a.size() == a.all_paths().size() &&
                   bounds_b.size() == b.all_paths().size(),
               "redundancy: bounds misaligned with paths");
  AFDX_REQUIRE(bounds_a.size() == bounds_b.size(),
               "redundancy: the two networks expose different path counts");

  Result result;
  result.paths.reserve(bounds_a.size());
  for (std::size_t i = 0; i < bounds_a.size(); ++i) {
    result.paths.push_back(combine(bounds_a[i],
                                   path_floor(a, a.all_paths()[i]),
                                   bounds_b[i],
                                   path_floor(b, b.all_paths()[i])));
  }
  return result;
}

}  // namespace afdx::redundancy

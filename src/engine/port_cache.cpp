#include "engine/port_cache.hpp"

namespace afdx::engine {

std::optional<netcalc::PortBounds> PortCache::lookup(
    std::uint64_t options_key, LinkId port) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{options_key, port});
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void PortCache::store(std::uint64_t options_key, LinkId port,
                      const netcalc::PortBounds& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(Key{options_key, port}, bounds);
}

bool PortCache::covers(std::uint64_t options_key,
                       const std::vector<LinkId>& ports) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (LinkId port : ports) {
    if (entries_.find(Key{options_key, port}) == entries_.end()) return false;
  }
  return true;
}

std::size_t PortCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats PortCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_};
}

void PortCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace afdx::engine

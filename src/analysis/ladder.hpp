// Budget-driven accuracy/cost ladder over the repo's delay analyses.
//
// The paper's "combined" method already mixes two analyses per path (keep
// the tightest of WCNC+grouping and trajectory). BoundLadder generalizes
// that into a *ladder* of five rungs ordered loosest -> tightest:
//
//   rung 0  sfa              generic SFA (pay bursts only once, blind
//                            multiplexing residuals) -- the cheap baseline
//   rung 1  wcnc             WCNC without the grouping refinement
//   rung 2  wcnc_grouping    WCNC with grouping (the paper's Section III)
//   rung 3  trajectory       historical trajectory approach (no
//                            serialization refinement: simultaneous-
//                            arrival surcharge at every crossed port)
//   rung 4  trajectory_pruned  serialization-refined trajectory with the
//                            exact candidate-sweep prunings -- the
//                            tightest (and costliest) analysis in the repo
//
// Each rung registers a (cost_estimate_fn, compute_fn) pair. The
// scheduler runs the cheapest rung on every path (so no path is ever left
// without a bound), then climbs: whole-config rungs run in cost order
// while the budget allows, and the per-path trajectory rungs escalate the
// paths with the largest rung-vs-rung disagreement first, in waves
// sharded across the engine's work-stealing pool, until the budget is
// spent.
//
// Bound semantics -- cumulative rungs. Raw per-rung bounds do NOT form a
// chain (the golden lock has paths where raw WCNC beats raw trajectory
// and vice versa; that crossover is the whole point of the paper's
// combined method). The *ladder bound at rung k* is therefore the minimum
// over the raw bounds of rungs 0..k -- the bound the ladder would report
// had it stopped at rung k. With that definition the dominance chain
//
//   sim <= ladder(trajectory_pruned) <= ladder(trajectory)
//       <= ladder(wcnc_grouping) <= ladder(wcnc) <= ladder(sfa)
//
// holds by construction plus per-rung soundness, and is what the fuzzing
// oracle (valid::check_config with CheckOptions::ladder) enforces. Two
// raw refinement edges are analytic and checked as well: grouping only
// tightens (raw wcnc_grouping <= raw wcnc) and the serialization
// refinement only tightens (raw trajectory_pruned <= raw trajectory).
//
// Budgets: wall-clock (budget_ms, enforced through a CancelToken
// deadline, plus an optional external token for serving-mode deadlines)
// and/or a deterministic path-evaluation token budget (max_path_evals --
// one token per rung application to one path). Token budgets are checked
// only at wave boundaries, so for a fixed token budget the escalation
// schedule -- and every bound and provenance record -- is bit-identical
// across thread counts.
//
// Provenance: every path records the rungs attempted on it, the winning
// (tightest) rung, the first (cheapest-rung) bound and the tightening
// achieved. When the budget expires mid-escalation the unescalated paths
// keep their cheapest completed bound and their PathStatus carries a
// partial-provenance message (never a missing or zero bound);
// LadderResult::budget_exhausted tells the caller (afdx_analyze exits 3).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/cancel.hpp"
#include "engine/engine.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "trajectory/trajectory_analyzer.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::analysis {

/// The five standard rungs, ordered loosest (cheapest) -> tightest
/// (costliest). The numeric order is the ladder order.
enum class Rung : std::uint8_t {
  kSfa = 0,
  kWcnc = 1,
  kWcncGrouping = 2,
  kTrajectory = 3,
  kTrajectoryPruned = 4,
};

inline constexpr std::size_t kRungCount = 5;

/// Stable short name ("sfa", "wcnc", "wcnc_grouping", "trajectory",
/// "trajectory_pruned") used in provenance CSVs, JSON and CLI output.
[[nodiscard]] const char* to_string(Rung rung) noexcept;

/// Budget and tuning knobs of one ladder run.
struct LadderOptions {
  /// Wall-clock budget in milliseconds; 0 or negative = unlimited.
  double budget_ms = 0.0;
  /// Deterministic token budget: one token is spent per rung application
  /// to one path; 0 = unlimited. Checked only at wave boundaries, so the
  /// escalation schedule is bit-identical across thread counts.
  std::uint64_t max_path_evals = 0;
  /// External cancellation (e.g. a serving-mode request deadline). The
  /// cheapest completed rung's bounds are still reported when it fires.
  const engine::CancelToken* cancel = nullptr;
  /// Paths escalated per wave; 0 = a fixed default (32). The default is
  /// deliberately independent of the thread count: token budgets are
  /// checked at wave boundaries, so a thread-independent wave size keeps
  /// budgeted runs bit-identical across --threads.
  std::size_t wave = 0;
  /// Base options for the WCNC rungs (the grouping flag is overridden per
  /// rung) and the trajectory rungs (the serialization flag is overridden
  /// per rung).
  netcalc::Options netcalc;
  trajectory::Options trajectory;
};

/// Per-rung execution record of one ladder run.
struct RungStats {
  /// The rung was started (it may still have bounded only some paths).
  bool attempted = false;
  /// Whole-config rungs: ran to completion on every path.
  bool completed = false;
  /// Rung failed outright (e.g. SFA on an unstable port); message below.
  bool failed = false;
  std::string message;
  /// Paths this rung produced a raw bound for.
  std::size_t paths_bounded = 0;
  /// Pre-run relative cost estimate, in path-evaluation units.
  double cost_estimate = 0.0;
  Microseconds wall_us = 0.0;
};

/// Per-path provenance of one ladder run.
struct PathProvenance {
  /// The tightest rung attempted on this path (ties break toward the
  /// cheaper rung, deterministically).
  Rung winner = Rung::kSfa;
  /// Bit k set = rung k produced a raw bound for this path.
  std::uint8_t attempted_mask = 0;
  /// Bound after the cheapest successful rung (start of the ladder).
  Microseconds first_bound_us = 0.0;
  /// Final (cumulative-minimum) bound.
  Microseconds final_bound_us = 0.0;
  /// The path received at least one per-path trajectory escalation.
  bool escalated = false;

  [[nodiscard]] bool attempted(Rung rung) const noexcept {
    return (attempted_mask >> static_cast<unsigned>(rung)) & 1u;
  }
  /// Tightening achieved by climbing: first - final (>= 0).
  [[nodiscard]] Microseconds tightening_us() const noexcept {
    return first_bound_us - final_bound_us;
  }
};

/// Result of one ladder run. All vectors align with
/// TrafficConfig::all_paths().
struct LadderResult {
  /// Final per-path bounds: min over the raw bounds of every rung
  /// attempted on the path. Finite for every path whose status is not
  /// kFailed.
  std::vector<Microseconds> bounds;
  /// Raw per-rung bounds. A rung's vector is empty if the rung never ran;
  /// +infinity marks a path the rung did not reach (per-path escalation).
  std::array<std::vector<Microseconds>, kRungCount> rung_bounds;
  /// Provenance for 100% of paths.
  std::vector<PathProvenance> provenance;
  /// Per-path status: kOk with an empty message for fully escalated
  /// paths, kOk with a "ladder: budget exhausted ..." message for paths
  /// stranded below the top rung, kFailed when no rung bounded the path.
  std::vector<engine::PathStatus> status;
  std::array<RungStats, kRungCount> rungs{};
  /// True when any rung or wave was skipped because a budget expired.
  bool budget_exhausted = false;
  /// Human-readable reason when budget_exhausted ("deadline exceeded",
  /// "path-evaluation budget spent", ...).
  std::string budget_reason;
  /// Paths that received at least one per-path escalation.
  std::size_t paths_escalated = 0;
  /// Path-evaluation tokens spent (rung applications to paths).
  std::uint64_t path_evals = 0;
  Microseconds wall_us = 0.0;

  /// Every rung ran on every path (nothing was cut by a budget).
  [[nodiscard]] bool complete() const noexcept { return !budget_exhausted; }
  /// Cumulative ladder bound of `path` at `rung`: min over the raw bounds
  /// of rungs 0..rung that were attempted on the path; +infinity when none
  /// of them was.
  [[nodiscard]] Microseconds ladder_bound(std::size_t path, Rung rung) const;
};

/// The accuracy/cost ladder over one configuration. Owns an
/// engine::AnalysisEngine; whole-config rungs run through it (sharing its
/// port cache across rungs and runs) and per-path escalation waves shard
/// across its work-stealing pool. Rung registration is open: the
/// constructor registers the five standard rungs through the same
/// register_rung API a caller could use to replace one (tests inject
/// deliberately-loosened rungs this way).
class BoundLadder {
 public:
  /// One registered rung: a relative cost estimate (in path-evaluation
  /// units, used by the budget planner) and a whole-config compute
  /// returning raw bounds aligned with all_paths(). Rungs with
  /// `compute_paths` additionally support per-path escalation: fill
  /// `out[i]` for every path index i in `paths` (out is preallocated to
  /// all_paths().size() and already holds +infinity).
  struct RungDef {
    Rung id = Rung::kSfa;
    std::function<double()> cost_estimate;
    std::function<std::vector<Microseconds>()> compute;
    std::function<void(const std::vector<std::size_t>& paths,
                       std::vector<Microseconds>& out)>
        compute_paths;
  };

  explicit BoundLadder(const TrafficConfig& config,
                       const engine::Options& engine_options = {});
  BoundLadder(const BoundLadder&) = delete;
  BoundLadder& operator=(const BoundLadder&) = delete;

  /// Replaces the registration of def.id (the constructor has already
  /// registered the standard five).
  void register_rung(RungDef def);

  [[nodiscard]] LadderResult run(const LadderOptions& options = {});

  [[nodiscard]] engine::AnalysisEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const TrafficConfig& config() const noexcept { return cfg_; }

 private:
  void register_standard_rungs(const LadderOptions& options);

  const TrafficConfig& cfg_;
  std::unique_ptr<engine::AnalysisEngine> engine_;
  std::array<RungDef, kRungCount> rungs_{};
  /// Rungs replaced by register_rung survive across run() calls; the
  /// standard ones are re-bound to each run's options.
  std::array<bool, kRungCount> user_rung_{};
};

/// Convenience: one-shot ladder run.
[[nodiscard]] LadderResult run_ladder(const TrafficConfig& config,
                                      const LadderOptions& options = {},
                                      const engine::Options& engine_options = {});

}  // namespace afdx::analysis

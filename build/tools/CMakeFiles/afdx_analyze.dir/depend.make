# Empty dependencies file for afdx_analyze.
# This may be replaced when dependencies are built.

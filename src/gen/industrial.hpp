// Synthetic industrial AFDX configuration generator.
//
// The paper evaluates both methods on a proprietary Airbus configuration:
// two redundant sub-networks of eight switches each, more than one hundred
// end systems, ~1000 VLs / ~6000 VL paths, harmonic BAGs between 2 ms and
// 128 ms and Ethernet frame sizes between 64 B and 1518 B. That
// configuration cannot be shipped, so this generator produces a seeded
// random configuration with the same macroscopic statistics (DESIGN.md,
// "Substitutions"). The comparison experiments only depend on these
// statistics, not on Airbus wiring.
//
// The switch backbone is a random tree, which keeps the configuration
// feed-forward (a property the trajectory approach requires and that
// engineered avionics configurations have).
//
// Scaling beyond the paper: with `domains` > 1 the generator produces a
// hierarchical multi-domain network -- `domains` copies of the per-domain
// core/edge tree (switch_count and end_system_count are then PER DOMAIN),
// joined by a chain of backbone switches; a configurable fraction of the
// traffic bundles crosses domains over the backbone. The overall topology
// stays a tree: a directed-link cycle would be a non-backtracking closed
// walk, which trees do not have, so every multi-domain configuration is
// feed-forward by construction and the utilization cap is enforced on
// every link including the backbone. domains = 1 reproduces the legacy
// single-domain generator bit-for-bit (same RNG stream, same names).
#pragma once

#include <cstdint>

#include "vl/traffic_config.hpp"

namespace afdx::gen {

struct IndustrialOptions {
  std::uint64_t seed = 42;
  /// Switches of the sub-network (paper: 8 per redundant sub-network).
  int switch_count = 8;
  /// End systems (paper: >100 over the whole aircraft; ~60 per sub-network).
  int end_system_count = 60;
  /// Virtual links to generate.
  int vl_count = 500;
  /// Fraction of multicast VLs; multicast fan-out is drawn in
  /// [2, max_multicast_fanout].
  double multicast_fraction = 0.4;
  /// Largest multicast fan-out drawn (paper-scale configurations use up
  /// to 6 destinations; the fuzzing grid sweeps this).
  int max_multicast_fanout = 6;
  /// Harmonic BAG subrange actually drawn, in milliseconds. The defaults
  /// keep the paper's full 2..128 ms histogram; narrowing the range lets
  /// the validation campaigns sweep the BAG spread.
  double min_bag_ms = 2.0;
  double max_bag_ms = 128.0;
  /// Cap on the drawn s_max (bytes); the frame-size mix is truncated to
  /// [64, max_frame_bytes]. 1518 keeps the full Ethernet range.
  Bytes max_frame_bytes = kMaxEthernetFrame;
  /// Hard cap on any output-port long-term utilization; VLs that would
  /// exceed it are re-drawn with a larger BAG or dropped.
  double max_port_utilization = 0.75;
  /// Link rate (100 Mb/s) and switch latency (16 us) as in the paper.
  BitsPerMicrosecond link_rate = rate_from_mbps(100.0);
  Microseconds switch_latency = 16.0;
  /// Static-priority classes (1 = plain FIFO, the paper's model). With more
  /// classes, small-frame/short-BAG VLs are biased toward the high class,
  /// as avionics command/control traffic is.
  int priority_levels = 1;
  /// Maximum source release jitter applied to every VL (0 = ideal shapers).
  Microseconds max_release_jitter = 0.0;
  /// Hierarchical domains. 1 = the legacy single-domain generator
  /// (bit-identical RNG stream). With more domains, switch_count and
  /// end_system_count apply per domain and the domain trees are joined by
  /// a chain of ceil(domains / 4) backbone switches (airliner-and-beyond
  /// scale: 8 domains x 8 switches is a 66-switch, 10k-VL-class network).
  int domains = 1;
  /// Fraction of traffic bundles whose destination bay lies in a different
  /// domain (routed over the backbone). Ignored when domains == 1.
  double cross_domain_fraction = 0.05;
};

/// Generates the configuration. Deterministic for a given option set.
/// Throws afdx::Error when the parameters are infeasible (e.g. fewer than
/// two end systems).
[[nodiscard]] TrafficConfig industrial_config(const IndustrialOptions& options = {});

/// The harmonic BAG values used by the paper's industrial configuration
/// (2, 4, 8, ..., 128 ms), in microseconds.
[[nodiscard]] std::vector<Microseconds> harmonic_bags();

}  // namespace afdx::gen

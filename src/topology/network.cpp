#include "topology/network.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/error.hpp"

namespace afdx {

NodeId Network::add_node(std::string name, NodeKind kind) {
  AFDX_REQUIRE(!name.empty(), "node name must not be empty");
  AFDX_REQUIRE(!find_node(name).has_value(),
               "duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), kind});
  out_links_.emplace_back();
  in_links_.emplace_back();
  return id;
}

NodeId Network::add_end_system(std::string name) {
  return add_node(std::move(name), NodeKind::kEndSystem);
}

NodeId Network::add_switch(std::string name) {
  return add_node(std::move(name), NodeKind::kSwitch);
}

LinkId Network::connect(NodeId a, NodeId b, const LinkParams& params) {
  AFDX_REQUIRE(a < nodes_.size() && b < nodes_.size(),
               "connect: node id out of range");
  AFDX_REQUIRE(a != b, "connect: self-loop on node " + nodes_[a].name);
  AFDX_REQUIRE(!(is_end_system(a) && is_end_system(b)),
               "connect: end systems cannot be wired to each other (" +
                   nodes_[a].name + " -- " + nodes_[b].name + ")");
  AFDX_REQUIRE(!link_between(a, b).has_value(),
               "connect: duplicate cable between " + nodes_[a].name + " and " +
                   nodes_[b].name);
  AFDX_REQUIRE(params.rate > 0.0, "connect: link rate must be positive");

  auto port_latency = [&](NodeId src) {
    return is_switch(src) ? params.switch_latency : params.end_system_latency;
  };

  const LinkId forward = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, params.rate, port_latency(a)});
  out_links_[a].push_back(forward);
  in_links_[b].push_back(forward);

  const LinkId backward = static_cast<LinkId>(links_.size());
  links_.push_back(Link{b, a, params.rate, port_latency(b)});
  out_links_[b].push_back(backward);
  in_links_[a].push_back(backward);

  return forward;
}

const Node& Network::node(NodeId id) const {
  AFDX_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Network::link(LinkId id) const {
  AFDX_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<NodeId> Network::find_node(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return std::nullopt;
}

const std::vector<LinkId>& Network::links_from(NodeId id) const {
  AFDX_REQUIRE(id < nodes_.size(), "node id out of range");
  return out_links_[id];
}

const std::vector<LinkId>& Network::links_into(NodeId id) const {
  AFDX_REQUIRE(id < nodes_.size(), "node id out of range");
  return in_links_[id];
}

std::optional<LinkId> Network::link_between(NodeId a, NodeId b) const {
  AFDX_REQUIRE(a < nodes_.size() && b < nodes_.size(),
               "link_between: node id out of range");
  for (LinkId l : out_links_[a]) {
    if (links_[l].dest == b) return l;
  }
  return std::nullopt;
}

LinkId Network::reverse(LinkId id) const {
  AFDX_REQUIRE(id < links_.size(), "link id out of range");
  // connect() always creates the two directions back to back.
  return (id % 2 == 0) ? id + 1 : id - 1;
}

std::vector<NodeId> Network::end_systems() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kEndSystem) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Network::switches() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kSwitch) out.push_back(i);
  }
  return out;
}

std::optional<std::vector<LinkId>> Network::shortest_path(NodeId from,
                                                          NodeId to) const {
  return shortest_path(from, to, RouteConstraints{});
}

std::optional<std::vector<LinkId>> Network::shortest_path(
    NodeId from, NodeId to, const RouteConstraints& constraints) const {
  AFDX_REQUIRE(from < nodes_.size() && to < nodes_.size(),
               "shortest_path: node id out of range");
  if (constraints.node_blocked(from) || constraints.node_blocked(to)) {
    return std::nullopt;
  }
  if (from == to) return std::vector<LinkId>{};

  std::vector<LinkId> parent_link(nodes_.size(), kInvalidLink);
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<NodeId> queue;
  queue.push_back(from);
  visited[from] = true;

  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    // End systems never forward traffic; only the source may emit.
    if (cur != from && is_end_system(cur)) continue;
    for (LinkId l : out_links_[cur]) {
      if (constraints.link_blocked(l)) continue;
      const NodeId next = links_[l].dest;
      if (visited[next] || constraints.node_blocked(next)) continue;
      visited[next] = true;
      parent_link[next] = l;
      if (next == to) {
        std::vector<LinkId> path;
        for (NodeId n = to; n != from;) {
          const LinkId pl = parent_link[n];
          path.push_back(pl);
          n = links_[pl].source;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

void Network::validate() const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kEndSystem) {
      AFDX_REQUIRE(out_links_[i].size() == 1,
                   "end system " + n.name +
                       " must be connected to exactly one switch");
      const Link& l = links_[out_links_[i].front()];
      AFDX_REQUIRE(nodes_[l.dest].kind == NodeKind::kSwitch,
                   "end system " + n.name + " must be connected to a switch");
    } else {
      AFDX_REQUIRE(!out_links_[i].empty(),
                   "switch " + n.name + " has no connections");
    }
  }
  for (const Link& l : links_) {
    AFDX_REQUIRE(l.rate > 0.0, "link with non-positive rate");
    AFDX_REQUIRE(l.latency >= 0.0, "link with negative latency");
  }
}

}  // namespace afdx

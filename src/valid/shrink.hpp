// Auto-shrinking of invariant-violating configurations.
//
// When a campaign finds a violation, the raw witness is a full random
// configuration -- far too big to debug. shrink() greedily minimizes it
// while re-checking that *some* invariant still fails after every step:
//
//   1. restrict to the interferer closure of a violating path (every VL
//      sharing a port with it);
//   2. ddmin-style VL removal (halving chunks, then single VLs);
//   3. per-VL multicast destination pruning;
//   4. per-VL s_max halving toward s_min, and release-jitter zeroing;
//   5. topology pruning (drop every node and cable no surviving VL uses).
//
// Every candidate is re-validated with the same CheckOptions (including
// any injected Fault), so the minimized configuration reproduces the
// original failure mode. Routes are re-derived (shortest path) on every
// rebuild, as the generator does.
#pragma once

#include <cstddef>
#include <optional>

#include "valid/validation.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::valid {

struct ShrinkOptions {
  /// The check the shrunk configuration must keep failing.
  CheckOptions check;
  /// Greedy passes over the move list (each pass retries every move).
  int max_passes = 3;
  /// Hard budget on candidate evaluations; each evaluation is one full
  /// check_config() run, the dominating cost of shrinking.
  int max_evaluations = 250;
};

struct ShrinkResult {
  TrafficConfig config;
  /// First violation of the minimized configuration.
  Violation witness;
  std::size_t original_vls = 0;
  std::size_t vls = 0;
  std::size_t evaluations = 0;
};

/// Minimizes `config`; returns nullopt when the configuration does not
/// violate any invariant under `options.check` in the first place.
[[nodiscard]] std::optional<ShrinkResult> shrink(const TrafficConfig& config,
                                                 const ShrinkOptions& options);

}  // namespace afdx::valid

#include "vl/virtual_link.hpp"

#include "common/error.hpp"

namespace afdx {

void VirtualLink::validate() const {
  AFDX_REQUIRE(!name.empty(), "VL name must not be empty");
  AFDX_REQUIRE(source != kInvalidNode, "VL " + name + " has no source");
  AFDX_REQUIRE(!destinations.empty(), "VL " + name + " has no destination");
  AFDX_REQUIRE(bag > 0.0, "VL " + name + " must have a positive BAG");
  AFDX_REQUIRE(s_min <= s_max,
               "VL " + name + ": s_min must not exceed s_max");
  AFDX_REQUIRE(s_min >= kMinEthernetFrame && s_max <= kMaxEthernetFrame,
               "VL " + name + ": frame sizes must be within the Ethernet "
               "64..1518 byte range");
  AFDX_REQUIRE(max_release_jitter >= 0.0,
               "VL " + name + ": release jitter must be non-negative");
  for (NodeId d : destinations) {
    AFDX_REQUIRE(d != source, "VL " + name + " lists its source as destination");
  }
}

}  // namespace afdx

// Tests for the source release-jitter extension: both analyzers must absorb
// the jitter into their envelopes/windows, the simulator realizes it, and
// the bounds stay sound.
#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "config/serialization.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "sim/simulator.hpp"
#include "trajectory/trajectory_analyzer.hpp"

namespace afdx {
namespace {

TrafficConfig sample_with_jitter(Microseconds jitter) {
  const TrafficConfig base = config::sample_config();
  Network net;
  for (NodeId n = 0; n < base.network().node_count(); ++n) {
    const Node& node = base.network().node(n);
    if (node.kind == NodeKind::kEndSystem) {
      net.add_end_system(node.name);
    } else {
      net.add_switch(node.name);
    }
  }
  for (LinkId l = 0; l < base.network().link_count(); l += 2) {
    const Link& link = base.network().link(l);
    LinkParams lp;
    lp.rate = link.rate;
    net.connect(link.source, link.dest, lp);
  }
  std::vector<VirtualLink> vls;
  for (VlId v = 0; v < base.vl_count(); ++v) {
    VirtualLink vl = base.vl(v);
    vl.max_release_jitter = jitter;
    vls.push_back(vl);
  }
  return TrafficConfig(std::move(net), std::move(vls));
}

TEST(Jitter, ValidateRejectsNegative) {
  VirtualLink vl{"v", 0, {1}, 4000.0, 64, 500};
  vl.max_release_jitter = -1.0;
  EXPECT_THROW(vl.validate(), Error);
}

TEST(Jitter, NetcalcBurstGrowsWithJitter) {
  // An isolated jittered flow: source burst = sigma + rho * J.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  VirtualLink vl{"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500};
  vl.max_release_jitter = 400.0;  // rho * J = 400 bits
  const TrafficConfig cfg(std::move(net), {vl});
  const netcalc::Result r = netcalc::analyze(cfg);
  // ES port: (4000 + 400)/100 = 44; switch: 16 + (4400 + 44)/100 = 60.44.
  EXPECT_NEAR(r.path_bounds[0], 44.0 + 60.44, 1e-9);
}

TEST(Jitter, BothBoundsGrowMonotonically) {
  Microseconds prev_nc = 0.0, prev_tj = 0.0;
  for (Microseconds j : {0.0, 500.0, 2000.0, 6000.0}) {
    const TrafficConfig cfg = sample_with_jitter(j);
    const analysis::Comparison c = analysis::compare(cfg);
    EXPECT_GE(c.netcalc[0], prev_nc - 1e-9) << "jitter " << j;
    EXPECT_GE(c.trajectory[0], prev_tj - 1e-9) << "jitter " << j;
    prev_nc = c.netcalc[0];
    prev_tj = c.trajectory[0];
  }
}

TEST(Jitter, TrajectoryCountsExtraFramesOnceWindowsExceedBag) {
  // With jitter above one BAG a second frame per interferer fits into the
  // interference window: the bound must jump by more than the jitter alone
  // explains continuously.
  const Microseconds without = trajectory::analyze(sample_with_jitter(0.0)).path_bounds[0];
  const Microseconds with = trajectory::analyze(sample_with_jitter(4200.0)).path_bounds[0];
  EXPECT_GT(with, without + 3 * 40.0 - 1e-6);  // at least one extra frame
                                               // from each of v2..v4
}

TEST(Jitter, SimulatedDelaysStayBelowJitteredBounds) {
  const TrafficConfig cfg = sample_with_jitter(1500.0);
  const analysis::Comparison c = analysis::compare(cfg);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Options o;
    o.phasing = sim::Phasing::kRandom;
    o.seed = seed;
    const sim::Result r = sim::simulate(cfg, o);
    for (std::size_t i = 0; i < c.combined.size(); ++i) {
      EXPECT_LE(r.max_path_delay[i], c.combined[i] + 1e-6)
          << "seed " << seed << " path " << i;
    }
  }
}

TEST(Jitter, SimulatorActuallyJittersReleases) {
  // With jitter, an isolated flow's delay stays constant (delays are
  // measured from the actual release), but deliveries shift: mean delay is
  // unchanged while two different seeds produce different delivery
  // interleavings in a contended port.
  const TrafficConfig cfg = sample_with_jitter(2000.0);
  sim::Options a, b;
  a.seed = 1;
  b.seed = 2;
  const sim::Result ra = sim::simulate(cfg, a);
  const sim::Result rb = sim::simulate(cfg, b);
  EXPECT_NE(ra.max_path_delay, rb.max_path_delay);
}

TEST(Jitter, SerializationRoundTripKeepsJitterAndPriority) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  VirtualLink vl{"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500};
  vl.max_release_jitter = 123.5;
  vl.priority = 2;
  const TrafficConfig cfg(std::move(net), {vl});

  const TrafficConfig loaded =
      config::load_config_string(config::save_config_string(cfg));
  EXPECT_DOUBLE_EQ(loaded.vl(0).max_release_jitter, 123.5);
  EXPECT_EQ(loaded.vl(0).priority, 2);
}

}  // namespace
}  // namespace afdx

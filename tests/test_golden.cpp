// Golden regression of per-path bounds (Table-style, as reported by
// afdx_analyze) for the paper's reference configurations. Any numeric
// drift in the WCNC, trajectory, SFA or combined bounds fails the diff
// below; intentional changes are re-locked with
//
//   AFDX_REGEN_GOLDEN=1 ./build/tests/test_golden
//
// (or scripts/regen_golden.sh, which rebuilds first).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "config/samples.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "report/table.hpp"
#include "sfa/sfa_analyzer.hpp"
#include "trajectory/trajectory_analyzer.hpp"
#include "vl/traffic_config.hpp"

#ifndef AFDX_REPO_ROOT
#define AFDX_REPO_ROOT "."
#endif

namespace afdx {
namespace {

constexpr const char* kGoldenFile =
    AFDX_REPO_ROOT "/tests/golden/path_bounds.csv";

/// Appends one row per path of `cfg` to the table: every method's bound at
/// fixed 6-decimal precision, so a drift of 1e-6 us is visible.
void append_bounds(report::Table& table, const std::string& label,
                   const TrafficConfig& cfg) {
  const netcalc::Result nc = netcalc::analyze(cfg);
  const trajectory::Result tj = trajectory::analyze(cfg);
  const sfa::Result sf = sfa::analyze(cfg);
  for (std::size_t i = 0; i < cfg.all_paths().size(); ++i) {
    const VlPath& p = cfg.all_paths()[i];
    table.add_row(
        {label, cfg.vl(p.vl).name,
         cfg.network().node(cfg.vl(p.vl).destinations[p.dest_index]).name,
         report::fmt(nc.path_bounds[i], 6), report::fmt(tj.path_bounds[i], 6),
         report::fmt(sf.path_bounds[i], 6),
         report::fmt(std::min(nc.path_bounds[i], tj.path_bounds[i]), 6)});
  }
}

/// The full golden CSV: the Figure-2 sample config at the paper default,
/// one Figure-7/8-style sweep point, and the Figure-1-style multicast
/// configuration.
std::string golden_text() {
  report::Table table({"config", "vl", "destination", "wcnc_us",
                       "trajectory_us", "sfa_us", "combined_us"});
  append_bounds(table, "sample_default", config::sample_config());

  config::SampleOptions sweep;
  sweep.bag_v1 = microseconds_from_ms(2.0);
  sweep.s_max_v1 = 300;
  append_bounds(table, "sample_bag2ms_smax300", config::sample_config(sweep));

  append_bounds(table, "illustrative", config::illustrative_config());

  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

TEST(Golden, PathBoundsMatchLockedValues) {
  const std::string current = golden_text();

  if (std::getenv("AFDX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
    out << current;
    GTEST_SKIP() << "regenerated " << kGoldenFile;
  }

  std::ifstream in(kGoldenFile);
  ASSERT_TRUE(in.good())
      << kGoldenFile
      << " is missing; run scripts/regen_golden.sh to create it";
  std::ostringstream locked;
  locked << in.rdbuf();

  if (current != locked.str()) {
    // Pinpoint the first differing line for a readable failure.
    std::istringstream a(locked.str()), b(current);
    std::string la, lb;
    int line = 0;
    while (true) {
      const bool ga = static_cast<bool>(std::getline(a, la));
      const bool gb = static_cast<bool>(std::getline(b, lb));
      ++line;
      if (!ga && !gb) break;
      if (la != lb || ga != gb) {
        FAIL() << "bound drift at " << kGoldenFile << ":" << line
               << "\n  locked:  " << (ga ? la : "<eof>")
               << "\n  current: " << (gb ? lb : "<eof>")
               << "\nIf the change is intentional, re-lock with "
                  "scripts/regen_golden.sh";
      }
    }
  }
  SUCCEED();
}

TEST(Golden, LockedFileCoversEveryPathOfEveryConfig) {
  if (std::getenv("AFDX_REGEN_GOLDEN") != nullptr) GTEST_SKIP();
  const std::size_t expected_rows =
      config::sample_config().all_paths().size() * 2 +
      config::illustrative_config().all_paths().size();
  std::ifstream in(kGoldenFile);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, expected_rows + 1);  // + header
}

}  // namespace
}  // namespace afdx

file(REMOVE_RECURSE
  "CMakeFiles/afdx_topology.dir/network.cpp.o"
  "CMakeFiles/afdx_topology.dir/network.cpp.o.d"
  "libafdx_topology.a"
  "libafdx_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

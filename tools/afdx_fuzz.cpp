// afdx_fuzz -- seeded differential fuzzing / soundness campaign driver.
//
// Campaign mode (default): generates configurations across the swept
// parameter grid, runs every analysis variant plus a simulated schedule
// battery on each, and checks the cross-method soundness invariants.
// Violating configurations are auto-shrunk to minimal reproducers and
// persisted to the corpus directory.
//
//   afdx_fuzz --campaigns=200 --seed=42 --threads=0 --report=fuzz.json
//
// Replay mode: re-validates one corpus artifact -- green without its
// recorded fault, violating with it.
//
//   afdx_fuzz --replay=tests/corpus/shrunk-s42-c7.afdx
//
// Incremental-diff mode: sweeps the campaign grid's generated
// configurations through valid::check_incremental_diff -- every fault
// scenario of every configuration is analyzed from scratch AND
// incrementally from the healthy baseline, and the two result sets must
// match bit for bit.
//
//   afdx_fuzz --mode=incremental-diff --campaigns=20 --grid=smoke
//
// Options:
//   --mode=campaign|incremental-diff  what to fuzz (default campaign)
//   --campaigns=N       configurations to fuzz (default 100)
//   --seed=S            master seed (default 42)
//   --threads=N         campaign workers (default 1; 0 = one per hw thread)
//   --grid=default|smoke  parameter grid (smoke = tiny CI stage)
//   --schedules=N       random schedules per configuration (default 3)
//   --search-paths=N    sharpen N paths/config with the worst-case search
//   --report=FILE       write the JSON report to FILE
//   --no-timing         omit wall-time fields from the JSON (bit-stable)
//   --corpus-dir=DIR    persist shrunk reproducers under DIR
//   --no-shrink         report violations without shrinking
//   --no-variants       skip the historical analysis variants
//   --ladder            also run the accuracy/cost ladder dominance oracle
//                       on every configuration: the cumulative rung chain,
//                       winner provenance, and budgeted-vs-unlimited
//                       consistency are checked alongside the usual
//                       simulation soundness invariants (violations are
//                       ddmin-shrunk like any other)
//   --inject-fault=deflate-netcalc|deflate-trajectory|skew-combined|
//                 loosen-ladder-rung
//                       harness self-test hook: corrupt the bounds before
//                       checking (with --fault-factor=F, default 0.5)
//   --replay=FILE       replay one corpus artifact instead of fuzzing
//   --quiet             suppress the per-violation log lines
//   --checkpoint=FILE   resume state: load completed campaigns from FILE if
//                       it exists (seed/campaigns must match), write it on
//                       exit -- an interrupted sweep (SIGINT/SIGTERM or
//                       --deadline-ms) resumes instead of restarting
//   --deadline-ms=N     stop starting new campaigns after N ms
//   --trace=FILE        record scoped spans of the campaign/engine layers
//                       and write a Chrome trace-event JSON file
//   --self-test         harness end-to-end check: a clean smoke sweep must
//                       be green AND an injected fault must be detected
//                       (including loosen-ladder-rung via the ladder oracle)
//
// Signals: SIGINT/SIGTERM request cooperative cancellation -- running
// campaigns finish, remaining ones are marked interrupted, and the
// checkpoint (if any) is flushed before exit.
//
// Exit status: 0 = all invariants hold (or replay regression / self-test
// passed), 1 = usage/config error, 2 = violations found (or replay /
// self-test failed), 3 = interrupted (partial sweep; checkpoint written).
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "engine/cancel.hpp"
#include "gen/industrial.hpp"
#include "obs/trace.hpp"
#include "valid/campaign.hpp"
#include "valid/checkpoint.hpp"
#include "valid/corpus.hpp"
#include "valid/incremental_check.hpp"

using namespace afdx;

namespace {

/// Cooperative cancellation shared by the signal handlers and the campaign
/// loop. CancelToken::cancel() is a relaxed atomic store, so calling it
/// from a signal handler is async-signal-safe.
engine::CancelToken g_cancel;

extern "C" void handle_stop_signal(int) { g_cancel.cancel(); }

struct CliOptions {
  valid::CampaignOptions campaign;
  /// --mode=incremental-diff: full-vs-incremental differential sweep.
  bool incremental_diff = false;
  std::optional<std::string> replay_file;
  std::optional<std::string> report_file;
  std::optional<std::string> checkpoint_file;
  std::optional<std::string> trace_file;
  double deadline_ms = 0.0;
  bool self_test = false;
  bool include_timing = true;
  bool quiet = false;
};

void print_usage(std::ostream& out) {
  out << "usage: afdx_fuzz [options]\n"
         "       afdx_fuzz --replay=<corpus-file>\n"
         "options: --mode=campaign|incremental-diff\n"
         "         --campaigns=N  --seed=S  --threads=N (0 = auto)\n"
         "         --grid=default|smoke  --schedules=N  --search-paths=N\n"
         "         --report=FILE  --no-timing  --corpus-dir=DIR\n"
         "         --no-shrink  --no-variants  --ladder  --quiet\n"
         "         --inject-fault=deflate-netcalc|deflate-trajectory|"
         "skew-combined|loosen-ladder-rung  --fault-factor=F\n"
         "         --checkpoint=FILE  --deadline-ms=N  --trace=FILE\n"
         "         --self-test\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::optional<std::string> {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) != 0) return std::nullopt;
      return arg.substr(prefix.size());
    };
    if (auto v = value_of("--mode")) {
      if (*v == "incremental-diff") {
        opts.incremental_diff = true;
      } else if (*v != "campaign") {
        std::cerr << "unknown mode: " << *v << "\n";
        return std::nullopt;
      }
    } else if (auto v = value_of("--campaigns")) {
      const auto n = parse_uint(*v);
      if (!n.has_value() || *n == 0) {
        std::cerr << "bad campaign count: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.campaigns = static_cast<std::size_t>(*n);
    } else if (auto v = value_of("--seed")) {
      const auto n = parse_uint(*v);
      if (!n.has_value()) {
        std::cerr << "bad seed: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.seed = *n;
    } else if (auto v = value_of("--threads")) {
      const auto n = parse_int(*v);
      if (!n.has_value() || *n < 0) {
        std::cerr << "bad thread count: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.threads = static_cast<int>(*n);
    } else if (auto v = value_of("--grid")) {
      if (*v == "smoke") {
        opts.campaign.grid = valid::GridOptions::smoke();
      } else if (*v != "default") {
        std::cerr << "unknown grid: " << *v << "\n";
        return std::nullopt;
      }
    } else if (auto v = value_of("--schedules")) {
      const auto n = parse_int(*v);
      if (!n.has_value() || *n < 0) {
        std::cerr << "bad schedule count: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.check.schedules.random_schedules = static_cast<int>(*n);
    } else if (auto v = value_of("--search-paths")) {
      const auto n = parse_int(*v);
      if (!n.has_value() || *n < 0) {
        std::cerr << "bad search path count: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.check.search_paths = static_cast<int>(*n);
    } else if (auto v = value_of("--report")) {
      opts.report_file = *v;
    } else if (arg == "--no-timing") {
      opts.include_timing = false;
    } else if (auto v = value_of("--corpus-dir")) {
      opts.campaign.corpus_dir = *v;
    } else if (arg == "--no-shrink") {
      opts.campaign.shrink_violations = false;
    } else if (arg == "--no-variants") {
      opts.campaign.check.variants = false;
    } else if (arg == "--ladder") {
      opts.campaign.check.ladder = true;
    } else if (auto v = value_of("--inject-fault")) {
      const auto fault = valid::fault_from_string(*v);
      if (!fault.has_value()) {
        std::cerr << "unknown fault: " << *v << "\n";
        return std::nullopt;
      }
      opts.campaign.check.fault = *fault;
    } else if (auto v = value_of("--fault-factor")) {
      const auto f = parse_double(*v);
      if (!f.has_value() || *f <= 0.0) {
        std::cerr << "bad fault factor: " << arg << "\n";
        return std::nullopt;
      }
      opts.campaign.check.fault_factor = *f;
    } else if (auto v = value_of("--replay")) {
      opts.replay_file = *v;
    } else if (auto v = value_of("--checkpoint")) {
      if (v->empty()) {
        std::cerr << "empty checkpoint path\n";
        return std::nullopt;
      }
      opts.checkpoint_file = *v;
    } else if (auto v = value_of("--trace")) {
      if (v->empty()) {
        std::cerr << "empty trace path\n";
        return std::nullopt;
      }
      opts.trace_file = *v;
    } else if (auto v = value_of("--deadline-ms")) {
      const auto ms = parse_double(*v);
      if (!ms.has_value() || *ms <= 0.0) {
        std::cerr << "bad deadline: " << arg << "\n";
        return std::nullopt;
      }
      opts.deadline_ms = *ms;
    } else if (arg == "--self-test") {
      opts.self_test = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

int run_replay(const CliOptions& opts) {
  const valid::CorpusEntry entry = valid::read_corpus_file(*opts.replay_file);
  valid::CheckOptions base = opts.campaign.check;
  const valid::ReplayOutcome outcome = valid::replay(entry, base);

  std::cout << "replay " << *opts.replay_file << " (fault "
            << valid::to_string(entry.fault) << ")\n";
  std::cout << "  clean check: " << outcome.clean.violations.size()
            << " violations over " << outcome.clean.paths << " paths, "
            << outcome.clean.schedules_simulated << " schedules\n";
  for (const valid::Violation& v : outcome.clean.violations) {
    std::cout << "    " << v.describe() << "\n";
  }
  if (outcome.faulted.has_value()) {
    std::cout << "  faulted check: " << outcome.faulted->violations.size()
              << " violations (expected >= 1)\n";
    if (!opts.quiet) {
      for (const valid::Violation& v : outcome.faulted->violations) {
        std::cout << "    " << v.describe() << "\n";
      }
    }
  }
  const bool ok = outcome.regression_ok();
  std::cout << (ok ? "replay OK\n" : "replay FAILED\n");
  return ok ? 0 : 2;
}

int run_campaigns_cli(const CliOptions& opts) {
  valid::CampaignOptions campaign = opts.campaign;
  campaign.cancel = &g_cancel;

  if (opts.checkpoint_file.has_value()) {
    const auto cp = valid::read_checkpoint(*opts.checkpoint_file);
    if (cp.has_value()) {
      if (cp->seed != campaign.seed || cp->campaigns != campaign.campaigns) {
        std::cerr << "error: checkpoint " << *opts.checkpoint_file
                  << " was written by a different run (seed " << cp->seed
                  << ", campaigns " << cp->campaigns
                  << "); refusing to mix results\n";
        return 1;
      }
      campaign.resume = cp->outcomes;
      std::cout << "resuming from " << *opts.checkpoint_file << ": "
                << cp->outcomes.size() << " of " << campaign.campaigns
                << " campaigns already done\n";
    }
  }

  const valid::CampaignReport report = valid::run_campaigns(campaign);

  if (opts.checkpoint_file.has_value()) {
    valid::write_checkpoint(report, *opts.checkpoint_file);
    if (!report.complete()) {
      std::cerr << "interrupted; progress saved to " << *opts.checkpoint_file
                << " (rerun the same command to resume)\n";
    }
  }

  if (!opts.quiet) {
    for (const valid::CampaignOutcome& o : report.outcomes) {
      for (const valid::Violation& v : o.check.violations) {
        std::cerr << "VIOLATION campaign " << o.spec.index << " (config seed "
                  << o.spec.gen.seed << "): " << v.describe() << "\n";
      }
      if (!o.corpus_file.empty()) {
        std::cerr << "  shrunk reproducer: " << o.corpus_file << "\n";
      }
    }
  }

  std::cout << "campaigns: " << report.completed << " completed, "
            << report.skipped << " skipped (infeasible spec), "
            << report.interrupted << " interrupted\n"
            << "paths checked: " << report.paths << ", schedules simulated: "
            << report.schedules_simulated << "\n"
            << "violations: " << report.violation_count << "\n";
  auto print_pessimism = [](const char* name,
                            const analysis::PessimismStats& s) {
    std::cout << "pessimism " << name << ": mean " << s.mean << "x, min "
              << s.min << "x, max " << s.max << "x over " << s.paths
              << " paths\n";
  };
  print_pessimism("wcnc      ", report.wcnc);
  print_pessimism("trajectory", report.trajectory);
  print_pessimism("combined  ", report.combined);
  std::cout << "wall time: " << report.wall_us / 1000.0 << " ms ("
            << report.threads << " threads)\n";

  if (opts.report_file.has_value()) {
    std::ofstream out(*opts.report_file);
    if (!out.good()) {
      std::cerr << "error: cannot write report to " << *opts.report_file
                << "\n";
      return 1;
    }
    report.write_json(out, opts.include_timing);
    std::cout << "report written to " << *opts.report_file << "\n";
  }
  if (!report.ok()) return 2;
  return report.complete() ? 0 : 3;
}

/// Incremental-diff sweep: one grid-derived configuration per campaign,
/// each put through the full-vs-incremental bitwise differential over all
/// of its fault scenarios. Exit 2 on any mismatch -- a mismatch is a
/// dirty-cone soundness bug, the incremental analogue of a violation.
int run_incremental_diff(const CliOptions& opts) {
  const valid::CampaignOptions& campaign = opts.campaign;
  std::size_t checked = 0;
  std::size_t skipped = 0;
  std::size_t interrupted = 0;
  valid::IncrementalDiffResult total;
  for (std::size_t i = 0; i < campaign.campaigns; ++i) {
    if (g_cancel.expired()) {
      interrupted = campaign.campaigns - i;
      break;
    }
    const valid::CampaignSpec spec =
        valid::spec_for(campaign.grid, campaign.seed, i);
    valid::IncrementalDiffOptions diff;
    diff.seed = campaign.seed * 1000003ULL + i * 10ULL;
    try {
      const TrafficConfig cfg = gen::industrial_config(spec.gen);
      const valid::IncrementalDiffResult r =
          valid::check_incremental_diff(cfg, diff);
      total.scenarios_checked += r.scenarios_checked;
      total.scenarios_empty += r.scenarios_empty;
      total.values_compared += r.values_compared;
      total.full_fallbacks += r.full_fallbacks;
      total.seeded_ports += r.seeded_ports;
      total.seeded_prefixes += r.seeded_prefixes;
      if (!r.ok() && !opts.quiet) {
        for (const valid::IncrementalMismatch& m : r.mismatches) {
          std::cerr << "MISMATCH campaign " << i << " (config seed "
                    << spec.gen.seed << "): " << m.describe() << "\n";
        }
      }
      total.mismatches.insert(total.mismatches.end(), r.mismatches.begin(),
                              r.mismatches.end());
      ++checked;
    } catch (const Error&) {
      // Infeasible grid point (generator rejection) -- count, keep going.
      ++skipped;
    }
  }

  std::cout << "incremental-diff: " << checked << " configurations, "
            << total.scenarios_checked << " scenarios, "
            << total.values_compared << " values compared bitwise\n"
            << "seeded: " << total.seeded_ports << " ports, "
            << total.seeded_prefixes << " prefixes; full fallbacks: "
            << total.full_fallbacks << "\n";
  if (skipped > 0) std::cout << "skipped (infeasible spec): " << skipped << "\n";
  if (interrupted > 0) std::cout << "interrupted: " << interrupted << "\n";
  std::cout << "mismatches: " << total.mismatches.size()
            << (total.ok() ? " (incremental == full, bit for bit)\n" : "\n");
  if (!total.ok()) return 2;
  return interrupted == 0 ? 0 : 3;
}

/// End-to-end harness self-test: a clean smoke sweep must be green, and a
/// sweep with a deliberately corrupted analyzer must raise violations --
/// proving the detection machinery actually fires.
int run_self_test(const CliOptions& opts) {
  valid::CampaignOptions base;
  base.campaigns = 3;
  base.seed = opts.campaign.seed;
  base.threads = opts.campaign.threads;
  base.grid = valid::GridOptions::smoke();
  base.check = opts.campaign.check;
  base.check.fault = valid::Fault::kNone;
  base.check.variants = false;
  base.shrink_violations = false;
  base.cancel = &g_cancel;

  const valid::CampaignReport clean = valid::run_campaigns(base);
  const bool clean_ok =
      clean.ok() && clean.complete() && clean.completed > 0;
  std::cout << "self-test clean sweep: " << clean.completed << " campaigns, "
            << clean.violation_count << " violations -> "
            << (clean_ok ? "ok" : "FAILED") << "\n";

  valid::CampaignOptions faulted = base;
  faulted.check.fault = valid::Fault::kDeflateTrajectory;
  faulted.check.fault_factor = 0.25;
  const valid::CampaignReport bad = valid::run_campaigns(faulted);
  const bool detected = bad.violation_count > 0;
  std::cout << "self-test injected deflate-trajectory: "
            << bad.violation_count << " violations -> "
            << (detected ? "detected" : "MISSED") << "\n";

  // Ladder oracle: a clean sweep with the dominance checks enabled must stay
  // green, and a deliberately loosened rung must trip them.
  valid::CampaignOptions ladder_clean = base;
  ladder_clean.check.ladder = true;
  const valid::CampaignReport lclean = valid::run_campaigns(ladder_clean);
  const bool ladder_clean_ok =
      lclean.ok() && lclean.complete() && lclean.completed > 0;
  std::cout << "self-test ladder clean sweep: " << lclean.completed
            << " campaigns, " << lclean.violation_count << " violations -> "
            << (ladder_clean_ok ? "ok" : "FAILED") << "\n";

  valid::CampaignOptions ladder_faulted = ladder_clean;
  ladder_faulted.check.fault = valid::Fault::kLoosenLadderRung;
  ladder_faulted.check.fault_factor = 1.5;
  const valid::CampaignReport lbad = valid::run_campaigns(ladder_faulted);
  const bool ladder_detected = lbad.violation_count > 0;
  std::cout << "self-test injected loosen-ladder-rung: "
            << lbad.violation_count << " violations -> "
            << (ladder_detected ? "detected" : "MISSED") << "\n";

  const bool ok = clean_ok && detected && ladder_clean_ok && ladder_detected;
  std::cout << (ok ? "self-test OK\n" : "self-test FAILED\n");
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_args(argc, argv);
  if (!opts.has_value()) {
    print_usage(std::cerr);
    return 1;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  if (opts->deadline_ms > 0.0) {
    g_cancel.set_deadline_after(opts->deadline_ms * 1000.0);
  }
  if (opts->trace_file.has_value()) obs::Tracer::instance().enable();
  // Written even on violations/interruption: a trace of the failing sweep
  // is exactly what the investigation needs.
  const auto flush_trace = [&] {
    if (!opts->trace_file.has_value()) return;
    obs::Tracer::instance().disable();
    std::ofstream out(*opts->trace_file);
    if (!out.good()) {
      std::cerr << "cannot write trace file '" << *opts->trace_file << "'\n";
      return;
    }
    obs::Tracer::instance().write_chrome_trace(out);
    std::cerr << "trace: " << obs::Tracer::instance().span_count()
              << " spans -> " << *opts->trace_file << "\n";
  };
  try {
    int code = 0;
    if (opts->self_test) {
      code = run_self_test(*opts);
    } else if (opts->incremental_diff) {
      code = run_incremental_diff(*opts);
    } else {
      code = opts->replay_file.has_value() ? run_replay(*opts)
                                           : run_campaigns_cli(*opts);
    }
    flush_trace();
    return code;
  } catch (const Error& e) {
    flush_trace();
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

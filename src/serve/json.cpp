#include "serve/json.hpp"

#include <cctype>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace afdx::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* JsonValue::kind_name() const noexcept {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "boolean";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_object(JsonMembers v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(v);
  return out;
}

namespace {

/// RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
bool valid_number_grammar(std::string_view s) {
  std::size_t i = 0;
  const auto digit = [&](std::size_t k) {
    return k < s.size() && s[k] >= '0' && s[k] <= '9';
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (!digit(i)) return false;
  if (s[i] == '0') {
    ++i;
  } else {
    while (digit(i)) ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digit(i)) return false;
    while (digit(i)) ++i;
  }
  return i == s.size();
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::string ctx = "json";
    if (!key_.empty()) ctx += " key '" + key_ + "'";
    throw Error(ctx + " at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    // depth counts enclosing containers, so the value at depth N is the
    // (N+1)-th nesting level.
    if (depth >= kMaxJsonDepth) fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonMembers members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected a string object key");
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) {
          fail("duplicate object key '" + key + "'");
        }
      }
      skip_ws();
      expect(':');
      skip_ws();
      const std::string outer_key = key_;
      key_ = key;
      JsonValue value = parse_value(depth + 1);
      key_ = outer_key;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 2; ++i) {
            const auto byte =
                parse_hex_byte(text_.substr(pos_ + 2 * i, 2));
            if (!byte.has_value()) fail("invalid \\u escape");
            code = (code << 8) | *byte;
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are rejected:
          // request payloads are ASCII identifiers and units).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view token = text_.substr(start, pos_ - start);
    // The scanner is greedy; validate the exact JSON number grammar here,
    // since strtod (under parse_double) still accepts "1.", "01" or ".5".
    if (!valid_number_grammar(token)) {
      fail("malformed number '" + std::string(token) + "'");
    }
    const auto value = parse_double(token);
    if (!value.has_value()) {
      fail("malformed number '" + std::string(token) + "'");
    }
    return JsonValue::make_number(*value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  /// The object key whose value is being parsed, for error context.
  std::string key_;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace afdx::serve

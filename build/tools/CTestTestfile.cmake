# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate_all "/root/repo/build/tools/afdx_analyze" "--generate=7" "--csv")
set_tests_properties(cli_generate_all PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_generate_ports "/root/repo/build/tools/afdx_analyze" "--generate=7" "--ports" "--simulate=2")
set_tests_properties(cli_generate_ports PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/afdx_analyze" "--method=bogus")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")

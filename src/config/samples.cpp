#include "config/samples.hpp"

namespace afdx::config {

TrafficConfig sample_config(const SampleOptions& o) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId e5 = net.add_end_system("e5");
  const NodeId e6 = net.add_end_system("e6");
  const NodeId e7 = net.add_end_system("e7");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");

  LinkParams lp;
  lp.rate = o.link_rate;
  lp.switch_latency = o.switch_latency;
  lp.end_system_latency = 0.0;

  net.connect(e1, s1, lp);
  net.connect(e2, s1, lp);
  net.connect(e3, s2, lp);
  net.connect(e4, s2, lp);
  net.connect(e5, s3, lp);
  net.connect(s1, s3, lp);
  net.connect(s2, s3, lp);
  net.connect(s3, e6, lp);
  net.connect(s3, e7, lp);

  std::vector<VirtualLink> vls;
  vls.push_back({"v1", e1, {e6}, o.bag_v1, 64, o.s_max_v1});
  vls.push_back({"v2", e2, {e6}, o.bag_others, 64, o.s_max_others});
  vls.push_back({"v3", e3, {e6}, o.bag_others, 64, o.s_max_others});
  vls.push_back({"v4", e4, {e6}, o.bag_others, 64, o.s_max_others});
  vls.push_back({"v5", e5, {e7}, o.bag_others, 64, o.s_max_others});

  return TrafficConfig(std::move(net), std::move(vls));
}

TrafficConfig illustrative_config() {
  Network net;
  // Ten end systems and five switches, arranged so that several VLs share
  // switch output ports on multi-hop paths, as in the paper's Figure 1.
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId e5 = net.add_end_system("e5");
  const NodeId e6 = net.add_end_system("e6");
  const NodeId e7 = net.add_end_system("e7");
  const NodeId e8 = net.add_end_system("e8");
  const NodeId e9 = net.add_end_system("e9");
  const NodeId e10 = net.add_end_system("e10");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  const NodeId s4 = net.add_switch("S4");
  const NodeId s5 = net.add_switch("S5");

  LinkParams lp;  // 100 Mb/s, 16 us switch latency (defaults)

  net.connect(e1, s1, lp);
  net.connect(e2, s1, lp);
  net.connect(e3, s3, lp);
  net.connect(e4, s3, lp);
  net.connect(e5, s4, lp);
  net.connect(e6, s5, lp);
  net.connect(e7, s2, lp);
  net.connect(e8, s4, lp);
  net.connect(e9, s5, lp);
  net.connect(e10, s5, lp);
  net.connect(s1, s2, lp);
  net.connect(s1, s4, lp);
  net.connect(s3, s2, lp);
  net.connect(s3, s4, lp);
  net.connect(s2, s5, lp);
  net.connect(s4, s5, lp);

  auto ms = [](double m) { return microseconds_from_ms(m); };

  std::vector<VirtualLink> vls;
  // vx: the paper's unicast example, e5 -> S4 -> e8.
  vls.push_back({"vx", e5, {e8}, ms(32.0), 64, 320});
  // v6: the paper's multicast example, e1 -> S1 -> {S2 -> e7, S4 -> e8}.
  vls.push_back({"v6", e1, {e7, e8}, ms(8.0), 64, 800});
  // Additional flows populating the ports, in the spirit of the figure.
  vls.push_back({"v1", e1, {e9}, ms(4.0), 64, 500});
  vls.push_back({"v2", e2, {e7}, ms(4.0), 64, 500});
  vls.push_back({"v3", e2, {e10}, ms(16.0), 64, 1000});
  vls.push_back({"v4", e3, {e7, e9}, ms(8.0), 64, 640});
  vls.push_back({"v5", e3, {e8}, ms(2.0), 64, 128});
  vls.push_back({"v7", e4, {e10}, ms(4.0), 64, 500});
  vls.push_back({"v8", e4, {e8, e9}, ms(64.0), 64, 1518});
  vls.push_back({"v9", e5, {e6}, ms(128.0), 64, 1518});

  return TrafficConfig(std::move(net), std::move(vls));
}

}  // namespace afdx::config

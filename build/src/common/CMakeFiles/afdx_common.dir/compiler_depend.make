# Empty compiler generated dependencies file for afdx_common.
# This may be replaced when dependencies are built.

#include "serve/server.hpp"

#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hpp"
#include "engine/thread_pool.hpp"
#include "obs/counters.hpp"
#include "serve/protocol.hpp"

namespace afdx::serve {

namespace {

/// Response writer over a std::ostream (stdio mode).
class StreamSink final : public ResponseSink {
 public:
  explicit StreamSink(std::ostream& out) : out_(out) {}

  void write_line(const std::string& line) override {
    const std::lock_guard<std::mutex> lock(mu_);
    out_ << line << '\n';
    out_.flush();
  }

 private:
  std::ostream& out_;
  std::mutex mu_;
};

/// Response writer over a connected socket (TCP mode). Owns the fd.
class FdSink final : public ResponseSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  ~FdSink() override { ::close(fd_); }

  void write_line(const std::string& line) override {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the request result is simply dropped
      off += static_cast<std::size_t>(n);
    }
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_;
  std::mutex mu_;
};

/// Polls `fd` for readability, waking periodically to honour `stop`.
/// Returns false once `stop` is set or the fd errors out.
bool wait_readable(int fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int r = ::poll(&p, 1, 200);
    if (r < 0) return false;
    if (r > 0) return (p.revents & (POLLERR | POLLNVAL)) == 0;
  }
  return false;
}

}  // namespace

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(options) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.max_line_bytes == 0) options_.max_line_bytes = 1;
}

Server::Push Server::push(std::string& line,
                          const std::shared_ptr<ResponseSink>& sink) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Push::kClosed;
    if (queue_.size() >= options_.queue_capacity) return Push::kFull;
    queue_.push_back(Job{std::move(line), sink});
    obs::registry().counter("serve.queue.max_depth").record_max(queue_.size());
  }
  cv_.notify_one();
  return Push::kOk;
}

bool Server::pop(Job& job) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  job = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

void Server::close_queue() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Server::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Server::admit(std::string line, const std::shared_ptr<ResponseSink>& sink) {
  if (line.size() > options_.max_line_bytes) {
    // Deliberately unparsed: a hostile line length must cost O(1), so the
    // response cannot echo a request id.
    service_.note_error();
    sink->write_line(error_response(
        0, "request line exceeds " + std::to_string(options_.max_line_bytes) +
               " bytes"));
    return;
  }
  // push() consumes the line only on success, so the rejection paths can
  // still recover the request id for their error response.
  switch (push(line, sink)) {
    case Push::kOk:
      return;
    case Push::kFull:
      service_.note_overloaded();
      sink->write_line(error_response(peek_request_id(line), "overloaded"));
      return;
    case Push::kClosed:
      service_.note_error();
      sink->write_line(
          error_response(peek_request_id(line), "shutting down"));
      return;
  }
}

void Server::run_workers() {
  engine::ThreadPool pool(
      engine::ThreadPool::resolve_thread_count(options_.workers));
  const std::size_t workers = static_cast<std::size_t>(pool.thread_count());
  pool.parallel_for(workers, [this](std::size_t, int) {
    Job job;
    while (pop(job)) {
      job.sink->write_line(service_.handle_line(job.line));
    }
  });
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  auto sink = std::make_shared<StreamSink>(out);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    queue_.clear();
  }
  service_.set_queue_probe([this] {
    return QueueInfo{queue_depth(), options_.queue_capacity};
  });

  std::thread reader([this, &in, &sink] {
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      admit(std::move(line), sink);
    }
    close_queue();
  });
  run_workers();
  reader.join();
  service_.set_queue_probe(nullptr);
}

void Server::listen_and_serve(std::uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw Error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    throw Error("serve: cannot listen on 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    queue_.clear();
  }
  stop_.store(false, std::memory_order_relaxed);
  service_.set_queue_probe([this] {
    return QueueInfo{queue_depth(), options_.queue_capacity};
  });

  std::mutex conns_mu;
  std::vector<std::thread> conns;

  std::thread acceptor([&] {
    while (!stop_.load(std::memory_order_relaxed) &&
           !service_.shutdown_requested()) {
      if (!wait_readable(listen_fd, stop_)) break;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      const std::lock_guard<std::mutex> lock(conns_mu);
      conns.emplace_back([this, fd] {
        auto sink = std::make_shared<FdSink>(fd);
        std::string buffer;
        bool discarding = false;  // inside an oversized line
        char chunk[4096];
        while (wait_readable(fd, stop_) && !service_.shutdown_requested()) {
          const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(n));
          std::size_t start = 0;
          for (std::size_t i = start; i < buffer.size(); ++i) {
            if (buffer[i] != '\n') continue;
            std::string line = buffer.substr(start, i - start);
            start = i + 1;
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (discarding) {
              discarding = false;  // tail of a rejected oversized line
              continue;
            }
            if (!line.empty()) admit(std::move(line), sink);
          }
          buffer.erase(0, start);
          if (!discarding && buffer.size() > options_.max_line_bytes) {
            service_.note_error();
            sink->write_line(error_response(
                0, "request line exceeds " +
                       std::to_string(options_.max_line_bytes) + " bytes"));
            buffer.clear();
            discarding = true;
          }
        }
      });
    }
    close_queue();
  });

  run_workers();

  // A shutdown request stops the workers; make the acceptor and readers
  // notice too.
  stop_.store(true, std::memory_order_relaxed);
  acceptor.join();
  {
    const std::lock_guard<std::mutex> lock(conns_mu);
    for (std::thread& t : conns) t.join();
  }
  ::close(listen_fd);
  service_.set_queue_probe(nullptr);
}

}  // namespace afdx::serve

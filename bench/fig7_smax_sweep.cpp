// E5 -- Figure 7 of the paper: effect of s_max(v1) on the end-to-end delay
// bounds of v1 on the sample configuration (both methods).
#include <cstdint>
#include <vector>

#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

struct SweepPoint {
  Bytes s_max = 0;
  double trajectory_us = 0.0;
  double wcnc_us = 0.0;
};

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "E5 / Figure 7: bounds on v1 while sweeping s_max(v1), other VLs "
         "at 500 B\n\n";

  std::vector<SweepPoint> points;
  const benchutil::OverheadReport overhead =
      benchutil::measure_run_overhead([&points] {
        for (Bytes s = 100; s <= 1500; s += 100) {
          config::SampleOptions o;
          o.s_max_v1 = s;
          const TrafficConfig cfg = config::sample_config(o);
          const analysis::Comparison c = analysis::compare(cfg);
          points.push_back({s, c.trajectory[0], c.netcalc[0]});
        }
      });

  report::Table t({"s_max(v1) (B)", "Trajectory (us)", "WCNC (us)",
                   "tightest"});
  report::Series traj_series, nc_series;
  traj_series.name = "Trajectory";
  traj_series.marker = 'T';
  nc_series.name = "WCNC";
  nc_series.marker = 'N';
  for (const SweepPoint& p : points) {
    t.add_row({std::to_string(p.s_max), report::fmt(p.trajectory_us),
               report::fmt(p.wcnc_us),
               p.trajectory_us < p.wcnc_us ? "trajectory" : "WCNC"});
    traj_series.points.push_back(
        {static_cast<double>(p.s_max), p.trajectory_us});
    nc_series.points.push_back({static_cast<double>(p.s_max), p.wcnc_us});
  }
  t.print(out);
  out << "\n";
  report::line_chart(out, {traj_series, nc_series}, 64, 16);
  out << "\npaper shape: the two curves intersect around the other VLs'\n"
         "frame size (500 B); below it WCNC is tighter and the gap widens\n"
         "as s_max(v1) decreases, above it the trajectory bound stays\n"
         "slightly tighter.\n\n";
  benchutil::print_overhead(out, overhead);

  const auto json_path = cli.resolve_json_path("fig7_smax_sweep");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc = benchutil::begin_bench_json(
        *json_path, "fig7_smax_sweep", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("base", "sample")
          .field("sweep", "s_max_v1")
          .field("points", points.size());
      w.end_object();
      w.key("results").begin_object();
      w.key("sweep").begin_array();
      for (const SweepPoint& p : points) {
        w.begin_object();
        w.field("s_max_bytes", static_cast<std::uint64_t>(p.s_max))
            .field("trajectory_us", p.trajectory_us)
            .field("wcnc_us", p.wcnc_us);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      obs::write_registry_json(w);
      benchutil::write_overhead_json(w, overhead);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_SweepPoint(benchmark::State& state) {
  config::SampleOptions o;
  o.s_max_v1 = static_cast<Bytes>(state.range(0));
  const TrafficConfig cfg = config::sample_config(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compare(cfg));
  }
}
BENCHMARK(BM_SweepPoint)->Arg(100)->Arg(500)->Arg(1500);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

# Empty dependencies file for afdx_analysis.
# This may be replaced when dependencies are built.

// Strict string-to-number parsing for the command-line front ends.
//
// Unlike atoi/strtol, these reject empty input, leading/trailing garbage
// ("12x", " 3"), and out-of-range values -- a malformed flag must fail the
// invocation, not silently become 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace afdx {

/// Whole-string signed integer; nullopt unless `s` is exactly one base-10
/// integer (optional leading '-').
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

/// Whole-string unsigned integer (no sign allowed).
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view s);

/// Whole-string floating-point number.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// Exactly two hex digits ("0a", "FF") -> byte value; nullopt otherwise.
/// Used by percent-escape decoders ("%XX"), where a truncated or non-hex
/// escape must be a parse error, not a crash or silent passthrough.
[[nodiscard]] std::optional<unsigned char> parse_hex_byte(std::string_view s);

}  // namespace afdx

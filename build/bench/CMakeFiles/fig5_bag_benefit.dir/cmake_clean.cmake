file(REMOVE_RECURSE
  "CMakeFiles/fig5_bag_benefit.dir/fig5_bag_benefit.cpp.o"
  "CMakeFiles/fig5_bag_benefit.dir/fig5_bag_benefit.cpp.o.d"
  "fig5_bag_benefit"
  "fig5_bag_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bag_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

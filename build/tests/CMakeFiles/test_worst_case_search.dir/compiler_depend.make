# Empty compiler generated dependencies file for test_worst_case_search.
# This may be replaced when dependencies are built.

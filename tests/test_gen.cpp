// Tests for the synthetic industrial configuration generator: the generated
// configurations must carry the paper's published macroscopic statistics.
#include "gen/industrial.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trajectory/trajectory_analyzer.hpp"

namespace afdx::gen {
namespace {

TEST(Industrial, HarmonicBagLadder) {
  const auto bags = harmonic_bags();
  ASSERT_EQ(bags.size(), 7u);
  EXPECT_DOUBLE_EQ(bags.front(), 2000.0);
  EXPECT_DOUBLE_EQ(bags.back(), 128000.0);
  for (std::size_t i = 1; i < bags.size(); ++i) {
    EXPECT_DOUBLE_EQ(bags[i], 2.0 * bags[i - 1]);
  }
}

TEST(Industrial, DefaultConfigurationShape) {
  const TrafficConfig cfg = industrial_config();
  EXPECT_EQ(cfg.vl_count(), 500u);
  EXPECT_EQ(cfg.network().switches().size(), 8u);
  EXPECT_EQ(cfg.network().end_systems().size(), 60u);
  EXPECT_GT(cfg.all_paths().size(), cfg.vl_count());  // multicast present
  EXPECT_TRUE(cfg.stable());
}

TEST(Industrial, RespectsUtilizationCap) {
  IndustrialOptions o;
  o.vl_count = 300;
  const TrafficConfig cfg = industrial_config(o);
  EXPECT_LE(cfg.max_utilization(), o.max_port_utilization + 1e-9);
}

TEST(Industrial, ContractsWithinPublishedRanges) {
  const TrafficConfig cfg = industrial_config();
  const auto bags = harmonic_bags();
  const std::set<Microseconds> bag_set(bags.begin(), bags.end());
  std::size_t multicast = 0;
  for (VlId v = 0; v < cfg.vl_count(); ++v) {
    const VirtualLink& vl = cfg.vl(v);
    EXPECT_TRUE(bag_set.count(vl.bag)) << vl.name << " BAG " << vl.bag;
    EXPECT_GE(vl.s_max, kMinEthernetFrame);
    EXPECT_LE(vl.s_max, kMaxEthernetFrame);
    EXPECT_EQ(vl.s_min, kMinEthernetFrame);
    if (vl.destinations.size() > 1) ++multicast;
    EXPECT_LE(vl.destinations.size(), 6u);
  }
  // ~40 % multicast requested; allow generous slack.
  const double frac = static_cast<double>(multicast) / cfg.vl_count();
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.55);
}

TEST(Industrial, PathLengthsMatchPaperScale) {
  const TrafficConfig cfg = industrial_config();
  for (const VlPath& p : cfg.all_paths()) {
    EXPECT_GE(p.links.size(), 2u);  // ES port + at least one switch port
    EXPECT_LE(p.links.size(), 6u);  // shallow core/edge backbone
  }
}

TEST(Industrial, GeneratedConfigurationIsFeedForward) {
  // The trajectory analyzer throws on cyclic prefix dependencies; the tree
  // backbone must prevent them.
  IndustrialOptions o;
  o.vl_count = 80;
  o.end_system_count = 24;
  const TrafficConfig cfg = industrial_config(o);
  EXPECT_NO_THROW(trajectory::analyze(cfg));
}

TEST(Industrial, DeterministicPerSeed) {
  IndustrialOptions o;
  o.vl_count = 50;
  o.end_system_count = 16;
  const TrafficConfig a = industrial_config(o);
  const TrafficConfig b = industrial_config(o);
  ASSERT_EQ(a.vl_count(), b.vl_count());
  for (VlId v = 0; v < a.vl_count(); ++v) {
    EXPECT_EQ(a.vl(v).name, b.vl(v).name);
    EXPECT_EQ(a.vl(v).s_max, b.vl(v).s_max);
    EXPECT_DOUBLE_EQ(a.vl(v).bag, b.vl(v).bag);
    EXPECT_EQ(a.vl(v).destinations, b.vl(v).destinations);
  }
}

TEST(Industrial, SeedsProduceDifferentConfigurations) {
  IndustrialOptions a, b;
  a.vl_count = b.vl_count = 50;
  a.end_system_count = b.end_system_count = 16;
  b.seed = a.seed + 1;
  const TrafficConfig ca = industrial_config(a);
  const TrafficConfig cb = industrial_config(b);
  bool differs = false;
  for (VlId v = 0; v < ca.vl_count() && !differs; ++v) {
    differs = ca.vl(v).s_max != cb.vl(v).s_max ||
              ca.vl(v).destinations != cb.vl(v).destinations;
  }
  EXPECT_TRUE(differs);
}

TEST(Industrial, EverySwitchHostsAnEndSystem) {
  const TrafficConfig cfg = industrial_config();
  const Network& net = cfg.network();
  for (NodeId sw : net.switches()) {
    bool has_es = false;
    for (LinkId l : net.links_from(sw)) {
      has_es = has_es || net.is_end_system(net.link(l).dest);
    }
    EXPECT_TRUE(has_es) << net.node(sw).name;
  }
}

TEST(Industrial, InfeasibleParametersRejected) {
  IndustrialOptions o;
  o.end_system_count = 1;
  EXPECT_THROW(industrial_config(o), Error);

  IndustrialOptions cap;
  cap.vl_count = 5000;
  cap.end_system_count = 4;
  cap.switch_count = 1;
  cap.max_port_utilization = 0.05;  // cannot possibly fit
  EXPECT_THROW(industrial_config(cap), Error);

  IndustrialOptions frac;
  frac.multicast_fraction = 1.5;
  EXPECT_THROW(industrial_config(frac), Error);
}

TEST(Industrial, MultiDomainShapeAndUtilizationCap) {
  IndustrialOptions o;
  o.domains = 4;
  o.vl_count = 800;
  const TrafficConfig cfg = industrial_config(o);
  EXPECT_EQ(cfg.vl_count(), 800u);
  // Four 8-switch domain trees plus one backbone switch per four domains.
  EXPECT_EQ(cfg.network().switches().size(), 4u * 8u + 1u);
  EXPECT_EQ(cfg.network().end_systems().size(), 4u * 60u);
  EXPECT_TRUE(cfg.stable());
  EXPECT_LE(cfg.max_utilization(), o.max_port_utilization + 1e-9);
}

TEST(Industrial, MultiDomainIsFeedForwardAndConnected) {
  IndustrialOptions o;
  o.domains = 5;  // odd count: two backbone switches, uneven domain spread
  o.vl_count = 150;
  o.end_system_count = 12;
  o.cross_domain_fraction = 0.3;
  const TrafficConfig cfg = industrial_config(o);
  // The trajectory analyzer throws on cyclic prefix dependencies; the
  // domain-trees-off-a-backbone-chain topology must stay a tree.
  EXPECT_NO_THROW(trajectory::analyze(cfg));
  // Every node is reachable from node 0 (connect() adds both directions,
  // so links_from gives an undirected traversal).
  const Network& net = cfg.network();
  std::vector<bool> seen(net.node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (LinkId l : net.links_from(n)) {
      const NodeId m = net.link(l).dest;
      if (!seen[m]) {
        seen[m] = true;
        stack.push_back(m);
      }
    }
  }
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    EXPECT_TRUE(seen[n]) << net.node(n).name;
  }
}

TEST(Industrial, CrossDomainFractionControlsBackboneTraffic) {
  // Domain of an end system, parsed from its "D<d>e<k>" generated name.
  const auto domain_of = [](const std::string& name) {
    return std::stoi(name.substr(1, name.find('e') - 1));
  };
  IndustrialOptions local;
  local.domains = 3;
  local.vl_count = 200;
  local.end_system_count = 12;
  local.cross_domain_fraction = 0.0;
  const TrafficConfig all_local = industrial_config(local);
  for (VlId v = 0; v < all_local.vl_count(); ++v) {
    const VirtualLink& vl = all_local.vl(v);
    const int src = domain_of(all_local.network().node(vl.source).name);
    for (NodeId d : vl.destinations) {
      EXPECT_EQ(domain_of(all_local.network().node(d).name), src) << vl.name;
    }
  }
  IndustrialOptions crossing = local;
  crossing.cross_domain_fraction = 0.5;
  const TrafficConfig mixed = industrial_config(crossing);
  std::size_t cross = 0;
  for (VlId v = 0; v < mixed.vl_count(); ++v) {
    const VirtualLink& vl = mixed.vl(v);
    const int src = domain_of(mixed.network().node(vl.source).name);
    for (NodeId d : vl.destinations) {
      if (domain_of(mixed.network().node(d).name) != src) {
        ++cross;
        break;
      }
    }
  }
  EXPECT_GT(cross, 0u);
}

TEST(Industrial, MultiDomainDeterministicPerSeed) {
  IndustrialOptions o;
  o.domains = 3;
  o.vl_count = 120;
  o.end_system_count = 12;
  const TrafficConfig a = industrial_config(o);
  const TrafficConfig b = industrial_config(o);
  ASSERT_EQ(a.vl_count(), b.vl_count());
  ASSERT_EQ(a.network().node_count(), b.network().node_count());
  for (VlId v = 0; v < a.vl_count(); ++v) {
    EXPECT_EQ(a.vl(v).name, b.vl(v).name);
    EXPECT_EQ(a.vl(v).source, b.vl(v).source);
    EXPECT_EQ(a.vl(v).s_max, b.vl(v).s_max);
    EXPECT_DOUBLE_EQ(a.vl(v).bag, b.vl(v).bag);
    EXPECT_EQ(a.vl(v).destinations, b.vl(v).destinations);
  }
}

TEST(Industrial, SingleSwitchDegenerateCase) {
  IndustrialOptions o;
  o.switch_count = 1;
  o.end_system_count = 8;
  o.vl_count = 20;
  const TrafficConfig cfg = industrial_config(o);
  EXPECT_EQ(cfg.vl_count(), 20u);
  for (const VlPath& p : cfg.all_paths()) EXPECT_EQ(p.links.size(), 2u);
}

}  // namespace
}  // namespace afdx::gen

// Machine-readable bench output (`BENCH_*.json`) support.
//
// JsonWriter is a small streaming JSON emitter (escaping, comma handling,
// stable number formatting: max_digits10 round-trip doubles, NaN/Inf -> null)
// used by the bench binaries and the counter/trace exporters.
//
// The BENCH schema itself ("afdx-bench/1") is documented in EXPERIMENTS.md
// and validated by scripts/validate_bench_json.py; benches compose it from
// these primitives so each can add experiment-specific result rows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace afdx::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  // One template for every integer width; avoids the size_t/uint64_t
  // duplicate-overload trap on LP64.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return write_int(static_cast<std::int64_t>(v));
    } else {
      return write_uint(static_cast<std::uint64_t>(v));
    }
  }
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void comma();
  void write_escaped(std::string_view s);
  JsonWriter& write_uint(std::uint64_t v);
  JsonWriter& write_int(std::int64_t v);

  std::ostream& out_;
  // One frame per open object/array: whether a value has been emitted yet.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// Result of the tracer overhead self-check (see EXPERIMENTS.md):
/// a tight loop of ScopedSpan constructions measured with tracing off
/// (the "~0% when disabled" claim) and on (the "<5% enabled" budget).
struct OverheadCheck {
  std::size_t iterations = 0;
  double disabled_ns_per_span = 0.0;
  double enabled_ns_per_span = 0.0;
};

/// Measure ScopedSpan cost. Preserves the tracer's enabled state and drops
/// the calibration spans it records.
[[nodiscard]] OverheadCheck measure_span_overhead(std::size_t iterations =
                                                      200000);

/// Emit the shared "counters" + "histograms" objects of the BENCH schema
/// from the global registry.
void write_registry_json(JsonWriter& w);

}  // namespace afdx::obs

// Unit tests for units, error handling, the RNG wrapper, the bump arena
// allocator and the open-addressing flat map.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace afdx {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(bits_from_bytes(500.0), 4000.0);
  EXPECT_DOUBLE_EQ(microseconds_from_ms(4.0), 4000.0);
  EXPECT_DOUBLE_EQ(rate_from_mbps(100.0), 100.0);
  EXPECT_DOUBLE_EQ(transmission_time(4000.0, 100.0), 40.0);
}

TEST(Units, NearlyEqual) {
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(nearly_equal(1.0, 1.001));
  EXPECT_TRUE(nearly_equal(1.0, 1.5, 0.6));
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_us(123.456), "123.456 us");
  EXPECT_EQ(format_percent(0.1234), "12.34 %");
}

TEST(ErrorHandling, RequireThrowsAfdxError) {
  EXPECT_THROW(AFDX_REQUIRE(false, "boom"), Error);
  EXPECT_NO_THROW(AFDX_REQUIRE(true, "fine"));
}

TEST(ErrorHandling, AssertThrowsLogicErrorWithLocation) {
  try {
    AFDX_ASSERT(1 == 2, "impossible");
    FAIL() << "expected LogicError";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 500 draws
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform_real(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(4);
  int hits0 = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto idx = rng.weighted_index({0.9, 0.1});
    if (idx == 0) ++hits0;
  }
  EXPECT_GT(hits0, 1600);
  EXPECT_LT(hits0, 1999);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Arena, AllocateRewindReset) {
  common::BumpArena arena(256);
  EXPECT_EQ(arena.bytes_in_use(), 0u);

  double* a = arena.alloc_array<double>(10);
  for (int i = 0; i < 10; ++i) a[i] = i * 1.5;
  const std::size_t used_after_a = arena.bytes_in_use();
  EXPECT_GE(used_after_a, 10 * sizeof(double));

  const common::BumpArena::Mark m = arena.mark();
  double* b = arena.alloc_array<double>(100);  // forces a second block
  b[99] = 1.0;
  EXPECT_GE(arena.block_count(), 2u);
  EXPECT_GT(arena.bytes_in_use(), used_after_a);
  const std::size_t peak = arena.high_water();
  EXPECT_GE(peak, arena.bytes_in_use());

  arena.rewind(m);
  EXPECT_EQ(arena.bytes_in_use(), used_after_a);
  // The rewound allocation's memory stays mapped and data before the mark
  // is untouched.
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a[i], i * 1.5);
  EXPECT_EQ(arena.high_water(), peak);

  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.high_water(), peak);  // footprint is a high-water mark
}

TEST(Arena, AlignmentRespected) {
  // The arena serves any alignment up to alignof(std::max_align_t) (block
  // payloads carry max alignment; larger requests are clamped).
  common::BumpArena arena(64);
  (void)arena.allocate(1, 1);
  constexpr std::size_t kAlign = alignof(std::max_align_t);
  void* p = arena.allocate(kAlign, kAlign);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kAlign, 0u);
  void* q = arena.allocate(sizeof(double), alignof(double));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % alignof(double), 0u);
}

TEST(Arena, ScopeInstallsAndNests) {
  EXPECT_EQ(common::active_arena(), nullptr);
  common::BumpArena outer_arena;
  common::BumpArena inner_arena;
  {
    common::ArenaScope outer(outer_arena);
    EXPECT_EQ(common::active_arena(), &outer_arena);
    (void)outer_arena.alloc_array<char>(100);
    {
      common::ArenaScope inner(inner_arena);
      EXPECT_EQ(common::active_arena(), &inner_arena);
    }
    EXPECT_EQ(common::active_arena(), &outer_arena);
  }
  EXPECT_EQ(common::active_arena(), nullptr);
  // Scope exit rewinds to the entry mark.
  EXPECT_EQ(outer_arena.bytes_in_use(), 0u);
}

TEST(Arena, AllocatorServesFromActiveArenaWithHeapFallback) {
  using Vec = std::vector<double, common::ArenaAlloc<double>>;

  // No active scope: plain heap behaviour, safe to destroy any time.
  Vec heap_backed{1.0, 2.0, 3.0};
  EXPECT_EQ(heap_backed.size(), 3u);

  common::BumpArena arena;
  std::size_t in_scope_usage = 0;
  {
    common::ArenaScope scope(arena);
    Vec arena_backed;
    for (int i = 0; i < 100; ++i) arena_backed.push_back(i);
    in_scope_usage = arena.bytes_in_use();
    EXPECT_GT(in_scope_usage, 0u);
    // Heap-backed containers deallocate safely inside a scope too.
    heap_backed.clear();
    heap_backed.shrink_to_fit();
  }
  EXPECT_EQ(arena.bytes_in_use(), 0u);
}

TEST(FlatMap, InsertFindGrowClear) {
  common::FlatMap<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(12345), nullptr);

  // Enough keys to force several growth rounds past the 1024-slot start.
  constexpr std::uint64_t kCount = 5000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    map.emplace(k * 1000003ull, static_cast<double>(k) * 0.5);
  }
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    const double* hit = map.find(k * 1000003ull);
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(*hit, static_cast<double>(k) * 0.5);
  }
  EXPECT_EQ(map.find(999), nullptr);

  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  map.emplace(7, 1.25);
  const double* hit = map.find(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(*hit, 1.25);
}

TEST(FlatMap, TrajectoryShapedKeys) {
  // The analyzer keys are (vl << 32) | link -- never all-ones, clustered
  // in both halves. The map must keep them distinct.
  common::FlatMap<double> map;
  for (std::uint64_t vl = 0; vl < 64; ++vl) {
    for (std::uint64_t link = 0; link < 64; ++link) {
      map.emplace((vl << 32) | link, static_cast<double>(vl * 64 + link));
    }
  }
  EXPECT_EQ(map.size(), 64u * 64u);
  const double* hit = map.find((63ull << 32) | 7ull);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(*hit, 63.0 * 64.0 + 7.0);
  EXPECT_EQ(map.find((64ull << 32) | 7ull), nullptr);
}

}  // namespace
}  // namespace afdx

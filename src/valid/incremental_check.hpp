// Differential validation of incremental re-analysis.
//
// run_incremental's whole value proposition is "bit-identical to a full
// run, much cheaper". check_incremental_diff() puts that claim under
// test: for every fault scenario of a configuration (each single cable,
// each single switch, plus randomly drawn multi-cable sets), it analyzes
// the degraded view twice -- once from scratch with run_resilient and
// once with run_incremental seeded from the healthy baseline -- and
// compares every per-path WCNC, trajectory and combined bound *bitwise*
// (plus the per-path outcome states). Any difference, down to the last
// ulp, is a reported mismatch: the dirty-cone computation transplants
// baseline values verbatim, so even rounding-level drift means the cone
// was drawn too small.
//
// afdx_fuzz --mode=incremental-diff sweeps this check over the campaign
// grid's generated configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::valid {

struct IncrementalDiffOptions {
  netcalc::Options nc;
  trajectory::Options tj;
  /// Randomly drawn multi-cable scenarios (1..3 cables each) on top of the
  /// exhaustive single-link / single-switch sweeps.
  std::size_t random_scenarios = 8;
  std::uint64_t seed = 1;
  /// Include the exhaustive single-switch sweep (single links are always
  /// covered).
  bool switches = true;
};

/// One value that differed between the full and the incremental run.
struct IncrementalMismatch {
  /// Scenario label ("link e1-S1", "random#3", ...).
  std::string scenario;
  /// "wcnc", "trajectory", "combined" or "state".
  std::string field;
  /// Degraded path index the difference occurred at.
  std::size_t index = 0;
  double full = 0.0;
  double incremental = 0.0;

  [[nodiscard]] std::string describe() const;
};

struct IncrementalDiffResult {
  std::size_t scenarios_checked = 0;
  /// Scenarios that removed every VL (nothing to analyze) -- counted, not
  /// checked.
  std::size_t scenarios_empty = 0;
  /// Per-path bound/state comparisons performed.
  std::size_t values_compared = 0;
  /// Incremental runs that fell back to a full recompute (baseline
  /// rejected) -- still compared, but worth surfacing: a fallback on every
  /// scenario means the fast path never ran.
  std::size_t full_fallbacks = 0;
  /// Ports/prefixes transplanted across all scenarios (fast-path
  /// evidence).
  std::size_t seeded_ports = 0;
  std::size_t seeded_prefixes = 0;
  std::vector<IncrementalMismatch> mismatches;

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
};

/// Runs the full-vs-incremental differential over every fault scenario of
/// `config`. Deterministic for a given (config, options).
[[nodiscard]] IncrementalDiffResult check_incremental_diff(
    const TrafficConfig& config, const IncrementalDiffOptions& options = {});

}  // namespace afdx::valid

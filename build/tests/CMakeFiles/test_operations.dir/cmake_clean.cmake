file(REMOVE_RECURSE
  "CMakeFiles/test_operations.dir/test_operations.cpp.o"
  "CMakeFiles/test_operations.dir/test_operations.cpp.o.d"
  "test_operations"
  "test_operations.pdb"
  "test_operations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bound_tightness.
# This may be replaced when dependencies are built.

#include "engine/session.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace afdx::engine {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::shared_ptr<const BaselineState> BaselineState::build(
    std::shared_ptr<const TrafficConfig> config, const netcalc::Options& nc,
    const trajectory::Options& tj, int threads) {
  AFDX_TRACE_SPAN("session.baseline.build", "engine");
  if (config == nullptr) throw Error("BaselineState: null configuration");
  auto state = std::shared_ptr<BaselineState>(new BaselineState());
  state->config_ = std::move(config);
  state->nc_ = nc;
  state->tj_ = tj;
  AnalysisEngine engine(*state->config_, Options{threads});
  const auto t0 = Clock::now();
  state->healthy_ = engine.run_resilient(nc, tj);
  state->build_wall_us_ =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  return state;
}

OverlaySession::OverlaySession(std::shared_ptr<const BaselineState> baseline,
                               int threads)
    : baseline_(std::move(baseline)), threads_(threads) {
  if (baseline_ == nullptr) throw Error("OverlaySession: null baseline");
}

void OverlaySession::override_vl(const VlOverride& override_) {
  const TrafficConfig& cfg = baseline_->config();
  const std::optional<VlId> id = cfg.find_vl(override_.vl);
  if (!id.has_value()) {
    throw Error("unknown VL '" + override_.vl + "'");
  }
  // Validate the merged VL eagerly so a bad request fails here, with the
  // VL named, instead of deep inside TrafficConfig construction.
  VirtualLink merged = cfg.vl(*id);
  const auto apply = [&merged](const VlOverride& o) {
    if (o.bag) merged.bag = *o.bag;
    if (o.s_min) merged.s_min = *o.s_min;
    if (o.s_max) merged.s_max = *o.s_max;
    if (o.max_release_jitter) merged.max_release_jitter = *o.max_release_jitter;
    if (o.priority) merged.priority = *o.priority;
  };
  for (const VlOverride& o : overrides_) {
    if (o.vl == override_.vl) apply(o);
  }
  apply(override_);
  merged.validate();

  for (VlOverride& o : overrides_) {
    if (o.vl != override_.vl) continue;
    if (override_.bag) o.bag = override_.bag;
    if (override_.s_min) o.s_min = override_.s_min;
    if (override_.s_max) o.s_max = override_.s_max;
    if (override_.max_release_jitter) {
      o.max_release_jitter = override_.max_release_jitter;
    }
    if (override_.priority) o.priority = override_.priority;
    return;
  }
  overrides_.push_back(override_);
}

void OverlaySession::override_bag(const std::string& vl, Microseconds bag_us) {
  VlOverride o;
  o.vl = vl;
  o.bag = bag_us;
  override_vl(o);
}

void OverlaySession::override_s_max(const std::string& vl, Bytes s_max) {
  VlOverride o;
  o.vl = vl;
  o.s_max = s_max;
  override_vl(o);
}

void OverlaySession::override_priority(const std::string& vl,
                                       std::uint8_t priority) {
  VlOverride o;
  o.vl = vl;
  o.priority = priority;
  override_vl(o);
}

TrafficConfig OverlaySession::materialize() const {
  AFDX_TRACE_SPAN("session.materialize", "engine");
  const TrafficConfig& base = baseline_->config();

  std::vector<VirtualLink> vls;
  vls.reserve(base.vl_count());
  for (VlId v = 0; v < base.vl_count(); ++v) vls.push_back(base.vl(v));
  for (const VlOverride& o : overrides_) {
    const VlId v = *base.find_vl(o.vl);  // validated in override_vl
    if (o.bag) vls[v].bag = *o.bag;
    if (o.s_min) vls[v].s_min = *o.s_min;
    if (o.s_max) vls[v].s_max = *o.s_max;
    if (o.max_release_jitter) vls[v].max_release_jitter = *o.max_release_jitter;
    if (o.priority) vls[v].priority = *o.priority;
  }

  // Baseline routes verbatim: link ids, trees and path order stay aligned
  // with the baseline, which is what keeps plan_incremental's dirty cone
  // minimal (only the overridden VLs' ports change their crossing tuples).
  std::vector<std::vector<std::vector<LinkId>>> routes;
  routes.reserve(base.vl_count());
  for (VlId v = 0; v < base.vl_count(); ++v) {
    routes.push_back(base.route(v).paths());
  }
  return TrafficConfig(base.network(), std::move(vls), std::move(routes));
}

RunResult OverlaySession::analyze(const RunControl& control) {
  return analyze_config(materialize(), {}, control);
}

RunResult OverlaySession::analyze_config(const TrafficConfig& current,
                                         const std::vector<LinkId>& changed_links,
                                         const RunControl& control) {
  AFDX_TRACE_SPAN("session.analyze", "engine");
  AnalysisEngine engine(current, Options{threads_});
  RunResult result = engine.run_incremental(
      baseline_->config(), baseline_->healthy(), changed_links,
      baseline_->nc_options(), baseline_->tj_options(), control);
  last_incremental_ = result.metrics.incremental;
  return result;
}

}  // namespace afdx::engine

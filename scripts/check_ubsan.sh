#!/usr/bin/env sh
# Builds the project under UndefinedBehaviorSanitizer (trapping on any
# report) and runs the full test suite plus a bounded degraded-mode sweep.
#
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -eu

BUILD_DIR="${1:-build-ubsan}"
REPO="$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -S "$REPO" -DAFDX_SANITIZE=undefined
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
"$BUILD_DIR/tools/afdx_analyze" "$REPO/tests/data/sample.afdx" \
    --faults=single-link --faults=single-switch --deadline-ms=60000

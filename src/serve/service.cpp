#include "serve/service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/ladder.hpp"
#include "common/error.hpp"
#include "faults/degrade.hpp"
#include "faults/report.hpp"
#include "faults/scenario.hpp"
#include "obs/bench_json.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

Microseconds elapsed_us(Clock::time_point since) {
  return std::chrono::duration<double, std::micro>(Clock::now() - since)
      .count();
}

std::string path_vl_name(const TrafficConfig& config, std::size_t path_index) {
  return config.vl(config.all_paths()[path_index].vl).name;
}

std::string path_dest_name(const TrafficConfig& config,
                           std::size_t path_index) {
  const VlPath& p = config.all_paths()[path_index];
  const VirtualLink& vl = config.vl(p.vl);
  return config.network().node(vl.destinations[p.dest_index]).name;
}

/// One whatif comparison row: healthy path index + its overlay outcome.
struct DeltaRow {
  std::size_t path = 0;
  Microseconds baseline_us = 0.0;
  Microseconds whatif_us = 0.0;
  /// 0 for unreachable paths (there is no finite delta to rank by).
  Microseconds delta_us = 0.0;
  bool unreachable = false;
  engine::PathState state = engine::PathState::kOk;
};

void write_delta_row(obs::JsonWriter& w, const TrafficConfig& config,
                     const DeltaRow& row) {
  w.begin_object()
      .field("vl", path_vl_name(config, row.path))
      .field("dest", path_dest_name(config, row.path))
      .field("baseline_us", row.baseline_us);
  if (row.unreachable) {
    w.field("unreachable", true);
  } else {
    w.field("whatif_us", row.whatif_us).field("delta_us", row.delta_us);
  }
  if (row.state != engine::PathState::kOk) {
    w.field("state", engine::to_string(row.state));
  }
  w.end_object();
}

/// Runs the accuracy/cost ladder for one request: the request's budget caps
/// the escalation spend, the baseline's analysis options keep the rungs
/// consistent with the pinned bounds, and the per-request deadline (if any)
/// rides along as the external cancel token.
analysis::LadderResult run_request_ladder(const TrafficConfig& config,
                                          const engine::BaselineState& base,
                                          const LadderSpec& spec,
                                          const engine::CancelToken* cancel,
                                          int threads) {
  analysis::LadderOptions lopts;
  lopts.budget_ms = spec.budget_ms;
  lopts.max_path_evals = spec.max_path_evals;
  lopts.cancel = cancel;
  lopts.netcalc = base.nc_options();
  lopts.trajectory = base.tj_options();
  engine::Options eopts;
  eopts.threads = threads;
  return analysis::run_ladder(config, lopts, eopts);
}

/// "sfa+wcnc+trajectory_pruned" -- the rungs a path actually attempted.
std::string attempted_rungs(const analysis::PathProvenance& pv) {
  std::string out;
  for (std::size_t r = 0; r < analysis::kRungCount; ++r) {
    if (!pv.attempted(static_cast<analysis::Rung>(r))) continue;
    if (!out.empty()) out += '+';
    out += analysis::to_string(static_cast<analysis::Rung>(r));
  }
  return out;
}

void write_ladder_summary(obs::JsonWriter& w,
                          const analysis::LadderResult& res) {
  w.field("complete", res.complete())
      .field("budget_exhausted", res.budget_exhausted);
  if (!res.budget_reason.empty()) {
    w.field("budget_reason", res.budget_reason);
  }
  w.field("path_evals", res.path_evals)
      .field("paths_escalated", res.paths_escalated);

  std::array<std::size_t, analysis::kRungCount> winners{};
  double max_tightening = 0.0;
  double sum_tightening = 0.0;
  for (const analysis::PathProvenance& pv : res.provenance) {
    ++winners[static_cast<std::size_t>(pv.winner)];
    const double t = pv.tightening_us();
    if (std::isfinite(t)) {
      max_tightening = std::max(max_tightening, t);
      sum_tightening += t;
    }
  }
  w.key("winners").begin_object();
  for (std::size_t r = 0; r < analysis::kRungCount; ++r) {
    if (winners[r] == 0) continue;
    w.field(analysis::to_string(static_cast<analysis::Rung>(r)), winners[r]);
  }
  w.end_object();
  const std::size_t n = res.provenance.size();
  w.field("max_tightening_us", max_tightening)
      .field("mean_tightening_us",
             n == 0 ? 0.0 : sum_tightening / static_cast<double>(n))
      .field("ladder_wall_us", res.wall_us);
}

void write_incremental(obs::JsonWriter& w,
                       const engine::IncrementalStats& inc) {
  w.key("incremental")
      .begin_object()
      .field("dirty_ports", inc.dirty_ports)
      .field("seeded_ports", inc.seeded_ports)
      .field("seeded_prefixes", inc.seeded_prefixes)
      .field("transplanted_paths", inc.transplanted_paths)
      .field("full_fallback", inc.full_fallback)
      .end_object();
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options), start_(Clock::now()) {}

void Service::add_baseline(const std::string& name,
                           std::shared_ptr<const TrafficConfig> config,
                           const netcalc::Options& nc,
                           const trajectory::Options& tj, int build_threads) {
  add_baseline(name, engine::BaselineState::build(std::move(config), nc, tj,
                                                  build_threads));
}

void Service::add_baseline(
    const std::string& name,
    std::shared_ptr<const engine::BaselineState> baseline) {
  if (baseline == nullptr) throw Error("Service: null baseline");
  for (const auto& [existing, state] : baselines_) {
    if (existing == name) {
      throw Error("Service: duplicate baseline '" + name + "'");
    }
  }
  baselines_.emplace_back(name, std::move(baseline));
}

std::shared_ptr<const engine::BaselineState> Service::baseline(
    const std::string& name) const {
  if (baselines_.empty()) return nullptr;
  if (name.empty()) return baselines_.front().second;
  for (const auto& [existing, state] : baselines_) {
    if (existing == name) return state;
  }
  return nullptr;
}

const engine::BaselineState& Service::baseline_for(const Request& req) const {
  const auto state = baseline(req.config);
  if (state == nullptr) {
    if (req.config.empty()) throw Error("no configuration loaded");
    throw Error("unknown config '" + req.config + "'");
  }
  return *state;
}

std::string Service::handle_line(const std::string& line) {
  try {
    return handle(parse_request(line));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("serve.errors").add();
    return error_response(peek_request_id(line), e.what());
  }
}

std::string Service::handle(const Request& req) {
  AFDX_TRACE_SPAN("serve.request", "serve");
  const auto t0 = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("serve.requests").add();
  std::string response;
  try {
    switch (req.op) {
      case Op::kStatus:
        response = handle_status(req);
        break;
      case Op::kBounds:
        response = handle_bounds(req);
        break;
      case Op::kWhatIf:
        response = handle_whatif(req);
        break;
      case Op::kFaultSweep:
        response = handle_fault_sweep(req);
        break;
      case Op::kLadder:
        response = handle_ladder(req);
        break;
      case Op::kShutdown:
        response = handle_shutdown(req);
        break;
    }
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("serve.errors").add();
    response = error_response(req.id, e.what());
  }
  obs::registry()
      .histogram("serve.request_wall_us")
      .observe(static_cast<std::uint64_t>(elapsed_us(t0)));
  return response;
}

void Service::note_overloaded() noexcept {
  overloaded_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("serve.overloaded").add();
}

void Service::note_error() noexcept {
  errors_.fetch_add(1, std::memory_order_relaxed);
  obs::registry().counter("serve.errors").add();
}

void Service::note_run(const engine::RunResult& result) noexcept {
  const engine::RunMetrics& m = result.metrics;
  port_hits_.fetch_add(m.cache_run.hits, std::memory_order_relaxed);
  port_misses_.fetch_add(m.cache_run.misses, std::memory_order_relaxed);
  prefix_hits_.fetch_add(m.prefix_run.hits, std::memory_order_relaxed);
  prefix_misses_.fetch_add(m.prefix_run.misses, std::memory_order_relaxed);
  seeded_ports_.fetch_add(m.incremental.seeded_ports,
                          std::memory_order_relaxed);
  dirty_ports_.fetch_add(m.incremental.dirty_ports, std::memory_order_relaxed);
}

std::string Service::handle_status(const Request& req) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "status")
      .field("uptime_us", elapsed_us(start_));

  w.key("configs").begin_array();
  for (const auto& [name, state] : baselines_) {
    w.begin_object()
        .field("name", name)
        .field("vls", state->config().vl_count())
        .field("paths", state->config().all_paths().size())
        .field("complete", state->healthy().complete())
        .field("baseline_wall_us", state->build_wall_us())
        .end_object();
  }
  w.end_array();

  w.key("requests")
      .begin_object()
      .field("total", requests_.load(std::memory_order_relaxed))
      .field("errors", errors_.load(std::memory_order_relaxed))
      .field("overloaded", overloaded_.load(std::memory_order_relaxed))
      .end_object();

  const QueueInfo q = queue_probe_ ? queue_probe_() : QueueInfo{};
  w.key("queue")
      .begin_object()
      .field("depth", q.depth)
      .field("capacity", q.capacity)
      .end_object();

  const std::uint64_t ph = port_hits_.load(std::memory_order_relaxed);
  const std::uint64_t pm = port_misses_.load(std::memory_order_relaxed);
  const std::uint64_t th = prefix_hits_.load(std::memory_order_relaxed);
  const std::uint64_t tm = prefix_misses_.load(std::memory_order_relaxed);
  const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  };
  w.key("caches")
      .begin_object()
      .field("port_hits", ph)
      .field("port_misses", pm)
      .field("port_hit_rate", rate(ph, pm))
      .field("prefix_hits", th)
      .field("prefix_misses", tm)
      .field("prefix_hit_rate", rate(th, tm))
      .field("seeded_ports", seeded_ports_.load(std::memory_order_relaxed))
      .field("dirty_ports", dirty_ports_.load(std::memory_order_relaxed))
      .end_object();

  const obs::Histogram& lat =
      obs::registry().histogram("serve.request_wall_us");
  w.key("latency_us")
      .begin_object()
      .field("count", lat.count())
      .field("mean", lat.mean())
      .field("min", lat.min())
      .field("max", lat.max())
      .end_object();

  w.end_object();
  return out.str();
}

std::string Service::handle_bounds(const Request& req) {
  const engine::BaselineState& base = baseline_for(req);
  const TrafficConfig& config = base.config();
  const engine::RunResult& healthy = base.healthy();

  if (req.vl.has_value() && !config.find_vl(*req.vl).has_value()) {
    throw Error("unknown VL '" + *req.vl + "'");
  }
  const std::size_t limit = req.limit == 0 ? 100 : req.limit;

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "bounds")
      .field("complete", healthy.complete());

  std::size_t matched = 0;
  w.key("paths").begin_array();
  for (std::size_t p = 0; p < config.all_paths().size(); ++p) {
    if (req.vl.has_value() && path_vl_name(config, p) != *req.vl) continue;
    ++matched;
    if (matched > limit) continue;
    w.begin_object()
        .field("vl", path_vl_name(config, p))
        .field("dest", path_dest_name(config, p))
        .field("netcalc_us", healthy.netcalc[p])
        .field("trajectory_us", healthy.trajectory[p])
        .field("combined_us", healthy.combined[p]);
    if (!healthy.status[p].ok()) {
      w.field("state", engine::to_string(healthy.status[p].state));
      if (!healthy.status[p].message.empty()) {
        w.field("message", healthy.status[p].message);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.field("total", matched)
      .field("returned", std::min(matched, limit))
      .end_object();
  return out.str();
}

std::string Service::handle_whatif(const Request& req) {
  AFDX_TRACE_SPAN("serve.whatif", "serve");
  const auto t0 = Clock::now();
  const engine::BaselineState& base = baseline_for(req);
  const TrafficConfig& config = base.config();
  if (req.set.empty() && req.fail_spec.empty()) {
    throw Error("whatif changes nothing: provide 'set' overrides and/or a "
                "'fail' spec");
  }

  auto state = baseline(req.config);  // shared_ptr for the session
  engine::OverlaySession session(state, options_.request_threads);
  for (const engine::VlOverride& o : req.set) session.override_vl(o);

  engine::CancelToken token;
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : options_.default_deadline_ms;
  engine::RunControl control;
  if (deadline_ms > 0.0) {
    token.set_deadline_after(microseconds_from_ms(deadline_ms));
    control.cancel = &token;
  }

  // With a fault spec the overlay is the degraded view of the materialized
  // (VL-overridden) configuration; otherwise the materialized overlay
  // itself. Either way run_incremental re-bounds only the dirty cone.
  engine::RunResult run;
  std::optional<faults::DegradedView> view;
  std::size_t failed_elements = 0;
  if (!req.fail_spec.empty()) {
    faults::FaultScenario scenario =
        faults::scenario_from_spec(config.network(), req.fail_spec);
    failed_elements =
        scenario.failed_links.size() / 2 + scenario.failed_nodes.size();
    const std::vector<LinkId> changed =
        faults::scenario_changed_links(config.network(), scenario);
    const TrafficConfig overlay = session.materialize();
    view = faults::apply_scenario(overlay, std::move(scenario));
    if (view->config.has_value()) {
      run = session.analyze_config(*view->config, changed, control);
    }
  } else {
    run = session.analyze(control);
  }
  note_run(run);

  // "ladder" rider: re-bound the overlaid configuration with the budgeted
  // accuracy/cost ladder and report how much the escalation tightened.
  std::optional<TrafficConfig> ladder_config;
  std::optional<analysis::LadderResult> ladder;
  if (req.ladder.has_value()) {
    if (view.has_value()) {
      if (view->config.has_value()) ladder_config = *view->config;
    } else {
      ladder_config = session.materialize();
    }
    if (ladder_config.has_value()) {
      ladder = run_request_ladder(*ladder_config, base, *req.ladder,
                                  control.cancel, options_.request_threads);
    }
  }

  // Compare per healthy path: overlay paths stay index-aligned unless a
  // fault re-routed them, in which case the degraded view's map applies.
  std::vector<DeltaRow> rows;
  std::size_t unreachable = 0;
  std::size_t skipped = 0;
  const std::size_t n = config.all_paths().size();
  for (std::size_t p = 0; p < n; ++p) {
    DeltaRow row;
    row.path = p;
    row.baseline_us = base.healthy().combined[p];
    std::size_t overlay_index = p;
    if (view.has_value()) {
      if (view->paths[p].fate == faults::PathFate::kUnreachable) {
        row.unreachable = true;
        row.whatif_us = kInf;
        ++unreachable;
        rows.push_back(row);
        continue;
      }
      overlay_index = view->paths[p].degraded_index;
    }
    row.whatif_us = run.combined[overlay_index];
    row.state = run.status[overlay_index].state;
    if (row.state == engine::PathState::kSkipped) ++skipped;
    if (std::isfinite(row.whatif_us) && std::isfinite(row.baseline_us)) {
      row.delta_us = row.whatif_us - row.baseline_us;
    }
    const bool changed = row.state != engine::PathState::kOk ||
                         !nearly_equal(row.whatif_us, row.baseline_us);
    if (changed) rows.push_back(row);
  }

  // Largest movement first; path index breaks ties deterministically.
  std::sort(rows.begin(), rows.end(), [](const DeltaRow& a, const DeltaRow& b) {
    const double ma = a.unreachable ? kInf : std::fabs(a.delta_us);
    const double mb = b.unreachable ? kInf : std::fabs(b.delta_us);
    if (ma != mb) return ma > mb;
    return a.path < b.path;
  });
  const std::size_t limit = req.limit == 0 ? 20 : req.limit;

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "whatif")
      .field("overrides", req.set.size())
      .field("failed_elements", failed_elements)
      .field("paths", n)
      .field("paths_changed", rows.size())
      .field("unreachable", unreachable)
      .field("partial", skipped > 0);
  write_incremental(w, session.last_incremental());
  w.key("changed").begin_array();
  for (std::size_t i = 0; i < rows.size() && i < limit; ++i) {
    write_delta_row(w, config, rows[i]);
  }
  w.end_array();
  if (ladder.has_value()) {
    w.key("ladder").begin_object();
    write_ladder_summary(w, *ladder);
    w.end_object();
  }
  w.field("wall_us", elapsed_us(t0)).end_object();
  return out.str();
}

std::string Service::handle_fault_sweep(const Request& req) {
  AFDX_TRACE_SPAN("serve.fault_sweep", "serve");
  const auto t0 = Clock::now();
  const engine::BaselineState& base = baseline_for(req);
  const TrafficConfig& config = base.config();

  std::vector<faults::FaultScenario> scenarios;
  const std::string scope = req.scope.empty() ? "single-link" : req.scope;
  if (scope == "single-link") {
    scenarios = faults::single_link_scenarios(config);
  } else if (scope == "single-switch") {
    scenarios = faults::single_switch_scenarios(config);
  } else {
    scenarios.push_back(faults::scenario_from_spec(config.network(), scope));
  }

  engine::CancelToken token;
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : options_.default_deadline_ms;
  faults::ScenarioOptions options;
  options.nc = base.nc_options();
  options.tj = base.tj_options();
  options.threads = options_.request_threads;
  options.healthy_run = &base.healthy();
  if (deadline_ms > 0.0) {
    token.set_deadline_after(microseconds_from_ms(deadline_ms));
    options.cancel = &token;
  }
  const faults::DegradationReport report =
      faults::analyze_scenarios(config, std::move(scenarios), options);

  std::size_t analyzed = 0;
  for (const faults::ScenarioReport& sr : report.scenarios) {
    if (sr.analyzed) ++analyzed;
  }
  const std::size_t limit = req.limit == 0 ? 50 : req.limit;

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "fault_sweep")
      .field("scope", scope)
      .field("scenarios", report.scenarios.size())
      .field("analyzed", analyzed)
      .field("partial", analyzed < report.scenarios.size())
      .field("complete", report.complete())
      .field("total_unreachable", report.total_unreachable)
      .field("worst_inflation", report.worst_inflation);
  if (report.worst_scenario != faults::kNoPath) {
    w.field("worst_scenario",
            report.scenarios[report.worst_scenario].scenario.name)
        .field("worst_vl", path_vl_name(config, report.worst_path))
        .field("worst_dest", path_dest_name(config, report.worst_path));
  }
  w.key("rows").begin_array();
  for (std::size_t s = 0; s < report.scenarios.size() && s < limit; ++s) {
    const faults::ScenarioReport& sr = report.scenarios[s];
    w.begin_object().field("name", sr.scenario.name);
    if (!sr.analyzed) {
      w.field("analyzed", false)
          .field("skip_reason", sr.skip_reason)
          .end_object();
      continue;
    }
    w.field("intact", sr.intact)
        .field("rerouted", sr.rerouted)
        .field("unreachable", sr.unreachable)
        .field("failed", sr.failed)
        .field("skipped", sr.skipped)
        .field("worst_inflation", sr.worst_inflation)
        .end_object();
  }
  w.end_array();
  w.field("wall_us", elapsed_us(t0)).end_object();
  return out.str();
}

std::string Service::handle_ladder(const Request& req) {
  AFDX_TRACE_SPAN("serve.ladder", "serve");
  const auto t0 = Clock::now();
  const engine::BaselineState& base = baseline_for(req);
  const TrafficConfig& config = base.config();

  engine::CancelToken token;
  const engine::CancelToken* cancel = nullptr;
  const double deadline_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    token.set_deadline_after(microseconds_from_ms(deadline_ms));
    cancel = &token;
  }

  const LadderSpec spec = req.ladder.value_or(LadderSpec{});
  const analysis::LadderResult res = run_request_ladder(
      config, base, spec, cancel, options_.request_threads);

  // Most-tightened paths first; path index breaks ties deterministically.
  std::vector<std::size_t> order(res.bounds.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ta = res.provenance[a].tightening_us();
                     const double tb = res.provenance[b].tightening_us();
                     if (ta != tb) return ta > tb;
                     return a < b;
                   });
  const std::size_t limit = req.limit == 0 ? 20 : req.limit;

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "ladder")
      .field("paths", res.bounds.size());
  write_ladder_summary(w, res);

  w.key("rungs").begin_array();
  for (std::size_t r = 0; r < analysis::kRungCount; ++r) {
    const analysis::RungStats& rs = res.rungs[r];
    if (!rs.attempted) continue;
    w.begin_object()
        .field("rung", analysis::to_string(static_cast<analysis::Rung>(r)))
        .field("completed", rs.completed)
        .field("paths", rs.paths_bounded)
        .field("cost_estimate", rs.cost_estimate)
        .field("wall_us", rs.wall_us);
    if (!rs.message.empty()) w.field("message", rs.message);
    w.end_object();
  }
  w.end_array();

  w.key("paths_detail").begin_array();
  for (std::size_t i = 0; i < order.size() && i < limit; ++i) {
    const std::size_t p = order[i];
    const analysis::PathProvenance& pv = res.provenance[p];
    w.begin_object()
        .field("vl", path_vl_name(config, p))
        .field("dest", path_dest_name(config, p))
        .field("bound_us", res.bounds[p])
        .field("winner", analysis::to_string(pv.winner))
        .field("first_us", pv.first_bound_us)
        .field("tightening_us", pv.tightening_us())
        .field("escalated", pv.escalated)
        .field("rungs", attempted_rungs(pv));
    if (res.status[p].state != engine::PathState::kOk) {
      w.field("state", engine::to_string(res.status[p].state));
    }
    if (!res.status[p].message.empty()) {
      w.field("message", res.status[p].message);
    }
    w.end_object();
  }
  w.end_array();
  w.field("wall_us", elapsed_us(t0)).end_object();
  return out.str();
}

std::string Service::handle_shutdown(const Request& req) {
  shutdown_.store(true, std::memory_order_relaxed);
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", req.id)
      .field("ok", true)
      .field("op", "shutdown")
      .end_object();
  return out.str();
}

}  // namespace afdx::serve

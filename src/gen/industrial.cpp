#include "gen/industrial.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace afdx::gen {

std::vector<Microseconds> harmonic_bags() {
  std::vector<Microseconds> bags;
  for (double ms = 2.0; ms <= 128.0; ms *= 2.0) {
    bags.push_back(microseconds_from_ms(ms));
  }
  return bags;
}

TrafficConfig industrial_config(const IndustrialOptions& o) {
  AFDX_REQUIRE(o.switch_count >= 1, "industrial_config: need >= 1 switch");
  AFDX_REQUIRE(o.end_system_count >= 2,
               "industrial_config: need >= 2 end systems");
  AFDX_REQUIRE(o.vl_count >= 1, "industrial_config: need >= 1 VL");
  AFDX_REQUIRE(o.multicast_fraction >= 0.0 && o.multicast_fraction <= 1.0,
               "industrial_config: multicast fraction in [0,1]");
  AFDX_REQUIRE(o.max_multicast_fanout >= 2,
               "industrial_config: max_multicast_fanout must be >= 2");
  AFDX_REQUIRE(o.min_bag_ms <= o.max_bag_ms,
               "industrial_config: min_bag_ms must be <= max_bag_ms");
  AFDX_REQUIRE(o.max_frame_bytes >= kMinEthernetFrame &&
                   o.max_frame_bytes <= kMaxEthernetFrame,
               "industrial_config: max_frame_bytes outside the Ethernet range");
  AFDX_REQUIRE(o.domains >= 1, "industrial_config: need >= 1 domain");
  AFDX_REQUIRE(
      o.cross_domain_fraction >= 0.0 && o.cross_domain_fraction <= 1.0,
      "industrial_config: cross_domain_fraction in [0,1]");

  Rng rng(o.seed);
  Network net;

  LinkParams lp;
  lp.rate = o.link_rate;
  lp.switch_latency = o.switch_latency;
  lp.end_system_latency = 0.0;

  // Core/edge tree backbone, as in deployed AFDX networks: up to two core
  // switches interconnect the edge switches that host the end systems. The
  // tree keeps the configuration feed-forward (see header comment) and the
  // shallow diameter matches the published path lengths (1-4 switches).
  //
  // With domains > 1, one such tree is built per domain and the domain
  // trees hang off a chain of backbone switches -- still a tree overall,
  // so feed-forwardness is preserved at any scale. `switches` holds the
  // domain switches domain-major (domain d starts at d * switch_count);
  // backbone switches host no end systems and never start a bundle.
  std::vector<NodeId> switches;
  // End systems per switch (index into `switches`), recorded at connect
  // time for the conversation bundles below.
  std::vector<std::vector<NodeId>> es_of_switch(
      static_cast<std::size_t>(o.domains) *
      static_cast<std::size_t>(o.switch_count));
  std::vector<NodeId> end_systems;
  const int cores = o.switch_count >= 4 ? 2 : 1;
  if (o.domains == 1) {
    for (int s = 0; s < o.switch_count; ++s) {
      switches.push_back(net.add_switch("S" + std::to_string(s + 1)));
      if (s == 1 && cores == 2) {
        net.connect(switches[0], switches[1], lp);
      } else if (s >= cores) {
        const auto core =
            static_cast<std::size_t>(rng.uniform_int(0, cores - 1));
        net.connect(switches[core], switches.back(), lp);
      }
    }

    // End systems spread over the switches: round-robin plus a random tail
    // so some switches host more avionics functions than others, as in
    // practice.
    for (int e = 0; e < o.end_system_count; ++e) {
      const NodeId es = net.add_end_system("e" + std::to_string(e + 1));
      std::size_t sw;
      if (e < o.switch_count) {
        sw = static_cast<std::size_t>(e);  // every switch gets at least one ES
      } else {
        sw = static_cast<std::size_t>(
            rng.uniform_int(0, o.switch_count - 1));
      }
      net.connect(es, switches[sw], lp);
      es_of_switch[sw].push_back(es);
      end_systems.push_back(es);
    }
  } else {
    // Backbone chain first, so every domain tree can attach immediately.
    const int backbone_count = (o.domains + 3) / 4;
    std::vector<NodeId> backbone;
    for (int b = 0; b < backbone_count; ++b) {
      backbone.push_back(net.add_switch("B" + std::to_string(b + 1)));
      if (b > 0) net.connect(backbone[static_cast<std::size_t>(b - 1)],
                             backbone.back(), lp);
    }
    for (int d = 0; d < o.domains; ++d) {
      const std::size_t base = switches.size();
      const std::string dom = "D" + std::to_string(d + 1);
      for (int s = 0; s < o.switch_count; ++s) {
        switches.push_back(net.add_switch(dom + "S" + std::to_string(s + 1)));
        if (s == 1 && cores == 2) {
          net.connect(switches[base], switches[base + 1], lp);
        } else if (s >= cores) {
          const auto core =
              static_cast<std::size_t>(rng.uniform_int(0, cores - 1));
          net.connect(switches[base + core], switches.back(), lp);
        }
      }
      // The domain's first core switch is its uplink to the backbone.
      net.connect(backbone[static_cast<std::size_t>(d % backbone_count)],
                  switches[base], lp);

      for (int e = 0; e < o.end_system_count; ++e) {
        const NodeId es =
            net.add_end_system(dom + "e" + std::to_string(e + 1));
        std::size_t sw;
        if (e < o.switch_count) {
          sw = static_cast<std::size_t>(e);
        } else {
          sw = static_cast<std::size_t>(
              rng.uniform_int(0, o.switch_count - 1));
        }
        net.connect(es, switches[base + sw], lp);
        es_of_switch[base + sw].push_back(es);
        end_systems.push_back(es);
      }
    }
  }

  // BAG histogram: harmonic 2..128 ms, weighted toward the middle values
  // (most avionics flows are 8..32 ms periodic), truncated to the
  // requested [min_bag_ms, max_bag_ms] spread.
  const std::vector<Microseconds> all_bags = harmonic_bags();
  const std::vector<double> all_bag_weights = {0.08, 0.14, 0.22, 0.24,
                                               0.16, 0.10, 0.06};
  AFDX_ASSERT(all_bag_weights.size() == all_bags.size(),
              "BAG weight table mismatch");
  std::vector<Microseconds> bags;
  std::vector<double> bag_weights;
  for (std::size_t i = 0; i < all_bags.size(); ++i) {
    if (all_bags[i] >= microseconds_from_ms(o.min_bag_ms) - kEpsilon &&
        all_bags[i] <= microseconds_from_ms(o.max_bag_ms) + kEpsilon) {
      bags.push_back(all_bags[i]);
      bag_weights.push_back(all_bag_weights[i]);
    }
  }
  AFDX_REQUIRE(!bags.empty(),
               "industrial_config: no harmonic BAG inside [min_bag_ms, "
               "max_bag_ms]");

  // Frame-size mix skewed toward small frames (command/status words),
  // with a tail of large file-transfer style frames, truncated to the
  // requested s_max cap.
  struct SizeBucket {
    Bytes lo, hi;
    double weight;
  };
  const std::vector<SizeBucket> all_size_buckets = {
      {64, 150, 0.35}, {151, 300, 0.25}, {301, 600, 0.20},
      {601, 900, 0.10}, {901, 1518, 0.10}};
  std::vector<SizeBucket> size_buckets;
  std::vector<double> size_weights;
  for (const auto& b : all_size_buckets) {
    if (b.lo > o.max_frame_bytes) continue;
    size_buckets.push_back({b.lo, std::min(b.hi, o.max_frame_bytes), b.weight});
    size_weights.push_back(b.weight);
  }
  AFDX_ASSERT(!size_buckets.empty(), "size bucket table empty after capping");

  // Track port rate usage while drawing VLs so the utilization cap holds.
  std::vector<double> port_rate(net.link_count(), 0.0);

  auto path_links = [&](NodeId src, NodeId dst) {
    auto p = net.shortest_path(src, dst);
    AFDX_ASSERT(p.has_value(), "generated topology must be connected");
    return *p;
  };

  auto random_es_of = [&](std::size_t sw) {
    const auto& pool = es_of_switch[sw];
    return pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  };

  std::vector<VirtualLink> vls;
  int produced = 0;
  int attempts = 0;
  const int max_attempts = o.vl_count * 50;
  // Avionics functions exchange in bundles: many VLs flow between the same
  // pair of equipment bays (switches). Keep a bundle alive for several VLs.
  std::size_t bundle_src_sw = 0, bundle_dst_sw = 0;
  int bundle_left = 0;
  const int total_es = static_cast<int>(end_systems.size());
  while (produced < o.vl_count && attempts < max_attempts) {
    ++attempts;
    if (bundle_left <= 0) {
      if (o.domains == 1) {
        bundle_src_sw = static_cast<std::size_t>(
            rng.uniform_int(0, o.switch_count - 1));
        do {
          bundle_dst_sw = static_cast<std::size_t>(
              rng.uniform_int(0, o.switch_count - 1));
        } while (o.switch_count > 1 && bundle_dst_sw == bundle_src_sw);
      } else {
        // Bundles live inside one domain except for a configurable
        // fraction of inter-domain conversations over the backbone.
        const auto src_dom =
            static_cast<std::size_t>(rng.uniform_int(0, o.domains - 1));
        std::size_t dst_dom = src_dom;
        if (rng.bernoulli(o.cross_domain_fraction)) {
          do {
            dst_dom =
                static_cast<std::size_t>(rng.uniform_int(0, o.domains - 1));
          } while (dst_dom == src_dom);
        }
        const auto sw_per_dom = static_cast<std::size_t>(o.switch_count);
        bundle_src_sw =
            src_dom * sw_per_dom +
            static_cast<std::size_t>(rng.uniform_int(0, o.switch_count - 1));
        do {
          bundle_dst_sw =
              dst_dom * sw_per_dom +
              static_cast<std::size_t>(rng.uniform_int(0, o.switch_count - 1));
        } while (o.switch_count > 1 && bundle_dst_sw == bundle_src_sw);
      }
      bundle_left = static_cast<int>(rng.uniform_int(4, 16));
    }
    --bundle_left;
    if (es_of_switch[bundle_src_sw].empty() ||
        es_of_switch[bundle_dst_sw].empty()) {
      bundle_left = 0;
      continue;
    }

    VirtualLink vl;
    vl.name = "VL" + std::to_string(produced + 1);
    vl.source = random_es_of(bundle_src_sw);

    const bool multicast = rng.bernoulli(o.multicast_fraction);
    const int fanout =
        multicast ? static_cast<int>(rng.uniform_int(2, o.max_multicast_fanout))
                  : 1;
    std::set<NodeId> dests;
    for (int d = 0; d < fanout * 6 && static_cast<int>(dests.size()) < fanout;
         ++d) {
      // Mostly within the bundle's destination bay, occasionally anywhere.
      // With multiple domains, "anywhere" stays inside the bundle's domain
      // pair so cross_domain_fraction remains the only source of backbone
      // traffic.
      NodeId cand;
      if (rng.bernoulli(0.8)) {
        cand = random_es_of(bundle_dst_sw);
      } else if (o.domains == 1) {
        cand = end_systems[static_cast<std::size_t>(
            rng.uniform_int(0, total_es - 1))];
      } else {
        const auto sw_per_dom = static_cast<std::size_t>(o.switch_count);
        const std::size_t doms[2] = {bundle_src_sw / sw_per_dom,
                                     bundle_dst_sw / sw_per_dom};
        const std::size_t dom =
            doms[static_cast<std::size_t>(rng.uniform_int(0, 1))];
        cand = end_systems[dom * static_cast<std::size_t>(o.end_system_count) +
                           static_cast<std::size_t>(rng.uniform_int(
                               0, o.end_system_count - 1))];
      }
      if (cand != vl.source) dests.insert(cand);
    }
    if (dests.empty()) continue;
    vl.destinations.assign(dests.begin(), dests.end());

    std::size_t bag_idx = rng.weighted_index(bag_weights);
    const SizeBucket& bucket = size_buckets[rng.weighted_index(size_weights)];
    vl.s_max = static_cast<Bytes>(rng.uniform_int(bucket.lo, bucket.hi));
    vl.s_min = 64;
    vl.max_release_jitter = o.max_release_jitter;
    if (o.priority_levels > 1) {
      // Small command/control frames ride the high classes, bulk transfers
      // the low ones; a random tilt keeps the classes mixed.
      const double size_rank =
          static_cast<double>(vl.s_max - kMinEthernetFrame) /
          static_cast<double>(kMaxEthernetFrame - kMinEthernetFrame);
      const double tilted =
          std::clamp(size_rank + rng.uniform_real(-0.25, 0.25), 0.0, 0.999);
      vl.priority =
          static_cast<std::uint8_t>(tilted * o.priority_levels);
    }

    // Utilization check: collect the links of the multicast tree and make
    // sure the VL fits everywhere; if not, retry with a larger BAG. The
    // tree does not depend on the BAG, so it is computed once, outside the
    // retry loop.
    std::set<LinkId> tree;
    for (NodeId dst : vl.destinations) {
      for (LinkId l : path_links(vl.source, dst)) tree.insert(l);
    }
    for (; bag_idx < bags.size(); ++bag_idx) {
      vl.bag = bags[bag_idx];
      bool fits = true;
      for (LinkId l : tree) {
        const double util =
            (port_rate[l] + vl.rate_bits_per_us()) / net.link(l).rate;
        if (util > o.max_port_utilization) {
          fits = false;
          break;
        }
      }
      if (fits) {
        for (LinkId l : tree) port_rate[l] += vl.rate_bits_per_us();
        vls.push_back(vl);
        ++produced;
        break;
      }
    }
  }
  AFDX_REQUIRE(produced == o.vl_count,
               "industrial_config: could not place all VLs under the port "
               "utilization cap; lower vl_count or raise the cap");

  return TrafficConfig(std::move(net), std::move(vls));
}

}  // namespace afdx::gen

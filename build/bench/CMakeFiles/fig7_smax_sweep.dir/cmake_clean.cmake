file(REMOVE_RECURSE
  "CMakeFiles/fig7_smax_sweep.dir/fig7_smax_sweep.cpp.o"
  "CMakeFiles/fig7_smax_sweep.dir/fig7_smax_sweep.cpp.o.d"
  "fig7_smax_sweep"
  "fig7_smax_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_smax_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Units and basic quantities used across the AFDX delay-analysis library.
//
// All internal computations use:
//   * time  : microseconds (double)  -- network-calculus math needs fractions
//   * size  : bits         (double at the algebra level, bytes at the config
//                           level where frame sizes are integral)
//   * rate  : bits per microsecond (1 bit/us == 1 Mb/s)
//
// Helper constructors keep call sites explicit about what unit a literal is
// in (`kilobits_per_second(100'000)` rather than a bare `100.0`).
#pragma once

#include <cstdint>
#include <string>

namespace afdx {

/// Time in microseconds.
using Microseconds = double;
/// Data size in bits.
using Bits = double;
/// Rate in bits per microsecond (== Mb/s).
using BitsPerMicrosecond = double;
/// Frame payload/envelope sizes at the configuration level, in bytes.
using Bytes = std::uint32_t;

/// Converts a byte count to bits.
[[nodiscard]] constexpr Bits bits_from_bytes(double bytes) noexcept {
  return bytes * 8.0;
}

/// Converts milliseconds to the internal microsecond unit.
[[nodiscard]] constexpr Microseconds microseconds_from_ms(double ms) noexcept {
  return ms * 1000.0;
}

/// Converts a Mb/s figure (e.g. the AFDX 100 Mb/s links) to bits/us.
[[nodiscard]] constexpr BitsPerMicrosecond rate_from_mbps(double mbps) noexcept {
  return mbps;  // 1 Mb/s == 1e6 bit/s == 1 bit/us
}

/// Transmission time of `size` bits on a link of rate `rate`.
[[nodiscard]] constexpr Microseconds transmission_time(Bits size,
                                                       BitsPerMicrosecond rate) noexcept {
  return size / rate;
}

/// Absolute tolerance used when comparing times/sizes computed through
/// floating point (curve breakpoints, delay bounds, ...).
inline constexpr double kEpsilon = 1e-7;

/// True when |a - b| <= kEpsilon, the library-wide float equality.
[[nodiscard]] constexpr bool nearly_equal(double a, double b,
                                          double eps = kEpsilon) noexcept {
  double diff = a - b;
  if (diff < 0) diff = -diff;
  return diff <= eps;
}

/// Formats a microsecond quantity for reports ("123.456 us").
[[nodiscard]] std::string format_us(Microseconds t);

/// Formats a ratio as a percentage string ("12.34 %").
[[nodiscard]] std::string format_percent(double ratio);

}  // namespace afdx

// Soundness property suite: on randomly generated configurations, every
// analytic bound (both methods, both variants) must dominate every delay the
// simulator can realize, and the buffer bounds must dominate every observed
// backlog. This is the safety net behind the trajectory-formula
// reconstruction documented in DESIGN.md section 3.2.
#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "sim/simulator.hpp"
#include "trajectory/trajectory_analyzer.hpp"

namespace afdx {
namespace {

TrafficConfig random_config(std::uint64_t seed) {
  gen::IndustrialOptions o;
  o.seed = seed;
  o.switch_count = 4 + static_cast<int>(seed % 4);
  o.end_system_count = 12 + static_cast<int>(seed % 9);
  o.vl_count = 30 + static_cast<int>(seed % 31);
  o.multicast_fraction = 0.25 + 0.05 * static_cast<double>(seed % 5);
  o.max_release_jitter = 60.0 * static_cast<double>(seed % 3);
  return gen::industrial_config(o);
}

void expect_dominates(const TrafficConfig& cfg,
                      const std::vector<Microseconds>& bounds,
                      const sim::Result& observed, const char* what) {
  ASSERT_EQ(bounds.size(), observed.max_path_delay.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_LE(observed.max_path_delay[i], bounds[i] + 1e-6)
        << what << " violated on path " << i << " (VL "
        << cfg.vl(cfg.all_paths()[i].vl).name << ")";
  }
}

class Soundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Soundness, AllBoundsDominateAllSchedules) {
  const TrafficConfig cfg = random_config(GetParam());
  const analysis::Comparison c = analysis::compare(cfg);

  trajectory::Options naive;
  naive.serialization = false;
  const auto traj_naive = trajectory::analyze(cfg, naive).path_bounds;
  netcalc::Options plain;
  plain.grouping = false;
  const auto nc_plain = netcalc::analyze(cfg, plain).path_bounds;

  // Aligned + random + adversarial phasings, shared with the fuzzing
  // harness (src/valid); the seeds reproduce the historical suite exactly.
  sim::ScheduleSuiteOptions suite;
  suite.random_schedules = 3;
  suite.seed = GetParam() * 10;
  suite.adversarial_stride = 17;
  const std::vector<sim::Options> schedules =
      sim::soundness_schedules(cfg, suite);

  for (const sim::Options& schedule : schedules) {
    const sim::Result observed = sim::simulate(cfg, schedule);
    expect_dominates(cfg, c.trajectory, observed, "trajectory");
    expect_dominates(cfg, c.netcalc, observed, "wcnc");
    expect_dominates(cfg, c.combined, observed, "combined");
    expect_dominates(cfg, traj_naive, observed, "trajectory(no-serial)");
    expect_dominates(cfg, nc_plain, observed, "wcnc(no-grouping)");
  }
}

TEST_P(Soundness, BacklogBoundsDominateObservedBacklogs) {
  const TrafficConfig cfg = random_config(GetParam());
  const netcalc::Result nc = netcalc::analyze(cfg);
  sim::Options o;
  o.phasing = sim::Phasing::kRandom;
  o.seed = GetParam();
  const sim::Result observed = sim::simulate(cfg, o);
  for (LinkId l = 0; l < cfg.network().link_count(); ++l) {
    if (!nc.ports[l].used) {
      EXPECT_DOUBLE_EQ(observed.max_port_backlog[l], 0.0);
      continue;
    }
    EXPECT_LE(observed.max_port_backlog[l], nc.ports[l].backlog + 1e-6)
        << "port " << l;
  }
}

TEST_P(Soundness, RefinementsOnlyEverTighten) {
  const TrafficConfig cfg = random_config(GetParam());

  const auto traj = trajectory::analyze(cfg).path_bounds;
  trajectory::Options naive;
  naive.serialization = false;
  const auto traj_naive = trajectory::analyze(cfg, naive).path_bounds;
  trajectory::Options loose;
  loose.loose_boundary_packet = true;
  const auto traj_loose = trajectory::analyze(cfg, loose).path_bounds;

  const auto nc = netcalc::analyze(cfg).path_bounds;
  netcalc::Options plain;
  plain.grouping = false;
  const auto nc_plain = netcalc::analyze(cfg, plain).path_bounds;

  for (std::size_t i = 0; i < traj.size(); ++i) {
    EXPECT_LE(traj[i], traj_naive[i] + 1e-6);
    EXPECT_LE(traj[i], traj_loose[i] + 1e-6);
    EXPECT_LE(nc[i], nc_plain[i] + 1e-6);
  }
}

TEST_P(Soundness, BoundsRespectStoreAndForwardFloor) {
  const TrafficConfig cfg = random_config(GetParam());
  const analysis::Comparison c = analysis::compare(cfg);
  for (std::size_t i = 0; i < c.combined.size(); ++i) {
    const VlPath& p = cfg.all_paths()[i];
    Microseconds floor = 0.0;
    for (LinkId l : p.links) {
      floor += cfg.vl(p.vl).max_transmission_time(cfg.network().link(l).rate);
      if (cfg.route(p.vl).predecessor(l) != kInvalidLink) {
        floor += cfg.network().link(l).latency;
      }
    }
    EXPECT_GE(c.trajectory[i], floor - 1e-6);
    EXPECT_GE(c.netcalc[i], floor - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soundness,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace afdx

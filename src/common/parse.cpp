#include "common/parse.hpp"

#include <charconv>

namespace afdx {

namespace {

template <typename T>
std::optional<T> parse_whole(std::string_view s) {
  if (s.empty()) return std::nullopt;
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::int64_t> parse_int(std::string_view s) {
  return parse_whole<std::int64_t>(s);
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) return std::nullopt;
  return parse_whole<std::uint64_t>(s);
}

std::optional<double> parse_double(std::string_view s) {
  return parse_whole<double>(s);
}

}  // namespace afdx

#include "config/serialization.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace afdx::config {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t.front() == '#') break;
    toks.push_back(t);
  }
  return toks;
}

/// Splits "key=value"; throws on malformed input.
std::pair<std::string, std::string> split_kv(const std::string& tok, int line_no) {
  const auto eq = tok.find('=');
  AFDX_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < tok.size(),
               "line " + std::to_string(line_no) + ": expected key=value, got '" +
                   tok + "'");
  return {tok.substr(0, eq), tok.substr(eq + 1)};
}

// Strict attribute decoding via common/parse (whole-string from_chars):
// rejects empty values, trailing garbage ("12x"), and out-of-range input,
// and names the offending key so "bad number" is actually findable.
double attr_number(const std::string& s, const std::string& key,
                   int line_no) {
  const auto v = afdx::parse_double(s);
  AFDX_REQUIRE(v.has_value(), "line " + std::to_string(line_no) +
                                  ": attribute '" + key +
                                  "': bad number '" + s + "'");
  return *v;
}

std::size_t route_dest_index(const std::string& s, int line_no) {
  const auto v = afdx::parse_uint(s);
  AFDX_REQUIRE(v.has_value(), "line " + std::to_string(line_no) +
                                  ": route destination index: bad unsigned "
                                  "integer '" + s + "'");
  return static_cast<std::size_t>(*v);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

void save_config(const TrafficConfig& config, std::ostream& out) {
  const Network& net = config.network();
  out << "afdx-config v1\n";
  for (NodeId n = 0; n < net.node_count(); ++n) {
    out << "node " << (net.is_end_system(n) ? "es" : "sw") << " "
        << net.node(n).name << "\n";
  }
  // Each cable appears as two directed links; emit it once, from the even id.
  for (LinkId l = 0; l < net.link_count(); l += 2) {
    const Link& fwd = net.link(l);
    const Link& bwd = net.link(net.reverse(l));
    const Microseconds sw_lat =
        net.is_switch(fwd.source) ? fwd.latency : bwd.latency;
    const Microseconds es_lat =
        net.is_end_system(fwd.source) ? fwd.latency
        : net.is_end_system(bwd.source) ? bwd.latency
                                        : sw_lat;  // switch-switch cable
    out << "link " << net.node(fwd.source).name << " "
        << net.node(fwd.dest).name << " rate=" << fwd.rate
        << " swlat=" << sw_lat << " eslat=" << es_lat << "\n";
  }
  for (VlId id = 0; id < config.vl_count(); ++id) {
    const VirtualLink& vl = config.vl(id);
    out << "vl " << vl.name << " src=" << net.node(vl.source).name << " dst=";
    for (std::size_t d = 0; d < vl.destinations.size(); ++d) {
      if (d) out << ",";
      out << net.node(vl.destinations[d]).name;
    }
    out << " bag=" << vl.bag << " smin=" << vl.s_min << " smax=" << vl.s_max;
    if (vl.max_release_jitter > 0.0) out << " jit=" << vl.max_release_jitter;
    if (vl.priority != 0) out << " prio=" << static_cast<int>(vl.priority);
    out << "\n";
    for (std::size_t d = 0; d < vl.destinations.size(); ++d) {
      out << "route " << vl.name << " " << d;
      for (LinkId l : config.route(id).paths()[d]) {
        out << " " << net.node(net.link(l).source).name << ">"
            << net.node(net.link(l).dest).name;
      }
      out << "\n";
    }
  }
}

std::string save_config_string(const TrafficConfig& config) {
  std::ostringstream os;
  save_config(config, os);
  return os.str();
}

TrafficConfig load_config(std::istream& in) {
  Network net;
  struct PendingVl {
    VirtualLink vl;
    int line_no = 0;
  };
  std::vector<PendingVl> vls;
  // route lines, keyed by VL name: dest index -> node-name hops.
  std::map<std::string, std::map<std::size_t, std::vector<std::pair<std::string, std::string>>>>
      route_lines;

  auto node_id = [&](const std::string& name, int line_no) {
    auto id = net.find_node(name);
    AFDX_REQUIRE(id.has_value(),
                 "line " + std::to_string(line_no) + ": unknown node '" + name + "'");
    return *id;
  };

  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (!header_seen) {
      AFDX_REQUIRE(toks.size() == 2 && toks[0] == "afdx-config" && toks[1] == "v1",
                   "line " + std::to_string(line_no) +
                       ": expected header 'afdx-config v1'");
      header_seen = true;
      continue;
    }
    if (toks[0] == "node") {
      AFDX_REQUIRE(toks.size() == 3, "line " + std::to_string(line_no) +
                                         ": node needs kind and name");
      if (toks[1] == "es") {
        net.add_end_system(toks[2]);
      } else if (toks[1] == "sw") {
        net.add_switch(toks[2]);
      } else {
        throw Error("line " + std::to_string(line_no) + ": node kind must be "
                    "'es' or 'sw'");
      }
    } else if (toks[0] == "link") {
      AFDX_REQUIRE(toks.size() >= 3, "line " + std::to_string(line_no) +
                                         ": link needs two node names");
      LinkParams lp;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        auto [k, v] = split_kv(toks[i], line_no);
        if (k == "rate") {
          lp.rate = attr_number(v, k, line_no);
        } else if (k == "swlat") {
          lp.switch_latency = attr_number(v, k, line_no);
        } else if (k == "eslat") {
          lp.end_system_latency = attr_number(v, k, line_no);
        } else {
          throw Error("line " + std::to_string(line_no) + ": unknown link "
                      "attribute '" + k + "'");
        }
      }
      net.connect(node_id(toks[1], line_no), node_id(toks[2], line_no), lp);
    } else if (toks[0] == "vl") {
      AFDX_REQUIRE(toks.size() >= 2, "line " + std::to_string(line_no) +
                                         ": vl needs a name");
      VirtualLink vl;
      vl.name = toks[1];
      for (std::size_t i = 2; i < toks.size(); ++i) {
        auto [k, v] = split_kv(toks[i], line_no);
        if (k == "src") {
          vl.source = node_id(v, line_no);
        } else if (k == "dst") {
          for (const std::string& d : split_commas(v)) {
            vl.destinations.push_back(node_id(d, line_no));
          }
        } else if (k == "bag") {
          vl.bag = attr_number(v, k, line_no);
        } else if (k == "smin") {
          vl.s_min = static_cast<Bytes>(attr_number(v, k, line_no));
        } else if (k == "smax") {
          vl.s_max = static_cast<Bytes>(attr_number(v, k, line_no));
        } else if (k == "jit") {
          vl.max_release_jitter = attr_number(v, k, line_no);
        } else if (k == "prio") {
          vl.priority = static_cast<std::uint8_t>(attr_number(v, k, line_no));
        } else {
          throw Error("line " + std::to_string(line_no) + ": unknown vl "
                      "attribute '" + k + "'");
        }
      }
      vls.push_back({std::move(vl), line_no});
    } else if (toks[0] == "route") {
      AFDX_REQUIRE(toks.size() >= 4, "line " + std::to_string(line_no) +
                                         ": route needs vl, dest index, hops");
      const std::string& vl_name = toks[1];
      const std::size_t dest = route_dest_index(toks[2], line_no);
      std::vector<std::pair<std::string, std::string>> hops;
      for (std::size_t i = 3; i < toks.size(); ++i) {
        const auto gt = toks[i].find('>');
        AFDX_REQUIRE(gt != std::string::npos && gt > 0 && gt + 1 < toks[i].size(),
                     "line " + std::to_string(line_no) +
                         ": route hop must be 'a>b', got '" + toks[i] + "'");
        hops.emplace_back(toks[i].substr(0, gt), toks[i].substr(gt + 1));
      }
      route_lines[vl_name][dest] = std::move(hops);
    } else {
      throw Error("line " + std::to_string(line_no) + ": unknown directive '" +
                  toks[0] + "'");
    }
  }
  AFDX_REQUIRE(header_seen, "missing 'afdx-config v1' header");

  std::vector<VirtualLink> vl_defs;
  vl_defs.reserve(vls.size());
  for (auto& p : vls) vl_defs.push_back(std::move(p.vl));

  // Resolve explicit routes to link ids.
  std::vector<std::vector<std::vector<LinkId>>> routes(vl_defs.size());
  for (std::size_t i = 0; i < vl_defs.size(); ++i) {
    auto it = route_lines.find(vl_defs[i].name);
    if (it == route_lines.end()) continue;
    routes[i].resize(vl_defs[i].destinations.size());
    for (const auto& [dest, hops] : it->second) {
      AFDX_REQUIRE(dest < vl_defs[i].destinations.size(),
                   "route for VL " + vl_defs[i].name +
                       ": destination index out of range");
      std::vector<LinkId> links;
      for (const auto& [a, b] : hops) {
        const auto l = net.link_between(node_id(a, 0), node_id(b, 0));
        AFDX_REQUIRE(l.has_value(), "route for VL " + vl_defs[i].name +
                                        ": no link " + a + " -> " + b);
        links.push_back(*l);
      }
      routes[i][dest] = std::move(links);
    }
  }
  for (const auto& [name, unused] : route_lines) {
    bool found = false;
    for (const auto& vl : vl_defs) found = found || vl.name == name;
    AFDX_REQUIRE(found, "route for unknown VL '" + name + "'");
  }

  return TrafficConfig(std::move(net), std::move(vl_defs), std::move(routes));
}

TrafficConfig load_config_string(const std::string& text) {
  std::istringstream is(text);
  return load_config(is);
}

TrafficConfig load_config_file(const std::string& path) {
  std::ifstream in(path);
  AFDX_REQUIRE(in.good(), "cannot open configuration file: " + path);
  return load_config(in);
}

void save_config_file(const TrafficConfig& config, const std::string& path) {
  std::ofstream out(path);
  AFDX_REQUIRE(out.good(), "cannot write configuration file: " + path);
  save_config(config, out);
}

}  // namespace afdx::config

file(REMOVE_RECURSE
  "libafdx_report.a"
)

// Applying a FaultScenario to a TrafficConfig.
//
// apply_scenario() builds the degraded view of a configuration under one
// failure hypothesis: every VL path is re-routed on the shortest surviving
// route (all per-destination routes of one VL come from the same
// constrained BFS tree, so the multicast tree property is preserved), and
// paths with no surviving route are marked unreachable -- never silently
// dropped. The surviving VLs and routes form a new, fully validated
// TrafficConfig ready for any analyzer, plus an explicit index map back to
// the healthy configuration's path list.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/scenario.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::faults {

/// What happened to one healthy path under the scenario.
enum class PathFate : std::uint8_t {
  /// Same route as in the healthy configuration.
  kIntact,
  /// Re-routed over a surviving shortest route (its bounds and the bounds
  /// of paths it newly shares ports with change).
  kRerouted,
  /// No surviving route from source to destination (or a failed endpoint).
  kUnreachable,
};

[[nodiscard]] const char* to_string(PathFate fate) noexcept;

inline constexpr std::size_t kNoDegradedIndex = static_cast<std::size_t>(-1);

/// Degraded-view record of one healthy path.
struct DegradedPath {
  PathFate fate = PathFate::kIntact;
  /// Index of the surviving path inside DegradedView::config->all_paths();
  /// kNoDegradedIndex when unreachable.
  std::size_t degraded_index = kNoDegradedIndex;
};

/// The degraded configuration plus the healthy -> degraded mapping.
struct DegradedView {
  FaultScenario scenario;
  /// The surviving configuration; nullopt when no VL survives at all.
  std::optional<TrafficConfig> config;
  /// Aligned with the healthy TrafficConfig::all_paths().
  std::vector<DegradedPath> paths;
  std::size_t intact = 0;
  std::size_t rerouted = 0;
  std::size_t unreachable = 0;
};

/// Builds the degraded view. Throws afdx::Error only on malformed scenarios
/// (out-of-range element ids); unreachable destinations are reported in the
/// view, never thrown.
[[nodiscard]] DegradedView apply_scenario(const TrafficConfig& healthy,
                                          FaultScenario scenario);

}  // namespace afdx::faults

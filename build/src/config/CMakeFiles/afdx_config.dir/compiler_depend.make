# Empty compiler generated dependencies file for afdx_config.
# This may be replaced when dependencies are built.

#include "sim/worst_case_search.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace afdx::sim {

namespace {

/// VLs whose tree shares at least one output port with the target path
/// (the only offsets that can influence the target's delay), target
/// excluded.
std::vector<VlId> interferers_of(const TrafficConfig& config,
                                 const VlPath& path) {
  std::vector<VlId> out;
  for (VlId v = 0; v < config.vl_count(); ++v) {
    if (v == path.vl) continue;
    for (LinkId l : path.links) {
      if (config.route(v).crosses(l)) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

}  // namespace

SearchResult worst_case_search(const TrafficConfig& config, PathRef target,
                               const SearchOptions& options) {
  AFDX_REQUIRE(options.steps_per_vl >= 1, "worst_case_search: need >= 1 step");
  const VlPath& path = config.path(target);
  const std::vector<VlId> interferers = interferers_of(config, path);

  Microseconds max_bag = 0.0;
  for (VlId v = 0; v < config.vl_count(); ++v) {
    max_bag = std::max(max_bag, config.vl(v).bag);
  }

  Options sim_options;
  sim_options.phasing = Phasing::kExplicit;
  sim_options.horizon =
      options.horizon > 0.0 ? options.horizon : 2.0 * max_bag + 1.0;

  SearchResult result;
  result.offsets.assign(config.vl_count(), 0.0);
  // Give the target one max-BAG headstart so interferers with longer
  // approach paths can be phased both before and after it.
  std::vector<Microseconds> base(config.vl_count(), 0.0);
  base[target.vl] = max_bag;

  auto evaluate = [&](const std::vector<Microseconds>& offsets) {
    sim_options.offsets = offsets;
    ++result.schedules_tried;
    const Microseconds d =
        simulate(config, sim_options).max_delay_for(config, target);
    if (d > result.worst_delay) {
      result.worst_delay = d;
      result.offsets = offsets;
    }
    return d;
  };

  // Always include the two heuristics as starting points.
  evaluate(base);
  evaluate(adversarial_offsets(config, target));

  if (interferers.empty()) {
    result.exhaustive = true;  // nothing can shift the target's delay
    return result;
  }

  const auto steps = static_cast<std::uint64_t>(options.steps_per_vl);
  std::uint64_t combinations = 1;
  bool overflow = interferers.empty();
  for (std::size_t i = 0; i < interferers.size(); ++i) {
    if (combinations > options.max_exhaustive_schedules / steps) {
      overflow = true;
      break;
    }
    combinations *= steps;
  }

  auto grid_offset = [&](VlId v, int step) {
    return config.vl(v).bag * static_cast<double>(step) /
           static_cast<double>(options.steps_per_vl);
  };

  if (!overflow && combinations <= options.max_exhaustive_schedules) {
    // Exhaustive sweep over the interferer offset grid.
    result.exhaustive = true;
    std::vector<int> idx(interferers.size(), 0);
    std::vector<Microseconds> offsets = base;
    for (;;) {
      for (std::size_t i = 0; i < interferers.size(); ++i) {
        offsets[interferers[i]] = grid_offset(interferers[i], idx[i]);
      }
      evaluate(offsets);
      std::size_t carry = 0;
      while (carry < idx.size() && ++idx[carry] == options.steps_per_vl) {
        idx[carry++] = 0;
      }
      if (carry == idx.size()) break;
    }
    return result;
  }

  // Coordinate descent from several starts.
  Rng rng(options.seed);
  std::vector<std::vector<Microseconds>> starts{result.offsets};
  for (int r = 0; r < options.random_restarts; ++r) {
    std::vector<Microseconds> start = base;
    for (VlId v : interferers) {
      start[v] = rng.uniform_real(0.0, config.vl(v).bag);
    }
    starts.push_back(std::move(start));
  }

  for (const auto& start : starts) {
    std::vector<Microseconds> current = start;
    Microseconds best = evaluate(current);
    for (int round = 0; round < options.max_rounds; ++round) {
      bool improved = false;
      for (VlId v : interferers) {
        const Microseconds saved = current[v];
        Microseconds best_offset = saved;
        for (int s = 0; s < options.steps_per_vl; ++s) {
          current[v] = grid_offset(v, s);
          const Microseconds d = evaluate(current);
          if (d > best + kEpsilon) {
            best = d;
            best_offset = current[v];
            improved = true;
          }
        }
        current[v] = best_offset;
      }
      if (!improved) break;
    }
  }
  return result;
}

}  // namespace afdx::sim

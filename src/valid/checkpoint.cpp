#include "valid/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parse.hpp"

namespace afdx::valid {

namespace {

constexpr const char* kHeader = "afdx-fuzz-checkpoint v1";

/// Percent-escapes a free-text value so it survives the one-record-per-line,
/// space-separated key=value format.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '%' || c == ' ' || c == '=' || u < 0x20) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    // Strict %XX: a truncated escape ("...%4") or non-hex digits ("%zz")
    // mean the record is corrupt -- fail with a diagnosable Error instead
    // of crashing (std::stoi) or silently passing the bytes through.
    AFDX_REQUIRE(i + 2 < s.size(),
                 "checkpoint: truncated %XX escape at end of value '" + s +
                     "'");
    const auto byte =
        parse_hex_byte(std::string_view(s).substr(i + 1, 2));
    AFDX_REQUIRE(byte.has_value(), "checkpoint: bad %XX escape '" +
                                       s.substr(i, 3) + "' in value '" + s +
                                       "'");
    out += static_cast<char>(*byte);
    i += 2;
  }
  return out;
}

using Fields = std::unordered_map<std::string, std::string>;

/// Splits "key1=v1 key2=v2 ..." (after the record tag) into a field map.
Fields parse_fields(std::istringstream& line) {
  Fields fields;
  std::string token;
  while (line >> token) {
    const std::size_t eq = token.find('=');
    AFDX_REQUIRE(eq != std::string::npos,
                 "checkpoint: malformed field '" + token + "'");
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

const std::string& field(const Fields& fields, const std::string& key) {
  const auto it = fields.find(key);
  AFDX_REQUIRE(it != fields.end(), "checkpoint: missing field '" + key + "'");
  return it->second;
}

// Strict decoders: stoull/stod would throw bare std::invalid_argument /
// std::out_of_range on a corrupt checkpoint (or accept trailing garbage
// like "42x"); common/parse rejects all of that and we name the field.
std::uint64_t field_u64(const Fields& fields, const std::string& key) {
  const std::string& raw = field(fields, key);
  const auto v = parse_uint(raw);
  AFDX_REQUIRE(v.has_value(), "checkpoint: field '" + key +
                                  "': bad unsigned integer '" + raw + "'");
  return *v;
}

double field_double(const Fields& fields, const std::string& key) {
  const std::string& raw = field(fields, key);
  const auto v = parse_double(raw);
  AFDX_REQUIRE(v.has_value(),
               "checkpoint: field '" + key + "': bad number '" + raw + "'");
  return *v;
}

void write_pess(std::ostream& out, std::size_t index, const char* method,
                const analysis::PessimismStats& s) {
  out << "pess index=" << index << " method=" << method << " mean=" << s.mean
      << " min=" << s.min << " max=" << s.max << " paths=" << s.paths << "\n";
}

CheckKind kind_from_string(const std::string& name) {
  for (CheckKind k :
       {CheckKind::kSimDominance, CheckKind::kCombinedIsMin,
        CheckKind::kRefinementMonotonic, CheckKind::kStoreForwardFloor,
        CheckKind::kBacklogDominance}) {
    if (to_string(k) == name) return k;
  }
  throw Error("checkpoint: unknown check kind '" + name + "'");
}

}  // namespace

void write_checkpoint(const CampaignReport& report, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    AFDX_REQUIRE(out.good(), "checkpoint: cannot write '" + tmp + "'");
    out.precision(std::numeric_limits<double>::max_digits10);

    out << kHeader << "\n";
    out << "run seed=" << report.seed << " campaigns=" << report.campaigns
        << "\n";
    for (const CampaignOutcome& o : report.outcomes) {
      if (o.interrupted) continue;  // resume must re-run these
      out << "outcome index=" << o.spec.index
          << " skipped=" << (o.skipped ? 1 : 0)
          << " reason=" << escape(o.skip_reason) << " vls=" << o.vls
          << " paths=" << o.paths << " cpaths=" << o.check.paths
          << " schedules=" << o.check.schedules_simulated
          << " corpus=" << escape(o.corpus_file) << " wall_us=" << o.wall_us
          << "\n";
      if (o.skipped) continue;
      write_pess(out, o.spec.index, "wcnc", o.check.wcnc);
      write_pess(out, o.spec.index, "trajectory", o.check.trajectory);
      write_pess(out, o.spec.index, "combined", o.check.combined);
      for (const Violation& v : o.check.violations) {
        out << "viol index=" << o.spec.index << " kind=" << to_string(v.kind)
            << " method=" << escape(v.method) << " at=" << v.index
            << " observed=" << v.observed << " bound=" << v.bound
            << " detail=" << escape(v.detail) << "\n";
      }
    }
    AFDX_REQUIRE(out.good(), "checkpoint: write to '" + tmp + "' failed");
  }
  std::filesystem::rename(tmp, path);
}

std::optional<Checkpoint> read_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;

  std::string line;
  AFDX_REQUIRE(std::getline(in, line) && line == kHeader,
               "checkpoint '" + path + "': bad header (expected '" +
                   std::string(kHeader) + "')");

  Checkpoint cp;
  bool have_run = false;
  // Maps campaign index -> slot in cp.outcomes for pess/viol attachment.
  std::unordered_map<std::size_t, std::size_t> slots;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    Fields fields = parse_fields(ls);

    if (tag == "run") {
      cp.seed = field_u64(fields, "seed");
      cp.campaigns = static_cast<std::size_t>(field_u64(fields, "campaigns"));
      have_run = true;
    } else if (tag == "outcome") {
      CampaignOutcome o;
      o.spec.index = static_cast<std::size_t>(field_u64(fields, "index"));
      o.skipped = field_u64(fields, "skipped") != 0;
      o.skip_reason = unescape(field(fields, "reason"));
      o.vls = static_cast<std::size_t>(field_u64(fields, "vls"));
      o.paths = static_cast<std::size_t>(field_u64(fields, "paths"));
      o.check.paths = static_cast<std::size_t>(field_u64(fields, "cpaths"));
      o.check.schedules_simulated = field_u64(fields, "schedules");
      o.corpus_file = unescape(field(fields, "corpus"));
      o.wall_us = field_double(fields, "wall_us");
      slots[o.spec.index] = cp.outcomes.size();
      cp.outcomes.push_back(std::move(o));
    } else if (tag == "pess") {
      const auto slot =
          slots.find(static_cast<std::size_t>(field_u64(fields, "index")));
      AFDX_REQUIRE(slot != slots.end(),
                   "checkpoint: pess record before its outcome");
      analysis::PessimismStats s;
      s.mean = field_double(fields, "mean");
      s.min = field_double(fields, "min");
      s.max = field_double(fields, "max");
      s.paths = static_cast<std::size_t>(field_u64(fields, "paths"));
      CampaignOutcome& o = cp.outcomes[slot->second];
      const std::string& method = field(fields, "method");
      if (method == "wcnc") {
        o.check.wcnc = s;
      } else if (method == "trajectory") {
        o.check.trajectory = s;
      } else if (method == "combined") {
        o.check.combined = s;
      } else {
        throw Error("checkpoint: unknown pessimism method '" + method + "'");
      }
    } else if (tag == "viol") {
      const auto slot =
          slots.find(static_cast<std::size_t>(field_u64(fields, "index")));
      AFDX_REQUIRE(slot != slots.end(),
                   "checkpoint: viol record before its outcome");
      Violation v;
      v.kind = kind_from_string(field(fields, "kind"));
      v.method = unescape(field(fields, "method"));
      v.index = static_cast<std::size_t>(field_u64(fields, "at"));
      v.observed = field_double(fields, "observed");
      v.bound = field_double(fields, "bound");
      v.detail = unescape(field(fields, "detail"));
      cp.outcomes[slot->second].check.violations.push_back(std::move(v));
    } else {
      throw Error("checkpoint '" + path + "': unknown record '" + tag + "'");
    }
  }
  AFDX_REQUIRE(have_run, "checkpoint '" + path + "': missing run record");
  return cp;
}

}  // namespace afdx::valid

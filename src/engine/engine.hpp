// Parallel whole-network analysis engine.
//
// AnalysisEngine owns a fixed-size worker pool and a per-output-port
// result cache, and runs the WCNC and trajectory analyses of one
// TrafficConfig across threads:
//
//   * WCNC phase -- the used ports are processed level by level along the
//     propagation partial order; ports of one level have no mutual
//     dependencies, so each level is sharded across the pool. Every
//     converged per-port bound is memoized in the cache, which also makes
//     repeated runs on the same engine (benches, sweeps) near-free.
//   * trajectory phase -- VL paths are sharded across the pool by whole
//     VLs (paths of one VL share their prefix recursion, so keeping a VL
//     on one worker preserves the analyzer's memoization). The per-port
//     serialization caps are derived once from the shared WCNC run and
//     injected into every shard-local analyzer instead of being recomputed
//     per thread -- the single biggest saving of the engine.
//   * combine phase -- the per-path minimum of the two bounds (the
//     paper's recommended method), assembled in path-index order.
//
// Determinism: index -> worker sharding is static, every per-port /
// per-path computation is a pure function of the configuration, and
// results are written to preallocated slots by index -- a run with N
// threads is bit-identical to a run with 1 thread, and threads = 1
// executes inline on the calling thread (the legacy serial path).
//
// RunMetrics records wall time per phase, throughput, cache hit rate and
// per-thread task counts; the CLI (--metrics) and the benches print it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cancel.hpp"
#include "engine/port_cache.hpp"
#include "engine/thread_pool.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "trajectory/prefix_cache.hpp"
#include "trajectory/trajectory_analyzer.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::engine {

struct Options {
  /// Worker threads: 1 = the legacy single-threaded path (default),
  /// 0 or negative = one per hardware thread.
  int threads = 1;
};

/// Outcome of the most recent run_incremental on an engine.
struct IncrementalStats {
  /// False until run_incremental is called.
  bool attempted = false;
  /// True when the baseline could not be reused and a full run was done.
  bool full_fallback = false;
  std::string fallback_reason;
  std::size_t changed_links = 0;
  /// Used ports inside the dirty cone (recomputed).
  std::size_t dirty_ports = 0;
  /// Clean used ports transplanted from the baseline.
  std::size_t seeded_ports = 0;
  /// Baseline trajectory prefixes transplanted into the shared cache.
  std::size_t seeded_prefixes = 0;
  /// Paths fully outside the dirty cone whose trajectory bound was
  /// transplanted verbatim from the baseline (no recomputation at all).
  std::size_t transplanted_paths = 0;
};

/// Per-worker-shard view of the most recent trajectory phase. With the
/// locality-aware VL order (VLs sorted by their route prefix, contiguous
/// chunks handed to workers), neighbouring VLs of one shard share their
/// interference neighbourhood -- a healthy shard therefore answers most
/// prefix lookups from its analyzer-local memo, and a low hit rate points
/// at a shard whose VLs were scattered across the topology.
struct ShardMetrics {
  /// VL work items and paths this shard executed.
  std::size_t vls = 0;
  std::size_t paths = 0;
  /// Prefix-bound lookups of the shard's analyzer, split by where they
  /// were answered (neither = freshly computed).
  std::uint64_t lookups = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t shared_hits = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(local_hits + shared_hits) /
                     static_cast<double>(lookups);
  }
};

/// Measurements of the work an engine has performed since construction.
struct RunMetrics {
  Microseconds netcalc_wall_us = 0.0;
  Microseconds trajectory_wall_us = 0.0;
  Microseconds combine_wall_us = 0.0;
  Microseconds total_wall_us = 0.0;
  /// Process CPU time across all workers (>= wall time when the pool is
  /// busy); wall vs cpu exposes how much of the run actually parallelized.
  Microseconds total_cpu_us = 0.0;
  /// Propagation levels of the last WCNC pass (0 for cyclic fallback) and
  /// the widest level -- the parallelism ceiling of the netcalc phase.
  std::size_t levels = 0;
  std::size_t max_level_width = 0;
  /// VL paths bounded by the most recent run/netcalc_only/trajectory_only.
  std::size_t paths = 0;
  /// Throughput of the most recent run (paths / its wall time).
  double paths_per_second = 0.0;
  /// Cumulative per-port cache statistics.
  CacheStats cache;
  /// Per-port cache activity of the most recent run (delta of `cache`).
  CacheStats cache_run;
  /// Cumulative shared trajectory prefix-cache statistics (all caches of
  /// this engine) and the most recent run's delta.
  trajectory::PrefixCacheStats prefix;
  trajectory::PrefixCacheStats prefix_run;
  /// Cumulative chunks stolen by the work-stealing scheduler.
  std::uint64_t steals = 0;
  /// Per-worker shard statistics of the most recent trajectory phase
  /// (empty until one ran). Ordered by worker index; workers that never
  /// picked up trajectory work are omitted.
  std::vector<ShardMetrics> shards;
  /// Outcome of the most recent run_incremental.
  IncrementalStats incremental;
  int threads = 1;
  /// Cumulative scheduled work items executed per worker (ports in the
  /// WCNC phase, VL shards in the trajectory phase).
  std::vector<std::size_t> tasks_per_thread;

  /// Human-readable multi-line summary.
  void print(std::ostream& out) const;
};

/// Outcome of one VL path in a resilient run.
enum class PathState : std::uint8_t {
  /// A finite combined bound was produced (at least one method succeeded).
  kOk,
  /// Every method failed on this path (e.g. an unstable port on its route).
  kFailed,
  /// The path was never analyzed (cancellation / deadline / a dependency
  /// of its ports was abandoned).
  kSkipped,
};

[[nodiscard]] const char* to_string(PathState state) noexcept;

/// Per-path outcome record of a resilient run.
struct PathStatus {
  PathState state = PathState::kOk;
  /// Why the path failed / was skipped, or which method degraded on an
  /// otherwise-ok path. Empty for a fully clean path.
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return state == PathState::kOk; }
};

/// Knobs of a resilient run (run_resilient).
struct RunControl {
  /// Optional cooperative cancellation / deadline: polled between ports,
  /// levels and paths; remaining work is marked skipped, partial results
  /// are returned.
  const CancelToken* cancel = nullptr;
};

/// Bounds of one full run, aligned with TrafficConfig::all_paths().
struct RunResult {
  std::vector<Microseconds> netcalc;
  std::vector<Microseconds> trajectory;
  std::vector<Microseconds> combined;
  /// Per-path outcomes. run() leaves every entry ok; run_resilient records
  /// containment and cancellation outcomes here instead of throwing, and
  /// non-ok paths carry an infinite combined bound.
  std::vector<PathStatus> status;
  /// Full per-port WCNC detail (buffer bounds, per-class delays, ...).
  netcalc::Result netcalc_result;
  /// Digests of the options the run was computed under -- run_incremental
  /// validates a baseline against these before transplanting results.
  std::uint64_t nc_options_key = 0;
  std::uint64_t tj_options_key = 0;
  /// The shared prefix cache the trajectory phase used (null when the
  /// phase never ran); run_incremental reads baseline prefixes from here.
  std::shared_ptr<const trajectory::PrefixCache> prefixes;
  /// Snapshot of the engine metrics at the end of the run.
  RunMetrics metrics;

  /// True when every path is ok.
  [[nodiscard]] bool complete() const noexcept;
};

/// One per-path record delivered to a streaming sink (run_streaming).
struct StreamPathResult {
  /// Index into TrafficConfig::all_paths().
  std::size_t path_index = 0;
  VlId vl = kInvalidVl;
  std::uint32_t dest_index = 0;
  PathState state = PathState::kOk;
  Microseconds netcalc = 0.0;
  Microseconds trajectory = 0.0;
  Microseconds combined = 0.0;
  /// Degradation / failure explanation; empty for a fully clean path.
  std::string message;
};

/// Running aggregate of a streaming run -- everything a 100k-VL capacity
/// sweep needs without materializing per-path vectors or reports.
struct StreamSummary {
  std::size_t paths = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  /// Largest finite combined bound and the path that attains it.
  Microseconds max_combined = 0.0;
  std::size_t worst_path = 0;
  VlId worst_vl = kInvalidVl;
  /// Sum of the finite combined bounds (for the mean). The accumulation
  /// order follows path completion order, so the last bits of the mean may
  /// differ between thread counts; every per-path bound is still exact.
  Microseconds sum_combined = 0.0;
  double wall_us = 0.0;
  double paths_per_second = 0.0;
  /// Per-run cache activity (deltas over this run): the per-port WCNC
  /// cache and the shared trajectory prefix cache. A warm re-run of the
  /// same configuration on the same engine shows nonzero hits here; all
  /// zeros on a re-run means the reuse machinery is broken.
  CacheStats port_cache;
  trajectory::PrefixCacheStats prefix_cache;
  /// Per-worker shard statistics of the trajectory phase (see ShardMetrics).
  std::vector<ShardMetrics> shards;

  [[nodiscard]] Microseconds mean_combined() const noexcept {
    return ok == 0 ? 0.0 : sum_combined / static_cast<Microseconds>(ok);
  }
};

/// Per-path callback of run_streaming. Called under an internal mutex (one
/// call at a time) from worker threads, in path completion order.
using StreamSink = std::function<void(const StreamPathResult&)>;

class AnalysisEngine {
 public:
  explicit AnalysisEngine(const TrafficConfig& config, Options options = {});

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Both analyses plus the combined per-path minimum.
  [[nodiscard]] RunResult run(const netcalc::Options& nc_options = {},
                              const trajectory::Options& tj_options = {});

  /// Hardened variant of run(): per-task exceptions are contained instead
  /// of tearing down the run. A throwing port (e.g. unstable utilization)
  /// fails only the paths that depend on it; ports downstream of a failed
  /// port are skipped (their inputs are unknown) and every unaffected path
  /// still gets its exact bounds. An expired RunControl::cancel marks the
  /// remaining work skipped and returns the partial results accumulated so
  /// far. Never throws on analysis errors; RunResult::status tells the
  /// story per path.
  [[nodiscard]] RunResult run_resilient(
      const netcalc::Options& nc_options = {},
      const trajectory::Options& tj_options = {},
      const RunControl& control = {});

  /// Streaming variant of run_resilient for configurations too large to
  /// materialize per-path results: every path's record is handed to `sink`
  /// as soon as it is computed (under an internal mutex, in completion
  /// order -- sort by path_index downstream if order matters) and only the
  /// running StreamSummary is kept. Per-path bounds and statuses are
  /// bit-identical to run_resilient at any thread count; pending
  /// incremental transplants are discarded (streaming runs are always
  /// full runs).
  StreamSummary run_streaming(const StreamSink& sink,
                              const netcalc::Options& nc_options = {},
                              const trajectory::Options& tj_options = {},
                              const RunControl& control = {});

  /// Incremental re-analysis against a prior run of a configuration that
  /// shares this engine's network: only ports inside the dirty cone of
  /// `changed_links` (plus every port whose crossing-VL set changed, and
  /// everything downstream) are recomputed; the bounds of clean ports and
  /// the trajectory prefixes whose whole upstream chain is clean are
  /// transplanted from `baseline`. Bit-identical to run_resilient by
  /// construction -- when the baseline cannot be validated (different
  /// options, different network, ...) it silently falls back to a full
  /// run_resilient and records the reason in metrics().incremental.
  [[nodiscard]] RunResult run_incremental(
      const TrafficConfig& baseline_config, const RunResult& baseline,
      const std::vector<LinkId>& changed_links,
      const netcalc::Options& nc_options = {},
      const trajectory::Options& tj_options = {},
      const RunControl& control = {});

  /// WCNC only (per-port reports and path bounds), served from the cache
  /// when this engine already computed the same options.
  [[nodiscard]] netcalc::Result netcalc_only(
      const netcalc::Options& nc_options = {});

  /// Trajectory only, aligned with TrafficConfig::all_paths().
  [[nodiscard]] std::vector<Microseconds> trajectory_only(
      const trajectory::Options& tj_options = {});

  [[nodiscard]] int thread_count() const noexcept {
    return pool_.thread_count();
  }
  /// The engine's worker pool, for callers that shard auxiliary work
  /// (e.g. the accuracy/cost ladder's per-path escalation waves) across
  /// the same threads instead of spinning up their own.
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  /// Metrics accumulated since construction.
  [[nodiscard]] RunMetrics metrics() const;

 private:
  /// Per-port outcome of the resilient WCNC phase.
  struct PortOutcome {
    PathState state = PathState::kOk;
    std::string message;
  };

  /// Everything a trajectory phase needs, resolved once per run: the
  /// options, the serialization caps, their digests and the shared prefix
  /// cache they key. The three run entry points used to recompute the
  /// digests (an O(ports) caps walk each) up to twice per run.
  struct TrajectoryContext {
    trajectory::Options options;
    std::optional<std::vector<Microseconds>> caps;
    std::uint64_t tj_key = 0;
    std::uint64_t caps_sig = 0;
    std::shared_ptr<trajectory::PrefixCache> pcache;
  };

  /// Builds the context. With nc_result == nullptr the caps come from an
  /// internal default-options WCNC run (served by the port cache), exactly
  /// like the legacy per-analyzer envelope analysis; otherwise from the
  /// provided contained WCNC outcome (failed / skipped ports stay
  /// uncapped -- an infinite cap is simply no refinement).
  [[nodiscard]] TrajectoryContext resolve_trajectory_context(
      const trajectory::Options& options, const netcalc::Result* nc_result,
      const std::vector<PortOutcome>* nc_ports);

  /// Topology-aware VL schedule of the trajectory phase: VLs sorted
  /// lexicographically by their first path's link sequence (ties by id),
  /// so VLs sharing source ports / route prefixes sit in the same
  /// contiguous chunk and land on the same worker. Pure function of the
  /// configuration; built once per engine.
  [[nodiscard]] const std::vector<VlId>& locality_vl_order();

  [[nodiscard]] netcalc::Result run_netcalc(const netcalc::Options& options);
  [[nodiscard]] std::vector<Microseconds> run_trajectory(
      const TrajectoryContext& ctx);
  [[nodiscard]] netcalc::Result run_netcalc_contained(
      const netcalc::Options& options, const RunControl& control,
      std::vector<PortOutcome>& ports);
  [[nodiscard]] std::vector<Microseconds> run_trajectory_contained(
      const TrajectoryContext& ctx, const RunControl& control,
      std::vector<PathStatus>& path_status);

  /// The once-built flat flow index of this engine's configuration.
  const netcalc::PortFlowIndex& flow_index();
  /// The shared trajectory prefix cache for one (trajectory options, caps)
  /// context, created on first use. Bounds are pure functions of that
  /// context, so the cache persists across runs of this engine.
  std::shared_ptr<trajectory::PrefixCache> prefix_cache_for(
      std::uint64_t tj_key, std::uint64_t caps_sig);
  /// Sum of the stats of every prefix cache of this engine.
  [[nodiscard]] trajectory::PrefixCacheStats prefix_stats_total() const;

  /// One baseline prefix bound queued for transplantation by the next
  /// trajectory phase (run_incremental fills the list; the phase applies
  /// it to the resolved cache once, then clears it).
  struct PrefixSeed {
    VlId vl = kInvalidVl;
    LinkId link = kInvalidLink;
    Microseconds bound = 0.0;
  };

  /// One clean path whose trajectory bound run_incremental transplants
  /// verbatim: the next trajectory phase writes `trajectory` for the path
  /// and skips its recursion entirely.
  struct PathTransplant {
    std::size_t path = 0;
    Microseconds trajectory = 0.0;
  };

  const TrafficConfig& cfg_;
  ThreadPool pool_;
  PortCache cache_;
  /// Fixed-point round counts per options digest (cyclic configurations
  /// bypass the per-port cache path but still memoize their round count).
  std::unordered_map<std::uint64_t, int> iterations_;
  std::optional<netcalc::PortFlowIndex> flow_index_;
  /// Cached locality_vl_order() result (pure function of cfg_).
  std::optional<std::vector<VlId>> locality_order_;
  std::unordered_map<std::uint64_t, std::shared_ptr<trajectory::PrefixCache>>
      prefix_caches_;
  /// The cache used by the most recent trajectory phase.
  std::shared_ptr<trajectory::PrefixCache> last_prefix_cache_;
  std::vector<PrefixSeed> pending_prefix_seeds_;
  std::vector<PathTransplant> pending_path_transplants_;
  RunMetrics metrics_;
};

}  // namespace afdx::engine

// Shared scaffolding for the experiment benches. Every bench binary
// reproduces one table/figure of the paper: it first prints the
// reproduction (tables / ASCII charts), then runs its google-benchmark
// timings of the underlying analyses.
//
// AFDX_BENCH_MAIN(run) expands to a main() that prints the experiment via
// `run(std::cout)` and then executes the registered benchmarks.
//
// AFDX_BENCH_MAIN_OBS(run) is the observability-aware variant: `run`
// receives `(std::ostream&, const afdx::benchutil::BenchCli&)` and the
// binary accepts three extra flags (stripped before google-benchmark sees
// argv, since benchmark::Initialize rejects unknown arguments):
//   --quick            print the experiment only; skip the timed benchmarks
//   --out[=FILE]       emit the machine-readable bench JSON document
//                      ("afdx-bench/1" schema, see EXPERIMENTS.md); bare
//                      --out writes the default BENCH_<bench>.json
//                      (--bench-json=FILE is the legacy spelling)
//   --trace=FILE       record scoped spans and write Chrome trace JSON
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "engine/engine.hpp"
#include "obs/bench_json.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::benchutil {

struct BenchCli {
  bool quick = false;
  /// Bare --out was given: write the JSON document to the default name.
  bool out_default = false;
  std::optional<std::string> json_path;
  std::optional<std::string> trace_path;

  /// Where the bench JSON document should go, if anywhere: an explicit
  /// --out=FILE (or the legacy --bench-json=FILE spelling) wins; a bare
  /// --out selects the consistent default BENCH_<bench>.json.
  [[nodiscard]] std::optional<std::string> resolve_json_path(
      const char* bench_name) const {
    if (json_path.has_value()) return json_path;
    if (out_default) return "BENCH_" + std::string(bench_name) + ".json";
    return std::nullopt;
  }
};

/// Strips the afdx-specific flags out of argv (compacting it in place) so
/// benchmark::Initialize only sees its own arguments.
inline BenchCli extract_cli(int& argc, char** argv) {
  BenchCli cli;
  int keep = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--out") {
      cli.out_default = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.json_path = arg.substr(6);
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      // Legacy spelling of --out=FILE; kept so existing scripts work.
      cli.json_path = arg.substr(13);
    } else if (arg.rfind("--trace=", 0) == 0) {
      cli.trace_path = arg.substr(8);
    } else {
      argv[keep++] = argv[i];
    }
  }
  argc = keep;
  return cli;
}

inline void flush_trace(const BenchCli& cli) {
  if (!cli.trace_path.has_value()) return;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  std::ofstream out(*cli.trace_path);
  if (!out.good()) {
    std::cerr << "cannot write trace file '" << *cli.trace_path << "'\n";
    return;
  }
  tracer.write_chrome_trace(out);
  std::cerr << "trace: " << tracer.span_count() << " spans -> "
            << *cli.trace_path << "\n";
}

/// The bench self-check behind the "<5% enabled, ~0% disabled" tracing
/// budget: per-span cost from a calibration loop, scaled by the spans one
/// traced run of the workload actually emits.
struct OverheadReport {
  obs::OverheadCheck check;
  std::size_t run_spans = 0;
  double run_wall_us = 0.0;

  [[nodiscard]] double disabled_pct() const {
    if (!(run_wall_us > 0.0)) return 0.0;
    return 100.0 * static_cast<double>(run_spans) *
           check.disabled_ns_per_span / (run_wall_us * 1000.0);
  }
  [[nodiscard]] double enabled_pct() const {
    if (!(run_wall_us > 0.0)) return 0.0;
    return 100.0 *
           static_cast<double>(run_spans) *
           (check.enabled_ns_per_span - check.disabled_ns_per_span) /
           (run_wall_us * 1000.0);
  }
};

/// Runs `workload` once with tracing enabled to count its spans, then
/// measures the per-span cost. When the tracer was off (no --trace), the
/// calibration spans are dropped again afterwards.
template <typename Workload>
OverheadReport measure_run_overhead(Workload&& workload) {
  OverheadReport report;
  // Calibrate before the workload runs: with the buffers still empty the
  // calibration spans are dropped and never land in a --trace output.
  report.check = obs::measure_span_overhead();

  obs::Tracer& tracer = obs::Tracer::instance();
  const bool was_enabled = obs::tracing_enabled();
  const std::size_t spans_before = tracer.span_count();

  tracer.enable();
  const auto t0 = std::chrono::steady_clock::now();
  workload();
  const auto t1 = std::chrono::steady_clock::now();
  if (!was_enabled) tracer.disable();

  report.run_spans = tracer.span_count() - spans_before;
  report.run_wall_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  if (!was_enabled && spans_before == 0) tracer.clear();
  return report;
}

inline void print_overhead(std::ostream& out, const OverheadReport& r) {
  out << "tracer self-check: " << r.check.disabled_ns_per_span
      << " ns/span disabled, " << r.check.enabled_ns_per_span
      << " ns/span enabled; one traced run = " << r.run_spans
      << " spans -> estimated overhead " << r.disabled_pct()
      << " % disabled (~0 expected), " << r.enabled_pct()
      << " % enabled (<5 expected)\n";
}

/// "tracer_overhead" object of the afdx-bench/1 schema.
inline void write_overhead_json(obs::JsonWriter& w,
                                const OverheadReport& r) {
  w.key("tracer_overhead").begin_object();
  w.field("calibration_iterations", r.check.iterations)
      .field("disabled_ns_per_span", r.check.disabled_ns_per_span)
      .field("enabled_ns_per_span", r.check.enabled_ns_per_span)
      .field("run_spans", r.run_spans)
      .field("run_wall_us", r.run_wall_us)
      .field("disabled_overhead_pct", r.disabled_pct())
      .field("enabled_overhead_pct", r.enabled_pct());
  w.end_object();
}

/// "metrics" object of the afdx-bench/1 schema (from engine::RunMetrics).
inline void write_metrics_json(obs::JsonWriter& w,
                               const engine::RunMetrics& m) {
  w.key("metrics").begin_object();
  w.field("netcalc_wall_us", m.netcalc_wall_us)
      .field("trajectory_wall_us", m.trajectory_wall_us)
      .field("combine_wall_us", m.combine_wall_us)
      .field("total_wall_us", m.total_wall_us)
      .field("total_cpu_us", m.total_cpu_us)
      .field("paths", m.paths)
      .field("paths_per_second", m.paths_per_second)
      .field("threads", m.threads)
      .field("levels", m.levels)
      .field("max_level_width", m.max_level_width);
  w.key("cache").begin_object();
  w.field("hits", m.cache.hits)
      .field("misses", m.cache.misses)
      .field("hit_rate", m.cache.hit_rate());
  w.end_object();
  w.end_object();
}

/// Opens `path` and writes the shared document head:
///   {"schema":"afdx-bench/1","bench":NAME,"mode":quick|full, ...
/// The caller then appends its own sections and must call
/// finish_bench_json() to close the document.
struct BenchJsonDoc {
  std::ofstream out;
  std::optional<obs::JsonWriter> writer;

  [[nodiscard]] bool ok() const { return writer.has_value(); }
  obs::JsonWriter& w() { return *writer; }
};

inline BenchJsonDoc begin_bench_json(const std::string& path,
                                     const char* bench_name,
                                     const BenchCli& cli) {
  BenchJsonDoc doc;
  doc.out.open(path);
  if (!doc.out.good()) {
    std::cerr << "cannot write bench json '" << path << "'\n";
    return doc;
  }
  doc.writer.emplace(doc.out);
  doc.w().begin_object();
  doc.w()
      .field("schema", "afdx-bench/1")
      .field("bench", bench_name)
      .field("mode", cli.quick ? "quick" : "full");
  return doc;
}

inline void finish_bench_json(BenchJsonDoc& doc, const std::string& path) {
  if (!doc.ok()) return;
  doc.w().end_object();
  doc.out << "\n";
  doc.out.close();
  std::cerr << "bench json -> " << path << "\n";
}

}  // namespace afdx::benchutil

#define AFDX_BENCH_MAIN(run_experiment)                  \
  int main(int argc, char** argv) {                      \
    run_experiment(std::cout);                           \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    std::cout << "\n-- timings "                         \
                 "------------------------------------------------\n"; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    return 0;                                            \
  }

#define AFDX_BENCH_MAIN_OBS(run_experiment)              \
  int main(int argc, char** argv) {                      \
    const ::afdx::benchutil::BenchCli cli =              \
        ::afdx::benchutil::extract_cli(argc, argv);      \
    if (cli.trace_path.has_value())                      \
      ::afdx::obs::Tracer::instance().enable();          \
    run_experiment(std::cout, cli);                      \
    ::afdx::benchutil::flush_trace(cli);                 \
    if (cli.quick) return 0;                             \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    std::cout << "\n-- timings "                         \
                 "------------------------------------------------\n"; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    return 0;                                            \
  }

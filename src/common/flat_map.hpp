// Open-addressing hash map for the analyzer memo tables.
//
// The trajectory analyzer performs two hash lookups per interference
// segment (prefix-bound memo and min-arrival memo); on a 100k-VL network
// that is tens of millions of finds, and std::unordered_map's node-based
// buckets made them the single largest profile entry. This map stores
// key/value pairs inline in one power-of-two slot array with linear
// probing, so a find is typically one cache line: hash, probe, done.
//
// Deliberately minimal -- insert-only (the memos never erase), 64-bit
// keys, trivially-copyable values -- because that is exactly what the
// memo tables need and nothing else in the hot path does.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace afdx::common {

template <typename V>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "FlatMap slots are relocated with plain copies");

 public:
  /// Reserved slot marker; (vl << 32) | link keys never reach it because
  /// both halves would have to be the invalid-id sentinel.
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  FlatMap() { reset_slots(kInitialSlots); }

  /// Pointer to the mapped value, or nullptr when absent.
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    assert(key != kEmptyKey);
    std::size_t idx = static_cast<std::size_t>(mix(key)) & mask_;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
      idx = (idx + 1) & mask_;
    }
  }

  /// Inserts key -> value; the key must not be present yet (the memo
  /// tables only store each prefix once).
  void emplace(std::uint64_t key, V value) {
    assert(key != kEmptyKey);
    if ((size_ + 1) * 4 > slot_count() * 3) grow();
    insert_slot(key, value);
    ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    for (Slot& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key;
    V value;
  };

  static constexpr std::size_t kInitialSlots = 1024;

  /// splitmix64 finalizer -- full-avalanche mix so the (vl << 32) | link
  /// key structure cannot cluster the probe sequence.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

  void reset_slots(std::size_t n) {
    slots_.assign(n, Slot{kEmptyKey, V{}});
    mask_ = n - 1;
  }

  void insert_slot(std::uint64_t key, V value) {
    std::size_t idx = static_cast<std::size_t>(mix(key)) & mask_;
    while (slots_[idx].key != kEmptyKey) {
      assert(slots_[idx].key != key);
      idx = (idx + 1) & mask_;
    }
    slots_[idx] = Slot{key, value};
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    reset_slots(old.size() * 2);
    for (const Slot& s : old) {
      if (s.key != kEmptyKey) insert_slot(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace afdx::common

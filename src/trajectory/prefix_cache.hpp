// Thread-safe shared memoization of trajectory prefix bounds.
//
// The trajectory recursion computes one bound per (VL, link) pair -- the
// worst-case time from generation to the end of transmission on that link
// of the VL's multicast tree. The value is a pure function of
// (configuration, analyzer options, serialization caps), so analyzer
// instances working on the same configuration under the same options can
// share results: the engine hands every shard-local Analyzer one
// PrefixCache, and the ~6000 paths of an industrial configuration compute
// each common prefix once instead of once per worker.
//
// Incremental re-analysis (engine::AnalysisEngine::run_incremental) seeds
// a fresh cache with the baseline entries whose whole upstream dependency
// cone is untouched by the change -- see the dirty-cone discussion in
// README. seed() therefore overwrites, unlike store() which keeps the
// first value (all writers compute identical bounds).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "vl/traffic_config.hpp"

namespace afdx::trajectory {

struct PrefixCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t seeded = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Counter delta between two snapshots (later minus earlier) -- per-run
/// activity out of cumulative cache statistics.
inline PrefixCacheStats operator-(const PrefixCacheStats& now,
                                  const PrefixCacheStats& then) {
  return PrefixCacheStats{now.hits - then.hits, now.misses - then.misses,
                          now.seeded - then.seeded};
}

class PrefixCache {
 public:
  /// Returns the cached bound of (vl, link) and counts a hit, or nullopt
  /// and counts a miss. Thread-safe.
  [[nodiscard]] std::optional<Microseconds> lookup(VlId vl, LinkId link);

  /// Stores the bound of (vl, link); the first writer wins (all writers
  /// compute identical values). Thread-safe.
  void store(VlId vl, LinkId link, Microseconds bound);

  /// Inserts or overwrites (vl, link) with a transplanted baseline value
  /// and counts it as seeded. Thread-safe.
  void seed(VlId vl, LinkId link, Microseconds bound);

  /// Reads (vl, link) without touching the hit/miss counters -- used to
  /// enumerate a finished baseline cache during incremental planning.
  [[nodiscard]] std::optional<Microseconds> peek(VlId vl, LinkId link) const;

  [[nodiscard]] PrefixCacheStats stats() const;
  /// Distinct (vl, link) entries currently stored. Thread-safe.
  [[nodiscard]] std::size_t size() const;

 private:
  static std::uint64_t key(VlId vl, LinkId link) noexcept {
    return (static_cast<std::uint64_t>(vl) << 32) | link;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Microseconds> entries_;
  PrefixCacheStats stats_;
};

}  // namespace afdx::trajectory

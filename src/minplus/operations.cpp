#include "minplus/operations.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"

namespace afdx::minplus {

namespace {

/// Sorted union of the breakpoint abscissae of both curves.
std::vector<double> merged_grid(const Curve& a, const Curve& b) {
  std::vector<double> xs;
  xs.reserve(a.points().size() + b.points().size());
  for (const Point& p : a.points()) xs.push_back(p.x);
  for (const Point& p : b.points()) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double u, double v) { return nearly_equal(u, v); }),
           xs.end());
  return xs;
}

/// Pointwise min or max with exact crossing points.
Curve combine_extremum(const Curve& a, const Curve& b, bool take_min) {
  std::vector<double> grid = merged_grid(a, b);

  // Insert the crossing point inside every grid interval where the sign of
  // (a - b) flips.
  std::vector<double> xs;
  xs.reserve(grid.size() * 2);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    xs.push_back(grid[i]);
    if (i + 1 == grid.size()) break;
    const double x1 = grid[i], x2 = grid[i + 1];
    const double d1 = a.value(x1) - b.value(x1);
    const double d2 = a.value(x2) - b.value(x2);
    if ((d1 > kEpsilon && d2 < -kEpsilon) || (d1 < -kEpsilon && d2 > kEpsilon)) {
      const double xc = x1 + (x2 - x1) * (d1 / (d1 - d2));
      if (xc > x1 + kEpsilon && xc < x2 - kEpsilon) xs.push_back(xc);
    }
  }

  // A final crossing can occur beyond the last breakpoint, where both curves
  // are affine with their final slopes.
  {
    const double xl = xs.back();
    const double dv = a.value(xl) - b.value(xl);
    const double ds = a.final_slope() - b.final_slope();
    if (std::abs(ds) > kEpsilon) {
      const double xc = xl - dv / ds;
      if (xc > xl + kEpsilon) xs.push_back(xc);
    }
  }

  PointVec pts;
  pts.reserve(xs.size());
  for (double x : xs) {
    const double va = a.value(x), vb = b.value(x);
    pts.push_back({x, take_min ? std::min(va, vb) : std::max(va, vb)});
  }

  // Final slope: whichever curve is the extremum after the last breakpoint.
  const double xl = xs.back();
  const double va = a.value(xl), vb = b.value(xl);
  double fs;
  if (nearly_equal(va, vb)) {
    fs = take_min ? std::min(a.final_slope(), b.final_slope())
                  : std::max(a.final_slope(), b.final_slope());
  } else if ((va < vb) == take_min) {
    fs = a.final_slope();
  } else {
    fs = b.final_slope();
  }
  return Curve(std::move(pts), fs);
}

/// A linear piece of a curve, used by the convolution slope-merges.
struct Segment {
  double length;  // may be +inf for the final piece
  double slope;
};

std::vector<Segment> segments_of(const Curve& c) {
  std::vector<Segment> segs;
  const auto& pts = c.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    segs.push_back({pts[i].x - pts[i - 1].x,
                    (pts[i].y - pts[i - 1].y) / (pts[i].x - pts[i - 1].x)});
  }
  segs.push_back({std::numeric_limits<double>::infinity(), c.final_slope()});
  return segs;
}

Curve curve_from_segments(double y0, std::vector<Segment> segs) {
  PointVec pts{{0.0, y0}};
  double x = 0.0, y = y0;
  double final_slope = 0.0;
  for (const Segment& s : segs) {
    if (std::isinf(s.length)) {
      final_slope = s.slope;
      break;
    }
    x += s.length;
    y += s.slope * s.length;
    pts.push_back({x, y});
  }
  return Curve(std::move(pts), final_slope);
}

}  // namespace

Curve sum(const Curve& a, const Curve& b) {
  std::vector<double> grid = merged_grid(a, b);
  PointVec pts;
  pts.reserve(grid.size());
  for (double x : grid) pts.push_back({x, a.value(x) + b.value(x)});
  return Curve(std::move(pts), a.final_slope() + b.final_slope());
}

Curve sum(const std::vector<Curve>& curves) {
  Curve acc;  // zero
  for (const Curve& c : curves) acc = sum(acc, c);
  return acc;
}

Curve minimum(const Curve& a, const Curve& b) {
  return combine_extremum(a, b, /*take_min=*/true);
}

Curve maximum(const Curve& a, const Curve& b) {
  return combine_extremum(a, b, /*take_min=*/false);
}

Curve shift_left(const Curve& a, double d) {
  AFDX_REQUIRE(d >= 0.0, "shift_left: negative shift");
  if (d <= kEpsilon) return a;
  PointVec pts{{0.0, a.value(d)}};
  for (const Point& p : a.points()) {
    if (p.x > d + kEpsilon) pts.push_back({p.x - d, p.y});
  }
  return Curve(std::move(pts), a.final_slope());
}

Curve convolve_concave(const Curve& a, const Curve& b) {
  AFDX_REQUIRE(a.is_concave() && b.is_concave(),
               "convolve_concave: inputs must be concave");
  // For concave f, g:  (f (*) g) = f(0) + g(0) + min(f - f(0), g - g(0))
  // (the min-plus convolution of concave curves through the origin is their
  // pointwise minimum; constant offsets commute with the convolution).
  const double a0 = a.value(0.0);
  const double b0 = b.value(0.0);
  auto rebase = [](const Curve& c, double offset) {
    PointVec pts;
    pts.reserve(c.points().size());
    for (const Point& p : c.points()) pts.push_back({p.x, p.y + offset});
    return Curve(std::move(pts), c.final_slope());
  };
  const Curve m = minimum(rebase(a, -a0), rebase(b, -b0));
  return rebase(m, a0 + b0);
}

Curve convolve_convex(const Curve& a, const Curve& b) {
  AFDX_REQUIRE(a.is_convex() && b.is_convex(),
               "convolve_convex: inputs must be convex");
  AFDX_REQUIRE(nearly_equal(a.value(0.0), 0.0) && nearly_equal(b.value(0.0), 0.0),
               "convolve_convex: service curves must start at 0");
  std::vector<Segment> segs = segments_of(a);
  std::vector<Segment> bsegs = segments_of(b);
  segs.insert(segs.end(), bsegs.begin(), bsegs.end());
  std::stable_sort(segs.begin(), segs.end(),
                   [](const Segment& u, const Segment& v) {
                     return u.slope < v.slope;  // increasing slope
                   });
  std::vector<Segment> trimmed;
  for (const Segment& s : segs) {
    trimmed.push_back(s);
    if (std::isinf(s.length)) break;
  }
  return curve_from_segments(0.0, std::move(trimmed));
}

Curve deconvolve_concave_rl(const Curve& a, double rate, double latency) {
  AFDX_REQUIRE(a.is_concave() && a.is_non_decreasing(),
               "deconvolve_concave_rl: alpha must be concave non-decreasing");
  AFDX_REQUIRE(rate > 0.0, "deconvolve_concave_rl: rate must be positive");
  AFDX_REQUIRE(a.final_slope() <= rate + kEpsilon,
               "deconvolve_concave_rl: arrival rate exceeds service rate "
               "(unbounded output)");
  // (a (/) RL)(t) = sup_{u>=0} a(t+L+u) - R u.
  // Because a is concave the sup is reached where a's slope crosses R:
  // let t0 = end of the region where a's slope exceeds R; then
  //   result(t) = a(t+L)                        for t+L >= t0
  //   result(t) = a(t0) - R (t0 - t - L)        for t+L <  t0.
  const Curve shifted = shift_left(a, latency);

  // t0 relative to the *shifted* curve.
  double t0 = 0.0;
  const auto& pts = shifted.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (shifted.slope_after(pts[i].x) > rate + kEpsilon) {
      t0 = (i + 1 < pts.size()) ? pts[i + 1].x : pts[i].x;
    }
  }
  if (t0 <= kEpsilon) return shifted;
  // Replace the initial too-steep portion by the slope-`rate` line that ends
  // at (t0, shifted(t0)); beyond t0 the supremum is reached at u = 0 and the
  // result follows the shifted curve.
  PointVec out{{0.0, shifted.value(t0) - rate * t0}};
  out.push_back({t0, shifted.value(t0)});
  for (const Point& p : shifted.points()) {
    if (p.x > t0 + kEpsilon) out.push_back(p);
  }
  return Curve(std::move(out), shifted.final_slope());
}

double horizontal_deviation(const Curve& alpha, const Curve& beta) {
  AFDX_REQUIRE(alpha.is_non_decreasing() && beta.is_non_decreasing(),
               "horizontal_deviation: curves must be non-decreasing");
  if (alpha.final_slope() > beta.final_slope() + kEpsilon) {
    throw Error("horizontal_deviation: unbounded (arrival rate exceeds "
                "service rate)");
  }

  // Candidate maximizers of g(t) = beta^{-1}(alpha(t)) - t: alpha's
  // breakpoints and the preimages (under alpha) of beta's breakpoint values.
  std::set<double> cand;
  cand.insert(0.0);
  for (const Point& p : alpha.points()) cand.insert(p.x);
  for (const Point& p : beta.points()) {
    if (p.y <= alpha.value(0.0) + kEpsilon) continue;
    // Smallest t with alpha(t) >= p.y, when it exists.
    if (alpha.final_slope() > kEpsilon ||
        alpha.value(alpha.points().back().x) >= p.y - kEpsilon) {
      cand.insert(alpha.pseudo_inverse(p.y));
    }
  }

  double best = 0.0;
  for (double t : cand) {
    const double need = alpha.value(t);
    double d;
    try {
      d = beta.pseudo_inverse(need) - t;
    } catch (const Error&) {
      throw Error("horizontal_deviation: unbounded (service never reaches "
                  "arrival level)");
    }
    best = std::max(best, d);
  }
  return std::max(best, 0.0);
}

Curve residual_service(const Curve& beta, const Curve& alpha_higher,
                       double blocking) {
  AFDX_REQUIRE(beta.is_convex() && beta.is_non_decreasing(),
               "residual_service: beta must be convex non-decreasing");
  AFDX_REQUIRE(alpha_higher.is_concave(),
               "residual_service: alpha must be concave");
  AFDX_REQUIRE(blocking >= 0.0, "residual_service: negative blocking");
  const double slope = beta.final_slope() - alpha_higher.final_slope();
  AFDX_REQUIRE(slope > kEpsilon,
               "residual_service: higher-priority traffic saturates the "
               "server (no residual service)");

  // diff(t) = beta(t) - alpha(t) - blocking is convex with positive final
  // slope: it has a last zero t*, after which it increases. The residual
  // service curve is 0 on [0, t*] and follows diff afterwards.
  auto diff = [&](double t) {
    return beta.value(t) - alpha_higher.value(t) - blocking;
  };

  // Candidate knees: breakpoints of both curves.
  std::vector<double> grid;
  for (const Point& p : beta.points()) grid.push_back(p.x);
  for (const Point& p : alpha_higher.points()) grid.push_back(p.x);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](double a, double b) { return nearly_equal(a, b); }),
             grid.end());

  // Last grid point where diff < 0 brackets the final zero crossing.
  double lo = 0.0;
  for (double x : grid) {
    if (diff(x) < 0.0) lo = x;
  }
  double t_star;
  if (diff(lo) >= -kEpsilon && lo == 0.0) {
    t_star = 0.0;  // already non-negative everywhere
  } else {
    // Beyond the last negative grid point both curves are locally affine up
    // to the next breakpoint; walk segments until diff turns positive.
    double hi = lo;
    for (double x : grid) {
      if (x > lo && diff(x) >= 0.0) {
        hi = x;
        break;
      }
    }
    if (hi <= lo) {  // crossing beyond the last breakpoint
      hi = lo + std::max(1.0, (blocking + alpha_higher.value(lo)) / slope) * 2.0;
      while (diff(hi) < 0.0) hi *= 2.0;
    }
    // diff is affine on [lo, hi'] between consecutive breakpoints; a few
    // bisection rounds pin the zero exactly enough.
    for (int it = 0; it < 100 && hi - lo > 1e-12 * (1.0 + hi); ++it) {
      const double mid = 0.5 * (lo + hi);
      if (diff(mid) < 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    t_star = hi;
  }

  PointVec pts{{0.0, 0.0}};
  if (t_star > kEpsilon) pts.push_back({t_star, 0.0});
  for (double x : grid) {
    if (x > t_star + kEpsilon) pts.push_back({x, std::max(0.0, diff(x))});
  }
  return Curve(std::move(pts), slope);
}

double vertical_deviation(const Curve& alpha, const Curve& beta) {
  if (alpha.final_slope() > beta.final_slope() + kEpsilon) {
    throw Error("vertical_deviation: unbounded");
  }
  double best = 0.0;
  for (double x : merged_grid(alpha, beta)) {
    best = std::max(best, alpha.value(x) - beta.value(x));
  }
  return std::max(best, 0.0);
}

}  // namespace afdx::minplus

# Empty dependencies file for afdx_trajectory.
# This may be replaced when dependencies are built.

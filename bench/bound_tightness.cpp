// Evaluation beyond the paper: how tight are the analytic bounds? The
// worst-case schedule search produces certified achievable delays (lower
// bounds on the true worst case); the ratio achieved/bound measures the
// residual pessimism of each method.
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "sim/worst_case_search.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "EXT / bound tightness: certified achievable delay vs analytic "
         "bounds\n\n";

  {
    out << "sample configuration (exhaustive offset sweep):\n";
    const TrafficConfig cfg = config::sample_config();
    const analysis::Comparison c = analysis::compare(cfg);
    report::Table t({"VL", "achieved (us)", "trajectory (us)", "WCNC (us)",
                     "achieved/combined"});
    for (std::size_t i = 0; i < cfg.all_paths().size(); ++i) {
      const VlPath& p = cfg.all_paths()[i];
      const sim::SearchResult r =
          sim::worst_case_search(cfg, PathRef{p.vl, p.dest_index});
      t.add_row({cfg.vl(p.vl).name, report::fmt(r.worst_delay),
                 report::fmt(c.trajectory[i]), report::fmt(c.netcalc[i]),
                 report::fmt(r.worst_delay / c.combined[i] * 100.0, 1) + " %"});
    }
    t.print(out);
  }

  {
    out << "\nindustrial-like sub-configuration (coordinate descent, every "
           "13th path):\n";
    gen::IndustrialOptions go;
    go.vl_count = 60;
    go.end_system_count = 16;
    go.switch_count = 5;
    const TrafficConfig cfg = gen::industrial_config(go);
    const analysis::Comparison c = analysis::compare(cfg);
    sim::SearchOptions so;
    so.steps_per_vl = 4;
    so.random_restarts = 1;
    so.max_rounds = 2;

    double sum_ratio = 0.0, min_ratio = 1.0, max_ratio = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < cfg.all_paths().size(); i += 13) {
      const VlPath& p = cfg.all_paths()[i];
      const sim::SearchResult r =
          sim::worst_case_search(cfg, PathRef{p.vl, p.dest_index}, so);
      const double ratio = r.worst_delay / c.combined[i];
      sum_ratio += ratio;
      min_ratio = std::min(min_ratio, ratio);
      max_ratio = std::max(max_ratio, ratio);
      ++n;
    }
    report::Table t({"paths probed", "mean achieved/bound", "min", "max"});
    t.add_row({std::to_string(n),
               report::fmt(sum_ratio / static_cast<double>(n) * 100.0, 1) + " %",
               report::fmt(min_ratio * 100.0, 1) + " %",
               report::fmt(max_ratio * 100.0, 1) + " %"});
    t.print(out);
  }
  out << "\nOn the sample configuration the combined bound is achieved\n"
         "exactly for v3/v4/v5 (100 %): zero residual pessimism there; the\n"
         "v1/v2 witnesses need a finer phase sliver than the offset grid.\n"
         "On industrial-scale ports the remaining gap mixes analysis\n"
         "pessimism with schedules the bounded search did not try.\n";
}

void BM_WorstCaseSearchSample(benchmark::State& state) {
  const TrafficConfig cfg = config::sample_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::worst_case_search(cfg, PathRef{3, 0}));
  }
}
BENCHMARK(BM_WorstCaseSearchSample)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

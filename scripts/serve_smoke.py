#!/usr/bin/env python3
"""Golden-file smoke test of the afdx_serve stdio protocol.

Drives one deterministic session (status -> whatif -> fault_sweep) through
`afdx_serve --generate=7 --stdio --workers=1`, normalizes the volatile
fields (wall-clock timings, uptime, latency aggregates, live queue depth),
and diffs the responses against tests/data/serve_smoke.golden.

The analysis content -- per-path bounds, deltas, dirty-cone statistics,
fault-sweep rows -- is deterministic for a fixed seed and must match the
golden file bit for bit; only timing-derived fields are masked.

Usage:
  scripts/serve_smoke.py --binary build/tools/afdx_serve \
      --golden tests/data/serve_smoke.golden [--regen]

Exit status: 0 on match (or after --regen), 1 on a diff or protocol error.
"""

import argparse
import difflib
import json
import subprocess
import sys

REQUESTS = [
    {"id": 1, "op": "status"},
    {"id": 2, "op": "whatif", "set": [{"vl": "VL1", "bag_us": 1000}]},
    {"id": 3, "op": "fault_sweep", "scope": "switch:S1"},
]

# Keys whose values depend on wall-clock time or live server state, masked
# before the diff. Everything else (bounds, deltas, counters, cache hit
# totals) is deterministic under --workers=1 and must match exactly.
VOLATILE_KEYS = {
    "uptime_us",
    "wall_us",
    "build_wall_us",
    "baseline_wall_us",
    "latency_us",
    "queue",
}


def mask_volatile(value):
    if isinstance(value, dict):
        return {
            k: (None if k in VOLATILE_KEYS else mask_volatile(v))
            for k, v in value.items()
        }
    if isinstance(value, list):
        return [mask_volatile(v) for v in value]
    return value


def run_session(binary):
    stdin = "".join(json.dumps(r) + "\n" for r in REQUESTS)
    proc = subprocess.run(
        [binary, "--generate=7", "--stdio", "--quiet", "--workers=1"],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        print(f"afdx_serve exited {proc.returncode}", file=sys.stderr)
        print(proc.stderr, file=sys.stderr)
        return None
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(REQUESTS):
        print(
            f"expected {len(REQUESTS)} response lines, got {len(lines)}",
            file=sys.stderr,
        )
        return None
    normalized = []
    for line in lines:
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"unparseable response line: {e}\n{line}", file=sys.stderr)
            return None
        normalized.append(
            json.dumps(mask_volatile(doc), separators=(",", ":"))
        )
    return normalized


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="path to afdx_serve")
    ap.add_argument("--golden", required=True, help="golden response file")
    ap.add_argument(
        "--regen",
        action="store_true",
        help="rewrite the golden file from the current binary's responses",
    )
    args = ap.parse_args()

    responses = run_session(args.binary)
    if responses is None:
        return 1

    if args.regen:
        with open(args.golden, "w", encoding="utf-8") as f:
            f.write("\n".join(responses) + "\n")
        print(f"wrote {len(responses)} golden responses -> {args.golden}")
        return 0

    try:
        with open(args.golden, encoding="utf-8") as f:
            golden = [l for l in f.read().splitlines() if l.strip()]
    except OSError as e:
        print(f"cannot read golden file: {e}", file=sys.stderr)
        return 1

    if responses == golden:
        print(f"serve smoke OK: {len(responses)} responses match {args.golden}")
        return 0

    print("serve smoke FAILED: responses differ from golden", file=sys.stderr)
    diff = difflib.unified_diff(
        golden, responses, fromfile=args.golden, tofile="<live responses>",
        lineterm="",
    )
    for i, line in enumerate(diff):
        if i >= 40:
            print("... (diff truncated)", file=sys.stderr)
            break
        print(line, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())

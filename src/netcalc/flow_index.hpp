// Flat (structure-of-arrays) companions to the WCNC per-port computation.
//
// The hot loop of the analyzer recomputes, for every port, the partition of
// its crossing VLs into priority classes and shared-input-link groups, and
// walks one std::map<class, delay> per upstream port while accumulating
// jitter. Both are pure functions of the configuration, so they are built
// once here:
//
//   * DelayTable  -- the per-port per-class delay state as one contiguous
//     array (n_links x distinct-class-count cells, NaN = absent), replacing
//     std::vector<std::map<std::uint8_t, Microseconds>> on the hot path.
//     The map-based APIs remain in netcalc_analyzer.hpp for compatibility.
//   * PortFlowIndex -- the port -> classes -> groups -> members -> upstream
//     chain flattening of the crossing-VL partition, in exactly the
//     iteration order of the map-based aggregation (classes ascending;
//     fresh per-VL groups in encounter order before shared groups by
//     ascending input link; members in encounter order; chains from the
//     port upward), so the flat compute_port_bounds overload reproduces
//     the original floating-point operation order bit for bit.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "vl/traffic_config.hpp"

namespace afdx::netcalc {

/// Flat per-port per-priority-class delay store. A cell is "absent" (NaN)
/// until set; class values not present anywhere in the configuration have
/// no column at all.
class DelayTable {
 public:
  explicit DelayTable(const TrafficConfig& config);

  /// True when (port, cls) has been set since construction / last clear.
  [[nodiscard]] bool has(LinkId port, std::uint8_t cls) const noexcept {
    const int slot = slot_[cls];
    if (slot < 0) return false;
    return !std::isnan(cells_[port * stride_ + static_cast<std::size_t>(slot)]);
  }

  /// The stored delay; only valid when has() is true.
  [[nodiscard]] Microseconds get(LinkId port, std::uint8_t cls) const noexcept {
    return cells_[port * stride_ + static_cast<std::size_t>(slot_[cls])];
  }

  void set(LinkId port, std::uint8_t cls, Microseconds value);

  /// Replaces the whole row of `port` with the map entries.
  void assign(LinkId port, const std::map<std::uint8_t, Microseconds>& row);

  /// Marks every class of `port` absent again.
  void clear_row(LinkId port);

  /// Number of distinct priority classes (columns).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

 private:
  std::size_t stride_ = 0;
  std::array<std::int16_t, 256> slot_{};  // class -> column, -1 when unused
  std::vector<Microseconds> cells_;       // link-major, NaN = absent
};

/// Once-built flattening of every port's crossing-VL partition (see the
/// file comment for the exact ordering contract).
struct PortFlowIndex {
  struct Member {
    VlId vl = kInvalidVl;
    Bits burst = 0.0;                 // VirtualLink::burst_bits()
    BitsPerMicrosecond rate = 0.0;    // VirtualLink::rate_bits_per_us()
    Microseconds release_jitter = 0.0;
    std::uint32_t chain_begin = 0;    // [begin, end) into `chains`: the
    std::uint32_t chain_end = 0;      // upstream ports, nearest first
  };
  struct Group {
    LinkId pred = kInvalidLink;       // shared input link; invalid = fresh
    std::uint32_t member_begin = 0;   // [begin, end) into `members`
    std::uint32_t member_end = 0;
    Bits largest_frame = 0.0;         // max member burst (grouping cap)
  };
  struct ClassEntry {
    std::uint8_t cls = 0;
    std::uint32_t group_begin = 0;    // [begin, end) into `groups`
    std::uint32_t group_end = 0;
    Bits lower_blocking = 0.0;        // max frame of all lower classes here
  };
  struct Port {
    std::uint32_t class_begin = 0;    // [begin, end) into `classes`
    std::uint32_t class_end = 0;
    Bits max_frame = 0.0;             // largest frame of any crossing VL
  };

  std::vector<Port> ports;            // indexed by LinkId
  std::vector<ClassEntry> classes;
  std::vector<Group> groups;
  std::vector<Member> members;
  std::vector<LinkId> chains;
};

[[nodiscard]] PortFlowIndex build_port_flow_index(const TrafficConfig& config);

}  // namespace afdx::netcalc

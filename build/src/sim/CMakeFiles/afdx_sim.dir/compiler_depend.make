# Empty compiler generated dependencies file for afdx_sim.
# This may be replaced when dependencies are built.

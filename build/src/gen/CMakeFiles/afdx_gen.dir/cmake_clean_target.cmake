file(REMOVE_RECURSE
  "libafdx_gen.a"
)

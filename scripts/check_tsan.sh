#!/usr/bin/env sh
# Builds the project under ThreadSanitizer and runs the parallel analysis
# engine's determinism/cache tests (including the error-containment /
# streaming regressions and the locality-partitioned scheduler's warm
# shared-cache / per-shard metrics regressions), the trajectory analyzer's
# reuse-after-throw regression and SIMD-vs-scalar sweep identity tests,
# the observability layer's tracer / counter concurrency tests, the
# serving subsystem's concurrent session / server tests, and the
# accuracy/cost ladder's sharded escalation tests (see README "Sanitizer
# builds"). The Engine*/Trajectory* name filters below pick the new tests
# up automatically.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DAFDX_SANITIZE=thread
cmake --build "$BUILD_DIR" --target test_engine test_obs test_serve test_ladder test_trajectory -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" \
    -R '^(Engine|ThreadPool|PortCache|Tracer|Counters|JsonWriter|Overhead|Session|Serve|Ladder|Trajectory)' \
    --output-on-failure

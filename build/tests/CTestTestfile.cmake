# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_traffic_config[1]_include.cmake")
include("/root/repo/build/tests/test_curve[1]_include.cmake")
include("/root/repo/build/tests/test_operations[1]_include.cmake")
include("/root/repo/build/tests/test_netcalc[1]_include.cmake")
include("/root/repo/build/tests/test_trajectory[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_comparison[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_priority[1]_include.cmake")
include("/root/repo/build/tests/test_jitter[1]_include.cmake")
include("/root/repo/build/tests/test_worst_case_search[1]_include.cmake")
include("/root/repo/build/tests/test_redundancy[1]_include.cmake")
include("/root/repo/build/tests/test_sfa[1]_include.cmake")

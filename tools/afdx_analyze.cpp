// afdx_analyze -- command-line front end to the delay-analysis library.
//
// Usage:
//   afdx_analyze <config-file> [options]
//   afdx_analyze --generate[=seed] [options]
//
// Options:
//   --gen-domains=N                            with --generate: hierarchical
//                                              multi-domain network (N
//                                              domains of 8 switches / 60
//                                              end systems joined by a
//                                              backbone; 1 = the legacy
//                                              single-domain generator)
//   --gen-vls=N                                with --generate: total VL
//                                              count (default 500)
//   --stream                                   streaming analysis: per-path
//                                              results are folded into a
//                                              running summary (and, with
//                                              --csv, printed as they
//                                              complete) without ever being
//                                              materialized -- the mode for
//                                              10k..100k-VL networks
//   --method=netcalc|trajectory|sfa|all        bounds to compute (default all)
//   --csv                                      CSV instead of a text table
//   --ports                                    also print per-port report
//   --simulate=N                               cross-check with N random
//                                              schedules (reports violations)
//   --no-grouping                              WCNC without the grouping
//   --no-serialization                         trajectory without the
//                                              serialization refinement
//   --threads=N                                analysis worker threads
//                                              (default 1; 0 = one per
//                                              hardware thread); results
//                                              are identical for every N
//   --metrics                                  print engine run metrics
//                                              (per-phase wall time,
//                                              paths/s, cache hit rate)
//   --faults=single-link|single-switch|<spec>  degraded-mode analysis: run
//                                              the listed fault scenarios
//                                              and print the healthy vs.
//                                              degraded DegradationReport.
//                                              A <spec> is comma-separated
//                                              link:<a>-<b> / switch:<n> /
//                                              es:<n> elements (one k-fault
//                                              scenario); the flag repeats.
//   --incremental / --no-incremental           fault scenarios reuse the
//                                              healthy run as a baseline and
//                                              recompute only the dirty cone
//                                              of the failed elements
//                                              (default on; bit-identical
//                                              either way)
//   --partial                                  resilient run: contain
//                                              per-port/per-path analysis
//                                              failures and report partial
//                                              results with a status column
//   --deadline-ms=N                            cooperative deadline; work
//                                              left when it expires is
//                                              reported as skipped
//   --ladder[=BUDGET_MS]                       budget-driven accuracy/cost
//                                              ladder: the cheapest rung
//                                              (SFA) bounds every path, the
//                                              most disagreeing paths are
//                                              escalated through WCNC,
//                                              WCNC+grouping, trajectory and
//                                              the refined trajectory until
//                                              the budget is spent; prints
//                                              per-path provenance (winner,
//                                              rungs attempted, tightening).
//                                              No value / 0 = unlimited.
//   --ladder-evals=N                           deterministic ladder budget
//                                              in path-evaluation tokens
//                                              (bit-identical across
//                                              --threads); 0 = unlimited
//   --trace=FILE (or --trace FILE)             record scoped spans of the
//                                              engine/netcalc/trajectory
//                                              layers and write a Chrome
//                                              trace-event JSON file
//                                              (chrome://tracing, Perfetto)
//
// Exit status (see also --help and the README):
//   0  success -- every requested figure was computed;
//   1  internal error (unexpected exception);
//   2  usage / parse error (bad flags, malformed config file);
//   3  partial results (contained failures, deadline or cancellation);
//   4  soundness violation -- a simulated delay exceeded a reported bound.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/comparison.hpp"
#include "analysis/ladder.hpp"
#include "common/error.hpp"
#include "common/parse.hpp"
#include "config/serialization.hpp"
#include "engine/engine.hpp"
#include "faults/report.hpp"
#include "faults/scenario.hpp"
#include "gen/industrial.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"
#include "sfa/sfa_analyzer.hpp"
#include "sim/simulator.hpp"

using namespace afdx;

namespace {

// Exit-code contract of the CLI; keep in sync with the header comment, the
// --help text, the README and the cli_exit_* tests.
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitPartial = 3;
constexpr int kExitViolation = 4;

struct CliOptions {
  std::optional<std::string> config_file;
  std::optional<std::uint64_t> generate_seed;
  /// --gen-domains / --gen-vls: multi-domain generator shape (with
  /// --generate only).
  int gen_domains = 1;
  std::optional<int> gen_vls;
  /// --stream: streaming analysis through AnalysisEngine::run_streaming.
  bool stream = false;
  bool help = false;
  std::string method = "all";
  bool csv = false;
  bool ports = false;
  bool metrics = false;
  bool partial = false;
  /// --ladder: run the budget-driven accuracy/cost ladder instead of the
  /// fixed method set. budget_ms 0 = unlimited; ladder_evals is the
  /// deterministic path-evaluation token budget (0 = unlimited).
  bool ladder = false;
  double ladder_budget_ms = 0.0;
  std::uint64_t ladder_evals = 0;
  int simulate = 0;
  /// --deadline-ms: engaged when set, even with value 0 (which expires
  /// immediately and exercises the partial-result path end to end).
  std::optional<double> deadline_ms;
  /// --trace: Chrome trace-event JSON output file.
  std::optional<std::string> trace_file;
  /// --faults values: "single-link", "single-switch" or custom specs.
  std::vector<std::string> faults;
  /// --incremental / --no-incremental: reuse the healthy run as baseline
  /// for the fault scenarios (bit-identical, much faster). Default on.
  bool incremental = true;
  netcalc::Options nc;
  trajectory::Options tj;
  engine::Options eng;
};

void print_usage(std::ostream& out) {
  out << "usage: afdx_analyze <config-file> [options]\n"
         "       afdx_analyze --generate[=seed] [options]\n"
         "options: --gen-domains=N (multi-domain --generate; 1 = legacy)\n"
         "         --gen-vls=N (total generated VLs, default 500)\n"
         "         --stream (streaming analysis: running summary only;\n"
         "           with --csv, rows print as they complete)\n"
         "         --method=netcalc|trajectory|sfa|all  --csv  --ports\n"
         "         --simulate=N  --no-grouping  --no-serialization\n"
         "         --threads=N (0 = auto)  --metrics\n"
         "         --incremental | --no-incremental  (fault-scenario reuse)\n"
         "         --faults=single-link|single-switch|<spec>  (repeatable;\n"
         "           <spec> = comma-separated link:<a>-<b>, switch:<name>,\n"
         "           es:<name> elements forming one scenario)\n"
         "         --partial  --deadline-ms=N (0 expires at once)\n"
         "         --ladder[=BUDGET_MS]  accuracy/cost ladder: run the\n"
         "           cheapest rung (SFA) on every path, escalate the most\n"
         "           disagreeing paths through WCNC / WCNC+grouping /\n"
         "           trajectory / refined trajectory until the budget is\n"
         "           spent (0 or no value = unlimited); exits 3 when the\n"
         "           budget cut the climb\n"
         "         --ladder-evals=N  deterministic ladder token budget\n"
         "           (path evaluations; 0 = unlimited)\n"
         "         --trace=FILE  --help\n"
         "exit codes: 0 success\n"
         "            1 internal error\n"
         "            2 usage or parse error\n"
         "            3 partial results (contained failures, deadline,\n"
         "              cancellation)\n"
         "            4 soundness violation (simulated delay exceeded a\n"
         "              reported bound)\n";
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--generate") {
      opts.generate_seed = 42;
    } else if (arg.rfind("--generate=", 0) == 0) {
      const auto seed = parse_uint(arg.substr(11));
      if (!seed.has_value()) {
        std::cerr << "bad generate seed: " << arg << "\n";
        return std::nullopt;
      }
      opts.generate_seed = *seed;
    } else if (arg.rfind("--gen-domains=", 0) == 0) {
      const auto n = parse_int(arg.substr(14));
      if (!n.has_value() || *n < 1) {
        std::cerr << "bad domain count: " << arg << "\n";
        return std::nullopt;
      }
      opts.gen_domains = static_cast<int>(*n);
    } else if (arg.rfind("--gen-vls=", 0) == 0) {
      const auto n = parse_int(arg.substr(10));
      if (!n.has_value() || *n < 1) {
        std::cerr << "bad VL count: " << arg << "\n";
        return std::nullopt;
      }
      opts.gen_vls = static_cast<int>(*n);
    } else if (arg == "--stream") {
      opts.stream = true;
    } else if (arg.rfind("--method=", 0) == 0) {
      opts.method = arg.substr(9);
      if (opts.method != "netcalc" && opts.method != "trajectory" &&
          opts.method != "sfa" && opts.method != "all") {
        std::cerr << "unknown method: " << opts.method << "\n";
        return std::nullopt;
      }
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--ports") {
      opts.ports = true;
    } else if (arg.rfind("--simulate=", 0) == 0) {
      const auto n = parse_int(arg.substr(11));
      if (!n.has_value() || *n < 0) {
        std::cerr << "bad simulation count: " << arg << "\n";
        return std::nullopt;
      }
      opts.simulate = static_cast<int>(*n);
    } else if (arg == "--no-grouping") {
      opts.nc.grouping = false;
    } else if (arg == "--no-serialization") {
      opts.tj.serialization = false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto n = parse_int(arg.substr(10));
      if (!n.has_value() || *n < 0) {
        std::cerr << "bad thread count: " << arg << "\n";
        return std::nullopt;
      }
      opts.eng.threads = static_cast<int>(*n);
    } else if (arg == "--incremental") {
      opts.incremental = true;
    } else if (arg == "--no-incremental") {
      opts.incremental = false;
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--ladder") {
      opts.ladder = true;
    } else if (arg.rfind("--ladder=", 0) == 0) {
      const auto ms = parse_double(arg.substr(9));
      if (!ms.has_value() || *ms < 0.0) {
        std::cerr << "bad ladder budget: " << arg << "\n";
        return std::nullopt;
      }
      opts.ladder = true;
      opts.ladder_budget_ms = *ms;
    } else if (arg.rfind("--ladder-evals=", 0) == 0) {
      const auto n = parse_uint(arg.substr(15));
      if (!n.has_value()) {
        std::cerr << "bad ladder eval budget: " << arg << "\n";
        return std::nullopt;
      }
      opts.ladder = true;
      opts.ladder_evals = *n;
    } else if (arg == "--partial") {
      opts.partial = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      const auto ms = parse_double(arg.substr(14));
      if (!ms.has_value() || *ms < 0.0) {
        std::cerr << "bad deadline: " << arg << "\n";
        return std::nullopt;
      }
      opts.deadline_ms = *ms;
    } else if (arg == "--help") {
      opts.help = true;
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs an output file\n";
        return std::nullopt;
      }
      opts.trace_file = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      const std::string file = arg.substr(8);
      if (file.empty()) {
        std::cerr << "empty --trace value\n";
        return std::nullopt;
      }
      opts.trace_file = file;
    } else if (arg.rfind("--faults=", 0) == 0) {
      const std::string spec = arg.substr(9);
      if (spec.empty()) {
        std::cerr << "empty --faults value\n";
        return std::nullopt;
      }
      opts.faults.push_back(spec);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    } else if (!opts.config_file.has_value()) {
      opts.config_file = arg;
    } else {
      std::cerr << "unexpected argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (!opts.help &&
      opts.config_file.has_value() == opts.generate_seed.has_value()) {
    std::cerr << "provide either a config file or --generate\n";
    return std::nullopt;
  }
  if ((opts.gen_domains != 1 || opts.gen_vls.has_value()) &&
      !opts.generate_seed.has_value() && !opts.help) {
    std::cerr << "--gen-domains / --gen-vls require --generate\n";
    return std::nullopt;
  }
  return opts;
}

int run(const CliOptions& opts) {
  const TrafficConfig config =
      opts.config_file.has_value()
          ? config::load_config_file(*opts.config_file)
          : [&] {
              gen::IndustrialOptions go;
              go.seed = *opts.generate_seed;
              go.domains = opts.gen_domains;
              if (opts.gen_vls.has_value()) go.vl_count = *opts.gen_vls;
              return gen::industrial_config(go);
            }();

  engine::CancelToken cancel;
  const engine::CancelToken* cancel_ptr = nullptr;
  if (opts.deadline_ms.has_value()) {
    cancel.set_deadline_after(*opts.deadline_ms * 1000.0);
    cancel_ptr = &cancel;
  }

  if (!opts.faults.empty()) {
    std::vector<faults::FaultScenario> scenarios;
    for (const std::string& spec : opts.faults) {
      if (spec == "single-link") {
        for (auto& s : faults::single_link_scenarios(config)) {
          scenarios.push_back(std::move(s));
        }
      } else if (spec == "single-switch") {
        for (auto& s : faults::single_switch_scenarios(config)) {
          scenarios.push_back(std::move(s));
        }
      } else {
        scenarios.push_back(faults::scenario_from_spec(config.network(), spec));
      }
    }
    faults::ScenarioOptions so;
    so.nc = opts.nc;
    so.tj = opts.tj;
    so.threads = opts.eng.threads;
    so.cancel = cancel_ptr;
    so.incremental = opts.incremental;
    const faults::DegradationReport report =
        faults::analyze_scenarios(config, std::move(scenarios), so);
    report.print(std::cout, config);
    return report.complete() ? kExitOk : kExitPartial;
  }

  if (opts.ladder) {
    analysis::LadderOptions lo;
    lo.budget_ms = opts.ladder_budget_ms;
    lo.max_path_evals = opts.ladder_evals;
    lo.cancel = cancel_ptr;
    lo.netcalc = opts.nc;
    lo.trajectory = opts.tj;
    analysis::BoundLadder ladder(config, opts.eng);
    const analysis::LadderResult r = ladder.run(lo);

    report::Table table({"vl", "destination", "hops", "bound_us", "winner",
                         "first_us", "tightening_us", "rungs", "status"});
    for (std::size_t i = 0; i < config.all_paths().size(); ++i) {
      const VlPath& p = config.all_paths()[i];
      const analysis::PathProvenance& prov = r.provenance[i];
      std::string rungs;
      for (std::size_t k = 0; k < analysis::kRungCount; ++k) {
        if (prov.attempted(static_cast<analysis::Rung>(k))) {
          if (!rungs.empty()) rungs += '+';
          rungs += analysis::to_string(static_cast<analysis::Rung>(k));
        }
      }
      std::string status = engine::to_string(r.status[i].state);
      if (!r.status[i].message.empty()) {
        status += " (" + r.status[i].message + ")";
      }
      table.add_row(
          {config.vl(p.vl).name,
           config.network()
               .node(config.vl(p.vl).destinations[p.dest_index])
               .name,
           std::to_string(p.links.size()),
           std::isfinite(r.bounds[i]) ? report::fmt(r.bounds[i])
                                      : std::string("-"),
           analysis::to_string(prov.winner),
           std::isfinite(prov.first_bound_us)
               ? report::fmt(prov.first_bound_us)
               : std::string("-"),
           report::fmt(prov.tightening_us()), std::move(rungs),
           std::move(status)});
    }
    if (opts.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
      std::cout << "\nladder: " << r.path_evals << " path evaluations, "
                << r.paths_escalated << " paths escalated, "
                << report::fmt(r.wall_us / 1000.0) << " ms\n";
      report::Table rungs({"rung", "attempted", "paths", "cost_est",
                           "wall_us", "note"});
      for (std::size_t k = 0; k < analysis::kRungCount; ++k) {
        const analysis::RungStats& s = r.rungs[k];
        rungs.add_row({analysis::to_string(static_cast<analysis::Rung>(k)),
                       s.attempted ? "yes" : "no",
                       std::to_string(s.paths_bounded),
                       report::fmt(s.cost_estimate), report::fmt(s.wall_us),
                       s.failed ? s.message : std::string()});
      }
      rungs.print(std::cout);
    }
    if (opts.metrics) {
      std::cout << "\n";
      ladder.engine().metrics().print(std::cout);
    }
    const bool any_failed =
        std::any_of(r.status.begin(), r.status.end(),
                    [](const engine::PathStatus& s) { return !s.ok(); });
    if (r.budget_exhausted || any_failed) {
      std::cerr << "partial results: "
                << (r.budget_exhausted
                        ? "ladder budget exhausted (" + r.budget_reason + ")"
                        : "some paths have no bounds")
                << "\n";
      return kExitPartial;
    }
    return kExitOk;
  }

  if (opts.stream) {
    engine::AnalysisEngine eng(config, opts.eng);
    const auto fmt_bound = [](Microseconds us) {
      return std::isfinite(us) ? report::fmt(us) : std::string("-");
    };
    engine::StreamSink sink;
    if (opts.csv) {
      std::cout << "vl,destination,hops,wcnc_us,trajectory_us,combined_us,"
                   "status\n";
      // Rows print in completion order (not path order); the summary below
      // is what the exit code is derived from either way.
      sink = [&](const engine::StreamPathResult& r) {
        const VlPath& p = config.all_paths()[r.path_index];
        std::cout << config.vl(r.vl).name << ','
                  << config.network()
                         .node(config.vl(r.vl).destinations[r.dest_index])
                         .name
                  << ',' << p.links.size() << ',' << fmt_bound(r.netcalc)
                  << ',' << fmt_bound(r.trajectory) << ','
                  << fmt_bound(r.combined) << ','
                  << engine::to_string(r.state) << '\n';
      };
    }
    const engine::StreamSummary s = eng.run_streaming(
        sink, opts.nc, opts.tj, engine::RunControl{cancel_ptr});
    if (!opts.csv) {
      std::cout << "streamed " << s.paths << " paths: " << s.ok << " ok, "
                << s.failed << " failed, " << s.skipped << " skipped\n";
      if (s.ok > 0) {
        std::cout << "  max combined " << report::fmt(s.max_combined)
                  << " us (vl " << config.vl(s.worst_vl).name << "), mean "
                  << report::fmt(s.mean_combined()) << " us\n";
      }
      std::cout << "  " << report::fmt(s.wall_us / 1000.0) << " ms, "
                << report::fmt(s.paths_per_second, 0) << " paths/s\n";
    }
    if (opts.metrics) {
      std::cout << "\n";
      eng.metrics().print(std::cout);
    }
    if (s.failed + s.skipped > 0) {
      std::cerr << "partial results: some paths have no bounds\n";
      return kExitPartial;
    }
    return kExitOk;
  }

  if (opts.partial || cancel_ptr != nullptr) {
    engine::AnalysisEngine eng(config, opts.eng);
    const engine::RunResult r =
        eng.run_resilient(opts.nc, opts.tj, engine::RunControl{cancel_ptr});
    report::Table table({"vl", "destination", "hops", "wcnc_us",
                         "trajectory_us", "combined_us", "status"});
    const auto fmt_bound = [](Microseconds us) {
      return std::isfinite(us) ? report::fmt(us) : std::string("-");
    };
    for (std::size_t i = 0; i < config.all_paths().size(); ++i) {
      const VlPath& p = config.all_paths()[i];
      std::string status = engine::to_string(r.status[i].state);
      if (!r.status[i].message.empty()) {
        status += " (" + r.status[i].message + ")";
      }
      table.add_row(
          {config.vl(p.vl).name,
           config.network()
               .node(config.vl(p.vl).destinations[p.dest_index])
               .name,
           std::to_string(p.links.size()), fmt_bound(r.netcalc[i]),
           fmt_bound(r.trajectory[i]), fmt_bound(r.combined[i]),
           std::move(status)});
    }
    if (opts.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    if (opts.metrics) {
      std::cout << "\n";
      r.metrics.print(std::cout);
    }
    if (!r.complete()) {
      std::cerr << "partial results: some paths have no bounds\n";
      return kExitPartial;
    }
    return kExitOk;
  }

  const bool want_nc = opts.method == "netcalc" || opts.method == "all";
  const bool want_tj = opts.method == "trajectory" || opts.method == "all";
  const bool want_sfa = opts.method == "sfa" || opts.method == "all";

  engine::AnalysisEngine eng(config, opts.eng);
  std::optional<netcalc::Result> nc;
  std::optional<std::vector<Microseconds>> tj;
  std::optional<sfa::Result> sf;
  if (want_nc && want_tj) {
    engine::RunResult r = eng.run(opts.nc, opts.tj);
    nc = std::move(r.netcalc_result);
    tj = std::move(r.trajectory);
  } else {
    if (want_nc || opts.ports) nc = eng.netcalc_only(opts.nc);
    if (want_tj) tj = eng.trajectory_only(opts.tj);
  }
  if (want_sfa) sf = sfa::analyze(config);

  std::vector<std::string> headers{"vl", "destination", "hops"};
  if (want_nc) headers.push_back("wcnc_us");
  if (want_tj) headers.push_back("trajectory_us");
  if (want_sfa) headers.push_back("sfa_us");
  if (want_nc && want_tj) headers.push_back("combined_us");
  report::Table table(headers);

  std::vector<Microseconds> reported(config.all_paths().size(), 0.0);
  for (std::size_t i = 0; i < config.all_paths().size(); ++i) {
    const VlPath& p = config.all_paths()[i];
    std::vector<std::string> row{
        config.vl(p.vl).name,
        config.network().node(config.vl(p.vl).destinations[p.dest_index]).name,
        std::to_string(p.links.size())};
    Microseconds best = 1e300;
    if (want_nc) {
      row.push_back(report::fmt(nc->path_bounds[i]));
      best = std::min(best, nc->path_bounds[i]);
    }
    if (want_tj) {
      row.push_back(report::fmt((*tj)[i]));
      best = std::min(best, (*tj)[i]);
    }
    if (want_sfa) {
      row.push_back(report::fmt(sf->path_bounds[i]));
      best = std::min(best, sf->path_bounds[i]);
    }
    if (want_nc && want_tj) row.push_back(report::fmt(best));
    reported[i] = best;
    table.add_row(std::move(row));
  }
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  if (opts.ports && nc.has_value()) {
    std::cout << "\n";
    report::Table ports({"port", "class_delays_us", "buffer_bits", "util_%"});
    const Network& net = config.network();
    for (LinkId l = 0; l < net.link_count(); ++l) {
      if (!nc->ports[l].used) continue;
      std::string levels;
      for (const auto& [level, d] : nc->ports[l].level_delays) {
        if (!levels.empty()) levels += " ";
        levels += "P" + std::to_string(level) + ":" + report::fmt(d);
      }
      ports.add_row({net.node(net.link(l).source).name + ">" +
                         net.node(net.link(l).dest).name,
                     levels, report::fmt(nc->ports[l].backlog, 0),
                     report::fmt(nc->ports[l].utilization * 100.0, 1)});
    }
    if (opts.csv) {
      ports.print_csv(std::cout);
    } else {
      ports.print(std::cout);
    }
  }

  if (opts.metrics) {
    std::cout << "\n";
    eng.metrics().print(std::cout);
  }

  if (opts.simulate > 0) {
    int violations = 0;
    for (int s = 0; s < opts.simulate; ++s) {
      sim::Options so;
      so.phasing = s == 0 ? sim::Phasing::kAligned : sim::Phasing::kRandom;
      so.seed = static_cast<std::uint64_t>(s);
      const sim::Result r = sim::simulate(config, so);
      for (std::size_t i = 0; i < reported.size(); ++i) {
        if (r.max_path_delay[i] > reported[i] + 1e-6) {
          ++violations;
          std::cerr << "VIOLATION: schedule " << s << " path " << i
                    << " observed " << r.max_path_delay[i] << " us > bound "
                    << reported[i] << " us\n";
        }
      }
    }
    std::cout << "\nsimulated " << opts.simulate
              << " schedules: " << violations << " bound violations\n";
    if (violations > 0) return kExitViolation;
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_args(argc, argv);
  if (!opts.has_value()) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  if (opts->help) {
    print_usage(std::cout);
    return kExitOk;
  }
  if (opts->trace_file.has_value()) obs::Tracer::instance().enable();
  // Flush the trace even when the run ends with a partial result or an
  // error -- a trace of a failing run is the one you actually want.
  const auto flush_trace = [&] {
    if (!opts->trace_file.has_value()) return;
    obs::Tracer::instance().disable();
    std::ofstream out(*opts->trace_file);
    if (!out.good()) {
      std::cerr << "cannot write trace file '" << *opts->trace_file << "'\n";
      return;
    }
    obs::Tracer::instance().write_chrome_trace(out);
    std::cerr << "trace: " << obs::Tracer::instance().span_count()
              << " spans -> " << *opts->trace_file << "\n";
  };
  try {
    const int code = run(*opts);
    flush_trace();
    return code;
  } catch (const Error& e) {
    // Library errors stem from the inputs (config files, specs, flag
    // values) -- the parse-error exit code; anything else is internal.
    flush_trace();
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    flush_trace();
    std::cerr << "internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}

// Degraded-mode delay analysis: healthy vs. per-scenario bounds.
//
// analyze_scenarios() runs the combined WCNC/trajectory analysis once on
// the healthy configuration and once per fault scenario (on the degraded
// view built by apply_scenario), then compares the bounds path by path:
//
//   * the headline degraded bound of a surviving path is the *covering*
//     envelope max(healthy, raw degraded) -- during a fault-mode
//     transition frames of both modes are in flight, so the certified
//     bound must dominate both; the raw re-analysis value is also kept
//     (removing a failed VL's cross-traffic can genuinely tighten a
//     surviving path, which is interesting but not certifiable alone);
//   * unreachable paths are listed explicitly, never silently dropped;
//   * redundancy figures assume the paper's dual-network model: the
//     mirror network stays healthy while this one degrades, so the
//     first-arrival bound and RM skew come from
//     redundancy::combine(degraded, healthy). A path whose copy on this
//     network is lost keeps the mirror's first arrival but its skew
//     becomes infinite (redundancy_lost).
//
// Scenario runs use run_resilient: an unstable degraded port fails only
// its dependent paths, a CancelToken deadline turns remaining scenarios
// into explicit "skipped" records, and DegradationReport::complete()
// tells whether every figure was actually computed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "faults/degrade.hpp"
#include "faults/scenario.hpp"

namespace afdx::faults {

/// Knobs of a degraded-mode analysis sweep.
struct ScenarioOptions {
  netcalc::Options nc;
  trajectory::Options tj;
  /// Worker threads; scenarios are independent, so parallelism is applied
  /// across scenarios (each scenario engine runs serially).
  int threads = 1;
  /// Reuse the healthy run as a baseline for every scenario: only ports in
  /// the dirty cone of the failed elements are recomputed
  /// (engine::AnalysisEngine::run_incremental). Bit-identical to a full
  /// per-scenario run; turn off to force full recomputation.
  bool incremental = true;
  /// Optional cooperative cancellation / deadline shared by the healthy run
  /// and every scenario.
  const engine::CancelToken* cancel = nullptr;
  /// Optional precomputed healthy run of the same configuration under the
  /// same nc/tj options (e.g. a serving daemon's pinned baseline): reused
  /// as-is -- the sweep skips its own healthy engine run. Must stay valid
  /// for the duration of analyze_scenarios. A mismatched run is safe:
  /// run_incremental validates the option digests and falls back to a full
  /// per-scenario run.
  const engine::RunResult* healthy_run = nullptr;
};

/// Comparison record of one healthy path under one scenario.
struct PathDegradation {
  PathFate fate = PathFate::kIntact;
  /// Outcome of the degraded re-analysis of this path (kSkipped with an
  /// explanatory message for unreachable paths -- there is nothing to run).
  engine::PathState state = engine::PathState::kOk;
  std::string message;
  /// Healthy combined bound (infinite if the healthy run failed the path).
  Microseconds healthy_us = 0.0;
  /// Raw degraded combined bound; infinite when unreachable or failed.
  Microseconds degraded_raw_us = 0.0;
  /// Covering bound max(healthy_us, degraded_raw_us): the certifiable
  /// degraded-mode figure. Always >= healthy_us by construction.
  Microseconds degraded_us = 0.0;
  /// degraded_us / healthy_us when both are finite and positive, else 0.
  double inflation = 0.0;
  /// Dual-network first-arrival bound with the mirror network healthy.
  Microseconds first_arrival_us = 0.0;
  /// RM skew window: healthy-mode and degraded-mode (infinite when the
  /// copy on this network is lost).
  Microseconds skew_healthy_us = 0.0;
  Microseconds skew_us = 0.0;
  /// True when this network no longer delivers the path (fate unreachable
  /// or degraded analysis failed): the frame rides the mirror network only.
  bool redundancy_lost = false;
};

inline constexpr std::size_t kNoPath = static_cast<std::size_t>(-1);

/// Outcome of one fault scenario.
struct ScenarioReport {
  FaultScenario scenario;
  /// False when the scenario was never analyzed (deadline, cancellation or
  /// an internal error); skip_reason then says why.
  bool analyzed = false;
  std::string skip_reason;
  /// Aligned with the healthy TrafficConfig::all_paths(); empty when
  /// !analyzed.
  std::vector<PathDegradation> paths;
  std::size_t intact = 0;
  std::size_t rerouted = 0;
  std::size_t unreachable = 0;
  /// Surviving paths whose degraded analysis failed / was skipped.
  std::size_t failed = 0;
  std::size_t skipped = 0;
  /// Largest finite inflation over the paths and the path it occurs on
  /// (kNoPath when no path has a finite inflation figure).
  double worst_inflation = 1.0;
  std::size_t worst_path = kNoPath;
};

/// Every directed link a scenario touches: the failed links, their reverse
/// directions (cables fail whole) and every link attached to a failed
/// node. This is the changed-link seed of the incremental dirty cone.
[[nodiscard]] std::vector<LinkId> scenario_changed_links(
    const Network& net, const FaultScenario& scenario);

/// Healthy-vs-degraded comparison over a set of scenarios.
struct DegradationReport {
  /// Healthy combined bounds and statuses, aligned with all_paths().
  std::vector<Microseconds> healthy;
  std::vector<engine::PathStatus> healthy_status;
  std::vector<ScenarioReport> scenarios;
  /// Largest finite inflation across every scenario; worst_scenario /
  /// worst_path locate it (kNoPath when none).
  double worst_inflation = 1.0;
  std::size_t worst_scenario = kNoPath;
  std::size_t worst_path = kNoPath;
  /// Total unreachable path records across the scenarios.
  std::size_t total_unreachable = 0;

  /// True when the healthy run was complete, every scenario was analyzed
  /// and no surviving path failed or was skipped. Unreachable paths do not
  /// make a report incomplete -- unreachability is a result, not a gap.
  [[nodiscard]] bool complete() const noexcept;

  /// Human-readable report. Needs the healthy configuration to name paths.
  void print(std::ostream& out, const TrafficConfig& healthy_config) const;
};

/// Runs the full sweep. Scenario specs that fail to apply (malformed ids)
/// become unanalyzed ScenarioReports, not exceptions.
[[nodiscard]] DegradationReport analyze_scenarios(
    const TrafficConfig& healthy, std::vector<FaultScenario> scenarios,
    const ScenarioOptions& options = {});

}  // namespace afdx::faults

// Separated Flow Analysis (SFA) -- the classic "pay bursts only once"
// network-calculus method, as implemented by general-purpose tools such as
// DiscoDNC (the state of the art the paper's approaches are positioned
// against).
//
// For each flow: at every crossed port, the service left to the flow under
// arbitrary (blind) multiplexing is the residual
//   beta_port_residual = [beta_port - alpha_cross]+,
// with alpha_cross the grouped arrival aggregate of all other flows at the
// port (bursts inflated by the upstream worst-case delays of a prior WCNC
// pass). The residuals of all crossed ports are min-plus convolved into one
// end-to-end service curve, and the bound is a single horizontal deviation
// against the flow's source envelope -- the flow's burst is "paid" once
// instead of at every hop.
//
// AFDX switches are store-and-forward, so the fluid convolution bound is
// corrected by one own-frame packetization delay per hop except the last
// (Le Boudec & Thiran's packetizer result).
//
// Because the residual assumes arbitrary multiplexing, it is sound for
// FIFO and for static-priority ports alike; per-hop it is more pessimistic
// than the FIFO-aware WCNC -- on AFDX configurations both of the paper's
// methods dominate it, which is exactly the paper's motivation for
// specialized analyses over general-purpose network-calculus tools.
#pragma once

#include <vector>

#include "netcalc/netcalc_analyzer.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::sfa {

struct Options {
  /// Options of the embedded WCNC pass (grouping, fixed-point limits) used
  /// both for the upstream-jitter burst inflation and the cross-traffic
  /// aggregates.
  netcalc::Options netcalc_options;
};

struct Result {
  /// End-to-end bounds, aligned with TrafficConfig::all_paths().
  std::vector<Microseconds> path_bounds;

  /// Bound for a specific path; throws when the path does not exist.
  [[nodiscard]] Microseconds bound_for(const TrafficConfig& config,
                                       PathRef ref) const;
};

/// Runs the SFA analysis. Throws afdx::Error when some port is unstable.
[[nodiscard]] Result analyze(const TrafficConfig& config,
                             const Options& options = {});

/// The end-to-end residual service curve of one path (exposed for tests).
[[nodiscard]] minplus::Curve end_to_end_service(const TrafficConfig& config,
                                                PathRef ref,
                                                const Options& options = {});

}  // namespace afdx::sfa

#include "minplus/curve.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace afdx::minplus {

Curve::Curve() : points_{{0.0, 0.0}}, final_slope_(0.0) {}

Curve::Curve(PointVec points, double final_slope)
    : points_(std::move(points)), final_slope_(final_slope) {
  AFDX_REQUIRE(!points_.empty(), "Curve: needs at least one breakpoint");
  AFDX_REQUIRE(nearly_equal(points_.front().x, 0.0),
               "Curve: first breakpoint must be at x == 0");
  points_.front().x = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    AFDX_REQUIRE(points_[i].x > points_[i - 1].x + kEpsilon,
                 "Curve: breakpoints must be strictly increasing in x");
  }
  AFDX_REQUIRE(std::isfinite(final_slope_), "Curve: final slope must be finite");
  normalize();
}

Curve Curve::affine(double value_at_zero, double slope) {
  return Curve({{0.0, value_at_zero}}, slope);
}

Curve Curve::rate_latency(double rate, double latency) {
  AFDX_REQUIRE(rate >= 0.0, "rate_latency: negative rate");
  AFDX_REQUIRE(latency >= 0.0, "rate_latency: negative latency");
  if (latency <= kEpsilon) return Curve({{0.0, 0.0}}, rate);
  return Curve({{0.0, 0.0}, {latency, 0.0}}, rate);
}

Curve Curve::constant(double value) { return Curve({{0.0, value}}, 0.0); }

void Curve::normalize() {
  // Drop interior breakpoints that lie on the segment between neighbours,
  // and a final breakpoint whose incoming slope equals the final slope.
  PointVec out;
  out.reserve(points_.size());
  auto slope_between = [](const Point& a, const Point& b) {
    return (b.y - a.y) / (b.x - a.x);
  };
  for (std::size_t i = 0; i < points_.size(); ++i) {
    while (out.size() >= 2) {
      const Point& a = out[out.size() - 2];
      const Point& b = out.back();
      if (nearly_equal(slope_between(a, b), slope_between(b, points_[i]))) {
        out.pop_back();
      } else {
        break;
      }
    }
    out.push_back(points_[i]);
  }
  while (out.size() >= 2 &&
         nearly_equal(slope_between(out[out.size() - 2], out.back()),
                      final_slope_)) {
    out.pop_back();
  }
  points_ = std::move(out);
}

double Curve::value(double x) const {
  AFDX_REQUIRE(x >= -kEpsilon, "Curve::value: negative x");
  if (x < 0) x = 0;
  // Find the last breakpoint with x_i <= x.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double v, const Point& p) { return v < p.x; });
  const Point& base = *std::prev(it);
  if (it == points_.end()) return base.y + final_slope_ * (x - base.x);
  const Point& next = *it;
  const double s = (next.y - base.y) / (next.x - base.x);
  return base.y + s * (x - base.x);
}

double Curve::slope_after(double x) const {
  AFDX_REQUIRE(x >= -kEpsilon, "Curve::slope_after: negative x");
  if (x < 0) x = 0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x + kEpsilon,
      [](double v, const Point& p) { return v < p.x; });
  if (it == points_.end()) return final_slope_;
  const Point& base = *std::prev(it);
  const Point& next = *it;
  return (next.y - base.y) / (next.x - base.x);
}

bool Curve::dominated_by(const Curve& other) const {
  for (const Point& p : points_) {
    if (p.y > other.value(p.x) + 1e-6) return false;
  }
  for (const Point& p : other.points()) {
    if (value(p.x) > p.y + 1e-6) return false;
  }
  const double last =
      std::max(points_.back().x, other.points().back().x) + 1.0;
  if (value(last) > other.value(last) + 1e-6) return false;
  return final_slope_ <= other.final_slope() + kEpsilon;
}

bool Curve::is_concave() const {
  double prev = slope_after(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double s = slope_after(points_[i].x);
    if (s > prev + kEpsilon) return false;
    prev = s;
  }
  return final_slope_ <= prev + kEpsilon;
}

bool Curve::is_convex() const {
  double prev = slope_after(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double s = slope_after(points_[i].x);
    if (s < prev - kEpsilon) return false;
    prev = s;
  }
  return final_slope_ >= prev - kEpsilon;
}

bool Curve::is_non_decreasing() const {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].y < points_[i - 1].y - kEpsilon) return false;
  }
  return final_slope_ >= -kEpsilon;
}

double Curve::pseudo_inverse(double y) const {
  AFDX_REQUIRE(is_non_decreasing(),
               "pseudo_inverse: requires a non-decreasing curve");
  if (y <= points_.front().y + kEpsilon) return 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].y >= y - kEpsilon) {
      const Point& a = points_[i - 1];
      const Point& b = points_[i];
      const double s = (b.y - a.y) / (b.x - a.x);
      if (s <= kEpsilon) return b.x;  // flat segment: first x reaching y is b.x
      return a.x + (y - a.y) / s;
    }
  }
  const Point& last = points_.back();
  if (final_slope_ <= kEpsilon) {
    throw Error("pseudo_inverse: curve is bounded below target value");
  }
  return last.x + (y - last.y) / final_slope_;
}

std::string Curve::to_string() const {
  std::ostringstream os;
  os << "Curve{";
  for (const Point& p : points_) os << "(" << p.x << "," << p.y << ") ";
  os << "slope=" << final_slope_ << "}";
  return os.str();
}

bool operator==(const Curve& a, const Curve& b) {
  if (a.points_.size() != b.points_.size()) return false;
  for (std::size_t i = 0; i < a.points_.size(); ++i) {
    if (!nearly_equal(a.points_[i].x, b.points_[i].x) ||
        !nearly_equal(a.points_[i].y, b.points_[i].y)) {
      return false;
    }
  }
  return nearly_equal(a.final_slope_, b.final_slope_);
}

}  // namespace afdx::minplus

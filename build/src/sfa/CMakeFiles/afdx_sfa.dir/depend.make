# Empty dependencies file for afdx_sfa.
# This may be replaced when dependencies are built.

#include "valid/ladder_check.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "analysis/ladder.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace afdx::valid {

namespace {

constexpr double kTolerance = 1e-6;
constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

using analysis::kRungCount;
using analysis::LadderResult;
using analysis::Rung;

/// The rung kLoosenLadderRung corrupts.
constexpr auto kFaultRung = static_cast<std::size_t>(Rung::kWcncGrouping);

void loosen_rung(LadderResult& res, double factor) {
  // A "loosening" factor must inflate; the CLI's default fault factor is
  // 0.5 (a deflation), so mirror it above 1.
  const double inflate = factor > 1.0 ? factor : (factor > 0.0 ? 1.0 / factor
                                                               : 2.0);
  for (Microseconds& b : res.rung_bounds[kFaultRung]) {
    if (std::isfinite(b)) b *= inflate;
  }
}

std::string vl_of(const TrafficConfig& config, std::size_t path) {
  return config.vl(config.all_paths()[path].vl).name;
}

/// Shared per-run invariants: cumulative dominance + provenance. `label`
/// distinguishes the unlimited and the budgeted run in violation details.
void check_run(const TrafficConfig& config, const LadderResult& res,
               const std::vector<Microseconds>& simulated,
               const std::string& label, CheckResult& out) {
  const std::size_t n = config.all_paths().size();
  if (res.provenance.size() != n || res.bounds.size() != n ||
      res.status.size() != n) {
    out.violations.push_back(
        {CheckKind::kLadderProvenance, label, 0,
         static_cast<double>(n), static_cast<double>(res.provenance.size()),
         "ladder result is not aligned with all_paths()"});
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const analysis::PathProvenance& prov = res.provenance[i];
    if (!res.status[i].ok()) continue;  // kFailed paths carry their reason
    // Coverage: at least one attempted rung, a finite positive bound, and
    // first >= final (the ladder only ever tightens).
    if (prov.attempted_mask == 0 || !std::isfinite(res.bounds[i]) ||
        res.bounds[i] <= 0.0) {
      out.violations.push_back({CheckKind::kLadderProvenance, label, i,
                                0.0, res.bounds[i],
                                "VL " + vl_of(config, i) +
                                    ": missing or non-positive ladder bound"});
      continue;
    }
    if (res.bounds[i] > prov.first_bound_us + kTolerance) {
      out.violations.push_back(
          {CheckKind::kLadderProvenance, label, i, prov.first_bound_us,
           res.bounds[i],
           "VL " + vl_of(config, i) +
               ": final bound looser than the cheapest rung's bound"});
    }
    // Final == tightest attempted rung; winner == argmin (cheapest rung
    // wins exact ties).
    Microseconds best = kInf;
    std::size_t best_rung = kRungCount;
    for (std::size_t k = 0; k < kRungCount; ++k) {
      if (!prov.attempted(static_cast<Rung>(k))) continue;
      if (res.rung_bounds[k].empty()) continue;
      if (res.rung_bounds[k][i] < best) {
        best = res.rung_bounds[k][i];
        best_rung = k;
      }
    }
    if (best_rung == kRungCount ||
        std::abs(best - res.bounds[i]) > kTolerance) {
      out.violations.push_back(
          {CheckKind::kLadderProvenance, label, i, best, res.bounds[i],
           "VL " + vl_of(config, i) +
               ": final bound is not the tightest attempted rung"});
    } else if (static_cast<std::size_t>(prov.winner) != best_rung &&
               std::abs(res.rung_bounds[static_cast<std::size_t>(
                            prov.winner)][i] -
                        best) > kTolerance) {
      out.violations.push_back(
          {CheckKind::kLadderProvenance, label, i, best,
           res.rung_bounds[static_cast<std::size_t>(prov.winner)][i],
           "VL " + vl_of(config, i) + ": recorded winner (" +
               analysis::to_string(prov.winner) +
               ") is not a tightest rung"});
    }
    // Cumulative dominance chain: monotone up the ladder and above every
    // simulated schedule at every rung.
    Microseconds prev = kInf;
    for (std::size_t k = 0; k < kRungCount; ++k) {
      if (!prov.attempted(static_cast<Rung>(k))) continue;
      const Microseconds cum = res.ladder_bound(i, static_cast<Rung>(k));
      if (cum > prev + kTolerance) {
        out.violations.push_back(
            {CheckKind::kLadderDominance,
             label + ":" + analysis::to_string(static_cast<Rung>(k)), i, prev,
             cum,
             "VL " + vl_of(config, i) +
                 ": cumulative ladder bound loosened while climbing"});
      }
      prev = cum;
      if (i < simulated.size() && simulated[i] > cum + kTolerance) {
        out.violations.push_back(
            {CheckKind::kLadderDominance,
             label + ":" + analysis::to_string(static_cast<Rung>(k)), i,
             simulated[i], cum,
             "VL " + vl_of(config, i) +
                 ": simulated delay exceeds the rung's ladder bound"});
      }
    }
    // Raw refinement edges (analytic, independent of cumulation).
    const auto raw_edge = [&](Rung coarse, Rung fine, const char* what) {
      const auto c = static_cast<std::size_t>(coarse);
      const auto f = static_cast<std::size_t>(fine);
      if (!prov.attempted(coarse) || !prov.attempted(fine)) return;
      if (res.rung_bounds[c].empty() || res.rung_bounds[f].empty()) return;
      if (res.rung_bounds[f][i] > res.rung_bounds[c][i] + kTolerance) {
        out.violations.push_back(
            {CheckKind::kLadderDominance,
             label + ":" + analysis::to_string(fine), i, res.rung_bounds[c][i],
             res.rung_bounds[f][i],
             "VL " + vl_of(config, i) + ": " + what});
      }
    };
    raw_edge(Rung::kWcnc, Rung::kWcncGrouping,
             "grouping loosened the raw WCNC rung");
    raw_edge(Rung::kTrajectory, Rung::kTrajectoryPruned,
             "serialization refinement loosened the raw trajectory rung");
  }
}

}  // namespace

void check_ladder(const TrafficConfig& config, const CheckOptions& options,
                  CheckResult& out) {
  AFDX_TRACE_SPAN("valid.ladder", "valid");
  const std::size_t n = config.all_paths().size();

  // Unlimited run: every rung on every path.
  analysis::BoundLadder ladder(config, options.engine);
  analysis::LadderOptions unlimited;
  LadderResult full = ladder.run(unlimited);
  if (options.fault == Fault::kLoosenLadderRung) {
    loosen_rung(full, options.fault_factor);
  }
  check_run(config, full, out.simulated, "ladder", out);
  if (full.budget_exhausted) {
    out.violations.push_back(
        {CheckKind::kLadderProvenance, "ladder", 0, 0.0, 1.0,
         "unlimited-budget ladder reported budget exhaustion"});
  }

  // Budgeted run: enough tokens for the three whole-config rungs plus
  // about half an escalation pass -- on every grid size some paths are
  // guaranteed to strand below the top rung. Deterministic (token budget,
  // fixed wave), so shrinking reproduces it exactly.
  analysis::LadderOptions budgeted;
  budgeted.max_path_evals = std::max<std::uint64_t>(1, 3 * n + n / 2);
  budgeted.wave = 8;
  LadderResult partial = ladder.run(budgeted);
  check_run(config, partial, out.simulated, "ladder(budget)", out);
  for (std::size_t i = 0; i < n && i < partial.bounds.size(); ++i) {
    if (!partial.status[i].ok() || !full.status[i].ok()) continue;
    // Sandwich: the budgeted bound never beats the unlimited ladder and
    // never loses to the cheapest rung (checked per path in check_run).
    if (partial.bounds[i] < full.bounds[i] - kTolerance) {
      out.violations.push_back(
          {CheckKind::kLadderProvenance, "ladder(budget)", i, full.bounds[i],
           partial.bounds[i],
           "VL " + vl_of(config, i) +
               ": budgeted bound tighter than the unlimited ladder"});
    }
    // Stranded paths must say so.
    if (partial.budget_exhausted &&
        !partial.provenance[i].attempted(Rung::kTrajectoryPruned) &&
        partial.status[i].message.empty()) {
      out.violations.push_back(
          {CheckKind::kLadderProvenance, "ladder(budget)", i, 0.0, 0.0,
           "VL " + vl_of(config, i) +
               ": stranded path without partial provenance"});
    }
  }

  out.ladder = analysis::pessimism_stats(out.simulated, full.bounds);
}

}  // namespace afdx::valid

file(REMOVE_RECURSE
  "libafdx_trajectory.a"
)

// Unit tests for the WCNC (network calculus) analyzer. The expected values
// on the paper's Figure-2 sample configuration are derived by hand in
// DESIGN.md conventions: leaky buckets (4000 bits, 1 bit/us), 100 Mb/s
// ports, 16 us switch latency.
#include "netcalc/netcalc_analyzer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/samples.hpp"

namespace afdx::netcalc {
namespace {

TrafficConfig isolated_flow_config() {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  std::vector<VirtualLink> vls{
      {"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500}};
  return TrafficConfig(std::move(net), std::move(vls));
}

TEST(Netcalc, IsolatedFlowTwoHops) {
  const TrafficConfig cfg = isolated_flow_config();
  const Result r = analyze(cfg);
  // ES port: sigma/R = 40 us; switch port: L + sigma'/R = 16 + 40.4 us
  // (burst inflated by rho * 40 = 40 bits).
  ASSERT_EQ(r.path_bounds.size(), 1u);
  EXPECT_NEAR(r.path_bounds[0], 40.0 + 16.0 + 40.4, 1e-9);
  EXPECT_EQ(r.iterations, 1);
}

TEST(Netcalc, SampleConfigPortDelays) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const Result r = analyze(cfg);

  const LinkId e1_port =
      *net.link_between(*net.find_node("e1"), *net.find_node("S1"));
  EXPECT_NEAR(r.ports[e1_port].delay, 40.0, 1e-9);

  const LinkId s1_port =
      *net.link_between(*net.find_node("S1"), *net.find_node("S3"));
  // Two leaky buckets inflated to 4040 bits each: 16 + 8080/100.
  EXPECT_NEAR(r.ports[s1_port].delay, 96.8, 1e-9);

  const LinkId s3_port =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  // Two serialized groups of two flows each, hand-derived in DESIGN.md.
  EXPECT_NEAR(r.ports[s3_port].delay, 139.608, 1e-2);
}

TEST(Netcalc, SampleConfigEndToEnd) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  // v1..v4 are symmetric; v5 crosses an empty port pair.
  for (int p = 0; p < 4; ++p) EXPECT_NEAR(r.path_bounds[p], 276.408, 1e-2);
  EXPECT_NEAR(r.path_bounds[4], 96.4, 1e-9);
}

TEST(Netcalc, GroupingTightensTheBounds) {
  const TrafficConfig cfg = config::sample_config();
  Options no_grouping;
  no_grouping.grouping = false;
  const Result grouped = analyze(cfg);
  const Result plain = analyze(cfg, no_grouping);
  EXPECT_NEAR(plain.path_bounds[0], 318.272, 1e-2);
  for (std::size_t i = 0; i < grouped.path_bounds.size(); ++i) {
    EXPECT_LE(grouped.path_bounds[i], plain.path_bounds[i] + 1e-9);
  }
}

TEST(Netcalc, BacklogBoundsForBufferSizing) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const Result r = analyze(cfg);
  const LinkId s3_port =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  // vdev of the grouped aggregate vs RL(100, 16), hand-derived, plus one
  // max frame (4000 bits) of in-service remainder for buffer sizing.
  EXPECT_NEAR(r.ports[s3_port].backlog, 13960.8 + 4000.0, 1.0);
  EXPECT_NEAR(r.ports[s3_port].queue_backlog, 12360.8, 1.0);
  // queue backlog excludes at most R*L bits plus the in-service frame.
  for (LinkId l = 0; l < net.link_count(); ++l) {
    if (!r.ports[l].used) continue;
    EXPECT_LE(r.ports[l].queue_backlog, r.ports[l].backlog + 1e-9);
  }
}

TEST(Netcalc, UnusedPortsAreFlagged) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const Result r = analyze(cfg);
  // The reverse direction of the e1 cable carries no VL.
  const LinkId back =
      *net.link_between(*net.find_node("S1"), *net.find_node("e1"));
  EXPECT_FALSE(r.ports[back].used);
  EXPECT_DOUBLE_EQ(r.ports[back].delay, 0.0);
}

TEST(Netcalc, UtilizationReported) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const Result r = analyze(cfg);
  const LinkId s3_port =
      *net.link_between(*net.find_node("S3"), *net.find_node("e6"));
  EXPECT_NEAR(r.ports[s3_port].utilization, 0.04, 1e-12);
}

TEST(Netcalc, ArrivalCurveReflectsUpstreamDelays) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const LinkId e1_port =
      *net.link_between(*net.find_node("e1"), *net.find_node("S1"));
  const LinkId s1_port =
      *net.link_between(*net.find_node("S1"), *net.find_node("S3"));
  std::vector<std::map<std::uint8_t, Microseconds>> delays(net.link_count());
  delays[e1_port][0] = 40.0;
  const VlId v1 = *cfg.find_vl("v1");
  const auto curve = arrival_curve_at(cfg, v1, s1_port, delays);
  EXPECT_NEAR(curve.value(0.0), 4040.0, 1e-9);  // 4000 + rho * 40
  EXPECT_NEAR(curve.final_slope(), 1.0, 1e-12);
}

TEST(Netcalc, ArrivalCurveRejectsForeignPort) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  const LinkId e2_port =
      *net.link_between(*net.find_node("e2"), *net.find_node("S1"));
  std::vector<std::map<std::uint8_t, Microseconds>> delays(net.link_count());
  EXPECT_THROW(arrival_curve_at(cfg, *cfg.find_vl("v1"), e2_port, delays),
               Error);
}

TEST(Netcalc, UnstablePortThrows) {
  // 20 VLs of 1518 B every 2 ms from distinct end systems converge on one
  // port: 20 * 6.072 Mb/s > 100 Mb/s.
  Network net;
  const NodeId s1 = net.add_switch("S1");
  const NodeId sink = net.add_end_system("sink");
  net.connect(s1, sink);
  std::vector<VirtualLink> vls;
  for (int i = 0; i < 20; ++i) {
    const NodeId e = net.add_end_system("e" + std::to_string(i));
    net.connect(e, s1);
    vls.push_back({"v" + std::to_string(i), e, {sink},
                   microseconds_from_ms(2.0), 64, 1518});
  }
  const TrafficConfig cfg(std::move(net), std::move(vls));
  EXPECT_FALSE(cfg.stable());
  EXPECT_THROW(analyze(cfg), Error);
}

TEST(Netcalc, CyclicConfigurationConvergesByIteration) {
  // Three switches in a triangle; three flows chase each other around it so
  // the port-dependency graph is a directed cycle (explicit routes force the
  // two-hop way around).
  Network net;
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  const NodeId a = net.add_end_system("a");
  const NodeId b = net.add_end_system("b");
  const NodeId c = net.add_end_system("c");
  net.connect(s1, s2);
  net.connect(s2, s3);
  net.connect(s3, s1);
  net.connect(a, s1);
  net.connect(b, s2);
  net.connect(c, s3);

  auto link = [&](NodeId x, NodeId y) { return *net.link_between(x, y); };
  std::vector<VirtualLink> vls{
      {"f1", a, {c}, microseconds_from_ms(4.0), 64, 500},   // S1->S2->S3
      {"f2", b, {a}, microseconds_from_ms(4.0), 64, 500},   // S2->S3->S1
      {"f3", c, {b}, microseconds_from_ms(4.0), 64, 500}};  // S3->S1->S2
  std::vector<std::vector<std::vector<LinkId>>> routes{
      {{link(a, s1), link(s1, s2), link(s2, s3), link(s3, c)}},
      {{link(b, s2), link(s2, s3), link(s3, s1), link(s1, a)}},
      {{link(c, s3), link(s3, s1), link(s1, s2), link(s2, b)}}};
  const TrafficConfig cfg(std::move(net), std::move(vls), std::move(routes));

  const Result r = analyze(cfg);
  EXPECT_GT(r.iterations, 1);
  for (Microseconds bound : r.path_bounds) EXPECT_GT(bound, 0.0);
}

TEST(Netcalc, BoundForLooksUpPaths) {
  const TrafficConfig cfg = config::sample_config();
  const Result r = analyze(cfg);
  EXPECT_NEAR(r.bound_for(cfg, PathRef{*cfg.find_vl("v5"), 0}), 96.4, 1e-9);
  EXPECT_THROW(r.bound_for(cfg, PathRef{*cfg.find_vl("v5"), 3}), Error);
}

TEST(Netcalc, MulticastIllustrativeConfig) {
  const TrafficConfig cfg = config::illustrative_config();
  const Result r = analyze(cfg);
  ASSERT_EQ(r.path_bounds.size(), cfg.all_paths().size());
  for (Microseconds b : r.path_bounds) EXPECT_GT(b, 0.0);
  // Both branches of multicast v6 share the first hop, so their bounds
  // differ only by downstream ports.
  const VlId v6 = *cfg.find_vl("v6");
  const Microseconds b0 = r.bound_for(cfg, PathRef{v6, 0});
  const Microseconds b1 = r.bound_for(cfg, PathRef{v6, 1});
  EXPECT_GT(b0, 0.0);
  EXPECT_GT(b1, 0.0);
}

}  // namespace
}  // namespace afdx::netcalc

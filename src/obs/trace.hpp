// Scoped-span tracer with per-thread buffers and a Chrome-trace exporter.
//
// Design constraints (see ISSUE 4):
//  * near-zero cost when disabled: one relaxed atomic load per span, no
//    allocation, no clock read;
//  * thread-safe when enabled: each thread appends to its own buffer, so the
//    only cross-thread contention is buffer registration (once per thread)
//    and export (after the run);
//  * monotonic clocks only (steady_clock), timestamps in microseconds
//    relative to a process-wide epoch so traces from worker threads line up.
//
// Usage:
//   AFDX_TRACE_SPAN("netcalc.port", "netcalc");
//   ... scope body is timed ...
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer); the tracer stores the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace afdx::obs {

struct SpanRecord {
  const char* name = "";
  const char* category = "";
  double start_us = 0.0;   // relative to Tracer epoch (steady_clock)
  double duration_us = 0.0;
};

namespace detail {
// Global enable flag, kept out of the Tracer singleton so the disabled-path
// check is a single relaxed load with no function-local-static guard.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when span recording is on. Relaxed: spans racing an enable/disable
/// toggle may or may not be recorded, which is fine for a profiler.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

class Tracer {
 public:
  static Tracer& instance();

  void enable() noexcept;
  void disable() noexcept;

  /// Record one completed span on the calling thread's buffer.
  void record(const char* name, const char* category, double start_us,
              double duration_us);

  /// Monotonic "now" in microseconds since the tracer epoch.
  [[nodiscard]] double now_us() const noexcept;

  /// Total spans currently buffered across all threads.
  [[nodiscard]] std::size_t span_count() const;

  /// Spans dropped because a thread hit its buffer cap.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all buffered spans (buffers stay registered).
  void clear();

  /// Merge every thread's spans, ordered by start time.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Emit the Chrome trace-event format ("X" complete events) understood by
  /// chrome://tracing, Perfetto, and speedscope.
  void write_chrome_trace(std::ostream& out) const;

  /// Per-thread buffer cap; beyond it spans are counted as dropped. Bounds
  /// memory on pathological runs (e.g. a fuzz campaign traced end to end).
  static constexpr std::size_t kMaxSpansPerThread = 1u << 21;  // ~2M spans

 private:
  Tracer();

  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
  };

  ThreadBuffer& local_buffer();

  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
  std::uint64_t epoch_ns_ = 0;
};

/// RAII guard: measures the enclosing scope when tracing is enabled,
/// otherwise costs one relaxed atomic load.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category) noexcept
      : name_(name), category_(category), armed_(tracing_enabled()) {
    if (armed_) start_us_ = start_now();
  }
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static double start_now() noexcept;

  const char* name_;
  const char* category_;
  bool armed_;
  double start_us_ = 0.0;
};

}  // namespace afdx::obs

#define AFDX_TRACE_CONCAT_INNER(a, b) a##b
#define AFDX_TRACE_CONCAT(a, b) AFDX_TRACE_CONCAT_INNER(a, b)

/// Time the enclosing scope as a span named `name` in category `cat`.
/// Both must be string literals.
#define AFDX_TRACE_SPAN(name, cat) \
  ::afdx::obs::ScopedSpan AFDX_TRACE_CONCAT(afdx_trace_span_, __LINE__)(name, cat)

# Empty compiler generated dependencies file for afdx_redundancy.
# This may be replaced when dependencies are built.

// Extension bench (the paper's future-work direction, studied in the
// authors' companion papers): static-priority queueing. Splits the
// industrial-like traffic into two classes and compares the per-class WCNC
// bounds against the single-class FIFO baseline.
#include <numeric>

#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "EXT / static-priority queueing: per-class bounds vs FIFO\n\n";

  gen::IndustrialOptions fifo_opts;
  gen::IndustrialOptions spq_opts;
  spq_opts.priority_levels = 2;
  const TrafficConfig fifo = gen::industrial_config(fifo_opts);
  const TrafficConfig spq = gen::industrial_config(spq_opts);

  const auto fifo_bounds = netcalc::analyze(fifo).path_bounds;
  const auto spq_bounds = netcalc::analyze(spq).path_bounds;

  // Identical seeds give identical flows; only the priorities differ.
  struct ClassStats {
    double fifo_sum = 0.0, spq_sum = 0.0;
    std::size_t n = 0;
  };
  std::map<int, ClassStats> per_class;
  for (std::size_t i = 0; i < spq_bounds.size(); ++i) {
    ClassStats& s = per_class[spq.vl(spq.all_paths()[i].vl).priority];
    s.fifo_sum += fifo_bounds[i];
    s.spq_sum += spq_bounds[i];
    ++s.n;
  }

  report::Table t({"class", "paths", "mean FIFO bound (us)",
                   "mean SPQ bound (us)", "change"});
  for (const auto& [level, s] : per_class) {
    const double fifo_mean = s.fifo_sum / static_cast<double>(s.n);
    const double spq_mean = s.spq_sum / static_cast<double>(s.n);
    t.add_row({"P" + std::to_string(level), std::to_string(s.n),
               report::fmt(fifo_mean), report::fmt(spq_mean),
               report::fmt((spq_mean - fifo_mean) / fifo_mean * 100.0) + " %"});
  }
  t.print(out);
  out << "\nThe high class (small command/control frames) trades FIFO\n"
         "fairness for guaranteed low latency; the low class absorbs the\n"
         "difference. The trajectory approach stays FIFO-only, as in the\n"
         "literature.\n";
}

void BM_NetcalcSpq(benchmark::State& state) {
  gen::IndustrialOptions o;
  o.priority_levels = 2;
  const TrafficConfig cfg = gen::industrial_config(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netcalc::analyze(cfg));
  }
}
BENCHMARK(BM_NetcalcSpq)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

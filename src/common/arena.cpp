#include "common/arena.hpp"

#include <cassert>
#include <cstdlib>

namespace afdx::common {

namespace {
constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 22;  // 4 MiB cap

std::size_t align_up(std::size_t v, std::size_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

thread_local BumpArena* g_active_arena = nullptr;
}  // namespace

struct BumpArena::Block {
  Block* next = nullptr;
  std::size_t capacity = 0;
  std::size_t used = 0;
  // Payload follows the header; kept at max alignment so any requested
  // alignment <= alignof(std::max_align_t) starts from an aligned base.
  alignas(alignof(std::max_align_t)) unsigned char data[1];
};

BumpArena::BumpArena(std::size_t first_block_bytes)
    : next_block_bytes_(first_block_bytes < 256 ? 256 : first_block_bytes) {}

BumpArena::~BumpArena() {
  Block* b = first_;
  while (b != nullptr) {
    Block* next = b->next;
    std::free(b);
    b = next;
  }
}

BumpArena::Block* BumpArena::grow(std::size_t min_bytes) {
  // Reuse a pre-grown successor block first (after reset()/rewind() the
  // chain is retained but head_ points earlier in it).
  while (head_ != nullptr && head_->next != nullptr) {
    head_ = head_->next;
    head_->used = 0;
    if (head_->capacity >= min_bytes) return head_;
  }
  std::size_t bytes = next_block_bytes_;
  while (bytes < min_bytes) bytes *= 2;
  if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ = bytes * 2;
  auto* block = static_cast<Block*>(
      std::malloc(offsetof(Block, data) + bytes));
  if (block == nullptr) throw std::bad_alloc{};
  block->next = nullptr;
  block->capacity = bytes;
  block->used = 0;
  if (head_ != nullptr) head_->next = block;
  if (first_ == nullptr) first_ = block;
  head_ = block;
  ++blocks_;
  return block;
}

void* BumpArena::allocate(std::size_t bytes, std::size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  if (align > alignof(std::max_align_t)) align = alignof(std::max_align_t);
  if (bytes == 0) bytes = 1;
  Block* b = head_;
  if (b != nullptr) {
    const std::size_t at = align_up(b->used, align);
    if (at + bytes <= b->capacity) {
      b->used = at + bytes;
      const std::size_t in_use = bytes_in_use();
      if (in_use > high_water_) high_water_ = in_use;
      return b->data + at;
    }
  }
  b = grow(bytes + align);
  const std::size_t at = align_up(b->used, align);
  b->used = at + bytes;
  const std::size_t in_use = bytes_in_use();
  if (in_use > high_water_) high_water_ = in_use;
  return b->data + at;
}

void BumpArena::reset() noexcept {
  for (Block* b = first_; b != nullptr; b = b->next) b->used = 0;
  head_ = first_;
}

BumpArena::Mark BumpArena::mark() const noexcept {
  Mark m;
  std::size_t index = 0;
  for (Block* b = first_; b != nullptr; b = b->next, ++index) {
    if (b == head_) {
      m.block = index;
      m.offset = b->used;
      return m;
    }
  }
  return m;  // empty arena
}

void BumpArena::rewind(Mark m) noexcept {
  if (first_ == nullptr) return;
  Block* b = first_;
  for (std::size_t index = 0; index < m.block && b->next != nullptr; ++index) {
    b = b->next;
  }
  b->used = m.offset;
  head_ = b;
  for (Block* rest = b->next; rest != nullptr; rest = rest->next) {
    rest->used = 0;
  }
}

std::size_t BumpArena::bytes_in_use() const noexcept {
  std::size_t total = 0;
  for (Block* b = first_; b != nullptr; b = b->next) {
    total += b->used;
    if (b == head_) break;
  }
  return total;
}

BumpArena* active_arena() noexcept { return g_active_arena; }

ArenaScope::ArenaScope(BumpArena& arena) noexcept
    : arena_(&arena), previous_(g_active_arena), mark_(arena.mark()) {
  g_active_arena = arena_;
}

ArenaScope::~ArenaScope() {
  arena_->rewind(mark_);
  g_active_arena = previous_;
}

namespace detail {

namespace {
// Header preceding every tagged payload: the origin magic. 16 bytes keeps
// doubles (and anything up to max_align_t on x86-64) aligned after it.
struct alignas(16) Tag {
  std::uint64_t magic;
  std::uint64_t pad;
};
static_assert(sizeof(Tag) == 16);
}  // namespace

void* tagged_allocate(std::size_t bytes) {
  BumpArena* arena = g_active_arena;
  void* raw = nullptr;
  if (arena != nullptr) {
    raw = arena->allocate(sizeof(Tag) + bytes, alignof(Tag));
  } else {
    raw = std::malloc(sizeof(Tag) + bytes);
    if (raw == nullptr) throw std::bad_alloc{};
  }
  auto* tag = static_cast<Tag*>(raw);
  tag->magic = arena != nullptr ? kArenaMagic : kHeapMagic;
  tag->pad = 0;
  return tag + 1;
}

void tagged_deallocate(void* p) noexcept {
  if (p == nullptr) return;
  Tag* tag = static_cast<Tag*>(p) - 1;
  if (tag->magic == kHeapMagic) {
    std::free(tag);
    return;
  }
  // Arena-backed: freeing is a no-op (the owning scope rewinds in bulk).
  // A header showing neither magic means the allocation was rewound away
  // while still referenced -- a lifetime-rule violation.
  assert(tag->magic == kArenaMagic &&
         "ArenaAlloc: free of rewound arena memory (container escaped its "
         "ArenaScope)");
}

}  // namespace detail

}  // namespace afdx::common

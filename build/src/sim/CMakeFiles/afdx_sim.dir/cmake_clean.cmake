file(REMOVE_RECURSE
  "CMakeFiles/afdx_sim.dir/simulator.cpp.o"
  "CMakeFiles/afdx_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/afdx_sim.dir/worst_case_search.cpp.o"
  "CMakeFiles/afdx_sim.dir/worst_case_search.cpp.o.d"
  "libafdx_sim.a"
  "libafdx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_spq_classes.
# This may be replaced when dependencies are built.

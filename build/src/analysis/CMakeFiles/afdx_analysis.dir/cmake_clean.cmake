file(REMOVE_RECURSE
  "CMakeFiles/afdx_analysis.dir/comparison.cpp.o"
  "CMakeFiles/afdx_analysis.dir/comparison.cpp.o.d"
  "libafdx_analysis.a"
  "libafdx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

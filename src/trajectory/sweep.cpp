#include "trajectory/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace afdx::trajectory::sweep {

namespace {

/// Same formula as the analyzer's frame_count: frames of a sporadic flow
/// (period T, window widened by a) interfering with a packet generated at
/// t. Pure IEEE-754 operations, no contraction targets on this TU, so the
/// result is bitwise the value the pre-SIMD analyzer computed inline.
inline double frame_count(Microseconds t, Microseconds a,
                          Microseconds period) noexcept {
  const double window = t + a;
  if (window < -kEpsilon) return 0.0;
  return std::floor(window / period + 1e-9) + 1.0;
}

Kind initial_kind() noexcept {
  if (const char* env = std::getenv("AFDX_SWEEP"); env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Kind::kScalar;
    if (std::strcmp(env, "simd") == 0 && simd_available()) return Kind::kSimd;
  }
  return simd_available() ? Kind::kSimd : Kind::kScalar;
}

std::atomic<Kind>& active_slot() noexcept {
  static std::atomic<Kind> slot{initial_kind()};
  return slot;
}

}  // namespace

bool simd_available() noexcept {
#if defined(AFDX_SWEEP_AVX2)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

Kind active() noexcept { return active_slot().load(std::memory_order_relaxed); }

void set_active(Kind kind) noexcept {
  if (kind == Kind::kSimd && !simd_available()) kind = Kind::kScalar;
  active_slot().store(kind, std::memory_order_relaxed);
}

const char* name(Kind kind) noexcept {
  return kind == Kind::kSimd ? "simd" : "scalar";
}

namespace detail {

Microseconds run_scalar(const Columns& cols, const Microseconds* candidates,
                        std::size_t begin, std::size_t count,
                        Microseconds consts, Microseconds envelope,
                        Microseconds best, char* saturated) noexcept {
  for (std::size_t ci = begin; ci < count; ++ci) {
    const Microseconds t = candidates[ci];
    if (envelope - t <= best) break;
    Microseconds w = frame_count(t, cols.own_a, cols.own_period) * cols.own_c;
    for (std::size_t idx = 0; idx < cols.nodes; ++idx) {
      if (saturated[idx]) {
        w += cols.node_cap[idx];
        continue;
      }
      Microseconds node_sum = 0.0;
      for (std::size_t s = cols.node_begin[idx]; s < cols.node_begin[idx + 1];
           ++s) {
        node_sum += frame_count(t, cols.a[s], cols.period[s]) * cols.c[s];
      }
      if (node_sum >= cols.node_cap[idx]) {
        saturated[idx] = 1;
        w += cols.node_cap[idx];
      } else {
        w += node_sum;
      }
    }
    best = std::max(best, w + consts - t);
  }
  return best;
}

}  // namespace detail

Microseconds run(Kind kind, const Columns& cols, const Microseconds* candidates,
                 std::size_t count, Microseconds consts, Microseconds envelope,
                 Microseconds best, char* saturated) noexcept {
#if defined(AFDX_SWEEP_AVX2)
  if (kind == Kind::kSimd && simd_available()) {
    return detail::run_avx2(cols, candidates, count, consts, envelope, best,
                            saturated);
  }
#else
  (void)kind;
#endif
  return detail::run_scalar(cols, candidates, 0, count, consts, envelope, best,
                            saturated);
}

}  // namespace afdx::trajectory::sweep

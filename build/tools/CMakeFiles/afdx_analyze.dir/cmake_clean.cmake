file(REMOVE_RECURSE
  "CMakeFiles/afdx_analyze.dir/afdx_analyze.cpp.o"
  "CMakeFiles/afdx_analyze.dir/afdx_analyze.cpp.o.d"
  "afdx_analyze"
  "afdx_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "netcalc/netcalc_analyzer.hpp"

#include <algorithm>
#include <map>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "minplus/operations.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace afdx::netcalc {

namespace {

using minplus::Curve;

/// Per-port, per-priority-class delay bounds (the propagation state).
using LevelDelays = std::map<std::uint8_t, Microseconds>;

/// Sum of upstream port delays of `vl` before it reaches `port` (the delay
/// already accumulated when its frames arrive there), using the VL's own
/// priority class at every crossed port.
Microseconds accumulated_delay(const TrafficConfig& config, VlId vl,
                               LinkId port,
                               const std::vector<LevelDelays>& port_delays) {
  const VlRoute& route = config.route(vl);
  const std::uint8_t level = config.vl(vl).priority;
  Microseconds acc = 0.0;
  for (LinkId l = route.predecessor(port); l != kInvalidLink;
       l = route.predecessor(l)) {
    auto it = port_delays[l].find(level);
    if (it != port_delays[l].end()) acc += it->second;
  }
  return acc;
}

/// Grouped arrival aggregates of the VLs crossing `port`, one curve per
/// priority class (optionally excluding one VL).
std::map<std::uint8_t, Curve> level_aggregates_at(
    const TrafficConfig& config, LinkId port, const Options& options,
    const std::vector<LevelDelays>& port_delays, VlId exclude) {
  const Network& net = config.network();

  // Partition the crossing VLs by priority class, then by the link their
  // frames arrive on. VLs born at this port (source ES output) have no
  // predecessor link and are not serialized with anything: each is its own
  // group.
  std::map<std::uint8_t, std::map<std::pair<bool, LinkId>, std::vector<VlId>>>
      levels;
  LinkId fresh_key = 0;
  for (VlId v : config.vls_on_link(port)) {
    if (v == exclude) continue;
    auto& groups = levels[config.vl(v).priority];
    const LinkId pred = config.route(v).predecessor(port);
    if (pred == kInvalidLink) {
      groups[{false, fresh_key++}].push_back(v);
    } else {
      groups[{true, pred}].push_back(v);
    }
  }

  std::map<std::uint8_t, Curve> out;
  for (const auto& [level, groups] : levels) {
    Curve aggregate;  // zero curve
    for (const auto& [key, members] : groups) {
      Curve group_curve;
      Bits largest_frame = 0.0;
      for (VlId v : members) {
        group_curve = minplus::sum(
            group_curve, arrival_curve_at(config, v, port, port_delays));
        largest_frame = std::max(largest_frame, config.vl(v).burst_bits());
      }
      if (options.grouping && key.first && members.size() >= 2) {
        // Frames of the group are serialized by the shared input link: over
        // any window of length t at most (rate * t + largest frame) bits
        // can arrive. A lone flow on a link is not grouped with anything
        // (the published grouping technique exploits serialization between
        // flows).
        const BitsPerMicrosecond upstream_rate = net.link(key.second).rate;
        group_curve = minplus::minimum(
            group_curve, Curve::affine(largest_frame, upstream_rate));
      }
      aggregate = minplus::sum(aggregate, group_curve);
    }
    out.emplace(level, std::move(aggregate));
  }
  return out;
}

}  // namespace

// The per-port computation: aggregate the crossing VLs per priority class
// (with grouping when enabled), derive each class's residual service, and
// return the class delay bounds plus the port backlog bounds.
PortBounds compute_port_bounds(const TrafficConfig& config, LinkId port,
                               const Options& options,
                               const std::vector<LevelDelays>& port_delays) {
  AFDX_TRACE_SPAN("netcalc.port", "netcalc");
  // Every intermediate curve of this port's computation (aggregates,
  // convolutions, residual services) bump-allocates its breakpoints here
  // and is reclaimed by one rewind on return; the produced PortBounds
  // carries only scalars, so nothing arena-backed escapes the scope.
  static thread_local common::BumpArena curve_arena;
  const common::ArenaScope curve_scope(curve_arena);
  static obs::Counter& ports_computed =
      obs::registry().counter("netcalc.ports_computed");
  ports_computed.add();
  const Network& net = config.network();
  const Link& link = net.link(port);

  Bits port_max_frame = 0.0;
  for (VlId v : config.vls_on_link(port)) {
    port_max_frame = std::max(port_max_frame, config.vl(v).burst_bits());
  }

  const std::map<std::uint8_t, Curve> level_aggregates =
      level_aggregates_at(config, port, options, port_delays, kInvalidVl);
  Curve total_aggregate;
  for (const auto& [level, aggregate] : level_aggregates) {
    total_aggregate = minplus::sum(total_aggregate, aggregate);
  }

  const Curve beta = Curve::rate_latency(link.rate, link.latency);
  const Curve pure_rate = Curve::rate_latency(link.rate, 0.0);
  try {
    PortBounds bounds;
    // Buffer sizing (the memory is shared by all classes of the port) with
    // store-and-forward release: a frame occupies the FIFO until fully
    // transmitted, so the fluid backlog is raised by one maximum frame.
    bounds.backlog =
        minplus::vertical_deviation(total_aggregate, beta) + port_max_frame;
    bounds.queue_backlog =
        minplus::vertical_deviation(total_aggregate, pure_rate);

    // Per-class delays: class k is served after all higher classes and can
    // be blocked by one lower-class frame already in transmission.
    Curve higher;  // zero curve
    for (auto it = level_aggregates.begin(); it != level_aggregates.end();
         ++it) {
      Bits blocking = 0.0;
      for (auto low = std::next(it); low != level_aggregates.end(); ++low) {
        for (VlId v : config.vls_on_link(port)) {
          if (config.vl(v).priority == low->first) {
            blocking = std::max(blocking, config.vl(v).burst_bits());
          }
        }
      }
      const bool only_class = level_aggregates.size() == 1;
      const Curve service =
          only_class ? beta : minplus::residual_service(beta, higher, blocking);
      bounds.level_delays[it->first] =
          minplus::horizontal_deviation(it->second, service);
      higher = minplus::sum(higher, it->second);
    }
    return bounds;
  } catch (const Error&) {
    throw Error("WCNC: unstable output port " +
                net.node(link.source).name + " -> " +
                net.node(link.dest).name + " (utilization " +
                std::to_string(config.utilization(port)) + ")");
  }
}

PortBounds compute_port_bounds(const TrafficConfig& config, LinkId port,
                               const Options& options,
                               const DelayTable& delays,
                               const PortFlowIndex& index) {
  AFDX_TRACE_SPAN("netcalc.port", "netcalc");
  // Every intermediate curve of this port's computation (aggregates,
  // convolutions, residual services) bump-allocates its breakpoints here
  // and is reclaimed by one rewind on return; the produced PortBounds
  // carries only scalars, so nothing arena-backed escapes the scope.
  static thread_local common::BumpArena curve_arena;
  const common::ArenaScope curve_scope(curve_arena);
  static obs::Counter& ports_computed =
      obs::registry().counter("netcalc.ports_computed");
  ports_computed.add();
  const Network& net = config.network();
  const Link& link = net.link(port);
  const PortFlowIndex::Port& p = index.ports[port];

  // Per-class grouped aggregates, ascending class order -- the flat mirror
  // of level_aggregates_at() with the arrival curves inlined (the index
  // stores each member's leaky-bucket parameters and upstream chain).
  std::vector<std::pair<std::uint8_t, Curve>> level_aggregates;
  level_aggregates.reserve(p.class_end - p.class_begin);
  for (std::uint32_t ci = p.class_begin; ci != p.class_end; ++ci) {
    const PortFlowIndex::ClassEntry& ce = index.classes[ci];
    Curve aggregate;  // zero curve
    for (std::uint32_t gi = ce.group_begin; gi != ce.group_end; ++gi) {
      const PortFlowIndex::Group& g = index.groups[gi];
      Curve group_curve;
      for (std::uint32_t mi = g.member_begin; mi != g.member_end; ++mi) {
        const PortFlowIndex::Member& mb = index.members[mi];
        Microseconds acc = 0.0;
        for (std::uint32_t k = mb.chain_begin; k != mb.chain_end; ++k) {
          const LinkId up = index.chains[k];
          if (delays.has(up, ce.cls)) acc += delays.get(up, ce.cls);
        }
        const Microseconds total_jitter = mb.release_jitter + acc;
        group_curve = minplus::sum(
            group_curve,
            Curve::affine(mb.burst + mb.rate * total_jitter, mb.rate));
      }
      if (options.grouping && g.pred != kInvalidLink &&
          g.member_end - g.member_begin >= 2) {
        group_curve = minplus::minimum(
            group_curve,
            Curve::affine(g.largest_frame, net.link(g.pred).rate));
      }
      aggregate = minplus::sum(aggregate, group_curve);
    }
    level_aggregates.emplace_back(ce.cls, std::move(aggregate));
  }

  Curve total_aggregate;
  for (const auto& [level, aggregate] : level_aggregates) {
    total_aggregate = minplus::sum(total_aggregate, aggregate);
  }

  const Curve beta = Curve::rate_latency(link.rate, link.latency);
  const Curve pure_rate = Curve::rate_latency(link.rate, 0.0);
  try {
    PortBounds bounds;
    bounds.backlog =
        minplus::vertical_deviation(total_aggregate, beta) + p.max_frame;
    bounds.queue_backlog =
        minplus::vertical_deviation(total_aggregate, pure_rate);

    Curve higher;  // zero curve
    const bool only_class = level_aggregates.size() == 1;
    for (std::size_t idx = 0; idx < level_aggregates.size(); ++idx) {
      const PortFlowIndex::ClassEntry& ce =
          index.classes[p.class_begin + idx];
      const Curve service =
          only_class
              ? beta
              : minplus::residual_service(beta, higher, ce.lower_blocking);
      bounds.level_delays[level_aggregates[idx].first] =
          minplus::horizontal_deviation(level_aggregates[idx].second, service);
      higher = minplus::sum(higher, level_aggregates[idx].second);
    }
    return bounds;
  } catch (const Error&) {
    throw Error("WCNC: unstable output port " +
                net.node(link.source).name + " -> " +
                net.node(link.dest).name + " (utilization " +
                std::to_string(config.utilization(port)) + ")");
  }
}

std::optional<std::vector<std::vector<LinkId>>> propagation_levels(
    const TrafficConfig& config) {
  const std::size_t n = config.network().link_count();
  std::vector<LinkId> used_ports;
  for (LinkId l = 0; l < n; ++l) {
    if (!config.vls_on_link(l).empty()) used_ports.push_back(l);
  }

  std::vector<std::vector<LinkId>> successors(n);
  std::vector<int> in_degree(n, 0);
  for (LinkId port : used_ports) {
    for (VlId v : config.vls_on_link(port)) {
      const LinkId pred = config.route(v).predecessor(port);
      if (pred != kInvalidLink) {
        successors[pred].push_back(port);
        ++in_degree[port];
      }
    }
  }
  std::vector<LinkId> level;
  for (LinkId port : used_ports) {
    if (in_degree[port] == 0) level.push_back(port);
  }
  std::vector<std::vector<LinkId>> levels;
  std::size_t placed = 0;
  while (!level.empty()) {
    placed += level.size();
    std::vector<LinkId> next;
    for (LinkId p : level) {
      for (LinkId s : successors[p]) {
        if (--in_degree[s] == 0) next.push_back(s);
      }
    }
    // A VL can cross several predecessors of the same port, so `next`
    // accumulates in route-discovery order; keep levels stable.
    std::sort(next.begin(), next.end());
    levels.push_back(std::move(level));
    level = std::move(next);
  }
  if (placed != used_ports.size()) return std::nullopt;
  return levels;
}

PortReport make_report(const PortBounds& bounds, double utilization) {
  PortReport report;
  report.used = true;
  report.level_delays = bounds.level_delays;
  report.delay = 0.0;
  for (const auto& [level, d] : bounds.level_delays) {
    report.delay = std::max(report.delay, d);
  }
  report.backlog = bounds.backlog;
  report.queue_backlog = bounds.queue_backlog;
  report.utilization = utilization;
  return report;
}

std::vector<Microseconds> path_bounds_from(
    const TrafficConfig& config, const std::vector<LevelDelays>& port_delays) {
  std::vector<Microseconds> out;
  out.reserve(config.all_paths().size());
  for (const VlPath& p : config.all_paths()) {
    const std::uint8_t level = config.vl(p.vl).priority;
    Microseconds total = 0.0;
    for (LinkId l : p.links) {
      auto it = port_delays[l].find(level);
      AFDX_ASSERT(it != port_delays[l].end(), "missing level delay");
      total += it->second;
    }
    out.push_back(total);
  }
  return out;
}

std::vector<Microseconds> path_bounds_from(const TrafficConfig& config,
                                           const DelayTable& delays) {
  std::vector<Microseconds> out;
  out.reserve(config.all_paths().size());
  for (const VlPath& p : config.all_paths()) {
    const std::uint8_t level = config.vl(p.vl).priority;
    Microseconds total = 0.0;
    for (LinkId l : p.links) {
      AFDX_ASSERT(delays.has(l, level), "missing level delay");
      total += delays.get(l, level);
    }
    out.push_back(total);
  }
  return out;
}

minplus::Curve arrival_curve_at(
    const TrafficConfig& config, VlId vl, LinkId port,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays) {
  const VirtualLink& v = config.vl(vl);
  AFDX_REQUIRE(config.route(vl).crosses(port),
               "arrival_curve_at: VL does not cross the port");
  const Microseconds acc = accumulated_delay(config, vl, port, port_delays);
  // The source envelope delayed by up to (release jitter + upstream port
  // delays): the burst grows by rho times the accumulated worst-case delay.
  const Microseconds total_jitter = v.max_release_jitter + acc;
  return minplus::Curve::affine(
      v.burst_bits() + v.rate_bits_per_us() * total_jitter,
      v.rate_bits_per_us());
}

minplus::Curve port_aggregate(
    const TrafficConfig& config, LinkId port, const Options& options,
    const std::vector<std::map<std::uint8_t, Microseconds>>& port_delays,
    VlId exclude) {
  Curve total;
  for (const auto& [level, aggregate] :
       level_aggregates_at(config, port, options, port_delays, exclude)) {
    total = minplus::sum(total, aggregate);
  }
  return total;
}

std::vector<std::map<std::uint8_t, Microseconds>> delay_table(
    const Result& result) {
  std::vector<std::map<std::uint8_t, Microseconds>> out(result.ports.size());
  for (std::size_t l = 0; l < result.ports.size(); ++l) {
    if (result.ports[l].used) out[l] = result.ports[l].level_delays;
  }
  return out;
}

Microseconds Result::bound_for(const TrafficConfig& config, PathRef ref) const {
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].vl == ref.vl && paths[i].dest_index == ref.dest_index) {
      return path_bounds[i];
    }
  }
  throw Error("WCNC Result::bound_for: unknown path");
}

Result analyze(const TrafficConfig& config, const Options& options) {
  AFDX_TRACE_SPAN("netcalc.analyze", "netcalc");
  const std::size_t n_links = config.network().link_count();

  Result result;
  result.ports.assign(n_links, PortReport{});

  const auto levels = propagation_levels(config);
  if (levels.has_value()) {
    // Feed-forward: one pass in dependency order is exact. The flat delay
    // table and the once-built flow index carry the hot per-port loop.
    DelayTable flat(config);
    const PortFlowIndex index = build_port_flow_index(config);
    for (const std::vector<LinkId>& level : *levels) {
      for (LinkId port : level) {
        const PortBounds b =
            compute_port_bounds(config, port, options, flat, index);
        flat.assign(port, b.level_delays);
        result.ports[port] = make_report(b, config.utilization(port));
      }
    }
    result.iterations = 1;
    result.path_bounds = path_bounds_from(config, flat);
  } else {
    std::vector<LevelDelays> delays(n_links);
    // Cyclic dependencies: monotone fixed point from below. Delays only
    // grow between rounds; stop when stationary.
    std::vector<LinkId> used_ports;
    for (LinkId l = 0; l < n_links; ++l) {
      if (!config.vls_on_link(l).empty()) used_ports.push_back(l);
    }
    int round = 0;
    for (; round < options.max_iterations; ++round) {
      AFDX_TRACE_SPAN("netcalc.fixed_point_round", "netcalc");
      obs::registry().counter("netcalc.fixed_point_rounds").add();
      double max_change = 0.0;
      for (LinkId port : used_ports) {
        PortBounds b = compute_port_bounds(config, port, options, delays);
        for (auto& [level, d] : b.level_delays) {
          const Microseconds prev = delays[port].count(level)
                                        ? delays[port][level]
                                        : 0.0;
          max_change = std::max(max_change, d - prev);
          d = std::max(d, prev);
          delays[port][level] = d;
        }
        result.ports[port] = make_report(b, config.utilization(port));
      }
      if (max_change <= kEpsilon) break;
    }
    AFDX_REQUIRE(round < options.max_iterations,
                 "WCNC: fixed point did not converge (cyclic configuration "
                 "too heavily loaded)");
    result.iterations = round + 1;
    result.path_bounds = path_bounds_from(config, delays);
  }

  return result;
}

}  // namespace afdx::netcalc

// Serving-mode throughput: the cost of a warm what-if against a pinned
// baseline versus re-analyzing the mutated configuration from scratch.
//
// The experiment loads a paper-scale industrial configuration (seed 7,
// 500 VLs over a 16-switch backbone), builds the warm baseline once (the
// price afdx_serve pays at startup), then plays single-VL what-if requests
// through serve::Service::handle_line -- the daemon's full path: JSON
// parse, overlay session, dirty-cone re-analysis, JSON response. The
// reference is the cold path a CLI round trip pays per question: a fresh
// full engine run of the same mutated configuration.
//
// The speedup depends on the edited VL's dirty cone, so the workload is
// split by computed cone size: "local" edits (cone within 15% of the
// network's paths -- a VL confined to one switch neighbourhood, the
// common interactive tweak) against "backbone" edits (the widest-cone
// VLs, which legitimately dirty much of the network). Reported per
// workload: warm p50/p99/mean latency, the warm-vs-cold speedup
// (expected >= 4x for local edits) and the warm requests/second a single
// worker sustains.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/session.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "serve/service.hpp"

namespace {

using namespace afdx;
using Clock = std::chrono::steady_clock;

std::shared_ptr<const TrafficConfig> industrial_ptr() {
  // Paper-scale traffic (the reference industrial configuration carries
  // ~1000 VLs) over a whole-aircraft backbone. Mostly-unicast traffic
  // keeps routes local, so what-if cone sizes spread from switch-local to
  // trunk-wide -- the regime a serving daemon actually sees.
  gen::IndustrialOptions o;
  o.seed = 7;
  o.switch_count = 24;
  o.end_system_count = 180;
  o.vl_count = 1000;
  o.multicast_fraction = 0.1;
  o.max_multicast_fanout = 2;
  return std::make_shared<const TrafficConfig>(gen::industrial_config(o));
}

std::string whatif_line(std::size_t request, const std::string& vl) {
  // Alternate the mutation so consecutive requests exercise both fields:
  // halve the BAG or grow the frames to the Ethernet maximum.
  const bool bag = request % 2 == 0;
  return "{\"id\":" + std::to_string(request + 1) +
         ",\"op\":\"whatif\",\"set\":[{\"vl\":\"" + vl +
         (bag ? "\",\"bag_us\":1000}]}" : "\",\"s_max_bytes\":1518}]}");
}

/// VL names sorted by what-if cone size: the number of paths a parameter
/// edit of the VL actually dirties. An edit seeds every port the VL
/// crosses; the dirt then closes downstream along the propagation edges
/// (any VL crossing a dirty port carries it to its next hop, because its
/// arrival there shifts) -- the same closure engine::plan_incremental
/// computes. The path count of that closure, not the VL's route length,
/// is what a warm what-if pays.
struct VlCone {
  std::string name;
  std::size_t cone_paths = 0;
};

std::vector<VlCone> vls_by_cone_size(const TrafficConfig& cfg) {
  const std::size_t n_links = cfg.network().link_count();
  const std::vector<VlPath>& paths = cfg.all_paths();

  std::vector<std::vector<LinkId>> successors(n_links);
  for (LinkId port = 0; port < n_links; ++port) {
    for (VlId v : cfg.vls_on_link(port)) {
      const LinkId pred = cfg.route(v).predecessor(port);
      if (pred != kInvalidLink) successors[pred].push_back(port);
    }
  }

  std::vector<std::size_t> cone_paths(cfg.vl_count(), 0);
  std::vector<char> dirty(n_links, 0);
  std::vector<LinkId> stack;
  for (VlId v = 0; v < cfg.vl_count(); ++v) {
    std::fill(dirty.begin(), dirty.end(), 0);
    stack.assign(cfg.route(v).crossed_links().begin(),
                 cfg.route(v).crossed_links().end());
    for (LinkId l : stack) dirty[l] = 1;
    while (!stack.empty()) {
      const LinkId p = stack.back();
      stack.pop_back();
      for (LinkId s : successors[p]) {
        if (!dirty[s]) {
          dirty[s] = 1;
          stack.push_back(s);
        }
      }
    }
    for (const VlPath& p : paths) {
      for (LinkId l : p.links) {
        if (dirty[l]) {
          ++cone_paths[v];
          break;
        }
      }
    }
  }

  std::vector<VlId> ids(cfg.vl_count());
  for (VlId v = 0; v < cfg.vl_count(); ++v) ids[v] = v;
  std::stable_sort(ids.begin(), ids.end(), [&cone_paths](VlId a, VlId b) {
    return cone_paths[a] < cone_paths[b];
  });
  std::vector<VlCone> out;
  out.reserve(ids.size());
  for (const VlId v : ids) out.push_back(VlCone{cfg.vl(v).name, cone_paths[v]});
  return out;
}

/// Names of the VLs whose cone stays within `max_fraction` of all paths
/// (at least the `min_count` smallest, so a config without truly local
/// traffic still yields a workload).
std::vector<std::string> cone_slice(const std::vector<VlCone>& by_cone,
                                    std::size_t total_paths,
                                    double max_fraction,
                                    std::size_t min_count) {
  std::vector<std::string> names;
  const auto limit =
      static_cast<std::size_t>(max_fraction * static_cast<double>(total_paths));
  for (const VlCone& c : by_cone) {
    if (c.cone_paths > limit && names.size() >= min_count) break;
    names.push_back(c.name);
  }
  return names;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct Latencies {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Latencies summarize(std::vector<double> samples_us) {
  Latencies l;
  if (samples_us.empty()) return l;
  double sum = 0.0;
  for (const double s : samples_us) sum += s;
  l.mean_us = sum / static_cast<double>(samples_us.size());
  std::sort(samples_us.begin(), samples_us.end());
  l.p50_us = percentile(samples_us, 0.50);
  l.p99_us = percentile(samples_us, 0.99);
  return l;
}

struct WorkloadResult {
  Latencies warm;
  Latencies cold;
  double requests_per_second = 0.0;
  [[nodiscard]] double speedup() const {
    return warm.mean_us > 0.0 ? cold.mean_us / warm.mean_us : 0.0;
  }
};

/// Plays `warm_iters` requests over `vls` through the service, then pays
/// `cold_iters` of the same overlays as fresh full engine runs.
WorkloadResult run_workload(serve::Service& service,
                            const std::shared_ptr<const engine::BaselineState>& base,
                            const std::vector<std::string>& vls,
                            std::size_t warm_iters, std::size_t cold_iters,
                            std::ostream& out) {
  WorkloadResult result;

  std::vector<double> warm_us;
  warm_us.reserve(warm_iters);
  const auto warm_t0 = Clock::now();
  for (std::size_t i = 0; i < warm_iters; ++i) {
    const std::string line = whatif_line(i, vls[i % vls.size()]);
    const auto t0 = Clock::now();
    const std::string response = service.handle_line(line);
    warm_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
    if (response.find("\"ok\":true") == std::string::npos) {
      out << "unexpected response: " << response << "\n";
      return result;
    }
  }
  const double warm_total_s =
      std::chrono::duration<double>(Clock::now() - warm_t0).count();
  result.warm = summarize(std::move(warm_us));
  result.requests_per_second =
      warm_total_s > 0.0 ? static_cast<double>(warm_iters) / warm_total_s
                         : 0.0;

  std::vector<double> cold_us;
  cold_us.reserve(cold_iters);
  for (std::size_t i = 0; i < cold_iters; ++i) {
    engine::OverlaySession session(base);
    if (i % 2 == 0) {
      session.override_bag(vls[i % vls.size()], 1000.0);
    } else {
      session.override_s_max(vls[i % vls.size()], 1518);
    }
    const TrafficConfig mutated = session.materialize();
    const auto t0 = Clock::now();
    engine::AnalysisEngine eng(mutated, engine::Options{1});
    (void)eng.run_resilient();
    cold_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  }
  result.cold = summarize(std::move(cold_us));
  return result;
}

void write_workload_json(obs::JsonWriter& w, const char* name,
                         const WorkloadResult& r) {
  w.key(name).begin_object();
  w.field("warm_p50_us", r.warm.p50_us)
      .field("warm_p99_us", r.warm.p99_us)
      .field("warm_mean_us", r.warm.mean_us)
      .field("cold_mean_us", r.cold.mean_us)
      .field("speedup", r.speedup())
      .field("requests_per_second", r.requests_per_second);
  w.end_object();
}

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "== Serving-mode throughput: warm what-if vs cold full run ==\n\n";

  auto cfg = industrial_ptr();
  auto base = engine::BaselineState::build(cfg);
  serve::Service service;
  service.add_baseline("gen7", base);

  const std::vector<VlCone> by_cone = vls_by_cone_size(base->config());
  const std::size_t total_paths = base->config().all_paths().size();
  // "Local" edits: cone within 15% of the network's paths (the
  // switch-local tweaks a serving daemon mostly answers). "Backbone"
  // edits: the widest-cone VLs, same workload size for a fair table.
  const std::vector<std::string> local =
      cone_slice(by_cone, total_paths, 0.15, 8);
  std::vector<std::string> backbone;
  for (std::size_t i = by_cone.size() - local.size(); i < by_cone.size(); ++i) {
    backbone.push_back(by_cone[i].name);
  }
  out << "workloads: " << local.size() << " local VLs (cone <= 15% of "
      << total_paths << " paths), " << backbone.size()
      << " backbone VLs (widest cones)\n\n";

  const std::size_t warm_iters = cli.quick ? 16 : 64;
  const std::size_t cold_iters = cli.quick ? 4 : 8;
  WorkloadResult local_r;
  WorkloadResult backbone_r;
  const benchutil::OverheadReport overhead = benchutil::measure_run_overhead(
      [&] {
        local_r = run_workload(service, base, local, warm_iters, cold_iters, out);
        backbone_r =
            run_workload(service, base, backbone, warm_iters, cold_iters, out);
      });

  const auto ms = [](double us) { return report::fmt(us / 1000.0, 2) + " ms"; };
  report::Table t({"workload", "warm p50", "warm p99", "warm mean",
                   "cold mean", "speedup", "req/s"});
  t.add_row({"local edits", ms(local_r.warm.p50_us), ms(local_r.warm.p99_us),
             ms(local_r.warm.mean_us), ms(local_r.cold.mean_us),
             report::fmt(local_r.speedup(), 1) + "x",
             report::fmt(local_r.requests_per_second, 1)});
  t.add_row({"backbone edits", ms(backbone_r.warm.p50_us),
             ms(backbone_r.warm.p99_us), ms(backbone_r.warm.mean_us),
             ms(backbone_r.cold.mean_us),
             report::fmt(backbone_r.speedup(), 1) + "x",
             report::fmt(backbone_r.requests_per_second, 1)});
  t.print(out);
  out << "\nconfig: " << base->config().vl_count() << " VLs / "
      << base->config().all_paths().size() << " paths; baseline built once in "
      << report::fmt(base->build_wall_us() / 1000.0, 1) << " ms\n"
      << "\na warm request re-analyzes only the dirty cone of its overlay (and\n"
         "transplants every clean path's bound verbatim), so the speedup\n"
         "tracks the edited VL's cone: local edits (the common interactive\n"
         "tweak) are expected >= 4x over a cold full run; backbone edits\n"
         "legitimately dirty much of the network and converge toward 1x.\n\n";
  benchutil::print_overhead(out, overhead);

  const auto json_path = cli.resolve_json_path("serve_throughput");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc =
        benchutil::begin_bench_json(*json_path, "serve_throughput", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("vls", base->config().vl_count())
          .field("paths", base->config().all_paths().size())
          .field("warm_requests_per_workload", warm_iters)
          .field("cold_runs_per_workload", cold_iters)
          .field("baseline_wall_ms", base->build_wall_us() / 1000.0);
      w.end_object();
      w.key("results").begin_object();
      // Headline figures: the local-edit workload the daemon is built for.
      w.field("warm_p50_us", local_r.warm.p50_us)
          .field("warm_p99_us", local_r.warm.p99_us)
          .field("warm_mean_us", local_r.warm.mean_us)
          .field("cold_mean_us", local_r.cold.mean_us)
          .field("speedup", local_r.speedup())
          .field("requests_per_second", local_r.requests_per_second);
      write_workload_json(w, "local_edits", local_r);
      write_workload_json(w, "backbone_edits", backbone_r);
      w.end_object();
      benchutil::write_overhead_json(w, overhead);
      obs::write_registry_json(w);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_WarmWhatifLocal(benchmark::State& state) {
  static auto base = engine::BaselineState::build(industrial_ptr());
  static serve::Service* service = [] {
    auto* s = new serve::Service();
    s->add_baseline("gen7", base);
    return s;
  }();
  static const std::vector<std::string> vls =
      cone_slice(vls_by_cone_size(base->config()),
                 base->config().all_paths().size(), 0.15, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service->handle_line(whatif_line(i, vls[i % vls.size()])));
    ++i;
  }
}
BENCHMARK(BM_WarmWhatifLocal)->Unit(benchmark::kMillisecond);

void BM_ColdFullRun(benchmark::State& state) {
  static auto base = engine::BaselineState::build(industrial_ptr());
  static const std::vector<std::string> vls =
      cone_slice(vls_by_cone_size(base->config()),
                 base->config().all_paths().size(), 0.15, 8);
  std::size_t i = 0;
  for (auto _ : state) {
    engine::OverlaySession session(base);
    session.override_bag(vls[i++ % vls.size()], 1000.0);
    const TrafficConfig mutated = session.materialize();
    engine::AnalysisEngine eng(mutated, engine::Options{1});
    benchmark::DoNotOptimize(eng.run_resilient());
  }
}
BENCHMARK(BM_ColdFullRun)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

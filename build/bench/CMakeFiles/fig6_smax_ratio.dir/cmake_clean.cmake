file(REMOVE_RECURSE
  "CMakeFiles/fig6_smax_ratio.dir/fig6_smax_ratio.cpp.o"
  "CMakeFiles/fig6_smax_ratio.dir/fig6_smax_ratio.cpp.o.d"
  "fig6_smax_ratio"
  "fig6_smax_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_smax_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

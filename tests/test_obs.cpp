// Tests for the observability layer: scoped-span tracer (enable/disable
// semantics, multi-thread recording without loss, Chrome-trace export),
// counter/histogram registry, the streaming JSON writer behind BENCH_*.json,
// and the tracer overhead self-check.
//
// The tracer and registry are process-wide singletons shared by every test
// in this binary: each test disables/clears the tracer on entry and uses
// test-unique metric names.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_json.hpp"
#include "obs/counters.hpp"

namespace afdx::obs {
namespace {

/// Resets the tracer to a known state (disabled, empty buffers).
void reset_tracer() {
  Tracer::instance().disable();
  Tracer::instance().clear();
}

TEST(Tracer, DisabledRecordsNothing) {
  reset_tracer();
  ASSERT_FALSE(tracing_enabled());
  {
    AFDX_TRACE_SPAN("test.disabled", "test");
  }
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
}

TEST(Tracer, EnabledRecordsCompletedSpans) {
  reset_tracer();
  Tracer::instance().enable();
  {
    AFDX_TRACE_SPAN("test.outer", "test");
    AFDX_TRACE_SPAN("test.inner", "test");
  }
  Tracer::instance().disable();

  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.start_us, 0.0);
    EXPECT_GE(s.duration_us, 0.0);
    EXPECT_STREQ(s.category, "test");
  }
  // snapshot() orders by start time: outer opened before inner.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_STREQ(spans[1].name, "test.inner");
  reset_tracer();
}

TEST(Tracer, SpanArmedAtConstructionSurvivesMidScopeDisable) {
  // A span that starts while tracing is on must complete (armed_ is
  // latched), even if tracing is switched off before the scope closes.
  reset_tracer();
  Tracer::instance().enable();
  {
    AFDX_TRACE_SPAN("test.latched", "test");
    Tracer::instance().disable();
  }
  EXPECT_EQ(Tracer::instance().span_count(), 1u);
  reset_tracer();
}

TEST(Tracer, ManyThreadsLoseNoSpans) {
  reset_tracer();
  Tracer::instance().enable();

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        AFDX_TRACE_SPAN("test.worker", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::instance().disable();

  // Worker buffers must survive thread exit; every span is present.
  EXPECT_EQ(Tracer::instance().span_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::instance().dropped(), 0u);

  const std::vector<SpanRecord> spans = Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us) << "not sorted at " << i;
  }
  reset_tracer();
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  reset_tracer();
  Tracer::instance().enable();
  {
    AFDX_TRACE_SPAN("test.export", "test");
  }
  Tracer::instance().disable();

  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Balanced braces/brackets is a cheap proxy for well-formedness.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  reset_tracer();
}

TEST(Tracer, ClearDropsSpansButKeepsRecording) {
  reset_tracer();
  Tracer::instance().enable();
  {
    AFDX_TRACE_SPAN("test.before", "test");
  }
  EXPECT_EQ(Tracer::instance().span_count(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().span_count(), 0u);
  {
    AFDX_TRACE_SPAN("test.after", "test");
  }
  EXPECT_EQ(Tracer::instance().span_count(), 1u);
  reset_tracer();
}

TEST(Counters, AddRecordMaxAndReset) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.record_max(7);  // below current value: no change
  EXPECT_EQ(c.value(), 42u);
  c.record_max(100);
  EXPECT_EQ(c.value(), 100u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counters, HistogramTracksExactStatsAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);

  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);

  // Power-of-two buckets: 0 -> bucket 0, 1 -> bucket 1, 2..3 -> bucket 2,
  // 1000 (2^9 < 1000 < 2^10) -> bucket 10.
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Counters, RegistryReturnsStableReferences) {
  Counter& a = registry().counter("test_obs.stable");
  Counter& b = registry().counter("test_obs.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Creating more metrics must not move existing nodes.
  for (int i = 0; i < 100; ++i) {
    registry().counter("test_obs.filler." + std::to_string(i));
  }
  EXPECT_EQ(&registry().counter("test_obs.stable"), &a);
  EXPECT_EQ(a.value(), 3u);

  Histogram& h = registry().histogram("test_obs.stable_hist");
  h.observe(5);
  EXPECT_EQ(&registry().histogram("test_obs.stable_hist"), &h);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Counters, SnapshotsAreSortedAndCarryValues) {
  registry().counter("test_obs.snap.b").add(2);
  registry().counter("test_obs.snap.a").add(1);
  registry().histogram("test_obs.snap.h").observe(9);

  const std::vector<CounterSnapshot> cs = registry().counters();
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_LT(cs[i - 1].name, cs[i].name);
  }
  bool saw_a = false, saw_b = false;
  for (const CounterSnapshot& c : cs) {
    if (c.name == "test_obs.snap.a") {
      saw_a = true;
      EXPECT_GE(c.value, 1u);
    }
    if (c.name == "test_obs.snap.b") {
      saw_b = true;
      EXPECT_GE(c.value, 2u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  bool saw_h = false;
  for (const HistogramSnapshot& h : registry().histograms()) {
    if (h.name == "test_obs.snap.h") {
      saw_h = true;
      EXPECT_GE(h.count, 1u);
      EXPECT_EQ(h.max, 9u);
    }
  }
  EXPECT_TRUE(saw_h);

  std::ostringstream os;
  registry().print(os);
  EXPECT_NE(os.str().find("test_obs.snap.a"), std::string::npos);
}

TEST(Counters, ConcurrentAddsNeverLoseIncrements) {
  Counter& c = registry().counter("test_obs.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(JsonWriter, EmitsValidNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("name", "afdx")
      .field("count", 42)
      .field("negative", -7)
      .field("big", std::uint64_t{18446744073709551615ull})
      .field("pi", 3.5)
      .field("flag", true);
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object();
  w.field("inner", "x");
  w.end_object();
  w.key("nothing").null();
  w.end_object();

  EXPECT_EQ(os.str(),
            "{\"name\":\"afdx\",\"count\":42,\"negative\":-7,"
            "\"big\":18446744073709551615,\"pi\":3.5,\"flag\":true,"
            "\"list\":[1,2,3],\"nested\":{\"inner\":\"x\"},"
            "\"nothing\":null}");
}

TEST(JsonWriter, EscapesStringsAndRejectsNonFiniteNumbers) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("quote", "a\"b")
      .field("backslash", "a\\b")
      .field("newline", "a\nb")
      .field("control", std::string("a\x01") + "b")
      .field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("inf", std::numeric_limits<double>::infinity());
  w.end_object();

  EXPECT_EQ(os.str(),
            "{\"quote\":\"a\\\"b\",\"backslash\":\"a\\\\b\","
            "\"newline\":\"a\\nb\",\"control\":\"a\\u0001b\","
            "\"nan\":null,\"inf\":null}");
}

TEST(JsonWriter, DoublesRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("v", 0.1);
  w.end_object();
  const std::string json = os.str();
  const std::size_t colon = json.find(':');
  ASSERT_NE(colon, std::string::npos);
  const double parsed = std::stod(json.substr(colon + 1));
  EXPECT_EQ(parsed, 0.1);  // max_digits10 formatting round-trips exactly
}

TEST(Overhead, SelfCheckMeasuresAndRestoresState) {
  reset_tracer();
  const OverheadCheck check = measure_span_overhead(20000);
  EXPECT_EQ(check.iterations, 20000u);
  EXPECT_GE(check.disabled_ns_per_span, 0.0);
  EXPECT_GE(check.enabled_ns_per_span, 0.0);
  // The calibration must not leave the tracer enabled or its spans behind.
  EXPECT_FALSE(tracing_enabled());
  EXPECT_EQ(Tracer::instance().span_count(), 0u);

  // Disabled spans are a single relaxed load: sanity-bound the cost. Keep
  // the bound loose (shared CI machines), but a disabled span taking >1us
  // would mean the fast path regressed to doing real work.
  EXPECT_LT(check.disabled_ns_per_span, 1000.0);
}

TEST(Overhead, SelfCheckPreservesEnabledTracer) {
  reset_tracer();
  Tracer::instance().enable();
  {
    AFDX_TRACE_SPAN("test.user_span", "test");
  }
  const std::size_t user_spans = Tracer::instance().span_count();
  ASSERT_EQ(user_spans, 1u);
  (void)measure_span_overhead(1000);
  EXPECT_TRUE(tracing_enabled());
  // Buffers were non-empty, so the user's spans must survive.
  EXPECT_GE(Tracer::instance().span_count(), user_spans);
  reset_tracer();
}

}  // namespace
}  // namespace afdx::obs

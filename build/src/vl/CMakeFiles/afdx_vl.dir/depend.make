# Empty dependencies file for afdx_vl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libafdx_topology.a"
)

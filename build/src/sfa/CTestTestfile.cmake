# CMake generated Testfile for 
# Source directory: /root/repo/src/sfa
# Build directory: /root/repo/build/src/sfa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

// Quickstart: build the paper's sample AFDX configuration through the
// public API, compute worst-case end-to-end delay bounds with both methods,
// and sanity-check them against a simulated schedule.
//
//   $ ./quickstart
#include <iostream>

#include "analysis/comparison.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"
#include "vl/traffic_config.hpp"

using namespace afdx;

int main() {
  // 1. Describe the network: end systems, switches, full-duplex cables.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId e4 = net.add_end_system("e4");
  const NodeId e5 = net.add_end_system("e5");
  const NodeId e6 = net.add_end_system("e6");
  const NodeId e7 = net.add_end_system("e7");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");

  LinkParams link;  // 100 Mb/s, 16 us switch latency (AFDX defaults)
  net.connect(e1, s1, link);
  net.connect(e2, s1, link);
  net.connect(e3, s2, link);
  net.connect(e4, s2, link);
  net.connect(e5, s3, link);
  net.connect(s1, s3, link);
  net.connect(s2, s3, link);
  net.connect(s3, e6, link);
  net.connect(s3, e7, link);

  // 2. Declare the virtual links: (source, destinations, BAG, s_min, s_max).
  const Microseconds bag = microseconds_from_ms(4.0);
  std::vector<VirtualLink> vls{
      {"v1", e1, {e6}, bag, 64, 500}, {"v2", e2, {e6}, bag, 64, 500},
      {"v3", e3, {e6}, bag, 64, 500}, {"v4", e4, {e6}, bag, 64, 500},
      {"v5", e5, {e7}, bag, 64, 500}};

  // 3. Build the validated configuration (routes computed automatically).
  const TrafficConfig config(std::move(net), std::move(vls));
  std::cout << "max port utilization: "
            << format_percent(config.max_utilization()) << "\n\n";

  // 4. Run both analyses and combine them (the paper's recommendation).
  const analysis::Comparison bounds = analysis::compare(config);

  // 5. Cross-check with a simulated schedule (delays must stay below every
  //    bound; here the aligned schedule even reaches the v4 bound).
  const sim::Result observed = sim::simulate(config, {});

  report::Table table({"VL path", "trajectory (us)", "WCNC (us)",
                       "combined (us)", "simulated worst (us)"});
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    table.add_row({config.vl(paths[i].vl).name,
                   report::fmt(bounds.trajectory[i]),
                   report::fmt(bounds.netcalc[i]),
                   report::fmt(bounds.combined[i]),
                   report::fmt(observed.max_path_delay[i])});
  }
  table.print(std::cout);
  return 0;
}

# Empty dependencies file for fig7_smax_sweep.
# This may be replaced when dependencies are built.

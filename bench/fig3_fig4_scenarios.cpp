// E1 -- Figures 3 and 4 of the paper: the trajectory worst case for v1 on
// the sample configuration, without (Fig. 3, impossible simultaneous
// arrivals) and with (Fig. 4) the serialization refinement, side by side
// with the WCNC bounds and the worst delay an actual schedule achieves.
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E1 / Figures 3-4: trajectory scenarios on the sample "
         "configuration\n"
      << "(5 VLs, BAG 4 ms, s_max 500 B, 100 Mb/s, L = 16 us)\n\n";

  const TrafficConfig cfg = config::sample_config();

  trajectory::Options naive;
  naive.serialization = false;
  netcalc::Options no_grouping;
  no_grouping.grouping = false;

  const auto traj = trajectory::analyze(cfg).path_bounds;
  const auto traj_naive = trajectory::analyze(cfg, naive).path_bounds;
  const auto nc = netcalc::analyze(cfg).path_bounds;
  const auto nc_plain = netcalc::analyze(cfg, no_grouping).path_bounds;
  const sim::Result achieved = sim::simulate(cfg, {});

  report::Table t({"VL", "trajectory Fig.3 (us)", "trajectory Fig.4 (us)",
                   "WCNC no-grouping (us)", "WCNC grouped (us)",
                   "worst simulated (us)"});
  for (std::size_t i = 0; i < cfg.all_paths().size(); ++i) {
    t.add_row({cfg.vl(cfg.all_paths()[i].vl).name,
               report::fmt(traj_naive[i]), report::fmt(traj[i]),
               report::fmt(nc_plain[i]), report::fmt(nc[i]),
               report::fmt(achieved.max_path_delay[i])});
  }
  t.print(out);
  out << "\nSerialization gain on v1: "
      << report::fmt((traj_naive[0] - traj[0]) / traj_naive[0] * 100.0)
      << " % (paper: the refinement brings 'similar improvements' to the\n"
         "grouping technique of WCNC, here "
      << report::fmt((nc_plain[0] - nc[0]) / nc_plain[0] * 100.0) << " %).\n"
      << "The serialized bound equals the worst simulated delay of v4: the\n"
         "reconstructed trajectory bound is exactly tight on this "
         "configuration.\n";
}

void BM_TrajectorySample(benchmark::State& state) {
  const TrafficConfig cfg = config::sample_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trajectory::analyze(cfg));
  }
}
BENCHMARK(BM_TrajectorySample);

void BM_NetcalcSample(benchmark::State& state) {
  const TrafficConfig cfg = config::sample_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netcalc::analyze(cfg));
  }
}
BENCHMARK(BM_NetcalcSample);

void BM_SimulateSample(benchmark::State& state) {
  const TrafficConfig cfg = config::sample_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(cfg, {}));
  }
}
BENCHMARK(BM_SimulateSample);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

// Wire protocol of the analysis daemon (newline-delimited JSON).
//
// One request per line, one response line per request, always in this
// shape:
//
//   -> {"id":7,"op":"whatif","config":"main","set":[{"vl":"vl042","bag_us":4000}]}
//   <- {"id":7,"ok":true,"op":"whatif", ...}
//
// Requests (all keys but "op" optional unless noted):
//   status      server uptime, loaded baselines, request counters, queue
//               depths and cache statistics.
//   bounds      baseline per-path bounds of one configuration; "vl" filters
//               to one VL, "limit" caps the rows returned.
//   whatif      overlay query: "set" is an array of VL overrides
//               ({"vl":name, "bag_us"|"s_min_bytes"|"s_max_bytes"|
//                 "jitter_us"|"priority":value}), "fail" an optional fault
//               spec ("link:<a>-<b>,switch:<n>,es:<n>"); the dirty cone is
//               re-bounded incrementally against the warm baseline and the
//               per-path deltas are returned.
//   fault_sweep batched fault enumeration: "scope" is "single-link",
//               "single-switch" or one custom spec; per-scenario summary
//               rows come back.
//   ladder      budget-driven accuracy/cost ladder over one configuration:
//               "ladder":{"budget_ms":N,"max_path_evals":M} caps the
//               escalation spend; per-path rows carry the winning rung and
//               provenance, sorted by tightening.
//   shutdown    acknowledge and stop the server loop.
//
// Shared optional keys: "id" (echoed back, default 0), "config" (baseline
// name, default the daemon's first), "deadline_ms" (cooperative per-request
// deadline; expired work is reported partial, never hangs), "limit" (row
// cap of the response's detail array), "ladder" (budget object, see above;
// on a whatif request it additionally runs the budgeted ladder over the
// overlaid configuration and reports a tightened-bound summary).
//
// Responses: {"id":N,"ok":true,...} on success; {"id":N,"ok":false,
// "error":"..."} on any request error (parse failure, unknown VL, oversized
// line, admission-queue overload with "error":"overloaded"). A request
// error never tears down the connection, let alone the daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/session.hpp"

namespace afdx::serve {

enum class Op : std::uint8_t {
  kStatus,
  kBounds,
  kWhatIf,
  kFaultSweep,
  kLadder,
  kShutdown,
};

[[nodiscard]] const char* to_string(Op op) noexcept;

/// Budget of an accuracy/cost ladder run (the "ladder" request object).
/// Both limits are optional; absent/zero means unlimited on that axis.
struct LadderSpec {
  /// Wall-clock budget of the ladder's escalation phase, in milliseconds.
  double budget_ms = 0.0;
  /// Token budget: total per-path rung evaluations the ladder may spend.
  std::uint64_t max_path_evals = 0;
};

/// One parsed request line.
struct Request {
  std::uint64_t id = 0;
  Op op = Op::kStatus;
  /// Baseline name; empty = the daemon's default (first loaded).
  std::string config;
  /// bounds: optional VL filter.
  std::optional<std::string> vl;
  /// whatif: VL overrides, in request order.
  std::vector<engine::VlOverride> set;
  /// whatif: fault-scenario spec ("link:<a>-<b>,switch:<n>,es:<n>"); empty
  /// when the request fails nothing.
  std::string fail_spec;
  /// fault_sweep: "single-link", "single-switch" or one custom spec.
  std::string scope;
  /// ladder op / whatif rider: escalation budget; nullopt = the key was
  /// absent (the ladder op then runs unlimited, whatif skips the ladder).
  std::optional<LadderSpec> ladder;
  /// Per-request cooperative deadline; 0 = none (serve to completion).
  double deadline_ms = 0.0;
  /// Cap on the response's detail rows.
  std::size_t limit = 0;  // 0 = the op's default
};

/// Parses one request line. Throws afdx::Error naming the offending key on
/// any structural or type problem ("key 'bag_us': expected a number").
[[nodiscard]] Request parse_request(const std::string& line);

/// Renders the uniform error response line (no trailing newline).
[[nodiscard]] std::string error_response(std::uint64_t id,
                                         const std::string& message);

/// Best-effort request id of an unparsed line (for overload/parse-error
/// responses): the "id" member if the line parses as JSON, 0 otherwise.
[[nodiscard]] std::uint64_t peek_request_id(const std::string& line) noexcept;

}  // namespace afdx::serve

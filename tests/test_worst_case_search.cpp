// Tests for the worst-case schedule search: it must bracket the analytic
// bounds from below and reach them where they are known to be tight.
#include "sim/worst_case_search.hpp"

#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "common/error.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"

namespace afdx::sim {
namespace {

TEST(WorstCaseSearch, IsolatedFlowIsExact) {
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(s1, e2);
  const TrafficConfig cfg(std::move(net),
                          {{"v", e1, {e2}, microseconds_from_ms(4.0), 64, 500}});
  const SearchResult r = worst_case_search(cfg, PathRef{0, 0});
  EXPECT_NEAR(r.worst_delay, 96.0, 1e-9);
  EXPECT_TRUE(r.exhaustive);
}

TEST(WorstCaseSearch, ReachesTheTrajectoryBoundOnTheSampleConfig) {
  // The trajectory bound of the sample configuration (272 us) is tight; the
  // exhaustive sweep must find a schedule achieving it.
  const TrafficConfig cfg = config::sample_config();
  const VlId v4 = *cfg.find_vl("v4");
  const SearchResult r = worst_case_search(cfg, PathRef{v4, 0});
  EXPECT_TRUE(r.exhaustive);
  EXPECT_NEAR(r.worst_delay, 272.0, 1e-6);
}

TEST(WorstCaseSearch, ReturnedScheduleReproducesTheDelay) {
  const TrafficConfig cfg = config::sample_config();
  const VlId v1 = *cfg.find_vl("v1");
  const SearchResult r = worst_case_search(cfg, PathRef{v1, 0});
  Options o;
  o.phasing = Phasing::kExplicit;
  o.offsets = r.offsets;
  o.horizon = microseconds_from_ms(10.0);
  const Result replay = simulate(cfg, o);
  EXPECT_NEAR(replay.max_delay_for(cfg, PathRef{v1, 0}), r.worst_delay, 1e-9);
}

TEST(WorstCaseSearch, NeverExceedsAnalyticBounds) {
  gen::IndustrialOptions go;
  go.vl_count = 30;
  go.end_system_count = 10;
  go.switch_count = 4;
  const TrafficConfig cfg = gen::industrial_config(go);
  const analysis::Comparison c = analysis::compare(cfg);
  SearchOptions so;
  so.steps_per_vl = 4;
  so.random_restarts = 1;
  so.max_rounds = 2;
  for (std::size_t p = 0; p < cfg.all_paths().size(); p += 11) {
    const VlPath& path = cfg.all_paths()[p];
    const SearchResult r =
        worst_case_search(cfg, PathRef{path.vl, path.dest_index}, so);
    EXPECT_LE(r.worst_delay, c.combined[p] + 1e-6) << "path " << p;
    EXPECT_GT(r.worst_delay, 0.0);
  }
}

TEST(WorstCaseSearch, CoordinateDescentBeatsHeuristicsSometimes) {
  // On a larger interferer set the search must at least match the
  // adversarial heuristic.
  gen::IndustrialOptions go;
  go.vl_count = 40;
  go.end_system_count = 12;
  go.switch_count = 4;
  const TrafficConfig cfg = gen::industrial_config(go);
  const VlPath& path = cfg.all_paths().front();
  const PathRef target{path.vl, path.dest_index};

  Options adv;
  adv.phasing = Phasing::kExplicit;
  adv.offsets = adversarial_offsets(cfg, target);
  const Microseconds heuristic =
      simulate(cfg, adv).max_delay_for(cfg, target);

  SearchOptions so;
  so.steps_per_vl = 4;
  const SearchResult r = worst_case_search(cfg, target, so);
  EXPECT_GE(r.worst_delay, heuristic - 1e-9);
}

TEST(WorstCaseSearch, DeterministicForFixedOptions) {
  const TrafficConfig cfg = config::sample_config();
  const SearchResult a = worst_case_search(cfg, PathRef{0, 0});
  const SearchResult b = worst_case_search(cfg, PathRef{0, 0});
  EXPECT_DOUBLE_EQ(a.worst_delay, b.worst_delay);
  EXPECT_EQ(a.schedules_tried, b.schedules_tried);
}

TEST(WorstCaseSearch, ValidatesOptions) {
  const TrafficConfig cfg = config::sample_config();
  SearchOptions so;
  so.steps_per_vl = 0;
  EXPECT_THROW(worst_case_search(cfg, PathRef{0, 0}, so), Error);
}

}  // namespace
}  // namespace afdx::sim

#include "valid/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/serialization.hpp"
#include "engine/thread_pool.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "valid/corpus.hpp"

namespace afdx::valid {

namespace {

template <typename T>
const T& pick(Rng& rng, const std::vector<T>& axis, const char* name) {
  AFDX_REQUIRE(!axis.empty(),
               std::string("campaign grid: empty axis ") + name);
  return axis[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(axis.size()) - 1))];
}

void merge_pessimism(analysis::PessimismStats& agg,
                     const analysis::PessimismStats& s) {
  if (s.paths == 0) return;
  if (agg.paths == 0) {
    agg = s;
    return;
  }
  agg.max = std::max(agg.max, s.max);
  agg.min = std::min(agg.min, s.min);
  agg.mean = (agg.mean * static_cast<double>(agg.paths) +
              s.mean * static_cast<double>(s.paths)) /
             static_cast<double>(agg.paths + s.paths);
  agg.paths += s.paths;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_pessimism(std::ostream& out, const analysis::PessimismStats& s) {
  out << "{\"mean\": " << s.mean << ", \"min\": " << s.min
      << ", \"max\": " << s.max << ", \"paths\": " << s.paths << "}";
}

void write_violation(std::ostream& out, const Violation& v,
                     std::size_t campaign, const std::string& corpus_file) {
  out << "{\"campaign\": " << campaign << ", \"kind\": \""
      << to_string(v.kind) << "\", \"method\": \"" << json_escape(v.method)
      << "\", \"index\": " << v.index << ", \"observed\": " << v.observed
      << ", \"bound\": " << v.bound << ", \"detail\": \""
      << json_escape(v.detail) << "\"";
  if (!corpus_file.empty()) {
    out << ", \"corpus\": \"" << json_escape(corpus_file) << "\"";
  }
  out << "}";
}

}  // namespace

GridOptions GridOptions::smoke() {
  GridOptions g;
  g.vl_counts = {8, 15};
  g.switch_counts = {2, 4};
  g.end_system_counts = {8, 12};
  g.multicast_fractions = {0.0, 0.3};
  g.max_multicast_fanouts = {2, 3};
  g.bag_ranges_ms = {{2.0, 128.0}, {4.0, 16.0}};
  g.max_frame_bytes = {1518, 400};
  g.release_jitters_us = {0.0};
  return g;
}

CampaignSpec spec_for(const GridOptions& grid, std::uint64_t master_seed,
                      std::size_t index) {
  // Golden-ratio mixing decorrelates consecutive indices; the spec is a
  // pure function of (grid, master_seed, index), independent of threading.
  Rng rng(master_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  CampaignSpec spec;
  spec.index = index;
  spec.gen.seed = rng.engine()();
  spec.gen.vl_count = pick(rng, grid.vl_counts, "vl_counts");
  spec.gen.switch_count = pick(rng, grid.switch_counts, "switch_counts");
  spec.gen.end_system_count =
      pick(rng, grid.end_system_counts, "end_system_counts");
  spec.gen.multicast_fraction =
      pick(rng, grid.multicast_fractions, "multicast_fractions");
  spec.gen.max_multicast_fanout =
      pick(rng, grid.max_multicast_fanouts, "max_multicast_fanouts");
  const auto& bag_range = pick(rng, grid.bag_ranges_ms, "bag_ranges_ms");
  spec.gen.min_bag_ms = bag_range.first;
  spec.gen.max_bag_ms = bag_range.second;
  spec.gen.max_frame_bytes = pick(rng, grid.max_frame_bytes, "max_frame_bytes");
  spec.gen.max_release_jitter =
      pick(rng, grid.release_jitters_us, "release_jitters_us");
  return spec;
}

CampaignReport run_campaigns(const CampaignOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto run_start = Clock::now();

  CampaignReport report;
  report.seed = options.seed;
  report.campaigns = options.campaigns;
  report.threads = engine::ThreadPool::resolve_thread_count(options.threads);
  report.outcomes.resize(options.campaigns);

  if (!options.corpus_dir.empty()) {
    std::filesystem::create_directories(options.corpus_dir);
  }

  // Checkpointed outcomes of an earlier interrupted run: replayed into
  // their slots, never re-executed. Specs are recomputed below (pure
  // function of grid/seed/index), so a checkpoint cannot alter them.
  std::vector<const CampaignOutcome*> resumed(options.campaigns, nullptr);
  for (const CampaignOutcome& r : options.resume) {
    if (r.spec.index < options.campaigns && !r.interrupted) {
      resumed[r.spec.index] = &r;
    }
  }

  engine::ThreadPool pool(report.threads);
  pool.parallel_for(options.campaigns, [&](std::size_t i, int) {
    CampaignOutcome& outcome = report.outcomes[i];
    outcome.spec = spec_for(options.grid, options.seed, i);
    if (resumed[i] != nullptr) {
      const CampaignSpec spec = outcome.spec;
      outcome = *resumed[i];
      outcome.spec = spec;
      return;
    }
    if (options.cancel != nullptr && options.cancel->expired()) {
      outcome.interrupted = true;
      outcome.skip_reason = options.cancel->reason();
      return;
    }
    const auto t0 = Clock::now();
    AFDX_TRACE_SPAN("valid.campaign", "valid");
    obs::registry().counter("valid.campaigns").add();
    try {
      const TrafficConfig cfg = gen::industrial_config(outcome.spec.gen);
      outcome.vls = cfg.vl_count();
      outcome.paths = cfg.all_paths().size();
      // Per-campaign schedule seeds keep the batteries decorrelated.
      CheckOptions check = options.check;
      check.schedules.seed = options.seed * 1000003ULL + i * 10ULL;
      outcome.check = check_config(cfg, check);
      obs::registry().counter("valid.violations")
          .add(outcome.check.violations.size());

      if (!outcome.check.ok() && options.shrink_violations) {
        AFDX_TRACE_SPAN("valid.shrink", "valid");
        ShrinkOptions shrink_opts = options.shrink;
        shrink_opts.check = check;
        const auto shrunk = shrink(cfg, shrink_opts);
        if (shrunk.has_value() && !options.corpus_dir.empty()) {
          CorpusEntry entry;
          entry.seed = outcome.spec.gen.seed;
          entry.campaign = i;
          entry.fault = check.fault;
          entry.fault_factor = check.fault_factor;
          entry.witness = shrunk->witness.describe();
          entry.config_text = config::save_config_string(shrunk->config);
          const std::string file =
              (std::filesystem::path(options.corpus_dir) /
               ("shrunk-s" + std::to_string(options.seed) + "-c" +
                std::to_string(i) + ".afdx"))
                  .string();
          write_corpus_file(entry, file);
          outcome.corpus_file = file;
        }
      }
    } catch (const Error& e) {
      // The drawn grid point was infeasible (e.g. the utilization cap
      // rejected the VL population) -- count it, keep fuzzing.
      outcome.skipped = true;
      outcome.skip_reason = e.what();
    }
    outcome.wall_us = std::chrono::duration<double, std::micro>(
                          Clock::now() - t0)
                          .count();
  });

  for (const CampaignOutcome& outcome : report.outcomes) {
    if (outcome.interrupted) {
      ++report.interrupted;
      continue;
    }
    if (outcome.skipped) {
      ++report.skipped;
      continue;
    }
    ++report.completed;
    report.paths += outcome.paths;
    report.schedules_simulated += outcome.check.schedules_simulated;
    report.violation_count += outcome.check.violations.size();
    merge_pessimism(report.wcnc, outcome.check.wcnc);
    merge_pessimism(report.trajectory, outcome.check.trajectory);
    merge_pessimism(report.combined, outcome.check.combined);
  }
  report.wall_us =
      std::chrono::duration<double, std::micro>(Clock::now() - run_start)
          .count();
  return report;
}

void CampaignReport::write_json(std::ostream& out, bool include_timing) const {
  out << std::setprecision(12);
  out << "{\n";
  out << "  \"tool\": \"afdx_fuzz\",\n";
  out << "  \"format\": 1,\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"campaigns\": " << campaigns << ",\n";
  if (include_timing) {
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"wall_ms\": " << wall_us / 1000.0 << ",\n";
  }
  out << "  \"completed\": " << completed << ",\n";
  out << "  \"skipped\": " << skipped << ",\n";
  out << "  \"interrupted\": " << interrupted << ",\n";
  out << "  \"paths_checked\": " << paths << ",\n";
  out << "  \"schedules_simulated\": " << schedules_simulated << ",\n";
  out << "  \"violations\": " << violation_count << ",\n";
  out << "  \"pessimism\": {\n";
  out << "    \"wcnc\": ";
  write_pessimism(out, wcnc);
  out << ",\n    \"trajectory\": ";
  write_pessimism(out, trajectory);
  out << ",\n    \"combined\": ";
  write_pessimism(out, combined);
  out << "\n  },\n";

  out << "  \"violation_details\": [";
  bool first = true;
  for (const CampaignOutcome& o : outcomes) {
    for (const Violation& v : o.check.violations) {
      out << (first ? "\n    " : ",\n    ");
      write_violation(out, v, o.spec.index, o.corpus_file);
      first = false;
    }
  }
  out << (first ? "],\n" : "\n  ],\n");

  out << "  \"campaign_results\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CampaignOutcome& o = outcomes[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    out << "{\"index\": " << o.spec.index << ", \"config_seed\": "
        << o.spec.gen.seed;
    if (o.interrupted) {
      out << ", \"interrupted\": true}";
      continue;
    }
    if (o.skipped) {
      out << ", \"skipped\": true, \"reason\": \""
          << json_escape(o.skip_reason) << "\"}";
      continue;
    }
    out << ", \"vls\": " << o.vls << ", \"paths\": " << o.paths
        << ", \"schedules\": " << o.check.schedules_simulated
        << ", \"violations\": " << o.check.violations.size()
        << ", \"pessimism_mean\": {\"wcnc\": " << o.check.wcnc.mean
        << ", \"trajectory\": " << o.check.trajectory.mean
        << ", \"combined\": " << o.check.combined.mean << "}";
    if (include_timing) out << ", \"wall_us\": " << o.wall_us;
    out << "}";
  }
  out << (outcomes.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

}  // namespace afdx::valid

file(REMOVE_RECURSE
  "CMakeFiles/afdx_trajectory.dir/trajectory_analyzer.cpp.o"
  "CMakeFiles/afdx_trajectory.dir/trajectory_analyzer.cpp.o.d"
  "libafdx_trajectory.a"
  "libafdx_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Certification-style analysis of a full industrial configuration: the
// deliverables a network integrator needs for ARINC 664 determinism
// evidence -- guaranteed end-to-end bounds per VL path, deadline margin
// against each VL's BAG, and switch buffer dimensioning.
//
//   $ ./certification_report [seed] [latency_requirement_us]
//
// Exits non-zero when some VL path cannot be guaranteed to meet the
// uniform latency requirement (default 10 ms).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/comparison.hpp"
#include "config/serialization.hpp"
#include "gen/industrial.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "report/table.hpp"

using namespace afdx;

int main(int argc, char** argv) {
  gen::IndustrialOptions options;
  if (argc > 1) options.seed = std::strtoull(argv[1], nullptr, 10);
  const Microseconds requirement =
      argc > 2 ? std::strtod(argv[2], nullptr) : microseconds_from_ms(10.0);
  const TrafficConfig config = gen::industrial_config(options);

  std::cout << "AFDX certification report (seed " << options.seed << ")\n"
            << config.network().switches().size() << " switches, "
            << config.network().end_systems().size() << " end systems, "
            << config.vl_count() << " VLs, " << config.all_paths().size()
            << " VL paths\n\n";

  const analysis::Comparison bounds = analysis::compare(config);
  const netcalc::Result nc = netcalc::analyze(config);

  // Deadline check: every path's guaranteed bound must fit within the
  // uniform latency requirement.
  int misses = 0;
  Microseconds worst_margin = 1e300;
  std::size_t worst_path = 0;
  for (std::size_t i = 0; i < bounds.combined.size(); ++i) {
    const Microseconds margin = requirement - bounds.combined[i];
    if (margin < 0) ++misses;
    if (margin < worst_margin) {
      worst_margin = margin;
      worst_path = i;
    }
  }

  report::Table summary({"metric", "value"});
  const auto minmax = std::minmax_element(bounds.combined.begin(),
                                          bounds.combined.end());
  summary.add_row({"tightest path bound", format_us(*minmax.first)});
  summary.add_row({"largest path bound", format_us(*minmax.second)});
  summary.add_row({"latency requirement", format_us(requirement)});
  summary.add_row({"paths missing the requirement", std::to_string(misses)});
  summary.add_row(
      {"smallest deadline margin",
       format_us(worst_margin) + " (VL " +
           config.vl(config.all_paths()[worst_path].vl).name + ")"});
  summary.print(std::cout);

  // Buffer dimensioning: the largest output FIFO each switch needs.
  std::cout << "\nswitch output buffer dimensioning:\n";
  report::Table buffers({"switch", "largest port FIFO (KB)"});
  for (NodeId sw : config.network().switches()) {
    Bits worst = 0.0;
    for (LinkId l : config.network().links_from(sw)) {
      if (nc.ports[l].used) worst = std::max(worst, nc.ports[l].backlog);
    }
    buffers.add_row({config.network().node(sw).name,
                     report::fmt(worst / 8.0 / 1024.0, 2)});
  }
  buffers.print(std::cout);

  // Persist the analyzed configuration for the certification dossier.
  const std::string path = "certified_configuration.afdx";
  config::save_config_file(config, path);
  std::cout << "\nconfiguration written to " << path << "\n";

  return misses == 0 ? 0 : 1;
}


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/industrial.cpp" "src/gen/CMakeFiles/afdx_gen.dir/industrial.cpp.o" "gcc" "src/gen/CMakeFiles/afdx_gen.dir/industrial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vl/CMakeFiles/afdx_vl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/afdx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/afdx_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

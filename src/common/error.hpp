// Error handling for the AFDX library.
//
// Configuration errors (bad topology, unroutable VL, unstable port, ...)
// are reported by throwing afdx::Error with a human-readable message;
// internal invariant violations use AFDX_ASSERT which throws LogicError so
// tests can exercise them.
#pragma once

#include <stdexcept>
#include <string>

namespace afdx {

/// User-facing error: invalid configuration, infeasible analysis, parse
/// failure. Carries a descriptive message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant violation (a bug in the library, not in user input).
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

/// Checks an internal invariant; throws LogicError on failure.
#define AFDX_ASSERT(expr, msg)                                         \
  do {                                                                 \
    if (!(expr)) ::afdx::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Checks a user-input condition; throws afdx::Error on failure.
#define AFDX_REQUIRE(expr, msg)                \
  do {                                         \
    if (!(expr)) throw ::afdx::Error((msg));   \
  } while (false)

}  // namespace afdx

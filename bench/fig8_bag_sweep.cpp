// E6 -- Figure 8 of the paper: effect of BAG(v1) on the end-to-end delay
// bounds of v1 on the sample configuration (both methods).
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "config/samples.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E6 / Figure 8: bounds on v1 while sweeping BAG(v1), other VLs at "
         "4 ms\n\n";

  report::Table t({"BAG(v1) (ms)", "Trajectory (us)", "WCNC (us)"});
  report::Series traj_series, nc_series;
  traj_series.name = "Trajectory";
  traj_series.marker = 'T';
  nc_series.name = "WCNC";
  nc_series.marker = 'N';

  for (double ms = 1.0; ms <= 128.0; ms *= 2.0) {
    config::SampleOptions o;
    o.bag_v1 = microseconds_from_ms(ms);
    const TrafficConfig cfg = config::sample_config(o);
    const analysis::Comparison c = analysis::compare(cfg);
    t.add_row({report::fmt(ms, 0), report::fmt(c.trajectory[0]),
               report::fmt(c.netcalc[0])});
    traj_series.points.push_back({ms, c.trajectory[0]});
    nc_series.points.push_back({ms, c.netcalc[0]});
  }
  t.print(out);
  out << "\n";
  report::line_chart(out, {traj_series, nc_series}, 64, 16, /*log_x=*/true);
  out << "\npaper shape: BAG(v1) has no influence on the trajectory bound;\n"
         "the WCNC bound increases for smaller BAG values (the flow's own\n"
         "long-term rate s_max/BAG inflates every downstream burst).\n";
}

void BM_BagSweepPoint(benchmark::State& state) {
  config::SampleOptions o;
  o.bag_v1 = microseconds_from_ms(static_cast<double>(state.range(0)));
  const TrafficConfig cfg = config::sample_config(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compare(cfg));
  }
}
BENCHMARK(BM_BagSweepPoint)->Arg(1)->Arg(128);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

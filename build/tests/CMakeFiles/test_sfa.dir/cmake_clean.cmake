file(REMOVE_RECURSE
  "CMakeFiles/test_sfa.dir/test_sfa.cpp.o"
  "CMakeFiles/test_sfa.dir/test_sfa.cpp.o.d"
  "test_sfa"
  "test_sfa.pdb"
  "test_sfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "report/chart.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "report/table.hpp"

namespace afdx::report {

void line_chart(std::ostream& out, const std::vector<Series>& series,
                int width, int height, bool log_x) {
  AFDX_REQUIRE(width >= 16 && height >= 6, "line_chart: grid too small");
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  bool any = false;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      AFDX_REQUIRE(!log_x || x > 0.0, "line_chart: log axis needs x > 0");
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  AFDX_REQUIRE(any, "line_chart: no points");
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;

  auto xpos = [&](double x) {
    double t = log_x ? (std::log(x) - std::log(xmin)) /
                           (std::log(xmax) - std::log(xmin))
                     : (x - xmin) / (xmax - xmin);
    return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0,
                      width - 1);
  };
  auto ypos = [&](double y) {
    const double t = (y - ymin) / (ymax - ymin);
    return std::clamp(static_cast<int>(std::lround(t * (height - 1))), 0,
                      height - 1);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      grid[static_cast<std::size_t>(height - 1 - ypos(y))]
          [static_cast<std::size_t>(xpos(x))] = s.marker;
    }
  }

  for (int r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height - 1);
    out << (r % 4 == 0 ? fmt(yv, 1) : std::string())
        << std::string(r % 4 == 0 ? std::max<std::size_t>(
                                        1, 10 - fmt(yv, 1).size())
                                  : 10,
                       ' ')
        << "|" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << std::string(11, ' ') << "+" << std::string(static_cast<std::size_t>(width), '-')
      << "\n";
  out << std::string(12, ' ') << fmt(xmin, 1)
      << std::string(static_cast<std::size_t>(std::max(1, width - 16)), ' ')
      << fmt(xmax, 1) << (log_x ? "  (log x)" : "") << "\n";
  for (const Series& s : series) {
    out << "    " << s.marker << " = " << s.name << "\n";
  }
}

void signed_heatmap(std::ostream& out,
                    const std::vector<std::vector<double>>& values,
                    const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels) {
  AFDX_REQUIRE(!values.empty(), "signed_heatmap: no rows");
  AFDX_REQUIRE(values.size() == row_labels.size(),
               "signed_heatmap: row label mismatch");
  double amax = 0.0;
  for (const auto& row : values) {
    AFDX_REQUIRE(row.size() == col_labels.size(),
                 "signed_heatmap: column label mismatch");
    for (double v : row) amax = std::max(amax, std::abs(v));
  }
  if (amax < 1e-12) amax = 1.0;

  auto shade = [&](double v) -> char {
    const double t = std::abs(v) / amax;
    if (t < 0.02) return '0';
    static const char pos[] = {'.', '+', 'P', '#'};
    static const char neg[] = {',', '-', 'n', '%'};
    const int level = std::min(3, static_cast<int>(t * 4.0));
    return v > 0 ? pos[level] : neg[level];
  };

  std::size_t label_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  for (std::size_t r = 0; r < values.size(); ++r) {
    out << row_labels[r] << std::string(label_w - row_labels[r].size(), ' ')
        << " |";
    for (double v : values[r]) out << shade(v);
    out << "|\n";
  }
  out << std::string(label_w, ' ') << "  " << col_labels.front() << " .. "
      << col_labels.back() << "\n";
  out << "legend: '#','P','+','.' = positive (trajectory tighter), "
         "'%','n','-',',' = negative, '0' = tie; magnitude scaled to "
      << fmt(amax, 1) << "\n";
}

}  // namespace afdx::report

// Unit and property tests for the (min,plus) operations.
#include "minplus/operations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace afdx::minplus {
namespace {

TEST(Sum, AffinePlusAffine) {
  const Curve s = sum(Curve::affine(10.0, 1.0), Curve::affine(20.0, 2.0));
  EXPECT_DOUBLE_EQ(s.value(0.0), 30.0);
  EXPECT_DOUBLE_EQ(s.value(10.0), 60.0);
  EXPECT_DOUBLE_EQ(s.final_slope(), 3.0);
}

TEST(Sum, WithRateLatencyKeepsBreakpoint) {
  const Curve s = sum(Curve::affine(5.0, 1.0), Curve::rate_latency(10.0, 2.0));
  EXPECT_DOUBLE_EQ(s.value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value(2.0), 7.0);
  EXPECT_DOUBLE_EQ(s.value(3.0), 18.0);
}

TEST(Sum, VectorOverloadAndEmpty) {
  EXPECT_DOUBLE_EQ(sum(std::vector<Curve>{}).value(100.0), 0.0);
  const Curve s =
      sum({Curve::affine(1.0, 1.0), Curve::affine(2.0, 2.0), Curve::affine(3.0, 3.0)});
  EXPECT_DOUBLE_EQ(s.value(1.0), 12.0);
}

TEST(Minimum, OfCrossingAffines) {
  // 10 + t and 0 + 3t cross at t = 5.
  const Curve m = minimum(Curve::affine(10.0, 1.0), Curve::affine(0.0, 3.0));
  EXPECT_DOUBLE_EQ(m.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.value(5.0), 15.0);
  EXPECT_DOUBLE_EQ(m.value(10.0), 20.0);
  EXPECT_DOUBLE_EQ(m.final_slope(), 1.0);
  EXPECT_TRUE(m.is_concave());
}

TEST(Minimum, CrossingBeyondLastBreakpointIsFound) {
  // Curves equal-valued breakpoints early, cross far out on final slopes.
  const Curve a = Curve::affine(0.0, 2.0);
  const Curve b = Curve::affine(100.0, 1.0);  // crosses a at t = 100
  const Curve m = minimum(a, b);
  EXPECT_DOUBLE_EQ(m.value(50.0), 100.0);
  EXPECT_DOUBLE_EQ(m.value(100.0), 200.0);
  EXPECT_DOUBLE_EQ(m.value(200.0), 300.0);
  EXPECT_DOUBLE_EQ(m.final_slope(), 1.0);
}

TEST(Maximum, OfCrossingAffines) {
  const Curve m = maximum(Curve::affine(10.0, 1.0), Curve::affine(0.0, 3.0));
  EXPECT_DOUBLE_EQ(m.value(0.0), 10.0);
  EXPECT_DOUBLE_EQ(m.value(5.0), 15.0);
  EXPECT_DOUBLE_EQ(m.value(10.0), 30.0);
  EXPECT_DOUBLE_EQ(m.final_slope(), 3.0);
  EXPECT_TRUE(m.is_convex());
}

TEST(ShiftLeft, DropsInitialPart) {
  const Curve c = Curve::rate_latency(100.0, 16.0);
  const Curve s = shift_left(c, 16.0);
  EXPECT_DOUBLE_EQ(s.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1.0), 100.0);
  const Curve s2 = shift_left(c, 20.0);
  EXPECT_DOUBLE_EQ(s2.value(0.0), 400.0);
}

TEST(ShiftLeft, ZeroShiftIsIdentity) {
  const Curve c = Curve::affine(5.0, 2.0);
  EXPECT_EQ(shift_left(c, 0.0), c);
}

TEST(ConvolveConcave, TwoLeakyBuckets) {
  // (sigma1 + rho1 t) (*) (sigma2 + rho2 t) = sigma1 + sigma2 + min-rate t.
  const Curve c = convolve_concave(Curve::affine(10.0, 1.0), Curve::affine(5.0, 3.0));
  EXPECT_DOUBLE_EQ(c.value(0.0), 15.0);
  EXPECT_DOUBLE_EQ(c.final_slope(), 1.0);
}

TEST(ConvolveConcave, EqualsPointwiseMinimumAfterRebasing) {
  // a: slope 4 until x=1, then 1; b: slope 2 until x=2, then 0.5. With both
  // through the origin, the concave convolution is the pointwise minimum.
  const Curve a({{0.0, 0.0}, {1.0, 4.0}}, 1.0);
  const Curve b({{0.0, 0.0}, {2.0, 4.0}}, 0.5);
  const Curve c = convolve_concave(a, b);
  EXPECT_DOUBLE_EQ(c.value(1.0), 2.0);   // min(4, 2)
  EXPECT_DOUBLE_EQ(c.value(3.0), 4.5);   // min(6, 4.5)
  EXPECT_DOUBLE_EQ(c.final_slope(), 0.5);
  // Exactness against the definition inf_s a(s) + b(t - s) on a grid.
  for (double t = 0.0; t <= 6.0; t += 0.5) {
    double best = 1e300;
    for (double s = 0.0; s <= t + 1e-12; s += 0.01) {
      best = std::min(best, a.value(s) + b.value(t - s));
    }
    EXPECT_NEAR(c.value(t), best, 1e-2) << "t=" << t;
  }
}

TEST(ConvolveConcave, RejectsConvexInput) {
  EXPECT_THROW(
      convolve_concave(Curve::rate_latency(10.0, 1.0), Curve::affine(1.0, 1.0)),
      Error);
}

TEST(ConvolveConvex, RateLatencyTandem) {
  const Curve c = convolve_convex(Curve::rate_latency(100.0, 16.0),
                                  Curve::rate_latency(50.0, 10.0));
  EXPECT_EQ(c, Curve::rate_latency(50.0, 26.0));
}

TEST(ConvolveConvex, RejectsNonZeroStart) {
  EXPECT_THROW(
      convolve_convex(Curve::affine(5.0, 1.0), Curve::rate_latency(10.0, 1.0)),
      Error);
}

TEST(Deconvolve, AffineThroughRateLatency) {
  // (sigma + rho t) (/) RL(R, L) = sigma + rho L + rho t  when rho <= R.
  const Curve out = deconvolve_concave_rl(Curve::affine(4000.0, 1.0), 100.0, 16.0);
  EXPECT_NEAR(out.value(0.0), 4016.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.final_slope(), 1.0);
}

TEST(Deconvolve, SteepInitialSegmentGetsRateSmoothed) {
  // alpha rises at slope 300 (> R = 100) until x=1, then slope 50.
  const Curve alpha({{0.0, 0.0}, {1.0, 300.0}}, 50.0);
  const Curve out = deconvolve_concave_rl(alpha, 100.0, 0.0);
  // sup_u alpha(t+u) - 100 u: at t=0 the best is u=1: 300 - 100 = 200.
  EXPECT_NEAR(out.value(0.0), 200.0, 1e-9);
  // For large t the output follows alpha.
  EXPECT_NEAR(out.value(10.0), alpha.value(10.0), 1e-9);
}

TEST(Deconvolve, UnstableThrows) {
  EXPECT_THROW(deconvolve_concave_rl(Curve::affine(0.0, 200.0), 100.0, 0.0),
               Error);
}

TEST(HorizontalDeviation, LeakyBucketVsRateLatency) {
  // Classic: h = L + sigma / R.
  const double d = horizontal_deviation(Curve::affine(4000.0, 1.0),
                                        Curve::rate_latency(100.0, 16.0));
  EXPECT_NEAR(d, 16.0 + 40.0, 1e-9);
}

TEST(HorizontalDeviation, AggregateOfBuckets) {
  const Curve agg = sum(Curve::affine(4000.0, 1.0), Curve::affine(4000.0, 1.0));
  const double d = horizontal_deviation(agg, Curve::rate_latency(100.0, 16.0));
  EXPECT_NEAR(d, 16.0 + 80.0, 1e-9);
}

TEST(HorizontalDeviation, ConcaveArrivalMaxAtBreakpoint) {
  // Two-slope concave arrival: burst 100 at rate 50 until x=2, then rate 1.
  const Curve alpha({{0.0, 100.0}, {2.0, 200.0}}, 1.0);
  const Curve beta = Curve::rate_latency(100.0, 0.0);
  // g(t) = alpha(t)/100 - t maximized at t=0: 1.0 (alpha(2)/100-2 = 0).
  EXPECT_NEAR(horizontal_deviation(alpha, beta), 1.0, 1e-9);
}

TEST(HorizontalDeviation, UnstableThrows) {
  EXPECT_THROW((void)horizontal_deviation(Curve::affine(0.0, 200.0),
                                          Curve::rate_latency(100.0, 0.0)),
               Error);
}

TEST(HorizontalDeviation, EqualRatesIsFinite) {
  const double d = horizontal_deviation(Curve::affine(100.0, 100.0),
                                        Curve::rate_latency(100.0, 5.0));
  EXPECT_NEAR(d, 5.0 + 1.0, 1e-9);
}

TEST(VerticalDeviation, LeakyBucketVsRateLatency) {
  // v = sigma + rho L for stable leaky bucket.
  const double v = vertical_deviation(Curve::affine(4000.0, 1.0),
                                      Curve::rate_latency(100.0, 16.0));
  EXPECT_NEAR(v, 4000.0 + 16.0, 1e-9);
}

TEST(VerticalDeviation, UnstableThrows) {
  EXPECT_THROW((void)vertical_deviation(Curve::affine(0.0, 200.0),
                                        Curve::rate_latency(100.0, 0.0)),
               Error);
}

// --- Property tests over random curves -------------------------------------

class RandomCurveProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Random concave non-decreasing curve (random burst + decreasing slopes).
  static Curve random_concave(Rng& rng) {
    const double burst = rng.uniform_real(0.0, 1000.0);
    minplus::PointVec pts{{0.0, burst}};
    double x = 0.0, y = burst;
    double slope = rng.uniform_real(50.0, 200.0);
    const int n = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n; ++i) {
      const double dx = rng.uniform_real(0.5, 20.0);
      x += dx;
      y += slope * dx;
      pts.push_back({x, y});
      slope *= rng.uniform_real(0.3, 0.95);
    }
    return Curve(std::move(pts), slope);
  }
};

TEST_P(RandomCurveProperty, SumEvaluatesPointwise) {
  Rng rng(GetParam());
  const Curve a = random_concave(rng);
  const Curve b = random_concave(rng);
  const Curve s = sum(a, b);
  for (double x = 0.0; x < 100.0; x += 3.7) {
    EXPECT_NEAR(s.value(x), a.value(x) + b.value(x), 1e-6);
  }
}

TEST_P(RandomCurveProperty, MinimumEvaluatesPointwise) {
  Rng rng(GetParam() + 1000);
  const Curve a = random_concave(rng);
  const Curve b = random_concave(rng);
  const Curve m = minimum(a, b);
  for (double x = 0.0; x < 100.0; x += 1.9) {
    EXPECT_NEAR(m.value(x), std::min(a.value(x), b.value(x)), 1e-6);
  }
}

TEST_P(RandomCurveProperty, MaximumEvaluatesPointwise) {
  Rng rng(GetParam() + 2000);
  const Curve a = random_concave(rng);
  const Curve b = random_concave(rng);
  const Curve m = maximum(a, b);
  for (double x = 0.0; x < 100.0; x += 1.9) {
    EXPECT_NEAR(m.value(x), std::max(a.value(x), b.value(x)), 1e-6);
  }
}

TEST_P(RandomCurveProperty, MinimumOfConcaveIsConcave) {
  Rng rng(GetParam() + 3000);
  const Curve m = minimum(random_concave(rng), random_concave(rng));
  EXPECT_TRUE(m.is_concave()) << m.to_string();
}

TEST_P(RandomCurveProperty, ConvolutionIsDominatedByBothInputsPlusOffset) {
  Rng rng(GetParam() + 4000);
  const Curve a = random_concave(rng);
  const Curve b = random_concave(rng);
  const Curve c = convolve_concave(a, b);
  // (a (*) b)(t) <= a(t) + b(0) and <= b(t) + a(0).
  for (double x = 0.0; x < 60.0; x += 2.3) {
    EXPECT_LE(c.value(x), a.value(x) + b.value(0.0) + 1e-6);
    EXPECT_LE(c.value(x), b.value(x) + a.value(0.0) + 1e-6);
  }
}

TEST_P(RandomCurveProperty, DeconvolutionDominatesInput) {
  Rng rng(GetParam() + 5000);
  const Curve a = random_concave(rng);
  const double rate = a.slope_after(0.0) + rng.uniform_real(1.0, 50.0);
  const double latency = rng.uniform_real(0.0, 10.0);
  const Curve out = deconvolve_concave_rl(a, rate, latency);
  // alpha (/) beta >= alpha always (beta(0) = 0 admissible u = 0 at t).
  for (double x = 0.0; x < 60.0; x += 2.3) {
    EXPECT_GE(out.value(x), a.value(x) - 1e-6);
  }
}

TEST_P(RandomCurveProperty, HorizontalDeviationIsAchievedNowhereExceeded) {
  Rng rng(GetParam() + 6000);
  const Curve alpha = random_concave(rng);
  const double rate = alpha.final_slope() + rng.uniform_real(1.0, 100.0);
  const double latency = rng.uniform_real(0.0, 20.0);
  const Curve beta = Curve::rate_latency(rate, latency);
  const double h = horizontal_deviation(alpha, beta);
  // Definition check on a dense grid: alpha(t) <= beta(t + h).
  for (double t = 0.0; t < 120.0; t += 0.37) {
    EXPECT_LE(alpha.value(t), beta.value(t + h) + 1e-5)
        << "t=" << t << " h=" << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCurveProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace afdx::minplus

namespace afdx::minplus {
namespace {

// --- Brute-force checks against the textbook definitions --------------------

class BruteForce : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Curve random_concave(Rng& rng) {
    const double burst = rng.uniform_real(0.0, 500.0);
    minplus::PointVec pts{{0.0, burst}};
    double x = 0.0, y = burst;
    double slope = rng.uniform_real(40.0, 150.0);
    const int n = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n; ++i) {
      const double dx = rng.uniform_real(1.0, 15.0);
      x += dx;
      y += slope * dx;
      pts.push_back({x, y});
      slope *= rng.uniform_real(0.4, 0.9);
    }
    return Curve(std::move(pts), slope);
  }
};

TEST_P(BruteForce, HorizontalDeviationMatchesDefinition) {
  Rng rng(GetParam() + 100);
  const Curve alpha = random_concave(rng);
  const double rate = alpha.final_slope() + rng.uniform_real(5.0, 80.0);
  const double latency = rng.uniform_real(0.0, 30.0);
  const Curve beta = Curve::rate_latency(rate, latency);
  const double h = horizontal_deviation(alpha, beta);

  // sup over a dense grid of inf{d : alpha(t) <= beta(t+d)}.
  double brute = 0.0;
  for (double t = 0.0; t <= 200.0; t += 0.1) {
    // beta^{-1}(alpha(t)) - t computed directly for rate-latency beta.
    const double need = alpha.value(t);
    const double d = (need <= 0.0 ? 0.0 : latency + need / rate) - t;
    brute = std::max(brute, d);
  }
  EXPECT_NEAR(h, brute, 0.2) << "h must match the definition's sup";
  EXPECT_GE(h, brute - 1e-9) << "h must never be below the definition";
}

TEST_P(BruteForce, VerticalDeviationMatchesDefinition) {
  Rng rng(GetParam() + 200);
  const Curve alpha = random_concave(rng);
  const double rate = alpha.final_slope() + rng.uniform_real(5.0, 80.0);
  const Curve beta = Curve::rate_latency(rate, rng.uniform_real(0.0, 30.0));
  const double v = vertical_deviation(alpha, beta);
  double brute = 0.0;
  for (double t = 0.0; t <= 200.0; t += 0.1) {
    brute = std::max(brute, alpha.value(t) - beta.value(t));
  }
  EXPECT_GE(v, brute - 1e-9);
  // The brute-force grid (step 0.1) undershoots the sup by at most
  // step * (alpha slope + rate).
  EXPECT_NEAR(v, brute, 30.0);
}

TEST_P(BruteForce, ConvexConvolutionMatchesDefinition) {
  Rng rng(GetParam() + 300);
  const Curve a = Curve::rate_latency(rng.uniform_real(10.0, 100.0),
                                      rng.uniform_real(0.0, 20.0));
  const Curve b = Curve::rate_latency(rng.uniform_real(10.0, 100.0),
                                      rng.uniform_real(0.0, 20.0));
  const Curve c = convolve_convex(a, b);
  for (double t = 0.0; t <= 80.0; t += 2.1) {
    double brute = 1e300;
    for (double s = 0.0; s <= t + 1e-12; s += 0.05) {
      brute = std::min(brute, a.value(s) + b.value(t - s));
    }
    // The sampled inf overshoots the true inf by at most step * max rate.
    EXPECT_LE(c.value(t), brute + 1e-9) << "t=" << t;
    EXPECT_NEAR(c.value(t), brute, 6.0) << "t=" << t;
  }
}

TEST_P(BruteForce, ResidualServiceMatchesDefinition) {
  Rng rng(GetParam() + 400);
  const Curve alpha = random_concave(rng);
  const double rate = alpha.final_slope() + rng.uniform_real(10.0, 120.0);
  const Curve beta = Curve::rate_latency(rate, rng.uniform_real(0.0, 20.0));
  const double blocking = rng.uniform_real(0.0, 2000.0);
  const Curve r = residual_service(beta, alpha, blocking);
  for (double t = 0.0; t <= 300.0; t += 1.3) {
    const double expected =
        std::max(0.0, beta.value(t) - alpha.value(t) - blocking);
    EXPECT_NEAR(r.value(t), expected, 1e-3) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForce,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace afdx::minplus

// Tests for the combined method and the Table-I / Fig-5 / Fig-6 statistics.
#include "analysis/comparison.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "gen/industrial.hpp"

namespace afdx::analysis {
namespace {

TEST(Comparison, CombinedIsPerPathMinimum) {
  const TrafficConfig cfg = config::sample_config();
  const Comparison c = compare(cfg);
  ASSERT_EQ(c.combined.size(), c.netcalc.size());
  for (std::size_t i = 0; i < c.combined.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.combined[i], std::min(c.netcalc[i], c.trajectory[i]));
  }
}

TEST(Comparison, CombinedNeverWorseThanNetcalc) {
  const TrafficConfig cfg = config::illustrative_config();
  const Comparison c = compare(cfg);
  const BenefitStats s = benefit_stats(c.netcalc, c.combined);
  EXPECT_GE(s.min, 0.0);
  EXPECT_GE(s.mean, 0.0);
}

TEST(Comparison, BenefitStatsOnKnownVectors) {
  const std::vector<Microseconds> ref{100.0, 200.0, 400.0};
  const std::vector<Microseconds> cand{90.0, 220.0, 400.0};
  const BenefitStats s = benefit_stats(ref, cand);
  EXPECT_NEAR(s.mean, (0.10 - 0.10 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(s.max, 0.10, 1e-12);
  EXPECT_NEAR(s.min, -0.10, 1e-12);
  EXPECT_NEAR(s.wins_fraction, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.paths, 3u);
}

TEST(Comparison, BenefitStatsValidatesInput) {
  EXPECT_THROW((void)benefit_stats({1.0}, {1.0, 2.0}), Error);
}

TEST(Comparison, BenefitStatsEmptyInputYieldsZeros) {
  const BenefitStats s = benefit_stats({}, {});
  EXPECT_EQ(s.paths, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.wins_fraction, 0.0);
}

TEST(Comparison, BenefitStatsSkipsNonPositiveReferences) {
  // The zero-reference pair cannot express a relative benefit and must not
  // be divided by; only the 100 -> 50 pair counts.
  const BenefitStats s = benefit_stats({0.0, 100.0}, {1.0, 50.0});
  EXPECT_EQ(s.paths, 1u);
  EXPECT_NEAR(s.mean, 0.5, 1e-12);
  EXPECT_NEAR(s.max, 0.5, 1e-12);
  EXPECT_NEAR(s.min, 0.5, 1e-12);
  EXPECT_NEAR(s.wins_fraction, 1.0, 1e-12);

  const BenefitStats none = benefit_stats({0.0, -1.0}, {1.0, 1.0});
  EXPECT_EQ(none.paths, 0u);
  EXPECT_EQ(none.mean, 0.0);
}

TEST(Comparison, MeanBenefitByBagCoversAllBags) {
  gen::IndustrialOptions o;
  o.vl_count = 120;
  o.end_system_count = 24;
  const TrafficConfig cfg = gen::industrial_config(o);
  const Comparison c = compare(cfg);
  const auto by_bag = mean_benefit_by_bag(cfg, c);
  EXPECT_GE(by_bag.size(), 3u);
  // Sorted by BAG, every bucket from the harmonic ladder.
  for (std::size_t i = 1; i < by_bag.size(); ++i) {
    EXPECT_LT(by_bag[i - 1].first, by_bag[i].first);
  }
  // Buckets must average only existing paths: recompute one by hand.
  const Microseconds probe = by_bag.front().first;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < cfg.all_paths().size(); ++i) {
    if (cfg.vl(cfg.all_paths()[i].vl).bag == probe) {
      total += (c.netcalc[i] - c.trajectory[i]) / c.netcalc[i];
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_NEAR(by_bag.front().second, total / n, 1e-12);
}

TEST(Comparison, WcncWinRatioBySmaxIsAFraction) {
  gen::IndustrialOptions o;
  o.vl_count = 120;
  o.end_system_count = 24;
  const TrafficConfig cfg = gen::industrial_config(o);
  const Comparison c = compare(cfg);
  const auto by_smax = wcnc_win_ratio_by_smax(cfg, c, 200);
  EXPECT_GE(by_smax.size(), 3u);
  for (const auto& [bucket, ratio] : by_smax) {
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
    EXPECT_EQ(bucket % 200, 0u);
  }
}

TEST(Comparison, WcncWinRatioRejectsZeroBucket) {
  const TrafficConfig cfg = config::sample_config();
  const Comparison c = compare(cfg);
  EXPECT_THROW(wcnc_win_ratio_by_smax(cfg, c, 0), Error);
}

TEST(Comparison, SampleConfigHeadlineNumbers) {
  // The reproduction's anchor values (see EXPERIMENTS.md): trajectory 272,
  // WCNC 276.4 on the paper's sample configuration.
  const TrafficConfig cfg = config::sample_config();
  const Comparison c = compare(cfg);
  EXPECT_NEAR(c.trajectory[0], 272.0, 1e-6);
  EXPECT_NEAR(c.netcalc[0], 276.408, 1e-2);
  EXPECT_NEAR(c.combined[0], 272.0, 1e-6);
}

TEST(Comparison, PessimismStatsOnKnownVectors) {
  // bound / lower: 2.0, 1.5, skipped (lower <= 0), 1.0
  const PessimismStats s =
      pessimism_stats({10.0, 20.0, 0.0, 40.0}, {20.0, 30.0, 99.0, 40.0});
  EXPECT_EQ(s.paths, 3u);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.mean, (2.0 + 1.5 + 1.0) / 3.0);
}

TEST(Comparison, PessimismStatsValidatesInput) {
  EXPECT_THROW((void)pessimism_stats({1.0}, {1.0, 2.0}), Error);
  const PessimismStats empty = pessimism_stats({}, {});
  EXPECT_EQ(empty.paths, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Comparison, AblationOptionsPropagate) {
  const TrafficConfig cfg = config::sample_config();
  netcalc::Options nc;
  nc.grouping = false;
  trajectory::Options tj;
  tj.serialization = false;
  const Comparison c = compare(cfg, nc, tj);
  EXPECT_NEAR(c.netcalc[0], 318.272, 1e-2);
  EXPECT_NEAR(c.trajectory[0], 312.0, 1e-6);
}

}  // namespace
}  // namespace afdx::analysis

namespace afdx::analysis {
namespace {

TEST(PathBreakdown, HopDelaysSumToThePathBound) {
  const TrafficConfig cfg = config::sample_config();
  const netcalc::Result nc = netcalc::analyze(cfg);
  for (const VlPath& p : cfg.all_paths()) {
    const auto hops = path_breakdown(cfg, nc, PathRef{p.vl, p.dest_index});
    ASSERT_EQ(hops.size(), p.links.size());
    Microseconds total = 0.0;
    for (const auto& hop : hops) total += hop.delay;
    EXPECT_NEAR(total, nc.bound_for(cfg, PathRef{p.vl, p.dest_index}), 1e-9);
  }
}

TEST(PathBreakdown, NamesAndValuesOnSampleConfig) {
  const TrafficConfig cfg = config::sample_config();
  const netcalc::Result nc = netcalc::analyze(cfg);
  const auto hops = path_breakdown(cfg, nc, PathRef{*cfg.find_vl("v1"), 0});
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].port_name, "e1>S1");
  EXPECT_EQ(hops[1].port_name, "S1>S3");
  EXPECT_EQ(hops[2].port_name, "S3>e6");
  EXPECT_NEAR(hops[0].delay, 40.0, 1e-9);
  EXPECT_NEAR(hops[1].delay, 96.8, 1e-9);
  EXPECT_NEAR(hops[2].delay, 139.608, 1e-2);
}

TEST(PathBreakdown, UnknownPathThrows) {
  const TrafficConfig cfg = config::sample_config();
  const netcalc::Result nc = netcalc::analyze(cfg);
  EXPECT_THROW(path_breakdown(cfg, nc, PathRef{99, 0}), Error);
}

}  // namespace
}  // namespace afdx::analysis

#include "faults/scenario.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace afdx::faults {

namespace {

void push_unique(std::vector<LinkId>& links, LinkId id) {
  if (std::find(links.begin(), links.end(), id) == links.end()) {
    links.push_back(id);
  }
}

std::string cable_name(const Network& net, LinkId l) {
  // Canonical direction first so "e1-S1" and "S1-e1" label the same cable.
  const LinkId canonical = std::min(l, net.reverse(l));
  const Link& link = net.link(canonical);
  return net.node(link.source).name + "-" + net.node(link.dest).name;
}

}  // namespace

void add_failed_cable(const Network& net, FaultScenario& scenario,
                      LinkId any_direction) {
  AFDX_REQUIRE(any_direction < net.link_count(),
               "fault scenario: link id out of range");
  // Canonical direction first so either spelling of a cable yields the same
  // scenario.
  const LinkId canonical = std::min(any_direction, net.reverse(any_direction));
  push_unique(scenario.failed_links, canonical);
  push_unique(scenario.failed_links, net.reverse(canonical));
}

FaultScenario scenario_from_spec(const Network& net, const std::string& spec) {
  FaultScenario scenario;
  scenario.name = spec;
  AFDX_REQUIRE(!spec.empty(), "fault scenario: empty spec");

  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    AFDX_REQUIRE(!item.empty(), "fault scenario '" + spec + "': empty element");

    const std::size_t colon = item.find(':');
    AFDX_REQUIRE(colon != std::string::npos,
                 "fault scenario element '" + item +
                     "': expected link:<a>-<b>, switch:<name> or es:<name>");
    const std::string kind = item.substr(0, colon);
    const std::string arg = item.substr(colon + 1);

    if (kind == "link") {
      const std::size_t dash = arg.find('-');
      AFDX_REQUIRE(dash != std::string::npos && dash > 0 &&
                       dash + 1 < arg.size(),
                   "fault scenario element '" + item +
                       "': expected link:<nodeA>-<nodeB>");
      const auto a = net.find_node(arg.substr(0, dash));
      const auto b = net.find_node(arg.substr(dash + 1));
      AFDX_REQUIRE(a.has_value() && b.has_value(),
                   "fault scenario element '" + item + "': unknown node");
      const auto link = net.link_between(*a, *b);
      AFDX_REQUIRE(link.has_value(), "fault scenario element '" + item +
                                         "': no such cable");
      add_failed_cable(net, scenario, *link);
    } else if (kind == "switch" || kind == "es") {
      const auto node = net.find_node(arg);
      AFDX_REQUIRE(node.has_value(),
                   "fault scenario element '" + item + "': unknown node");
      AFDX_REQUIRE(kind == "switch" ? net.is_switch(*node)
                                    : net.is_end_system(*node),
                   "fault scenario element '" + item + "': node '" + arg +
                       "' is not a " +
                       (kind == "switch" ? "switch" : "end system"));
      if (std::find(scenario.failed_nodes.begin(), scenario.failed_nodes.end(),
                    *node) == scenario.failed_nodes.end()) {
        scenario.failed_nodes.push_back(*node);
      }
    } else {
      throw Error("fault scenario element '" + item +
                  "': unknown kind '" + kind + "'");
    }
  }
  return scenario;
}

std::vector<FaultScenario> single_link_scenarios(const TrafficConfig& config,
                                                 bool used_only) {
  const Network& net = config.network();
  std::vector<FaultScenario> scenarios;
  for (LinkId l = 0; l < net.link_count(); ++l) {
    if (net.reverse(l) < l) continue;  // one scenario per cable
    if (used_only && config.vls_on_link(l).empty() &&
        config.vls_on_link(net.reverse(l)).empty()) {
      continue;
    }
    FaultScenario s;
    s.name = "link " + cable_name(net, l);
    add_failed_cable(net, s, l);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

std::vector<FaultScenario> single_switch_scenarios(const TrafficConfig& config,
                                                   bool used_only) {
  const Network& net = config.network();
  std::vector<FaultScenario> scenarios;
  for (NodeId sw : net.switches()) {
    if (used_only) {
      bool used = false;
      for (LinkId l : net.links_from(sw)) {
        if (!config.vls_on_link(l).empty()) {
          used = true;
          break;
        }
      }
      if (!used) continue;
    }
    FaultScenario s;
    s.name = "switch " + net.node(sw).name;
    s.failed_nodes.push_back(sw);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

}  // namespace afdx::faults

// Candidate-sweep kernels for the trajectory analyzer's hot loop.
//
// compute_prefix maximizes R(t) = W(t) + consts - t over an ascending,
// deduplicated list of candidate instants t, where W(t) walks the SoA
// (a, c, period) segment columns node by node:
//
//   W(t) = frame_count(t, own) * own_c
//        + sum over nodes of min(sum over node segs of
//                                frame_count(t, a_s, period_s) * c_s, cap)
//
// That sweep is ~98% of a full analysis at the 10k-VL scale and its scalar
// form is latency-bound: the per-node accumulation is one long serial
// add-dependency chain. The AVX2 kernel therefore vectorizes across
// CANDIDATES -- each of the 4 lanes is one candidate t, and every lane
// accumulates the segment columns in the original segment order -- which
// amortizes the dependency chain 4x without reassociating any addition.
//
// Bit-identity contract (asserted by tests/test_trajectory.cpp golden and
// fuzzed grids): both kernels return the exact same bits.
//   * Per lane, every operation (add, div, floor, mul, add-accumulate,
//     min-by-compare, final fold) is the same IEEE-754 operation in the
//     same order as the scalar loop; no reassociation, no FMA contraction
//     (the AVX2 translation unit is built with -ffp-contract=off).
//   * The saturation latch mirrors the scalar branch exactly: a lane's
//     node value is cap when node_sum >= cap (the scalar's min choice,
//     including ties), and the latch is taken from the highest lane --
//     frame counts are nondecreasing in t even in floating point
//     (monotone rounding), so the highest lane saturating implies every
//     later candidate saturates, which is precisely when the scalar loop
//     would have latched by then.
//   * The envelope early-exit is tested at batch heads only. Extra lanes a
//     breaking scalar loop would not have evaluated cannot change the
//     result: for any candidate with envelope - t <= best, monotonicity
//     gives R(t) <= envelope - t <= best, so folding it is a no-op.
//
// Kernel selection: the AVX2 kernel is compiled when the toolchain
// supports it (cmake -DAFDX_SIMD=ON, the default) and dispatched at run
// time only when the CPU reports AVX2. `AFDX_SWEEP=scalar|simd` in the
// environment forces a kind (the bit-identity tests run both in one
// process this way), as does set_active().
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace afdx::trajectory::sweep {

enum class Kind {
  kScalar,
  kSimd,
};

/// SoA view of one prefix's interference columns. `node_begin` has
/// `nodes + 1` entries; node idx owns rows [node_begin[idx],
/// node_begin[idx + 1]) of the a / c / period columns.
struct Columns {
  const Microseconds* a = nullptr;
  const Microseconds* c = nullptr;
  const Microseconds* period = nullptr;
  const std::size_t* node_begin = nullptr;
  const Microseconds* node_cap = nullptr;
  std::size_t nodes = 0;
  /// The study flow's own (first) segment.
  Microseconds own_a = 0.0;
  Microseconds own_c = 0.0;
  Microseconds own_period = 0.0;
};

/// True when the AVX2 kernel is both compiled in and supported by the CPU.
[[nodiscard]] bool simd_available() noexcept;

/// The kernel used by run() callers that pass active(). Defaults to kSimd
/// when simd_available(), overridable by AFDX_SWEEP=scalar|simd in the
/// environment (read once) and by set_active().
[[nodiscard]] Kind active() noexcept;
void set_active(Kind kind) noexcept;
[[nodiscard]] const char* name(Kind kind) noexcept;

/// Sweeps `candidates[0..count)` (ascending, deduplicated) and returns the
/// final max of best and every R(t) = W(t) + consts - t, with the envelope
/// early-exit. `saturated` has cols.nodes entries, zeroed by the caller;
/// it carries the per-node saturation latch across candidates.
/// kind == kSimd requires simd_available().
[[nodiscard]] Microseconds run(Kind kind, const Columns& cols,
                               const Microseconds* candidates,
                               std::size_t count, Microseconds consts,
                               Microseconds envelope, Microseconds best,
                               char* saturated) noexcept;

namespace detail {
/// Scalar kernel starting at candidate index `begin` (the AVX2 kernel
/// finishes its remainder tail here). Exact port of the pre-SIMD loop.
[[nodiscard]] Microseconds run_scalar(const Columns& cols,
                                      const Microseconds* candidates,
                                      std::size_t begin, std::size_t count,
                                      Microseconds consts,
                                      Microseconds envelope, Microseconds best,
                                      char* saturated) noexcept;
#if defined(AFDX_SWEEP_AVX2)
[[nodiscard]] Microseconds run_avx2(const Columns& cols,
                                    const Microseconds* candidates,
                                    std::size_t count, Microseconds consts,
                                    Microseconds envelope, Microseconds best,
                                    char* saturated) noexcept;
#endif
}  // namespace detail

}  // namespace afdx::trajectory::sweep

// P1 -- single-link fault sweep: full per-scenario recomputation versus
// the dirty-cone incremental path (ScenarioOptions::incremental). Both
// sweeps produce bit-identical reports (checked here); the interesting
// number is the wall-clock ratio, since the incremental path transplants
// every port outside the failed element's dirty cone from the healthy
// baseline run.
#include <chrono>

#include "bench_util.hpp"
#include "faults/degrade.hpp"
#include "faults/report.hpp"
#include "faults/scenario.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

gen::IndustrialOptions sweep_config(bool quick) {
  gen::IndustrialOptions opts;
  if (quick) {
    opts.vl_count = 500;
    opts.end_system_count = 60;
  }
  return opts;
}

double wall_ms(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::size_t report_mismatches(const faults::DegradationReport& a,
                              const faults::DegradationReport& b) {
  std::size_t bad = 0;
  if (a.scenarios.size() != b.scenarios.size()) return 1;
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    if (a.scenarios[s].paths.size() != b.scenarios[s].paths.size()) {
      ++bad;
      continue;
    }
    for (std::size_t p = 0; p < a.scenarios[s].paths.size(); ++p) {
      const faults::PathDegradation& pa = a.scenarios[s].paths[p];
      const faults::PathDegradation& pb = b.scenarios[s].paths[p];
      if (pa.degraded_us != pb.degraded_us || pa.skew_us != pb.skew_us ||
          pa.state != pb.state) {
        ++bad;
      }
    }
  }
  return bad;
}

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "P1: single-link fault sweep, full recomputation vs dirty-cone "
         "incremental re-analysis\n\n";

  const TrafficConfig cfg = gen::industrial_config(sweep_config(cli.quick));
  const auto scenarios = faults::single_link_scenarios(cfg);
  out << "configuration: " << cfg.vl_count() << " VLs, "
      << cfg.all_paths().size() << " VL paths, " << scenarios.size()
      << " single-link scenarios\n\n";

  faults::ScenarioOptions full;
  full.incremental = false;
  faults::ScenarioOptions incremental;  // incremental = true is the default

  const auto t0 = std::chrono::steady_clock::now();
  const faults::DegradationReport full_report =
      faults::analyze_scenarios(cfg, scenarios, full);
  const auto t1 = std::chrono::steady_clock::now();
  const faults::DegradationReport inc_report =
      faults::analyze_scenarios(cfg, scenarios, incremental);
  const auto t2 = std::chrono::steady_clock::now();

  const double full_ms = wall_ms(t0, t1);
  const double inc_ms = wall_ms(t1, t2);
  const double speedup = inc_ms > 0.0 ? full_ms / inc_ms : 0.0;
  const std::size_t mismatches = report_mismatches(full_report, inc_report);

  report::Table t({"Sweep", "wall [ms]", "speedup"});
  t.add_row({"full recompute", report::fmt(full_ms, 1), "1.00x"});
  t.add_row({"incremental", report::fmt(inc_ms, 1),
             report::fmt(speedup, 2) + "x"});
  t.print(out);
  out << "\nreports bit-identical: " << (mismatches == 0 ? "yes" : "NO")
      << " (" << mismatches << " mismatching records)\n";

  const auto json_path = cli.resolve_json_path("fault_sweep");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc =
        benchutil::begin_bench_json(*json_path, "fault_sweep", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("vls", cfg.vl_count())
          .field("paths", cfg.all_paths().size())
          .field("scenarios", scenarios.size());
      w.end_object();
      w.key("results").begin_object();
      w.field("full_wall_ms", full_ms)
          .field("incremental_wall_ms", inc_ms)
          .field("speedup", speedup)
          .field("mismatching_records", mismatches);
      w.end_object();
      obs::write_registry_json(w);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_FaultSweepFull(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config(sweep_config(true));
  const auto scenarios = faults::single_link_scenarios(cfg);
  faults::ScenarioOptions options;
  options.incremental = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::analyze_scenarios(cfg, scenarios, options));
  }
}
BENCHMARK(BM_FaultSweepFull)->Unit(benchmark::kMillisecond);

void BM_FaultSweepIncremental(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config(sweep_config(true));
  const auto scenarios = faults::single_link_scenarios(cfg);
  faults::ScenarioOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::analyze_scenarios(cfg, scenarios, options));
  }
}
BENCHMARK(BM_FaultSweepIncremental)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

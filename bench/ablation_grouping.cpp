// E8 -- ablation of the serialization refinements (the paper's Section II.B
// narrative): grouping on/off for WCNC and serialization on/off for the
// trajectory approach, on the industrial-like configuration.
#include <numeric>

#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

double mean_of(const std::vector<Microseconds>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

void run_experiment(std::ostream& out) {
  out << "E8 / ablation: serialization refinements on the industrial-like "
         "configuration\n\n";

  const TrafficConfig cfg = gen::industrial_config();

  netcalc::Options nc_plain;
  nc_plain.grouping = false;
  trajectory::Options tj_plain;
  tj_plain.serialization = false;
  trajectory::Options tj_loose;
  tj_loose.loose_boundary_packet = true;

  const auto nc = netcalc::analyze(cfg).path_bounds;
  const auto nc0 = netcalc::analyze(cfg, nc_plain).path_bounds;
  const auto tj = trajectory::analyze(cfg).path_bounds;
  const auto tj0 = trajectory::analyze(cfg, tj_plain).path_bounds;
  const auto tjl = trajectory::analyze(cfg, tj_loose).path_bounds;

  report::Table t({"variant", "mean bound (us)", "vs refined (%)"});
  auto gain = [](double base, double refined) {
    return (base - refined) / base * 100.0;
  };
  t.add_row({"WCNC grouped (paper default)", report::fmt(mean_of(nc)), "--"});
  t.add_row({"WCNC without grouping", report::fmt(mean_of(nc0)),
             "+" + report::fmt(gain(mean_of(nc0), mean_of(nc)))});
  t.add_row({"Trajectory serialized (default)", report::fmt(mean_of(tj)), "--"});
  t.add_row({"Trajectory without serialization", report::fmt(mean_of(tj0)),
             "+" + report::fmt(gain(mean_of(tj0), mean_of(tj)))});
  t.add_row({"Trajectory, loose boundary packet", report::fmt(mean_of(tjl)),
             "+" + report::fmt(gain(mean_of(tjl), mean_of(tj)))});
  t.print(out);

  out << "\npaper narrative: the grouping technique brought a double-digit\n"
         "percent improvement to WCNC on the industrial configuration, and\n"
         "its introduction into the trajectory approach brought similar\n"
         "improvements.\n";
}

void BM_NetcalcNoGrouping(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  netcalc::Options o;
  o.grouping = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(netcalc::analyze(cfg, o));
  }
}
BENCHMARK(BM_NetcalcNoGrouping)->Unit(benchmark::kMillisecond);

void BM_TrajectoryNoSerialization(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  trajectory::Options o;
  o.serialization = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trajectory::analyze(cfg, o));
  }
}
BENCHMARK(BM_TrajectoryNoSerialization)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig4_scenarios.dir/fig3_fig4_scenarios.cpp.o"
  "CMakeFiles/fig3_fig4_scenarios.dir/fig3_fig4_scenarios.cpp.o.d"
  "fig3_fig4_scenarios"
  "fig3_fig4_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig4_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

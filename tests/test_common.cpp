// Unit tests for units, error handling and the RNG wrapper.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace afdx {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(bits_from_bytes(500.0), 4000.0);
  EXPECT_DOUBLE_EQ(microseconds_from_ms(4.0), 4000.0);
  EXPECT_DOUBLE_EQ(rate_from_mbps(100.0), 100.0);
  EXPECT_DOUBLE_EQ(transmission_time(4000.0, 100.0), 40.0);
}

TEST(Units, NearlyEqual) {
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(nearly_equal(1.0, 1.001));
  EXPECT_TRUE(nearly_equal(1.0, 1.5, 0.6));
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_us(123.456), "123.456 us");
  EXPECT_EQ(format_percent(0.1234), "12.34 %");
}

TEST(ErrorHandling, RequireThrowsAfdxError) {
  EXPECT_THROW(AFDX_REQUIRE(false, "boom"), Error);
  EXPECT_NO_THROW(AFDX_REQUIRE(true, "fine"));
}

TEST(ErrorHandling, AssertThrowsLogicErrorWithLocation) {
  try {
    AFDX_ASSERT(1 == 2, "impossible");
    FAIL() << "expected LogicError";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(1);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 500 draws
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform_real(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(4);
  int hits0 = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto idx = rng.weighted_index({0.9, 0.1});
    if (idx == 0) ++hits0;
  }
  EXPECT_GT(hits0, 1600);
  EXPECT_LT(hits0, 1999);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace afdx

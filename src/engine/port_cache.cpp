#include "engine/port_cache.hpp"

#include "obs/counters.hpp"

namespace afdx::engine {

std::optional<netcalc::PortBounds> PortCache::lookup(
    std::uint64_t options_key, LinkId port) const {
  // Process-wide hit/miss counters for the observability registry, on top
  // of the per-engine CacheStats that feed RunMetrics.
  static obs::Counter& hits = obs::registry().counter("engine.cache.hits");
  static obs::Counter& misses =
      obs::registry().counter("engine.cache.misses");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{options_key, port});
  if (it == entries_.end()) {
    ++misses_;
    misses.add();
    return std::nullopt;
  }
  ++hits_;
  hits.add();
  return it->second;
}

void PortCache::store(std::uint64_t options_key, LinkId port,
                      const netcalc::PortBounds& bounds) {
  static obs::Counter& depth =
      obs::registry().counter("engine.cache.entries.max");
  std::lock_guard<std::mutex> lock(mu_);
  entries_.emplace(Key{options_key, port}, bounds);
  depth.record_max(entries_.size());
}

void PortCache::seed(std::uint64_t options_key, LinkId port,
                     const netcalc::PortBounds& bounds) {
  static obs::Counter& seeded =
      obs::registry().counter("engine.cache.seeded");
  std::lock_guard<std::mutex> lock(mu_);
  entries_[Key{options_key, port}] = bounds;
  ++seeded_;
  seeded.add();
}

void PortCache::evict(std::uint64_t options_key,
                      const std::vector<LinkId>& ports) {
  static obs::Counter& evictions =
      obs::registry().counter("engine.cache.evictions");
  std::lock_guard<std::mutex> lock(mu_);
  for (LinkId port : ports) {
    if (entries_.erase(Key{options_key, port}) > 0) {
      ++evicted_;
      evictions.add();
    }
  }
}

bool PortCache::covers(std::uint64_t options_key,
                       const std::vector<LinkId>& ports) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (LinkId port : ports) {
    if (entries_.find(Key{options_key, port}) == entries_.end()) return false;
  }
  return true;
}

std::size_t PortCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats PortCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CacheStats{hits_, misses_, seeded_, evicted_};
}

void PortCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace afdx::engine

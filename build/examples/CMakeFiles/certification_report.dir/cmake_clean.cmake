file(REMOVE_RECURSE
  "CMakeFiles/certification_report.dir/certification_report.cpp.o"
  "CMakeFiles/certification_report.dir/certification_report.cpp.o.d"
  "certification_report"
  "certification_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certification_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/afdx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/afdx_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/vl/CMakeFiles/afdx_vl.dir/DependInfo.cmake"
  "/root/repo/build/src/minplus/CMakeFiles/afdx_minplus.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/afdx_config.dir/DependInfo.cmake"
  "/root/repo/build/src/netcalc/CMakeFiles/afdx_netcalc.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/afdx_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/afdx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/afdx_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/afdx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/redundancy/CMakeFiles/afdx_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/sfa/CMakeFiles/afdx_sfa.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/afdx_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Evaluation beyond the paper: the capacity frontier. The paper's
// industrial configuration is ~1000 VLs; ROADMAP item 2 asks how far the
// engine scales past that. This bench sweeps the hierarchical multi-domain
// generator from the paper-scale single domain (500 VLs) to
// airliner-and-beyond networks (10k VLs over 8 domains, 66 switches) and
// records the paths/second-vs-size frontier -- the number a regression in
// the trajectory hot path moves first.
//
// Every rung is analyzed through AnalysisEngine::run_streaming: per-path
// results are folded into the running summary as they complete and no
// per-path vector or report is ever materialized, which is what keeps the
// 10k-VL rung (and the 100k-VL configurations the generator can produce)
// inside a sane memory budget.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

struct Rung {
  int domains = 1;
  int vls_per_domain = 500;

  [[nodiscard]] int total_vls() const { return domains * vls_per_domain; }
};

gen::IndustrialOptions rung_options(const Rung& r) {
  gen::IndustrialOptions go;
  go.domains = r.domains;
  // switch_count / end_system_count are per domain: every rung keeps the
  // paper's 8-switch, 60-end-system domain shape and scales by domain
  // count, so per-port interference stays avionics-like while the network
  // grows.
  go.vl_count = r.total_vls();
  return go;
}

struct RungResult {
  Rung rung;
  std::size_t switches = 0;
  std::size_t end_systems = 0;
  std::size_t paths = 0;
  Microseconds gen_wall_us = 0.0;
  engine::StreamSummary summary;
  std::size_t sink_calls = 0;
};

RungResult run_rung(const Rung& rung) {
  RungResult out;
  out.rung = rung;

  const auto g0 = std::chrono::steady_clock::now();
  const TrafficConfig cfg = gen::industrial_config(rung_options(rung));
  out.gen_wall_us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - g0)
                        .count();
  out.switches = cfg.network().switches().size();
  out.end_systems = cfg.network().end_systems().size();
  out.paths = cfg.all_paths().size();

  engine::AnalysisEngine engine(cfg, engine::Options{0});
  out.summary = engine.run_streaming(
      [&](const engine::StreamPathResult&) { ++out.sink_calls; });
  return out;
}

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "EXT / capacity frontier: paths/second vs network size\n\n";

  // 500 VLs is the paper-scale single domain; 2k and 10k scale by domains
  // (the full run adds 20k and 100k rungs -- the latter is the flattened
  // frontier's headline size). Sizes must be strictly increasing --
  // scripts/validate_bench_json.py asserts the frontier stays monotone.
  std::vector<Rung> rungs = {{1, 500}, {2, 1000}, {8, 1250}};
  if (!cli.quick) {
    rungs.push_back({16, 1250});
    rungs.push_back({80, 1250});
  }

  std::vector<RungResult> frontier;
  benchutil::OverheadReport overhead;
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    if (i == 0) {
      // The paper-scale rung doubles as the tracer-overhead workload.
      RungResult r;
      overhead = benchutil::measure_run_overhead(
          [&] { r = run_rung(rungs[i]); });
      frontier.push_back(std::move(r));
    } else {
      frontier.push_back(run_rung(rungs[i]));
    }
  }

  report::Table t({"VLs", "domains", "switches", "paths", "gen (ms)",
                   "analysis (ms)", "paths/s", "ok/failed/skipped"});
  for (const RungResult& r : frontier) {
    t.add_row({std::to_string(r.rung.total_vls()),
               std::to_string(r.rung.domains), std::to_string(r.switches),
               std::to_string(r.paths),
               report::fmt(r.gen_wall_us / 1000.0, 1),
               report::fmt(r.summary.wall_us / 1000.0, 1),
               report::fmt(r.summary.paths_per_second, 0),
               std::to_string(r.summary.ok) + "/" +
                   std::to_string(r.summary.failed) + "/" +
                   std::to_string(r.summary.skipped)});
  }
  t.print(out);
  out << "\nEvery rung streams its per-path results through the sink (one\n"
         "record at a time) and keeps only the running summary; the per-path\n"
         "bounds are bit-identical to a materializing run_resilient.\n\n";
  benchutil::print_overhead(out, overhead);

  const auto json_path = cli.resolve_json_path("capacity");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc =
        benchutil::begin_bench_json(*json_path, "capacity", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("switches_per_domain", 8)
          .field("end_systems_per_domain", 60)
          .field("threads", 0)
          .field("streaming", true);
      w.end_object();
      w.key("results").begin_object();
      w.key("frontier").begin_array();
      for (const RungResult& r : frontier) {
        w.begin_object()
            .field("vls", r.rung.total_vls())
            .field("domains", r.rung.domains)
            .field("switches", r.switches)
            .field("end_systems", r.end_systems)
            .field("paths", r.paths)
            .field("gen_wall_us", r.gen_wall_us)
            .field("analysis_wall_us", r.summary.wall_us)
            .field("paths_per_second", r.summary.paths_per_second)
            .field("ok", r.summary.ok)
            .field("failed", r.summary.failed)
            .field("skipped", r.summary.skipped)
            .field("sink_calls", r.sink_calls)
            .field("max_combined_us", r.summary.max_combined)
            .field("mean_combined_us", r.summary.mean_combined())
            .end_object();
      }
      w.end_array();
      w.end_object();
      obs::write_registry_json(w);
      benchutil::write_overhead_json(w, overhead);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_Capacity500(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config(rung_options({1, 500}));
  for (auto _ : state) {
    engine::AnalysisEngine engine(cfg, engine::Options{0});
    benchmark::DoNotOptimize(engine.run_streaming(nullptr));
  }
}
BENCHMARK(BM_Capacity500)->Unit(benchmark::kMillisecond);

void BM_Capacity2000(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config(rung_options({2, 1000}));
  for (auto _ : state) {
    engine::AnalysisEngine engine(cfg, engine::Options{0});
    benchmark::DoNotOptimize(engine.run_streaming(nullptr));
  }
}
BENCHMARK(BM_Capacity2000)->Unit(benchmark::kMillisecond);

void BM_Generate10k(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::industrial_config(rung_options({8, 1250})));
  }
}
BENCHMARK(BM_Generate10k)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

file(REMOVE_RECURSE
  "CMakeFiles/afdx_minplus.dir/curve.cpp.o"
  "CMakeFiles/afdx_minplus.dir/curve.cpp.o.d"
  "CMakeFiles/afdx_minplus.dir/operations.cpp.o"
  "CMakeFiles/afdx_minplus.dir/operations.cpp.o.d"
  "libafdx_minplus.a"
  "libafdx_minplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_minplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bound_tightness.dir/bound_tightness.cpp.o"
  "CMakeFiles/bound_tightness.dir/bound_tightness.cpp.o.d"
  "bound_tightness"
  "bound_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Trajectory-approach analyzer for AFDX FIFO networks.
//
// Reconstructed from the DATE 2010 paper, Martin & Minet (IPDPS 2006) and
// Bauer et al. (ETFA 2009) -- see DESIGN.md section 3.2. For a flow i whose
// path crosses the output ports (h_1 ... h_q), the worst-case end-to-end
// delay of a packet generated at time t within the first-node busy period
// is bounded by R_i(t) = W_i(t) + C_i(h_q) - t with
//
//   W_i(t) = sum over flows j crossing the path (segment by segment, first
//            shared node f) of N_j(t) * C_j,
//            N_j(t) = (1 + floor((t + A_ij) / BAG_j))+,
//            A_ij   = jitter of j at f + jitter of i at f,
//          + sum over h_2..h_q of max_{j in fl(h_k)} C_j(h_k)   [the
//            double-counted busy-period boundary packet -- the paper's
//            stated pessimism source for flows with small s_max]
//          + sum over h_2..h_q of technological latencies
//          - C_i(h_1),
//
// maximized exactly over the finite candidate set of t (frame-count jump
// points) within the first busy period.
//
// Serialization refinement (enabled by default; the paper's "grouping
// technique successfully introduced in the trajectory approach"): under
// FIFO, the flows first met at node f can only delay the packet through
// frames that are *queued at f when the packet arrives* (later frames stay
// behind it on the rest of the shared route). Their counted work is
// therefore capped by the worst-case FIFO backlog of the port, obtained
// from the same leaky-bucket envelopes the AFDX admission control
// guarantees (vertical deviation, see netcalc). This reconstruction is
// validated two ways (DESIGN.md): analytic bounds dominate every simulated
// schedule, and the published qualitative behaviours emerge.
//
// With `serialization = false` the analyzer reproduces the historical,
// pre-grouping trajectory approach instead: the worst-case scenario then
// assumes the first frames of flows sharing an input link reach the merge
// node simultaneously -- an impossible pattern (paper Fig. 3) whose cost is
// the serialization surcharge sum_g (sum_{j in g} C_j - max_{j in g} C_j).
//
// The jitter of a flow at a node is obtained by running the analysis
// recursively on the flow's path prefix (memoized per (VL, link); a cyclic
// dependency between prefixes is reported as an error -- industrial AFDX
// configurations are feed-forward).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::trajectory {

class PrefixCache;

struct Options {
  /// Apply the serialization (grouping) refinement. When false, the
  /// historical simultaneous-arrival worst case is used instead.
  bool serialization = true;
  /// Bound the double-counted busy-period boundary packet by the largest
  /// frame of ANY VL met in the node (the paper's wording) instead of the
  /// refined set of VLs actually routed through the node transition.
  bool loose_boundary_packet = false;
  /// Hard cap on busy-period fixed-point rounds (guards divergence when the
  /// summed path utilization is >= 1).
  int max_busy_iterations = 10000;
};

/// Full analysis result.
struct Result {
  /// End-to-end bounds, aligned with TrafficConfig::all_paths().
  std::vector<Microseconds> path_bounds;

  /// Bound for a specific path; throws when the path does not exist.
  /// O(1) after the first call: the (vl, dest_index) -> path index map is
  /// built once and reused (comparison code calls this per path, which
  /// used to make the lookup O(paths^2) overall on large networks).
  [[nodiscard]] Microseconds bound_for(const TrafficConfig& config,
                                       PathRef ref) const;

 private:
  /// Lazily built lookup index; keyed (vl << 32) | dest_index.
  mutable std::unordered_map<std::uint64_t, std::size_t> path_index_;
};

/// Trajectory analyzer. Holds the memoized per-(VL, link) prefix bounds so
/// repeated queries stay cheap.
class Analyzer {
 public:
  explicit Analyzer(const TrafficConfig& config, const Options& options = {});
  ~Analyzer();  // out of line: ScratchFrame is incomplete here

  /// Bounds for every VL path of the configuration.
  [[nodiscard]] Result analyze();

  /// Bound for one path.
  [[nodiscard]] Microseconds path_bound(PathRef ref);

  /// Worst-case time from generation to the end of transmission on `link`
  /// (a link of the VL's tree). This is the prefix bound the recursion is
  /// built on; exposed for tests.
  [[nodiscard]] Microseconds bound_to_link(VlId vl, LinkId link);

  /// Best-case (jitter-free) time from generation to *arrival in the queue*
  /// of `link`. Exposed for tests.
  [[nodiscard]] Microseconds min_arrival_at(VlId vl, LinkId link) const;

  /// Worst-case time from generation to *arrival in the queue* of `link`.
  [[nodiscard]] Microseconds max_arrival_at(VlId vl, LinkId link);

  /// Injects precomputed per-port serialization caps (worst-case FIFO
  /// queue content in time units at the port's rate, one entry per link,
  /// +infinity for unused/uncapped ports), replacing the internal envelope
  /// analysis. The parallel engine shares one WCNC run across all its
  /// shard-local analyzers this way instead of recomputing it per thread.
  void set_backlog_caps(std::vector<Microseconds> caps);

  /// Attaches a shared prefix cache (thread-safe, owned by the caller,
  /// must outlive the analyzer). Prefix bounds are looked up there after
  /// the instance-local memo misses, and every freshly computed bound is
  /// published back. The caller guarantees every attached analyzer runs
  /// the same (configuration, options, caps) -- the bounds are pure
  /// functions of that triple, so sharing never changes a result.
  void set_prefix_cache(PrefixCache* cache) noexcept { shared_ = cache; }

  /// Where this instance's prefix lookups were answered: the local memo,
  /// the shared cache, or neither (freshly computed). The engine surfaces
  /// these per shard -- with locality-aware VL ordering, neighbouring VLs
  /// share prefixes, so a healthy shard shows a high local hit rate.
  struct CacheCounters {
    std::uint64_t lookups = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t shared_hits = 0;
  };
  [[nodiscard]] const CacheCounters& counters() const noexcept {
    return counters_;
  }

 private:
  /// Per-link precomputation of the crossing flows: predecessor link,
  /// largest-frame transmission time at the link's rate, BAG and release
  /// jitter, in vls_on_link order. Built once per instance; removes the
  /// per-prefix route/hash lookups from the segment-construction loop.
  struct FlowAtLink {
    VlId id = kInvalidVl;
    LinkId pred = kInvalidLink;
    Microseconds c = 0.0;
    Microseconds period = 0.0;
    Microseconds release_jitter = 0.0;
  };

  /// Reusable per-prefix scratch (segment lists, SoA flattening, candidate
  /// buffer, epoch-validated open-segment tables). compute_prefix re-enters
  /// itself through bound_to_link while a frame is mid-construction, so the
  /// scratch is a pool indexed by recursion depth, not flat instance state.
  struct ScratchFrame;

  Microseconds compute_prefix(VlId vl, LinkId last);
  const std::vector<std::vector<FlowAtLink>>& flow_table();

  /// Worst-case FIFO backlog of every used port, in time units at the
  /// port's rate (the serialization caps). Computed lazily from the
  /// leaky-bucket envelopes; empty when the refinement is disabled or the
  /// envelope analysis is infeasible.
  const std::vector<Microseconds>& backlog_caps();

  static std::uint64_t key(VlId vl, LinkId link) {
    return (static_cast<std::uint64_t>(vl) << 32) | link;
  }

  const TrafficConfig& cfg_;
  Options opt_;
  /// Prefix-bound memo, (vl, link) -> bound. Open-addressing flat map:
  /// the segment-construction loop performs one lookup per interference
  /// segment, and node-based std::unordered_map buckets made that the
  /// largest single profile entry on 10k-VL networks.
  common::FlatMap<Microseconds> memo_;
  std::unordered_set<std::uint64_t> in_progress_;
  std::optional<std::vector<Microseconds>> backlog_caps_;
  std::optional<std::vector<std::vector<FlowAtLink>>> flows_;
  /// Memoized min_arrival_at values (each first computed with the exact
  /// chain-walk summation, so memoization cannot perturb a bound).
  mutable common::FlatMap<Microseconds> min_arrival_memo_;
  PrefixCache* shared_ = nullptr;
  /// Scratch pool, one frame per live recursion depth (frames are created
  /// on first use and keep their capacity across prefixes).
  std::vector<std::unique_ptr<ScratchFrame>> scratch_pool_;
  std::size_t scratch_depth_ = 0;
  /// Bump arena for the per-prefix SoA candidate-sweep columns: each
  /// compute_prefix carves its columns here and rewinds to its entry mark
  /// on exit, so the sweep streams the same few hot pages for every prefix
  /// of the shard instead of striding heap-grown vectors. (Columns are
  /// only allocated after the segment recursion returns, so marks nest
  /// strictly and a rewind can never free a caller's columns.)
  common::BumpArena arena_;
  CacheCounters counters_;
};

/// One-shot convenience wrapper.
[[nodiscard]] Result analyze(const TrafficConfig& config,
                             const Options& options = {});

}  // namespace afdx::trajectory

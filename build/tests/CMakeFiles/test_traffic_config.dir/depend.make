# Empty dependencies file for test_traffic_config.
# This may be replaced when dependencies are built.

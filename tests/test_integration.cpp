// Cross-module integration tests: the paper's headline behaviours, end to
// end (see EXPERIMENTS.md for the experiment-by-experiment mapping).
#include <gtest/gtest.h>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "config/serialization.hpp"
#include "gen/industrial.hpp"
#include "sim/simulator.hpp"

namespace afdx {
namespace {

// E1 -- Figures 3/4: the serialization refinement removes the impossible
// simultaneous-arrival scenario; the refined bound is achieved by a real
// schedule (i.e. it is exactly tight here).
TEST(PaperBehaviour, SerializationRefinementMatchesFig3Fig4) {
  const TrafficConfig cfg = config::sample_config();
  trajectory::Options naive;
  naive.serialization = false;
  const Microseconds with = trajectory::analyze(cfg).path_bounds[0];
  const Microseconds without = trajectory::analyze(cfg, naive).path_bounds[0];
  EXPECT_NEAR(with, 272.0, 1e-6);
  EXPECT_NEAR(without, 312.0, 1e-6);

  const sim::Result observed = sim::simulate(cfg, {});
  EXPECT_NEAR(observed.max_delay_for(cfg, PathRef{*cfg.find_vl("v4"), 0}),
              with, 1e-9)
      << "the refined bound must be achieved by the aligned schedule";
}

// The grouping refinement of WCNC brings an improvement of the same order
// as the paper reports (double-digit percentage on shared ports).
TEST(PaperBehaviour, GroupingImprovementMatchesPaperOrder) {
  const TrafficConfig cfg = config::sample_config();
  netcalc::Options plain;
  plain.grouping = false;
  const Microseconds grouped = netcalc::analyze(cfg).path_bounds[0];
  const Microseconds ungrouped = netcalc::analyze(cfg, plain).path_bounds[0];
  const double gain = (ungrouped - grouped) / ungrouped;
  EXPECT_GT(gain, 0.08);
  EXPECT_LT(gain, 0.25);
}

// E5 -- Figure 7: sweep of s_max(v1). WCNC is tighter below the other VLs'
// frame size; the trajectory approach is tighter at and above it, and the
// gap in WCNC's favour widens as s_max(v1) shrinks.
TEST(PaperBehaviour, Fig7SmaxCrossover) {
  std::vector<double> diffs;  // nc - traj
  for (Bytes s : {100u, 300u, 500u, 1000u, 1500u}) {
    config::SampleOptions o;
    o.s_max_v1 = s;
    const TrafficConfig cfg = config::sample_config(o);
    const analysis::Comparison c = analysis::compare(cfg);
    diffs.push_back(c.netcalc[0] - c.trajectory[0]);
  }
  EXPECT_LT(diffs[0], 0.0);  // 100 B: WCNC tighter
  EXPECT_LT(diffs[1], 0.0);  // 300 B: WCNC tighter
  EXPECT_GT(diffs[2], 0.0);  // 500 B: trajectory tighter
  EXPECT_GT(diffs[3], 0.0);
  EXPECT_GT(diffs[4], 0.0);
  EXPECT_LT(diffs[0], diffs[1]);  // pessimism grows as s_max shrinks
}

// E6 -- Figure 8: sweep of BAG(v1). The trajectory bound is flat; the WCNC
// bound decreases monotonically as the BAG grows.
TEST(PaperBehaviour, Fig8BagSweep) {
  std::vector<Microseconds> traj, nc;
  for (double ms : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    config::SampleOptions o;
    o.bag_v1 = microseconds_from_ms(ms);
    const TrafficConfig cfg = config::sample_config(o);
    const analysis::Comparison c = analysis::compare(cfg);
    traj.push_back(c.trajectory[0]);
    nc.push_back(c.netcalc[0]);
  }
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_NEAR(traj[i], traj[0], 1e-6) << "trajectory must be BAG-flat";
    EXPECT_LE(nc[i], nc[i - 1] + 1e-9) << "WCNC must not grow with BAG";
  }
  EXPECT_GT(nc.front(), nc.back());  // strictly higher at BAG = 1 ms
}

// E2 -- Table I shape on the synthetic industrial configuration: the
// trajectory approach wins on most paths, loses on some, and the combined
// method is never worse than WCNC.
TEST(PaperBehaviour, TableIShapeOnIndustrialConfig) {
  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);

  const analysis::BenefitStats traj = analysis::benefit_stats(c.netcalc, c.trajectory);
  EXPECT_GT(traj.mean, 0.0);
  EXPECT_GT(traj.wins_fraction, 0.5);
  EXPECT_LT(traj.wins_fraction, 1.0);  // WCNC must win somewhere
  EXPECT_GT(traj.max, 0.05);
  EXPECT_LT(traj.min, 0.0);

  const analysis::BenefitStats comb = analysis::benefit_stats(c.netcalc, c.combined);
  EXPECT_GE(comb.min, 0.0);
  EXPECT_GE(comb.mean, traj.mean);
}

// E4 -- Figure 6: on the industrial configuration a substantial share of
// the small-frame paths is won by WCNC while the trajectory approach keeps
// the overall majority. The paper's clean monotone trend over s_max only
// partially reproduces on synthetic configurations (EXPERIMENTS.md); the
// per-frame-size *mechanism* itself is pinned down by Fig7SmaxCrossover.
TEST(PaperBehaviour, WcncWinsVisibleOnSmallFramePaths) {
  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);
  std::size_t small_wins = 0, small_total = 0;
  for (std::size_t i = 0; i < c.netcalc.size(); ++i) {
    if (cfg.vl(cfg.all_paths()[i].vl).s_max <= 300) {
      ++small_total;
      if (c.netcalc[i] <= c.trajectory[i] + kEpsilon) ++small_wins;
    }
  }
  ASSERT_GT(small_total, 20u);
  const double small_ratio = static_cast<double>(small_wins) / small_total;
  EXPECT_GT(small_ratio, 0.1);
  EXPECT_LT(small_ratio, 0.6);
}

// The full pipeline: generate -> serialize -> reload -> analyze -> simulate,
// with the simulated delays inside the reloaded bounds.
TEST(Integration, FullPipelineRoundTrip) {
  gen::IndustrialOptions o;
  o.vl_count = 60;
  o.end_system_count = 16;
  o.seed = 2026;
  const TrafficConfig cfg =
      config::load_config_string(config::save_config_string(
          gen::industrial_config(o)));
  const analysis::Comparison c = analysis::compare(cfg);
  sim::Options so;
  so.phasing = sim::Phasing::kRandom;
  so.seed = 99;
  const sim::Result r = sim::simulate(cfg, so);
  for (std::size_t i = 0; i < c.combined.size(); ++i) {
    EXPECT_LE(r.max_path_delay[i], c.combined[i] + 1e-6);
    EXPECT_GT(r.max_path_delay[i], 0.0);
  }
}

// Determinism of the whole stack: identical seeds produce identical bounds
// and identical simulations.
TEST(Integration, EndToEndDeterminism) {
  gen::IndustrialOptions o;
  o.vl_count = 40;
  o.end_system_count = 12;
  const TrafficConfig a = gen::industrial_config(o);
  const TrafficConfig b = gen::industrial_config(o);
  const analysis::Comparison ca = analysis::compare(a);
  const analysis::Comparison cb = analysis::compare(b);
  EXPECT_EQ(ca.netcalc, cb.netcalc);
  EXPECT_EQ(ca.trajectory, cb.trajectory);
  EXPECT_EQ(sim::simulate(a, {}).max_path_delay,
            sim::simulate(b, {}).max_path_delay);
}

}  // namespace
}  // namespace afdx

#include "netcalc/flow_index.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace afdx::netcalc {

namespace {
constexpr Microseconds kAbsent = std::numeric_limits<Microseconds>::quiet_NaN();
}  // namespace

DelayTable::DelayTable(const TrafficConfig& config) {
  slot_.fill(-1);
  // Distinct priority classes, ascending -- one column each.
  std::array<bool, 256> present{};
  for (VlId v = 0; v < config.vl_count(); ++v) {
    present[config.vl(v).priority] = true;
  }
  for (int cls = 0; cls < 256; ++cls) {
    if (present[static_cast<std::size_t>(cls)]) {
      slot_[static_cast<std::size_t>(cls)] =
          static_cast<std::int16_t>(stride_++);
    }
  }
  cells_.assign(config.network().link_count() * std::max<std::size_t>(stride_, 1),
                kAbsent);
}

void DelayTable::set(LinkId port, std::uint8_t cls, Microseconds value) {
  const int slot = slot_[cls];
  AFDX_ASSERT(slot >= 0, "DelayTable::set: unknown priority class");
  cells_[port * stride_ + static_cast<std::size_t>(slot)] = value;
}

void DelayTable::assign(LinkId port,
                        const std::map<std::uint8_t, Microseconds>& row) {
  clear_row(port);
  for (const auto& [cls, d] : row) set(port, cls, d);
}

void DelayTable::clear_row(LinkId port) {
  for (std::size_t s = 0; s < stride_; ++s) cells_[port * stride_ + s] = kAbsent;
}

PortFlowIndex build_port_flow_index(const TrafficConfig& config) {
  PortFlowIndex index;
  const std::size_t n_links = config.network().link_count();
  index.ports.resize(n_links);

  for (LinkId port = 0; port < n_links; ++port) {
    PortFlowIndex::Port& p = index.ports[port];
    p.class_begin = static_cast<std::uint32_t>(index.classes.size());

    // Mirror of the map-based partition in level_aggregates_at(): classes
    // ascending; within a class the pair<bool, LinkId> key order puts every
    // fresh single (false, running counter = encounter order) before the
    // shared groups (true, input link ascending).
    std::map<std::uint8_t,
             std::map<std::pair<bool, LinkId>, std::vector<VlId>>>
        levels;
    LinkId fresh_key = 0;
    for (VlId v : config.vls_on_link(port)) {
      p.max_frame = std::max(p.max_frame, config.vl(v).burst_bits());
      auto& groups = levels[config.vl(v).priority];
      const LinkId pred = config.route(v).predecessor(port);
      if (pred == kInvalidLink) {
        groups[{false, fresh_key++}].push_back(v);
      } else {
        groups[{true, pred}].push_back(v);
      }
    }

    // Per-class largest frame at this port, for the lower-class blocking
    // term (a max, so collapsing the original per-VL rescans is exact).
    std::vector<Bits> class_max_frame;
    for (const auto& [cls, groups] : levels) {
      Bits biggest = 0.0;
      for (const auto& [key, members] : groups) {
        for (VlId v : members) {
          biggest = std::max(biggest, config.vl(v).burst_bits());
        }
      }
      class_max_frame.push_back(biggest);
    }

    std::size_t class_idx = 0;
    for (const auto& [cls, groups] : levels) {
      PortFlowIndex::ClassEntry ce;
      ce.cls = cls;
      ce.group_begin = static_cast<std::uint32_t>(index.groups.size());
      for (const auto& [key, members] : groups) {
        PortFlowIndex::Group g;
        g.pred = key.first ? key.second : kInvalidLink;
        g.member_begin = static_cast<std::uint32_t>(index.members.size());
        for (VlId v : members) {
          const VirtualLink& vl = config.vl(v);
          PortFlowIndex::Member m;
          m.vl = v;
          m.burst = vl.burst_bits();
          m.rate = vl.rate_bits_per_us();
          m.release_jitter = vl.max_release_jitter;
          m.chain_begin = static_cast<std::uint32_t>(index.chains.size());
          const VlRoute& route = config.route(v);
          for (LinkId l = route.predecessor(port); l != kInvalidLink;
               l = route.predecessor(l)) {
            index.chains.push_back(l);
          }
          m.chain_end = static_cast<std::uint32_t>(index.chains.size());
          g.largest_frame = std::max(g.largest_frame, m.burst);
          index.members.push_back(m);
        }
        g.member_end = static_cast<std::uint32_t>(index.members.size());
        index.groups.push_back(g);
      }
      ce.group_end = static_cast<std::uint32_t>(index.groups.size());
      for (std::size_t low = class_idx + 1; low < class_max_frame.size();
           ++low) {
        ce.lower_blocking = std::max(ce.lower_blocking, class_max_frame[low]);
      }
      index.classes.push_back(ce);
      ++class_idx;
    }
    p.class_end = static_cast<std::uint32_t>(index.classes.size());
  }
  return index;
}

}  // namespace afdx::netcalc

#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace afdx::sim {

namespace {

/// A frame instance travelling through the network (one copy per link; the
/// copy is duplicated at multicast forks).
struct Frame {
  VlId vl = kInvalidVl;
  Microseconds generated = 0.0;
  Bits size = 0.0;
};

struct Event {
  Microseconds time = 0.0;
  std::uint64_t seq = 0;  // tie-break, keeps the simulation deterministic
  enum class Kind { kArrival, kTxComplete } kind = Kind::kArrival;
  LinkId port = kInvalidLink;
  Frame frame;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct PortState {
  /// One FIFO queue per static-priority class (0 = highest). Plain AFDX
  /// FIFO ports are the single-class case.
  std::map<std::uint8_t, std::deque<Frame>> queues;
  bool busy = false;
  Frame in_service;
  Bits backlog = 0.0;  // queued + in-service bits

  [[nodiscard]] std::deque<Frame>* next_queue() {
    for (auto& [level, q] : queues) {
      if (!q.empty()) return &q;
    }
    return nullptr;
  }
};

}  // namespace

Microseconds Result::max_delay_for(const TrafficConfig& config,
                                   PathRef ref) const {
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].vl == ref.vl && paths[i].dest_index == ref.dest_index) {
      return max_path_delay[i];
    }
  }
  throw Error("sim Result::max_delay_for: unknown path");
}

Result simulate(const TrafficConfig& config, const Options& options) {
  const Network& net = config.network();
  AFDX_REQUIRE(options.horizon > 0.0, "simulate: horizon must be positive");
  AFDX_REQUIRE(options.phasing != Phasing::kExplicit ||
                   options.offsets.size() == config.vl_count(),
               "simulate: explicit phasing needs one offset per VL");

  Rng rng(options.seed);
  std::vector<Microseconds> offsets(config.vl_count(), 0.0);
  for (VlId v = 0; v < config.vl_count(); ++v) {
    switch (options.phasing) {
      case Phasing::kAligned:
        offsets[v] = 0.0;
        break;
      case Phasing::kRandom:
        offsets[v] = rng.uniform_real(0.0, config.vl(v).bag);
        break;
      case Phasing::kExplicit:
        offsets[v] = options.offsets[v];
        AFDX_REQUIRE(offsets[v] >= 0.0, "simulate: negative offset");
        break;
    }
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;

  // Generate the whole emission schedule up front (sporadic sources at their
  // worst: exactly one frame per BAG).
  for (VlId v = 0; v < config.vl_count(); ++v) {
    const VirtualLink& vl = config.vl(v);
    const LinkId first = config.route(v).crossed_links().front();
    for (Microseconds t = offsets[v]; t < options.horizon; t += vl.bag) {
      Frame f;
      f.vl = v;
      // Source release jitter: the frame nominally due at t may be enqueued
      // anywhere up to max_release_jitter later; delays are measured from
      // the actual release.
      const Microseconds release =
          vl.max_release_jitter > 0.0
              ? t + rng.uniform_real(0.0, vl.max_release_jitter)
              : t;
      f.generated = release;
      f.size = options.randomize_sizes
                   ? bits_from_bytes(static_cast<double>(rng.uniform_int(
                         vl.s_min, vl.s_max)))
                   : vl.burst_bits();
      // Entering the source port's queue also pays that port's latency
      // (zero for standard end-system ports).
      events.push(Event{release + net.link(first).latency, seq++,
                        Event::Kind::kArrival, first, f});
    }
  }

  std::vector<PortState> ports(net.link_count());
  Result result;
  result.max_path_delay.assign(config.all_paths().size(), 0.0);
  result.mean_path_delay.assign(config.all_paths().size(), 0.0);
  result.max_port_backlog.assign(net.link_count(), 0.0);
  std::vector<std::uint64_t> delivered_per_path(config.all_paths().size(), 0);

  // Path lookup: (vl, final link) -> path index.
  std::vector<std::vector<std::pair<LinkId, std::size_t>>> final_links(
      config.vl_count());
  for (std::size_t p = 0; p < config.all_paths().size(); ++p) {
    const VlPath& path = config.all_paths()[p];
    final_links[path.vl].push_back({path.links.back(), p});
  }

  auto start_transmission = [&](LinkId port, Microseconds now) {
    PortState& ps = ports[port];
    if (ps.busy) return;
    std::deque<Frame>* queue = ps.next_queue();
    if (queue == nullptr) return;
    ps.busy = true;
    ps.in_service = queue->front();
    queue->pop_front();
    const Microseconds done = now + ps.in_service.size / net.link(port).rate;
    events.push(Event{done, seq++, Event::Kind::kTxComplete, port,
                      ps.in_service});
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    PortState& ps = ports[ev.port];

    if (ev.kind == Event::Kind::kArrival) {
      ps.queues[config.vl(ev.frame.vl).priority].push_back(ev.frame);
      ps.backlog += ev.frame.size;
      result.max_port_backlog[ev.port] =
          std::max(result.max_port_backlog[ev.port], ps.backlog);
      start_transmission(ev.port, ev.time);
      continue;
    }

    // Transmission complete on ev.port.
    AFDX_ASSERT(ps.busy, "tx-complete on idle port");
    const Frame frame = ps.in_service;
    ps.backlog -= frame.size;
    ps.busy = false;

    const VlRoute& route = config.route(frame.vl);
    // Forward the frame on every successor link of the VL tree.
    for (LinkId next : route.crossed_links()) {
      if (route.predecessor(next) == ev.port) {
        events.push(Event{ev.time + net.link(next).latency, seq++,
                          Event::Kind::kArrival, next, frame});
      }
    }
    // Delivery when this link ends at a destination end system.
    if (net.is_end_system(net.link(ev.port).dest)) {
      for (const auto& [final_link, path_idx] : final_links[frame.vl]) {
        if (final_link == ev.port) {
          const Microseconds delay = ev.time - frame.generated;
          result.max_path_delay[path_idx] =
              std::max(result.max_path_delay[path_idx], delay);
          result.mean_path_delay[path_idx] += delay;
          ++delivered_per_path[path_idx];
          ++result.frames_delivered;
        }
      }
    }
    start_transmission(ev.port, ev.time);
  }

  for (std::size_t p = 0; p < delivered_per_path.size(); ++p) {
    if (delivered_per_path[p] > 0) {
      result.mean_path_delay[p] /= static_cast<double>(delivered_per_path[p]);
    }
  }
  return result;
}

std::vector<Microseconds> adversarial_offsets(const TrafficConfig& config,
                                              PathRef target) {
  const Network& net = config.network();
  const VlPath& path = config.path(target);

  // Contention-free arrival time of a VL's frame at the queue of `link`,
  // assuming emission at offset 0 and maximum-size frames.
  auto free_arrival = [&](VlId v, LinkId link) {
    const VlRoute& route = config.route(v);
    Microseconds acc = 0.0;
    LinkId cur = link;
    for (LinkId pred = route.predecessor(cur); pred != kInvalidLink;
         pred = route.predecessor(cur)) {
      acc += config.vl(v).max_transmission_time(net.link(pred).rate);
      acc += net.link(cur).latency;
      cur = pred;
    }
    return acc;
  };

  std::vector<Microseconds> offsets(config.vl_count(), 0.0);
  // Give the target a headstart of one max BAG so interferers with longer
  // approach paths can still synchronize on it.
  Microseconds headstart = 0.0;
  for (VlId v = 0; v < config.vl_count(); ++v) {
    headstart = std::max(headstart, config.vl(v).bag);
  }
  offsets[target.vl] = headstart;

  for (VlId v = 0; v < config.vl_count(); ++v) {
    if (v == target.vl) continue;
    // First node of the target's path the interferer shares.
    for (LinkId l : path.links) {
      if (!config.route(v).crosses(l)) continue;
      const Microseconds target_arrival =
          headstart + free_arrival(target.vl, l);
      const Microseconds own = free_arrival(v, l);
      // Arrive just before the target: at exact ties the FIFO event order
      // could favour the target, hiding the interference.
      offsets[v] = std::max(0.0, target_arrival - own - 1e-3);
      break;
    }
  }
  return offsets;
}

std::vector<Options> soundness_schedules(const TrafficConfig& config,
                                         const ScheduleSuiteOptions& suite) {
  std::vector<Options> schedules;
  schedules.push_back({});  // aligned
  for (int s = 1; s <= suite.random_schedules; ++s) {
    Options o;
    o.phasing = Phasing::kRandom;
    o.seed = suite.seed + static_cast<std::uint64_t>(s);
    schedules.push_back(o);
  }
  if (suite.adversarial_stride > 0) {
    const auto& paths = config.all_paths();
    for (std::size_t p = 0; p < paths.size(); p += suite.adversarial_stride) {
      Options o;
      o.phasing = Phasing::kExplicit;
      o.offsets = adversarial_offsets(
          config, PathRef{paths[p].vl, paths[p].dest_index});
      schedules.push_back(o);
    }
  }
  if (suite.horizon > 0.0) {
    for (Options& o : schedules) o.horizon = suite.horizon;
  }
  return schedules;
}

}  // namespace afdx::sim

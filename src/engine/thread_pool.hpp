// Fixed-size worker pool used by the analysis engine.
//
// The pool executes *batches*: parallel_for(n, body) runs body(index,
// worker) for every index in [0, n). Indices are statically sharded into
// contiguous blocks, one block per worker, so the index -> worker mapping
// is a pure function of (n, thread_count): per-thread task counts are
// deterministic and a run is reproducible regardless of OS scheduling.
//
// With thread_count() == 1 no threads are ever spawned and every batch
// runs inline on the calling thread -- this is the engine's legacy
// single-threaded path.
//
// Exceptions thrown by the body are captured per worker; after the batch
// the one raised at the smallest global index is rethrown on the calling
// thread (the same index a serial loop would have failed at first,
// because every worker processes its block in ascending order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace afdx::engine {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread acts as worker 0).
  /// `threads` must be >= 1; use resolve_thread_count to map a user-facing
  /// "0 = auto" request to a concrete count.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept { return threads_; }

  /// Runs body(index, worker) for index in [0, n), sharded as described
  /// above. Blocks until every index has been processed (or abandoned
  /// because its worker failed earlier); rethrows the smallest-index
  /// exception, if any.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& body);

  /// One contained task failure of parallel_for_contained.
  struct TaskFailure {
    std::size_t index = 0;
    std::string message;
  };

  /// Like parallel_for, but with per-task exception containment: a throwing
  /// index is recorded as a TaskFailure and every other index still runs.
  /// Nothing is abandoned, nothing is rethrown, and sibling shards are
  /// never poisoned -- the pool stays usable for further batches. Failures
  /// are returned sorted by index (deterministic for a deterministic body).
  [[nodiscard]] std::vector<TaskFailure> parallel_for_contained(
      std::size_t n, const std::function<void(std::size_t, int)>& body);

  /// Work-stealing variant of parallel_for: every worker starts from its
  /// static block but claims it chunk by chunk, and an idle worker steals
  /// chunks from the BACK of the most loaded block. Which worker runs an
  /// index is therefore scheduling-dependent -- use only when the body
  /// writes results to per-index slots (then the outcome stays bit-exact
  /// while imbalanced batches finish earlier). Unlike parallel_for, every
  /// index always executes (a stolen chunk cannot be "abandoned"
  /// deterministically); after the batch the exception raised at the
  /// smallest index is rethrown.
  ///
  /// Chunks are always contiguous index ranges -- both a worker's own
  /// block and anything stolen from a victim's back. The engine's
  /// locality-aware scheduling relies on this: it orders the index space
  /// so neighbouring indices are topology neighbours (VLs sharing route
  /// prefixes), and contiguity is what makes every worker's working set
  /// one neighbourhood even after steals.
  void parallel_for_dynamic(std::size_t n,
                            const std::function<void(std::size_t, int)>& body);

  /// Containment variant of parallel_for_dynamic: per-index failures are
  /// collected as messages and returned sorted by index, nothing rethrows.
  [[nodiscard]] std::vector<TaskFailure> parallel_for_dynamic_contained(
      std::size_t n, const std::function<void(std::size_t, int)>& body);

  /// Cumulative number of chunks stolen across all dynamic batches.
  [[nodiscard]] std::uint64_t steal_count() const;

  /// Cumulative number of indices executed per worker, since construction.
  [[nodiscard]] std::vector<std::size_t> tasks_per_thread() const;

  /// Maps a user request to a concrete thread count: values >= 1 are kept,
  /// anything else becomes std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static int resolve_thread_count(int requested);

 private:
  /// The contiguous index block of `worker` in a batch of size n.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard(std::size_t n,
                                                          int worker) const;
  void run_shard(std::size_t n, int worker);
  void worker_loop(int worker);

  struct Failure {
    std::size_t index = 0;
    std::exception_ptr error;
  };

  /// Runs one dynamic batch to completion (all indices executed, failures
  /// parked per worker in dyn_failures_).
  void run_dynamic_batch(std::size_t n,
                         const std::function<void(std::size_t, int)>& body);
  void run_dynamic(int worker);
  /// Hands `worker` its next chunk -- own block first, then a steal from
  /// the back of the most loaded block. False when the batch is drained.
  bool claim_chunk(int worker, std::size_t& begin, std::size_t& end);

  int threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t batch_seq_ = 0;        // bumped per parallel_for
  const std::function<void(std::size_t, int)>* body_ = nullptr;
  std::size_t batch_n_ = 0;
  bool dynamic_batch_ = false;         // current batch is work-stealing
  int pending_workers_ = 0;            // workers still running the batch
  bool stopping_ = false;

  std::vector<std::size_t> executed_;  // per worker, guarded by mu_
  std::vector<Failure> failures_;      // per worker, guarded by mu_

  /// Unclaimed remainder [next, end) of a worker's block in the current
  /// dynamic batch.
  struct DynRange {
    std::size_t next = 0;
    std::size_t end = 0;
  };
  mutable std::mutex dyn_mu_;          // guards ranges, chunk size, steals
  std::vector<DynRange> dyn_ranges_;
  std::size_t dyn_chunk_ = 1;
  std::uint64_t steals_ = 0;
  /// Per-worker failure lists of the current dynamic batch; each worker
  /// touches only its own slot until the batch barrier.
  std::vector<std::vector<Failure>> dyn_failures_;
};

}  // namespace afdx::engine

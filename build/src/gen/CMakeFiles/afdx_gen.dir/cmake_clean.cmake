file(REMOVE_RECURSE
  "CMakeFiles/afdx_gen.dir/industrial.cpp.o"
  "CMakeFiles/afdx_gen.dir/industrial.cpp.o.d"
  "libafdx_gen.a"
  "libafdx_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

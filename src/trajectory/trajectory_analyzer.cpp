#include "trajectory/trajectory_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/error.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "trajectory/prefix_cache.hpp"
#include "trajectory/sweep.hpp"

namespace afdx::trajectory {

namespace {

/// Number of frames of a sporadic flow (period T, arrival window widened by
/// the jitter term a) that can interfere with a packet generated at t.
double frame_count(Microseconds t, Microseconds a, Microseconds period) {
  const double window = t + a;
  if (window < -kEpsilon) return 0.0;
  return std::floor(window / period + 1e-9) + 1.0;
}

/// splitmix64 finalizer for the generator-pair dedup probe below.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// One interference term: a maximal run of consecutive shared nodes of an
/// interfering flow along the study path.
struct Segment {
  Microseconds a = 0.0;       // jitter window widening A_ij
  Microseconds c = 0.0;       // largest per-node transmission time in the run
  Microseconds period = 0.0;  // BAG of j
};

}  // namespace

// Reusable per-prefix scratch. All vectors keep their capacity across
// prefixes; the vl_count-sized open-segment tables are validated by epoch
// instead of being cleared (clearing would cost O(vl_count) per prefix,
// prohibitive on 100k-VL configurations).
struct Analyzer::ScratchFrame {
  std::vector<LinkId> sub;
  std::vector<Segment> segments;
  std::vector<std::vector<std::size_t>> node_first_met;
  // The SoA a / c / period columns themselves live on the analyzer's bump
  // arena (carved per prefix, rewound on exit); only the variable-length
  // candidate buffer stays a pooled vector here.
  std::vector<Microseconds> candidates;
  /// Unique (period, a) generator pairs feeding the candidate sweep, and
  /// the epoch-tagged probe table that deduplicates them (bit-pattern
  /// equality; sorting the pairs per prefix profiled as the single
  /// largest cost once the sweep itself was vectorized).
  std::vector<std::pair<Microseconds, Microseconds>> gen_pairs;
  struct GenSlot {
    std::uint64_t period_bits = 0;
    std::uint64_t a_bits = 0;
    std::uint64_t epoch = 0;
  };
  std::vector<GenSlot> gen_table;
  /// Open segment per flow, indexed by VlId; an entry is live only when
  /// open_epoch[j] matches the frame's current epoch.
  std::vector<std::size_t> open_seg;
  std::vector<std::size_t> open_last;
  std::vector<std::uint64_t> open_epoch;
  std::uint64_t epoch = 0;
};

Analyzer::~Analyzer() = default;

Microseconds Result::bound_for(const TrafficConfig& config, PathRef ref) const {
  const auto& paths = config.all_paths();
  if (path_index_.empty() && !paths.empty()) {
    path_index_.reserve(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      path_index_.emplace(
          (static_cast<std::uint64_t>(paths[i].vl) << 32) | paths[i].dest_index,
          i);
    }
  }
  const std::uint64_t k =
      (static_cast<std::uint64_t>(ref.vl) << 32) | ref.dest_index;
  if (auto it = path_index_.find(k); it != path_index_.end()) {
    return path_bounds[it->second];
  }
  throw Error("Trajectory Result::bound_for: unknown path");
}

Analyzer::Analyzer(const TrafficConfig& config, const Options& options)
    : cfg_(config), opt_(options) {
  // The trajectory approach is a FIFO analysis; static-priority
  // configurations are handled by the network-calculus analyzer only.
  for (VlId v = 0; v < cfg_.vl_count(); ++v) {
    AFDX_REQUIRE(cfg_.vl(v).priority == cfg_.vl(0).priority,
                 "trajectory: the trajectory approach supports FIFO ports "
                 "only (VL " + cfg_.vl(v).name +
                 " uses a different priority class)");
  }
}

void Analyzer::set_backlog_caps(std::vector<Microseconds> caps) {
  AFDX_REQUIRE(caps.size() == cfg_.network().link_count(),
               "trajectory: backlog cap vector does not match the network's "
               "link count");
  backlog_caps_ = std::move(caps);
}

const std::vector<Microseconds>& Analyzer::backlog_caps() {
  if (!backlog_caps_.has_value()) {
    backlog_caps_.emplace(cfg_.network().link_count(),
                          std::numeric_limits<Microseconds>::infinity());
    if (opt_.serialization) {
      // The envelope analysis can fail only on unstable ports, where the
      // trajectory busy period diverges anyway; fall back to uncapped.
      try {
        const netcalc::Result nc = netcalc::analyze(cfg_);
        for (LinkId l = 0; l < cfg_.network().link_count(); ++l) {
          if (nc.ports[l].used) {
            (*backlog_caps_)[l] =
                nc.ports[l].queue_backlog / cfg_.network().link(l).rate;
          }
        }
      } catch (const Error&) {
      }
    }
  }
  return *backlog_caps_;
}

Microseconds Analyzer::min_arrival_at(VlId vl, LinkId link) const {
  const std::uint64_t k = key(vl, link);
  if (const Microseconds* hit = min_arrival_memo_.find(k)) return *hit;
  const VlRoute& route = cfg_.route(vl);
  AFDX_REQUIRE(route.crosses(link), "min_arrival_at: VL does not cross link");
  // Walk the unique tree prefix backwards: each earlier node adds its
  // (smallest-frame) transmission time, each node after the first adds its
  // technological latency.
  Microseconds acc = 0.0;
  LinkId cur = link;
  for (LinkId pred = route.predecessor(cur); pred != kInvalidLink;
       pred = route.predecessor(cur)) {
    acc += cfg_.vl(vl).min_transmission_time(cfg_.network().link(pred).rate);
    acc += cfg_.network().link(cur).latency;
    cur = pred;
  }
  min_arrival_memo_.emplace(k, acc);
  return acc;
}

const std::vector<std::vector<Analyzer::FlowAtLink>>& Analyzer::flow_table() {
  if (!flows_.has_value()) {
    const Network& net = cfg_.network();
    flows_.emplace(net.link_count());
    for (LinkId l = 0; l < net.link_count(); ++l) {
      const std::vector<VlId>& crossing = cfg_.vls_on_link(l);
      std::vector<FlowAtLink>& out = (*flows_)[l];
      out.reserve(crossing.size());
      for (VlId j : crossing) {
        const VirtualLink& v = cfg_.vl(j);
        out.push_back(FlowAtLink{j, cfg_.route(j).predecessor(l),
                                 v.max_transmission_time(net.link(l).rate),
                                 v.bag, v.max_release_jitter});
      }
    }
  }
  return *flows_;
}

Microseconds Analyzer::max_arrival_at(VlId vl, LinkId link) {
  const VlRoute& route = cfg_.route(vl);
  AFDX_REQUIRE(route.crosses(link), "max_arrival_at: VL does not cross link");
  const LinkId pred = route.predecessor(link);
  if (pred == kInvalidLink) return 0.0;  // queued at generation time
  return bound_to_link(vl, pred) + cfg_.network().link(link).latency;
}

Microseconds Analyzer::bound_to_link(VlId vl, LinkId link) {
  const std::uint64_t k = key(vl, link);
  ++counters_.lookups;
  if (const Microseconds* hit = memo_.find(k)) {
    ++counters_.local_hits;
    return *hit;
  }
  if (shared_ != nullptr) {
    if (const auto cached = shared_->lookup(vl, link); cached.has_value()) {
      ++counters_.shared_hits;
      memo_.emplace(k, *cached);
      return *cached;
    }
  }
  AFDX_REQUIRE(in_progress_.insert(k).second,
               "trajectory: cyclic prefix dependency involving VL " +
                   cfg_.vl(vl).name +
                   " (the trajectory approach requires a feed-forward "
                   "configuration)");
  // Erase the marker on every exit path. compute_prefix throws on
  // divergence (unstable path utilization), and analyzer instances are
  // reused across paths by the engine and the ladder; a leaked marker
  // would make every later prefix that reaches (vl, link) falsely fail
  // with the cyclic-dependency error above.
  struct EraseGuard {
    std::unordered_set<std::uint64_t>& set;
    std::uint64_t key;
    ~EraseGuard() { set.erase(key); }
  } guard{in_progress_, k};
  const Microseconds bound = compute_prefix(vl, link);
  memo_.emplace(k, bound);
  if (shared_ != nullptr) shared_->store(vl, link, bound);
  return bound;
}

Microseconds Analyzer::compute_prefix(VlId i, LinkId last) {
  AFDX_TRACE_SPAN("trajectory.prefix", "trajectory");
  static obs::Counter& prefixes =
      obs::registry().counter("trajectory.prefixes");
  prefixes.add();
  const Network& net = cfg_.network();
  const VlRoute& route_i = cfg_.route(i);
  AFDX_REQUIRE(route_i.crosses(last), "compute_prefix: VL does not cross link");

  // One pooled scratch frame per live recursion depth. bound_to_link
  // re-enters compute_prefix while this frame is mid-construction, so the
  // scratch cannot be flat instance state -- but pooling frames by depth
  // still removes the per-prefix reallocation of every vector below.
  if (scratch_depth_ == scratch_pool_.size()) {
    scratch_pool_.push_back(std::make_unique<ScratchFrame>());
  }
  ScratchFrame& fr = *scratch_pool_[scratch_depth_];
  ++scratch_depth_;
  struct DepthGuard {
    std::size_t& depth;
    ~DepthGuard() { --depth; }
  } depth_guard{scratch_depth_};

  // Arena rewind point for this prefix's SoA columns. Columns are carved
  // only after the segment recursion below returns, so marks nest strictly
  // (a child prefix allocates and rewinds before its parent allocates) and
  // the steady state reuses the same hot arena pages for every prefix.
  struct ArenaGuard {
    common::BumpArena& arena;
    common::BumpArena::Mark mark;
    ~ArenaGuard() { arena.rewind(mark); }
  } arena_guard{arena_, arena_.mark()};

  // The unique tree prefix l_0 .. l_{m-1} ending at `last`.
  std::vector<LinkId>& sub = fr.sub;
  sub.clear();
  for (LinkId l = last; l != kInvalidLink; l = route_i.predecessor(l)) {
    sub.push_back(l);
  }
  std::reverse(sub.begin(), sub.end());
  const std::size_t m = sub.size();

  auto c_of = [&](VlId j, LinkId l) {
    return cfg_.vl(j).max_transmission_time(net.link(l).rate);
  };

  // Per-link precomputed flow rows (predecessor, C_j, BAG, jitter) -- the
  // segment-construction loop below is the analyzer's second-hottest spot
  // after response(), and route/hash lookups dominated it.
  const std::vector<std::vector<FlowAtLink>>& flows = flow_table();

  // --- Interference segments -------------------------------------------------
  // A flow j contributes one term per maximal run of consecutive shared
  // nodes; the run is "consecutive" only when j actually travels along i's
  // path (its predecessor at node k is node k-1).
  std::vector<Segment>& segments = fr.segments;
  segments.clear();
  std::size_t own_segment = 0;  // index of i's own (first) segment
  // Open segment per flow, indexed by VlId: index into `segments`, and last
  // covered node. An entry is live only when its epoch matches the frame's
  // current one -- bumping the epoch invalidates the whole table in O(1).
  if (fr.open_seg.size() != cfg_.vl_count()) {
    fr.open_seg.assign(cfg_.vl_count(), 0);
    fr.open_last.assign(cfg_.vl_count(), 0);
    fr.open_epoch.assign(cfg_.vl_count(), 0);
    fr.epoch = 0;
  }
  const std::uint64_t epoch = ++fr.epoch;

  // Segments grouped by their starting node (for the FIFO backlog caps) and
  // by (starting node, input link) (for the simultaneity surcharge of the
  // non-serialized variant). i's own segment is excluded from both.
  if (fr.node_first_met.size() < m) fr.node_first_met.resize(m);
  for (std::size_t idx = 0; idx < m; ++idx) fr.node_first_met[idx].clear();
  std::vector<std::vector<std::size_t>>& node_first_met = fr.node_first_met;
  struct LinkGroup {
    Microseconds sum_c = 0.0;
    Microseconds max_c = 0.0;
    int members = 0;
  };
  // Only the non-serialized variant reads the groups (surcharge below).
  std::map<std::pair<std::size_t, LinkId>, LinkGroup> link_groups;

  for (std::size_t idx = 0; idx < m; ++idx) {
    const LinkId lk = sub[idx];
    const Microseconds latency_lk = net.link(lk).latency;
    // The study packet's own arrival-window term is the same for every
    // flow first met at this node; computed lazily on the first new
    // segment (so the exact set of recursive prefix computations is
    // unchanged) and reused for the rest of the node's flows.
    bool jitter_i_cached = false;
    Microseconds jitter_i_node = 0.0;
    for (const FlowAtLink& f : flows[lk]) {
      const VlId j = f.id;
      const LinkId pred_j = f.pred;
      if (fr.open_epoch[j] == epoch && idx > 0 && fr.open_last[j] == idx - 1 &&
          pred_j == sub[idx - 1]) {
        // j keeps travelling along i's path: extend its segment.
        Segment& seg = segments[fr.open_seg[j]];
        seg.c = std::max(seg.c, f.c);
        fr.open_last[j] = idx;
        continue;
      }
      // New segment starting at node lk. The arrival window of j at this
      // node is widened by its source release jitter plus the spread
      // between its best- and worst-case prefix traversal.
      const Microseconds max_arr_j =
          f.release_jitter +
          ((pred_j == kInvalidLink)
               ? 0.0
               : bound_to_link(j, pred_j) + latency_lk);
      const Microseconds jitter_j = max_arr_j - min_arrival_at(j, lk);
      Microseconds jitter_i = 0.0;
      if (j != i || idx > 0) {
        // The study packet's own release instant is the time origin, so
        // only its traversal spread (not its release jitter) widens the
        // window.
        if (!jitter_i_cached) {
          const Microseconds max_arr_i =
              (idx == 0) ? 0.0
                         : bound_to_link(i, sub[idx - 1]) + latency_lk;
          jitter_i_node = max_arr_i - min_arrival_at(i, lk);
          jitter_i_cached = true;
        }
        jitter_i = jitter_i_node;
      }
      Segment seg;
      seg.a = jitter_j + jitter_i;
      seg.c = f.c;
      seg.period = f.period;
      segments.push_back(seg);
      fr.open_seg[j] = segments.size() - 1;
      fr.open_last[j] = idx;
      fr.open_epoch[j] = epoch;

      if (j == i && idx == 0) {
        own_segment = segments.size() - 1;
        continue;
      }
      node_first_met[idx].push_back(segments.size() - 1);
      if (!opt_.serialization && pred_j != kInvalidLink) {
        LinkGroup& g = link_groups[{idx, pred_j}];
        g.sum_c += seg.c;
        g.max_c = std::max(g.max_c, seg.c);
        ++g.members;
      }
    }
  }

  // --- Constant terms --------------------------------------------------------
  // Double-counted busy-period boundary packet at every node after the
  // first: bounded by the largest frame of a VL met in that node (the
  // paper's stated over-approximation), plus the technological latencies.
  Microseconds delta_sum = 0.0;
  Microseconds latency_sum = 0.0;
  for (std::size_t idx = 1; idx < m; ++idx) {
    const LinkId lk = sub[idx];
    Microseconds biggest = 0.0;
    for (const FlowAtLink& f : flows[lk]) {
      // The boundary packet closes the busy period of node idx-1 and opens
      // the one of node idx, so it physically travels that transition;
      // only flows routed through it qualify (always at least flow i).
      // The loose variant keeps the paper's wording: any VL met in the node.
      if (!opt_.loose_boundary_packet && f.pred != sub[idx - 1]) {
        continue;
      }
      biggest = std::max(biggest, f.c);
    }
    delta_sum += biggest;
    latency_sum += net.link(lk).latency;
  }

  // Non-serialized variant: the assumed-simultaneous first frames of each
  // shared-input-link group cost their serialization span on top (Fig. 3
  // versus Fig. 4 of the paper).
  Microseconds surcharge = 0.0;
  if (!opt_.serialization) {
    for (const auto& [key, g] : link_groups) {
      if (g.members >= 2) surcharge += g.sum_c - g.max_c;
    }
  }

  const Microseconds c_first = c_of(i, sub.front());
  const Microseconds c_last = c_of(i, sub.back());
  const Microseconds consts =
      delta_sum + latency_sum + surcharge - c_first + c_last;

  // Serialization caps: per node, the first-met flows cannot have more work
  // queued in front of the packet than the port's worst-case FIFO backlog.
  const std::vector<Microseconds>& caps = backlog_caps();

  // Flatten the per-node segment lists into contiguous SoA columns (same
  // node-by-node summation order, so the bound is arithmetic-identical) --
  // response() below is evaluated O(candidates x busy rounds) times and
  // dominates the whole analysis; streaming a / c / period as three
  // separate arrays lets the sweep kernel vectorize across candidates.
  // Capping by +infinity is exact, which makes the serialization branch
  // loop-invariant. The columns are carved from the per-analyzer bump
  // arena (rewound on exit, see ArenaGuard above): exact-size, adjacent in
  // one block, no vector growth bookkeeping in the hot path.
  const std::size_t seg_total = segments.size();
  Microseconds* const flat_a = arena_.alloc_array<Microseconds>(seg_total);
  Microseconds* const flat_c = arena_.alloc_array<Microseconds>(seg_total);
  Microseconds* const flat_period =
      arena_.alloc_array<Microseconds>(seg_total);
  std::size_t* const node_begin = arena_.alloc_array<std::size_t>(m + 1);
  Microseconds* const node_cap = arena_.alloc_array<Microseconds>(m);
  char* const saturated = arena_.alloc_array<char>(m);
  std::size_t cursor = 0;
  for (std::size_t idx = 0; idx < m; ++idx) {
    node_begin[idx] = cursor;
    for (std::size_t s : node_first_met[idx]) {
      flat_a[cursor] = segments[s].a;
      flat_c[cursor] = segments[s].c;
      flat_period[cursor] = segments[s].period;
      ++cursor;
    }
    node_cap[idx] = opt_.serialization
                        ? caps[sub[idx]]
                        : std::numeric_limits<Microseconds>::infinity();
  }
  node_begin[m] = cursor;
  const Segment own = segments[own_segment];

  auto response = [&](Microseconds t) {
    Microseconds w = frame_count(t, own.a, own.period) * own.c;
    for (std::size_t idx = 0; idx < m; ++idx) {
      Microseconds node_sum = 0.0;
      for (std::size_t s = node_begin[idx]; s < node_begin[idx + 1]; ++s) {
        node_sum += frame_count(t, flat_a[s], flat_period[s]) * flat_c[s];
      }
      w += std::min(node_sum, node_cap[idx]);
    }
    return w + consts - t;
  };

  // --- Busy period ------------------------------------------------------------
  // response(0) seeds both the busy-period fixed point and the sweep's
  // running maximum below; it is a pure function of the columns, so one
  // evaluation serves both (bit-identical to evaluating it twice).
  const Microseconds response_at_zero = response(0.0);
  Microseconds busy = std::max<Microseconds>(response_at_zero, 0.0);
  int rounds = 0;
  for (; rounds < opt_.max_busy_iterations; ++rounds) {
    const Microseconds next = response(busy) + busy;  // workload at `busy`
    if (next <= busy + kEpsilon) break;
    busy = next;
    AFDX_REQUIRE(busy < 1e12,
                 "trajectory: busy period diverges for VL " + cfg_.vl(i).name +
                     " (summed path utilization >= 1)");
  }
  AFDX_REQUIRE(rounds < opt_.max_busy_iterations,
               "trajectory: busy-period fixed point did not converge for VL " +
                   cfg_.vl(i).name);
  // Competing-frame accounting: segment count and busy-period growth are
  // the two cost drivers of the prefix recursion.
  static obs::Histogram& seg_hist =
      obs::registry().histogram("trajectory.segments_per_prefix");
  static obs::Histogram& round_hist =
      obs::registry().histogram("trajectory.busy_rounds");
  seg_hist.observe(segments.size());
  round_hist.observe(static_cast<std::uint64_t>(rounds));
  static obs::Histogram& cand_hist =
      obs::registry().histogram("trajectory.candidates_per_prefix");

  // Two exact prunings of the ascending sweep, both resting on
  // frame_count being nondecreasing in t (floating-point rounding is
  // monotone, so the property survives fl arithmetic):
  //  - once a node's sum reaches its cap it stays capped, and min() would
  //    return exactly node_cap from then on -- stop re-summing the node;
  //  - the workload w(t) + consts never exceeds its value at the largest
  //    admissible t, so when that envelope minus t can no longer beat
  //    `best`, neither can any later candidate.
  const Microseconds t_max = busy + kEpsilon;
  Microseconds w_max = frame_count(t_max, own.a, own.period) * own.c;
  for (std::size_t idx = 0; idx < m; ++idx) {
    Microseconds node_sum = 0.0;
    for (std::size_t s = node_begin[idx]; s < node_begin[idx + 1]; ++s) {
      node_sum += frame_count(t_max, flat_a[s], flat_period[s]) * flat_c[s];
    }
    w_max += std::min(node_sum, node_cap[idx]);
  }
  const Microseconds envelope = w_max + consts;

  // --- Maximize over the candidate generation instants ------------------------
  // R(t) decreases with slope -1 between frame-count jumps (the caps are
  // constants), so the max is attained at t = 0 or at a jump. Segments with
  // equal (BAG, A) generate bitwise-equal jump instants, so deduplicating
  // the generators drops repeat evaluations without changing the maximum
  // (max over the same value set is order-free). The dedup is an
  // epoch-tagged bit-pattern probe table: sorting the pairs per prefix
  // profiled as the top cost once the sweep itself was vectorized, and the
  // candidates are globally sorted below anyway.
  std::vector<std::pair<Microseconds, Microseconds>>& gen_pairs = fr.gen_pairs;
  gen_pairs.clear();
  std::size_t table_size = 64;
  while (table_size < 2 * segments.size()) table_size *= 2;
  if (fr.gen_table.size() < table_size) {
    fr.gen_table.assign(table_size, ScratchFrame::GenSlot{});
  }
  const std::size_t table_mask = fr.gen_table.size() - 1;
  for (const Segment& s : segments) {
    std::uint64_t pb = 0;
    std::uint64_t ab = 0;
    std::memcpy(&pb, &s.period, sizeof(pb));
    std::memcpy(&ab, &s.a, sizeof(ab));
    std::size_t h = static_cast<std::size_t>(mix64(pb ^ mix64(ab))) & table_mask;
    while (true) {
      ScratchFrame::GenSlot& slot = fr.gen_table[h];
      if (slot.epoch != epoch) {
        slot = ScratchFrame::GenSlot{pb, ab, epoch};
        gen_pairs.emplace_back(s.period, s.a);
        break;
      }
      if (slot.period_bits == pb && slot.a_bits == ab) break;  // duplicate
      h = (h + 1) & table_mask;
    }
  }
  // Generation cut: `best` is nondecreasing from response(0), so any
  // candidate with envelope - t <= response(0) is provably pruned by the
  // sweep's envelope check -- skip materializing it (each generator's
  // instants ascend with k, so the cut is a plain break).
  std::vector<Microseconds>& candidates = fr.candidates;
  candidates.clear();
  for (const auto& [period, a] : gen_pairs) {
    for (int k = 1;; ++k) {
      const Microseconds t = k * period - a;
      if (t > busy + kEpsilon || envelope - t <= response_at_zero) break;
      if (t >= 0.0) candidates.push_back(t);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  Microseconds best = response_at_zero;

  // The sweep itself runs in the dispatched kernel (sweep.hpp): the AVX2
  // variant batches 4 candidates per lane-parallel walk of the columns and
  // is bit-identical to the scalar fallback by construction.
  cand_hist.observe(candidates.size());
  static obs::Counter& simd_sweeps =
      obs::registry().counter("trajectory.sweep.simd");
  static obs::Counter& scalar_sweeps =
      obs::registry().counter("trajectory.sweep.scalar");
  const sweep::Kind kind = sweep::active();
  (kind == sweep::Kind::kSimd ? simd_sweeps : scalar_sweeps).add();
  std::memset(saturated, 0, m);
  const sweep::Columns cols{flat_a,   flat_c, flat_period, node_begin,
                            node_cap, m,      own.a,       own.c,
                            own.period};
  best = sweep::run(kind, cols, candidates.data(), candidates.size(), consts,
                    envelope, best, saturated);

  // The bound can never beat the jitter-free store-and-forward traversal.
  Microseconds floor_bound = c_last;
  for (std::size_t idx = 0; idx + 1 < m; ++idx) floor_bound += c_of(i, sub[idx]);
  floor_bound += latency_sum;
  return std::max(best, floor_bound);
}

Microseconds Analyzer::path_bound(PathRef ref) {
  const VlPath& p = cfg_.path(ref);
  return bound_to_link(p.vl, p.links.back());
}

Result Analyzer::analyze() {
  Result result;
  result.path_bounds.reserve(cfg_.all_paths().size());
  for (const VlPath& p : cfg_.all_paths()) {
    result.path_bounds.push_back(bound_to_link(p.vl, p.links.back()));
  }
  return result;
}

Result analyze(const TrafficConfig& config, const Options& options) {
  Analyzer analyzer(config, options);
  return analyzer.analyze();
}

}  // namespace afdx::trajectory

// Fixed-size worker pool used by the analysis engine.
//
// The pool executes *batches*: parallel_for(n, body) runs body(index,
// worker) for every index in [0, n). Indices are statically sharded into
// contiguous blocks, one block per worker, so the index -> worker mapping
// is a pure function of (n, thread_count): per-thread task counts are
// deterministic and a run is reproducible regardless of OS scheduling.
//
// With thread_count() == 1 no threads are ever spawned and every batch
// runs inline on the calling thread -- this is the engine's legacy
// single-threaded path.
//
// Exceptions thrown by the body are captured per worker; after the batch
// the one raised at the smallest global index is rethrown on the calling
// thread (the same index a serial loop would have failed at first,
// because every worker processes its block in ascending order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace afdx::engine {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread acts as worker 0).
  /// `threads` must be >= 1; use resolve_thread_count to map a user-facing
  /// "0 = auto" request to a concrete count.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept { return threads_; }

  /// Runs body(index, worker) for index in [0, n), sharded as described
  /// above. Blocks until every index has been processed (or abandoned
  /// because its worker failed earlier); rethrows the smallest-index
  /// exception, if any.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& body);

  /// One contained task failure of parallel_for_contained.
  struct TaskFailure {
    std::size_t index = 0;
    std::string message;
  };

  /// Like parallel_for, but with per-task exception containment: a throwing
  /// index is recorded as a TaskFailure and every other index still runs.
  /// Nothing is abandoned, nothing is rethrown, and sibling shards are
  /// never poisoned -- the pool stays usable for further batches. Failures
  /// are returned sorted by index (deterministic for a deterministic body).
  [[nodiscard]] std::vector<TaskFailure> parallel_for_contained(
      std::size_t n, const std::function<void(std::size_t, int)>& body);

  /// Cumulative number of indices executed per worker, since construction.
  [[nodiscard]] std::vector<std::size_t> tasks_per_thread() const;

  /// Maps a user request to a concrete thread count: values >= 1 are kept,
  /// anything else becomes std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static int resolve_thread_count(int requested);

 private:
  /// The contiguous index block of `worker` in a batch of size n.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard(std::size_t n,
                                                          int worker) const;
  void run_shard(std::size_t n, int worker);
  void worker_loop(int worker);

  struct Failure {
    std::size_t index = 0;
    std::exception_ptr error;
  };

  int threads_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t batch_seq_ = 0;        // bumped per parallel_for
  const std::function<void(std::size_t, int)>* body_ = nullptr;
  std::size_t batch_n_ = 0;
  int pending_workers_ = 0;            // workers still running the batch
  bool stopping_ = false;

  std::vector<std::size_t> executed_;  // per worker, guarded by mu_
  std::vector<Failure> failures_;      // per worker, guarded by mu_
};

}  // namespace afdx::engine

// Tests for the static-priority-queueing (SPQ) extension: residual-service
// calculus, the priority-aware simulator, FIFO degeneracy, and soundness of
// the per-class bounds. (The paper analyzes FIFO ports; SPQ is the
// extension its conclusion and the authors' companion papers point to.)
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "gen/industrial.hpp"
#include "minplus/operations.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "sim/simulator.hpp"
#include "trajectory/trajectory_analyzer.hpp"

namespace afdx {
namespace {

using minplus::Curve;

// --- residual service (min-plus layer) --------------------------------------

TEST(ResidualService, BlockingOnlyShiftsTheLatency) {
  // RL(100, 16) minus a 4000-bit blocking frame: zero until
  // t* = (16*100 + 4000)/100 = 56, then full rate.
  const Curve r = minplus::residual_service(
      Curve::rate_latency(100.0, 16.0), Curve(), 4000.0);
  EXPECT_NEAR(r.value(56.0), 0.0, 1e-6);
  EXPECT_NEAR(r.value(66.0), 1000.0, 1e-3);
  EXPECT_NEAR(r.final_slope(), 100.0, 1e-9);
}

TEST(ResidualService, HigherPriorityLeakyBucket) {
  // RL(100, 16) minus affine(4000, 1): zero until
  // t* = (1600 + 4000)/99 = 56.5657, then slope 99.
  const Curve r = minplus::residual_service(
      Curve::rate_latency(100.0, 16.0), Curve::affine(4000.0, 1.0), 0.0);
  const double t_star = 5600.0 / 99.0;
  EXPECT_NEAR(r.value(t_star), 0.0, 1e-3);
  EXPECT_NEAR(r.value(t_star + 1.0), 99.0, 1e-3);
  EXPECT_NEAR(r.final_slope(), 99.0, 1e-9);
}

TEST(ResidualService, MatchesPointwiseDefinition) {
  const Curve beta = Curve::rate_latency(100.0, 16.0);
  const Curve alpha = Curve::affine(2000.0, 5.0);
  const Curve r = minplus::residual_service(beta, alpha, 1000.0);
  for (double t = 0.0; t <= 200.0; t += 3.7) {
    const double expected =
        std::max(0.0, beta.value(t) - alpha.value(t) - 1000.0);
    EXPECT_NEAR(r.value(t), expected, 1e-4) << "t=" << t;
  }
}

TEST(ResidualService, SaturatedServerThrows) {
  EXPECT_THROW(minplus::residual_service(Curve::rate_latency(100.0, 0.0),
                                         Curve::affine(0.0, 100.0), 0.0),
               Error);
}

TEST(ResidualService, RejectsBadShapes) {
  EXPECT_THROW(minplus::residual_service(Curve::affine(10.0, 1.0) /*concave w/burst, fine*/,
                                         Curve::rate_latency(5.0, 1.0) /*convex*/,
                                         0.0),
               Error);
  EXPECT_THROW(minplus::residual_service(Curve::rate_latency(10.0, 1.0),
                                         Curve::affine(0.0, 1.0), -1.0),
               Error);
}

// --- a hand-computed two-class configuration --------------------------------

TrafficConfig two_class_config(Bytes low_smax = 500) {
  Network net;
  const NodeId e_hi = net.add_end_system("e_hi");
  const NodeId e_lo = net.add_end_system("e_lo");
  const NodeId sink = net.add_end_system("sink");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e_hi, s1);
  net.connect(e_lo, s1);
  net.connect(s1, sink);
  VirtualLink hi{"hi", e_hi, {sink}, microseconds_from_ms(4.0), 64, 500};
  hi.priority = 0;
  VirtualLink lo{"lo", e_lo, {sink}, microseconds_from_ms(4.0), 64, low_smax};
  lo.priority = 1;
  return TrafficConfig(std::move(net), {hi, lo});
}

TEST(PriorityNetcalc, HandComputedTwoClassBounds) {
  const TrafficConfig cfg = two_class_config();
  const netcalc::Result r = netcalc::analyze(cfg);
  // hi: ES port 40, switch port: residual RL(100, 56) against the 4000-bit
  // low blocking frame, burst 4040 => 56 + 40.4 = 96.4.
  EXPECT_NEAR(r.path_bounds[0], 40.0 + 96.4, 1e-6);
  // lo: ES port 40, switch port: residual after alpha_hi = affine(4040, 1):
  // t* = 5640/99, then slope 99; burst 4040 => t* + 4040/99.
  EXPECT_NEAR(r.path_bounds[1], 40.0 + 5640.0 / 99.0 + 4040.0 / 99.0, 1e-6);
}

TEST(PriorityNetcalc, ClassesBracketTheFifoBound) {
  const TrafficConfig spq = two_class_config();
  // Same flows, single class -> plain FIFO.
  Network net;
  const NodeId e_hi = net.add_end_system("e_hi");
  const NodeId e_lo = net.add_end_system("e_lo");
  const NodeId sink = net.add_end_system("sink");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e_hi, s1);
  net.connect(e_lo, s1);
  net.connect(s1, sink);
  const TrafficConfig fifo(
      std::move(net),
      {{"hi", e_hi, {sink}, microseconds_from_ms(4.0), 64, 500},
       {"lo", e_lo, {sink}, microseconds_from_ms(4.0), 64, 500}});

  const auto spq_bounds = netcalc::analyze(spq).path_bounds;
  const auto fifo_bounds = netcalc::analyze(fifo).path_bounds;
  EXPECT_LT(spq_bounds[0], fifo_bounds[0]);  // high class gains
  EXPECT_GT(spq_bounds[1], fifo_bounds[1]);  // low class pays
}

TEST(PriorityNetcalc, HighClassOnlySeesLowClassBlocking) {
  // Growing the low-priority frame size moves the high bound only through
  // the one-frame blocking term (burst-size increase: +8 bits per byte/R).
  const Microseconds small = netcalc::analyze(two_class_config(500)).path_bounds[0];
  const Microseconds big = netcalc::analyze(two_class_config(1518)).path_bounds[0];
  // Blocking grows by (1518-500)*8 bits / 100 bits/us = 81.44 us.
  EXPECT_NEAR(big - small, bits_from_bytes(1518 - 500) / 100.0, 1e-6);
}

TEST(PriorityNetcalc, PortReportExposesLevelDelays) {
  const TrafficConfig cfg = two_class_config();
  const Network& net = cfg.network();
  const netcalc::Result r = netcalc::analyze(cfg);
  const LinkId port =
      *net.link_between(*net.find_node("S1"), *net.find_node("sink"));
  ASSERT_EQ(r.ports[port].level_delays.size(), 2u);
  EXPECT_LT(r.ports[port].level_delays.at(0), r.ports[port].level_delays.at(1));
  EXPECT_NEAR(r.ports[port].delay, r.ports[port].level_delays.at(1), 1e-12);
}

// --- simulator ---------------------------------------------------------------

TEST(PrioritySim, HighClassOvertakesQueuedLowFrames) {
  // Two low-priority VLs and one high-priority VL converge on one port.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId sink = net.add_end_system("sink");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(e2, s1);
  net.connect(e3, s1);
  net.connect(s1, sink);
  VirtualLink lo1{"lo1", e1, {sink}, microseconds_from_ms(4.0), 64, 500};
  VirtualLink lo2{"lo2", e2, {sink}, microseconds_from_ms(4.0), 64, 500};
  VirtualLink hi{"hi", e3, {sink}, microseconds_from_ms(4.0), 64, 500};
  lo1.priority = lo2.priority = 1;
  hi.priority = 0;
  const TrafficConfig cfg(std::move(net), {lo1, lo2, hi});

  sim::Options o;
  o.phasing = sim::Phasing::kExplicit;
  o.offsets = {0.0, 0.0, 5.0};
  o.horizon = microseconds_from_ms(4.0);
  const sim::Result r = sim::simulate(cfg, o);
  // Arrivals at the shared port: lo1 @56, lo2 @56, hi @61. Non-preemptive:
  // lo1 56..96, then hi (96..136, delay 131), then lo2 (136..176).
  EXPECT_NEAR(r.max_path_delay[2], 131.0, 1e-9);
  EXPECT_NEAR(r.max_path_delay[0], 96.0, 1e-9);
  EXPECT_NEAR(r.max_path_delay[1], 176.0, 1e-9);
}

TEST(PrioritySim, SingleClassKeepsFifoTimeline) {
  // With equal priorities the same scenario serves strictly in FIFO order.
  Network net;
  const NodeId e1 = net.add_end_system("e1");
  const NodeId e2 = net.add_end_system("e2");
  const NodeId e3 = net.add_end_system("e3");
  const NodeId sink = net.add_end_system("sink");
  const NodeId s1 = net.add_switch("S1");
  net.connect(e1, s1);
  net.connect(e2, s1);
  net.connect(e3, s1);
  net.connect(s1, sink);
  const TrafficConfig cfg(
      std::move(net),
      {{"a", e1, {sink}, microseconds_from_ms(4.0), 64, 500},
       {"b", e2, {sink}, microseconds_from_ms(4.0), 64, 500},
       {"c", e3, {sink}, microseconds_from_ms(4.0), 64, 500}});
  sim::Options o;
  o.phasing = sim::Phasing::kExplicit;
  o.offsets = {0.0, 0.0, 5.0};
  o.horizon = microseconds_from_ms(4.0);
  const sim::Result r = sim::simulate(cfg, o);
  EXPECT_NEAR(r.max_path_delay[2], 171.0, 1e-9);  // c waits behind a and b
}

// --- cross-cutting -----------------------------------------------------------

TEST(Priority, TrajectoryRejectsMultiClassConfigurations) {
  const TrafficConfig cfg = two_class_config();
  EXPECT_THROW(trajectory::analyze(cfg), Error);
}

class PrioritySoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrioritySoundness, SimulatedDelaysStayBelowClassBounds) {
  gen::IndustrialOptions o;
  o.seed = GetParam();
  o.vl_count = 40;
  o.end_system_count = 14;
  o.switch_count = 5;
  o.priority_levels = 3;
  const TrafficConfig cfg = gen::industrial_config(o);

  // The generator must actually produce several classes.
  std::set<int> classes;
  for (VlId v = 0; v < cfg.vl_count(); ++v) classes.insert(cfg.vl(v).priority);
  EXPECT_GE(classes.size(), 2u);

  const auto bounds = netcalc::analyze(cfg).path_bounds;
  for (std::uint64_t s = 0; s <= 3; ++s) {
    sim::Options so;
    so.phasing = s == 0 ? sim::Phasing::kAligned : sim::Phasing::kRandom;
    so.seed = GetParam() * 7 + s;
    const sim::Result r = sim::simulate(cfg, so);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      EXPECT_LE(r.max_path_delay[i], bounds[i] + 1e-6) << "path " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrioritySoundness,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace afdx

// Tests for the fault-scenario subsystem: scenario enumeration and parsing,
// degraded-view construction (reroute / unreachable), and the healthy-vs-
// degraded DegradationReport invariants.
#include "faults/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "engine/cancel.hpp"
#include "faults/degrade.hpp"
#include "faults/report.hpp"

namespace afdx::faults {
namespace {

// A topology with a genuine alternate route: a -> S1 -> S2 -> b is the
// healthy shortest path, and S1 -> S3 -> S2 survives a S1-S2 cable cut.
// vbg loads the S2 -> b port from a second source so the rerouted flow
// meets cross traffic on the surviving route.
TrafficConfig ring_config() {
  Network net;
  const NodeId a = net.add_end_system("a");
  const NodeId b = net.add_end_system("b");
  const NodeId c = net.add_end_system("c");
  const NodeId s1 = net.add_switch("S1");
  const NodeId s2 = net.add_switch("S2");
  const NodeId s3 = net.add_switch("S3");
  net.connect(a, s1);
  net.connect(b, s2);
  net.connect(c, s3);
  net.connect(s1, s2);
  net.connect(s1, s3);
  net.connect(s3, s2);

  std::vector<VirtualLink> vls;
  vls.push_back({"vmain", a, {b}, 4000.0, 64, 500});
  vls.push_back({"vbg", c, {b}, 2000.0, 64, 1000});
  return TrafficConfig(std::move(net), std::move(vls));
}

std::size_t path_index(const TrafficConfig& cfg, const std::string& vl_name,
                       std::uint32_t dest = 0) {
  const VlId vl = *cfg.find_vl(vl_name);
  const auto& all = cfg.all_paths();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].vl == vl && all[i].dest_index == dest) return i;
  }
  throw Error("test: unknown path");
}

TEST(Scenario, SingleLinkEnumeratesEveryUsedCableOnce) {
  const TrafficConfig cfg = config::sample_config();
  const auto scenarios = single_link_scenarios(cfg);
  // The Figure-2 sample has 9 cables, every one crossed by some VL.
  EXPECT_EQ(scenarios.size(), 9u);
  for (const FaultScenario& s : scenarios) {
    EXPECT_EQ(s.failed_links.size(), 2u) << s.name;  // both directions
    EXPECT_TRUE(s.failed_nodes.empty());
  }
}

TEST(Scenario, SingleSwitchEnumeratesEveryUsedSwitch) {
  const TrafficConfig cfg = config::sample_config();
  const auto scenarios = single_switch_scenarios(cfg);
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].name, "switch S1");
  EXPECT_EQ(scenarios[0].failed_nodes.size(), 1u);
}

TEST(Scenario, UsedOnlyFiltersIdleCables) {
  // ring_config: vmain uses a-S1 and S1-S2; vbg uses c-S3 and S3-S2. The
  // b-S2 cable is used (toward b); S1-S3 is idle.
  const TrafficConfig cfg = ring_config();
  const auto used = single_link_scenarios(cfg, /*used_only=*/true);
  const auto all = single_link_scenarios(cfg, /*used_only=*/false);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(used.size(), 5u);  // S1-S3 carries nothing
}

TEST(Scenario, SpecParsesLinksSwitchesAndEndSystems) {
  const TrafficConfig cfg = config::sample_config();
  const FaultScenario s =
      scenario_from_spec(cfg.network(), "link:e1-S1,switch:S2,es:e7");
  EXPECT_EQ(s.failed_links.size(), 2u);
  EXPECT_EQ(s.failed_nodes.size(), 2u);
  // Order of the node names does not matter for a cable.
  const FaultScenario rev = scenario_from_spec(cfg.network(), "link:S1-e1");
  EXPECT_EQ(rev.failed_links, s.failed_links);
}

TEST(Scenario, SpecRejectsMalformedInput) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  EXPECT_THROW(scenario_from_spec(net, ""), Error);
  EXPECT_THROW(scenario_from_spec(net, "e1-S1"), Error);          // no kind
  EXPECT_THROW(scenario_from_spec(net, "link:e1-e9"), Error);     // unknown
  EXPECT_THROW(scenario_from_spec(net, "link:e1-e2"), Error);     // no cable
  EXPECT_THROW(scenario_from_spec(net, "switch:e1"), Error);      // wrong kind
  EXPECT_THROW(scenario_from_spec(net, "es:S1"), Error);          // wrong kind
  EXPECT_THROW(scenario_from_spec(net, "cpu:S1"), Error);         // unknown
  EXPECT_THROW(scenario_from_spec(net, "link:e1-S1,,es:e7"), Error);
}

TEST(Degrade, EmptyScenarioKeepsEverythingIntact) {
  const TrafficConfig cfg = config::sample_config();
  const DegradedView view = apply_scenario(cfg, FaultScenario{});
  EXPECT_EQ(view.intact, cfg.all_paths().size());
  EXPECT_EQ(view.rerouted, 0u);
  EXPECT_EQ(view.unreachable, 0u);
  ASSERT_TRUE(view.config.has_value());
  for (std::size_t i = 0; i < view.paths.size(); ++i) {
    EXPECT_EQ(view.paths[i].degraded_index, i);
    EXPECT_EQ(view.config->all_paths()[i].links, cfg.all_paths()[i].links);
  }
}

TEST(Degrade, EsCableCutMakesItsVlUnreachable) {
  // An end system connects to exactly one switch (ARINC 664), so cutting
  // e1-S1 leaves v1 with no route at all; everything else is untouched.
  const TrafficConfig cfg = config::sample_config();
  const DegradedView view = apply_scenario(
      cfg, scenario_from_spec(cfg.network(), "link:e1-S1"));
  EXPECT_EQ(view.unreachable, 1u);
  EXPECT_EQ(view.intact, 4u);
  EXPECT_EQ(view.paths[path_index(cfg, "v1")].fate, PathFate::kUnreachable);
  EXPECT_EQ(view.paths[path_index(cfg, "v1")].degraded_index,
            kNoDegradedIndex);
  ASSERT_TRUE(view.config.has_value());
  EXPECT_EQ(view.config->vl_count(), 4u);
  EXPECT_FALSE(view.config->find_vl("v1").has_value());
}

TEST(Degrade, SwitchFailureCanKillTheWholeConfig) {
  // Every sample path crosses S3; its failure leaves no surviving VL.
  const TrafficConfig cfg = config::sample_config();
  const DegradedView view = apply_scenario(
      cfg, scenario_from_spec(cfg.network(), "switch:S3"));
  EXPECT_EQ(view.unreachable, cfg.all_paths().size());
  EXPECT_FALSE(view.config.has_value());
}

TEST(Degrade, DestinationEsFailureSparesOtherVls) {
  const TrafficConfig cfg = config::sample_config();
  const DegradedView view =
      apply_scenario(cfg, scenario_from_spec(cfg.network(), "es:e6"));
  EXPECT_EQ(view.unreachable, 4u);  // v1..v4 target e6
  EXPECT_EQ(view.intact, 1u);       // v5 -> e7 untouched
  EXPECT_EQ(view.paths[path_index(cfg, "v5")].fate, PathFate::kIntact);
}

TEST(Degrade, ReroutesOverSurvivingShortestPath) {
  const TrafficConfig cfg = ring_config();
  const std::size_t vmain = path_index(cfg, "vmain");
  ASSERT_EQ(cfg.all_paths()[vmain].links.size(), 3u);  // a>S1 S1>S2 S2>b

  const DegradedView view = apply_scenario(
      cfg, scenario_from_spec(cfg.network(), "link:S1-S2"));
  EXPECT_EQ(view.rerouted, 1u);
  EXPECT_EQ(view.unreachable, 0u);
  ASSERT_EQ(view.paths[vmain].fate, PathFate::kRerouted);
  ASSERT_TRUE(view.config.has_value());
  const auto& degraded_path =
      view.config->all_paths()[view.paths[vmain].degraded_index];
  EXPECT_EQ(degraded_path.links.size(), 4u);  // a>S1 S1>S3 S3>S2 S2>b
  // The degraded view is a fully valid TrafficConfig: the rerouted flow now
  // shares the S3>S2 port with vbg.
  const auto link = view.config->network().link_between(
      *view.config->network().find_node("S3"),
      *view.config->network().find_node("S2"));
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(view.config->vls_on_link(*link).size(), 2u);
}

TEST(Degrade, RejectsOutOfRangeIds) {
  const TrafficConfig cfg = config::sample_config();
  FaultScenario s;
  s.failed_links.push_back(10000);
  EXPECT_THROW(apply_scenario(cfg, s), Error);
  FaultScenario n;
  n.failed_nodes.push_back(10000);
  EXPECT_THROW(apply_scenario(cfg, n), Error);
}

TEST(Report, SingleLinkSweepOnSampleIsCompleteAndCovering) {
  const TrafficConfig cfg = config::sample_config();
  const DegradationReport report =
      analyze_scenarios(cfg, single_link_scenarios(cfg), {});

  EXPECT_TRUE(report.complete());
  ASSERT_EQ(report.scenarios.size(), 9u);
  ASSERT_EQ(report.healthy.size(), cfg.all_paths().size());
  for (const engine::PathStatus& st : report.healthy_status) {
    EXPECT_TRUE(st.ok());
  }
  std::size_t unreachable_seen = 0;
  for (const ScenarioReport& sr : report.scenarios) {
    EXPECT_TRUE(sr.analyzed) << sr.scenario.name;
    ASSERT_EQ(sr.paths.size(), cfg.all_paths().size());
    for (std::size_t p = 0; p < sr.paths.size(); ++p) {
      const PathDegradation& pd = sr.paths[p];
      // The acceptance invariant: the reported degraded bound of every
      // path dominates its healthy bound (covering envelope), and
      // unreachable paths are explicit records, never dropped.
      EXPECT_GE(pd.degraded_us, pd.healthy_us) << sr.scenario.name;
      if (pd.fate == PathFate::kUnreachable) {
        ++unreachable_seen;
        EXPECT_TRUE(pd.redundancy_lost);
        EXPECT_TRUE(std::isinf(pd.skew_us));
        // First arrival rides the healthy mirror network.
        EXPECT_EQ(pd.first_arrival_us, pd.healthy_us);
      } else {
        EXPECT_EQ(pd.state, engine::PathState::kOk);
        EXPECT_TRUE(std::isfinite(pd.degraded_us));
        EXPECT_GE(pd.skew_us, pd.skew_healthy_us);
      }
    }
    EXPECT_EQ(sr.intact + sr.rerouted + sr.unreachable, sr.paths.size());
  }
  EXPECT_EQ(report.total_unreachable, unreachable_seen);
  EXPECT_GT(report.total_unreachable, 0u);

  std::ostringstream out;
  report.print(out, cfg);
  // Unreachable paths must be listed explicitly in the human report too.
  EXPECT_NE(out.str().find("UNREACHABLE"), std::string::npos);
  EXPECT_NE(out.str().find("report complete"), std::string::npos);
}

TEST(Report, RerouteInflatesCoveringBound) {
  const TrafficConfig cfg = ring_config();
  std::vector<FaultScenario> scenarios;
  scenarios.push_back(scenario_from_spec(cfg.network(), "link:S1-S2"));
  const DegradationReport report =
      analyze_scenarios(cfg, std::move(scenarios), {});

  ASSERT_TRUE(report.complete());
  const PathDegradation& pd =
      report.scenarios[0].paths[path_index(cfg, "vmain")];
  EXPECT_EQ(pd.fate, PathFate::kRerouted);
  EXPECT_TRUE(std::isfinite(pd.degraded_raw_us));
  // One more hop plus new cross traffic: the raw degraded bound genuinely
  // exceeds the healthy one here, so inflation is strict.
  EXPECT_GT(pd.degraded_us, pd.healthy_us);
  EXPECT_GT(pd.inflation, 1.0);
  EXPECT_FALSE(pd.redundancy_lost);
  EXPECT_EQ(report.worst_scenario, 0u);
  EXPECT_EQ(report.worst_path, path_index(cfg, "vmain"));
}

TEST(Report, CancelledTokenSkipsScenariosExplicitly) {
  const TrafficConfig cfg = config::sample_config();
  engine::CancelToken cancel;
  cancel.cancel();
  ScenarioOptions options;
  options.cancel = &cancel;
  const DegradationReport report =
      analyze_scenarios(cfg, single_link_scenarios(cfg), options);
  EXPECT_FALSE(report.complete());
  for (const ScenarioReport& sr : report.scenarios) {
    EXPECT_FALSE(sr.analyzed);
    EXPECT_FALSE(sr.skip_reason.empty());
  }
  std::ostringstream out;
  report.print(out, cfg);
  EXPECT_NE(out.str().find("SKIPPED"), std::string::npos);
  EXPECT_NE(out.str().find("INCOMPLETE"), std::string::npos);
}

TEST(Report, MalformedScenarioIsReportedNotThrown) {
  const TrafficConfig cfg = config::sample_config();
  FaultScenario bogus;
  bogus.name = "bogus";
  bogus.failed_links.push_back(9999);
  const DegradationReport report = analyze_scenarios(cfg, {bogus}, {});
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_FALSE(report.scenarios[0].analyzed);
  EXPECT_NE(report.scenarios[0].skip_reason.find("out of range"),
            std::string::npos);
  EXPECT_FALSE(report.complete());
}

TEST(Report, ParallelSweepMatchesSerial) {
  const TrafficConfig cfg = config::sample_config();
  ScenarioOptions serial;
  serial.threads = 1;
  ScenarioOptions parallel;
  parallel.threads = 4;
  const DegradationReport a =
      analyze_scenarios(cfg, single_link_scenarios(cfg), serial);
  const DegradationReport b =
      analyze_scenarios(cfg, single_link_scenarios(cfg), parallel);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    ASSERT_EQ(a.scenarios[s].paths.size(), b.scenarios[s].paths.size());
    for (std::size_t p = 0; p < a.scenarios[s].paths.size(); ++p) {
      EXPECT_EQ(a.scenarios[s].paths[p].degraded_us,
                b.scenarios[s].paths[p].degraded_us);
      EXPECT_EQ(a.scenarios[s].paths[p].skew_us,
                b.scenarios[s].paths[p].skew_us);
    }
  }
  EXPECT_EQ(a.worst_inflation, b.worst_inflation);
}

TEST(Report, IncrementalSweepMatchesFullRecompute) {
  // The default sweep reuses the healthy run as a baseline; forcing full
  // recomputation must not move a single bit of any figure.
  const TrafficConfig cfg = config::sample_config();
  ScenarioOptions incremental;  // incremental = true is the default
  ScenarioOptions full;
  full.incremental = false;
  auto scenarios = single_link_scenarios(cfg);
  for (auto& s : single_switch_scenarios(cfg)) scenarios.push_back(s);
  const DegradationReport a = analyze_scenarios(cfg, scenarios, incremental);
  const DegradationReport b = analyze_scenarios(cfg, scenarios, full);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    ASSERT_EQ(a.scenarios[s].paths.size(), b.scenarios[s].paths.size());
    for (std::size_t p = 0; p < a.scenarios[s].paths.size(); ++p) {
      const PathDegradation& pa = a.scenarios[s].paths[p];
      const PathDegradation& pb = b.scenarios[s].paths[p];
      EXPECT_EQ(pa.degraded_raw_us, pb.degraded_raw_us);
      EXPECT_EQ(pa.degraded_us, pb.degraded_us);
      EXPECT_EQ(pa.first_arrival_us, pb.first_arrival_us);
      EXPECT_EQ(pa.skew_us, pb.skew_us);
      EXPECT_EQ(pa.state, pb.state);
    }
  }
  EXPECT_EQ(a.worst_inflation, b.worst_inflation);
  EXPECT_EQ(a.worst_scenario, b.worst_scenario);
}

TEST(Report, ScenarioChangedLinksCoversCablesAndNodes) {
  const TrafficConfig cfg = config::sample_config();
  const Network& net = cfg.network();
  FaultScenario s;
  add_failed_cable(net, s, 0);
  s.failed_nodes.push_back(net.link(2).source);
  const std::vector<LinkId> changed = scenario_changed_links(net, s);
  // Both directions of the cable are present...
  EXPECT_NE(std::find(changed.begin(), changed.end(), 0), changed.end());
  EXPECT_NE(std::find(changed.begin(), changed.end(), net.reverse(0)),
            changed.end());
  // ... plus every link attached to the failed node, without duplicates.
  for (LinkId l : net.links_from(s.failed_nodes[0])) {
    EXPECT_NE(std::find(changed.begin(), changed.end(), l), changed.end());
  }
  EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end()));
  EXPECT_EQ(std::adjacent_find(changed.begin(), changed.end()),
            changed.end());
}

}  // namespace
}  // namespace afdx::faults

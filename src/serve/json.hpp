// Strict JSON parsing for the serving protocol.
//
// The daemon speaks newline-delimited JSON; every request line must be one
// complete JSON object. This is the read side of the story (the write side
// is obs::JsonWriter): a small recursive-descent parser over the full JSON
// grammar with the hardening the request path needs:
//
//   * strict numerics through common/parse (parse_double) -- "1x", "nan",
//     hex and other strtod liberties are rejected, not truncated;
//   * every error is an afdx::Error naming the byte offset and, where one
//     exists, the object key being parsed ("key 'bag_us' at offset 27: ..."),
//     so a client can fix its request without guessing;
//   * depth-limited (kMaxDepth) -- a recursion bomb is a parse error, not a
//     stack overflow;
//   * duplicate object keys are rejected (a what-if carrying two "bag_us"
//     values is ambiguous, and silently keeping either one is worse);
//   * trailing garbage after the value is rejected (one line = one value).
//
// JsonValue keeps object members in insertion order; lookups are by key.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace afdx::serve {

class JsonValue;

/// Object members in insertion order (small requests, linear lookup).
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const noexcept {
    return array_;
  }
  [[nodiscard]] const JsonMembers& as_object() const noexcept {
    return members_;
  }

  /// Member of an object by key; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  [[nodiscard]] const char* kind_name() const noexcept;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(JsonMembers v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  JsonMembers members_;
};

/// Nesting limit of parse_json: deeper input is a parse error.
inline constexpr std::size_t kMaxJsonDepth = 16;

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). Throws afdx::Error with offset/key context on any
/// syntax problem.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace afdx::serve

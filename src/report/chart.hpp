// ASCII charts for the figure-reproduction benches: line charts for the
// paper's Figures 5-8 and a signed heat map for Figure 9. Pure text output
// so the benches stay dependency-free and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace afdx::report {

/// One plotted series: (x, y) points, pre-sorted by x by the caller.
struct Series {
  std::string name;
  char marker = '*';
  std::vector<std::pair<double, double>> points;
};

/// Renders series on a shared grid with axis annotations. `log_x` spaces
/// the x axis logarithmically (used for the BAG sweeps).
void line_chart(std::ostream& out, const std::vector<Series>& series,
                int width = 72, int height = 20, bool log_x = false);

/// Renders a matrix of signed values as a heat map: '+' shades where the
/// value is positive, '-' shades where negative, '0' near zero.
/// `row_labels` annotate the rows (first row printed on top).
void signed_heatmap(std::ostream& out,
                    const std::vector<std::vector<double>>& values,
                    const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels);

}  // namespace afdx::report

file(REMOVE_RECURSE
  "libafdx_redundancy.a"
)

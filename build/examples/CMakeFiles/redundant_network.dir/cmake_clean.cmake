file(REMOVE_RECURSE
  "CMakeFiles/redundant_network.dir/redundant_network.cpp.o"
  "CMakeFiles/redundant_network.dir/redundant_network.cpp.o.d"
  "redundant_network"
  "redundant_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundant_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

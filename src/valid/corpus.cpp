#include "valid/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "config/serialization.hpp"

namespace afdx::valid {

namespace {

constexpr const char* kHeader = "# afdx-fuzz corpus v1";

/// "# key=rest-of-line" -> rest-of-line, if the line carries that key.
std::optional<std::string> meta_value(const std::string& line,
                                      const std::string& key) {
  const std::string prefix = "# " + key + "=";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  return line.substr(prefix.size());
}

}  // namespace

TrafficConfig CorpusEntry::config() const {
  return config::load_config_string(config_text);
}

void write_corpus_file(const CorpusEntry& entry, const std::string& path) {
  std::ofstream out(path);
  AFDX_REQUIRE(out.good(), "corpus: cannot open " + path + " for writing");
  out << kHeader << "\n";
  out << "# seed=" << entry.seed << "\n";
  out << "# campaign=" << entry.campaign << "\n";
  out << "# fault=" << to_string(entry.fault) << "\n";
  out << "# fault_factor=" << entry.fault_factor << "\n";
  out << "# witness=" << entry.witness << "\n";
  out << entry.config_text;
  AFDX_REQUIRE(out.good(), "corpus: write to " + path + " failed");
}

CorpusEntry read_corpus_file(const std::string& path) {
  std::ifstream in(path);
  AFDX_REQUIRE(in.good(), "corpus: cannot open " + path);
  CorpusEntry entry;
  std::ostringstream config_text;
  std::string line;
  while (std::getline(in, line)) {
    if (auto v = meta_value(line, "seed")) {
      entry.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto c = meta_value(line, "campaign")) {
      entry.campaign = std::strtoull(c->c_str(), nullptr, 10);
    } else if (auto f = meta_value(line, "fault")) {
      const auto fault = fault_from_string(*f);
      AFDX_REQUIRE(fault.has_value(), "corpus: unknown fault '" + *f + "' in " + path);
      entry.fault = *fault;
    } else if (auto ff = meta_value(line, "fault_factor")) {
      entry.fault_factor = std::strtod(ff->c_str(), nullptr);
    } else if (auto w = meta_value(line, "witness")) {
      entry.witness = *w;
    } else if (line.rfind(kHeader, 0) == 0) {
      continue;
    } else {
      config_text << line << "\n";
    }
  }
  entry.config_text = config_text.str();
  // Validate eagerly so corrupted artifacts fail at load, not at replay.
  (void)entry.config();
  return entry;
}

std::vector<std::string> list_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return files;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".afdx") {
      files.push_back(e.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

ReplayOutcome replay(const CorpusEntry& entry, CheckOptions base) {
  const TrafficConfig cfg = entry.config();
  ReplayOutcome outcome;
  base.fault = Fault::kNone;
  outcome.clean = check_config(cfg, base);
  if (entry.fault != Fault::kNone) {
    base.fault = entry.fault;
    base.fault_factor = entry.fault_factor;
    outcome.faulted = check_config(cfg, base);
  }
  return outcome;
}

}  // namespace afdx::valid

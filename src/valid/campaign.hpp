// Randomized differential-validation campaigns.
//
// A campaign is one randomly generated configuration (via gen::
// industrial_config) pushed through the full differential check of
// validation.hpp. run_campaigns() derives one generator spec per campaign
// index from a master seed and a swept parameter grid (VL count, topology
// depth, BAG spread, s_max cap, multicast fan-out, release jitter), fans
// the campaigns out over the analysis engine's thread pool, auto-shrinks
// every violating configuration to a minimal reproducer, persists it to
// the corpus directory, and aggregates per-method pessimism statistics
// into a JSON report -- the quality axis next to the bench suite's speed
// axis.
//
// Determinism: the spec of campaign i is a pure function of (grid, master
// seed, i); outcomes are written to per-index slots, so a run with N
// threads reports exactly what the serial run reports (wall times aside).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "engine/cancel.hpp"
#include "gen/industrial.hpp"
#include "valid/shrink.hpp"
#include "valid/validation.hpp"

namespace afdx::valid {

/// The swept parameter grid. Each campaign draws one value per axis.
struct GridOptions {
  std::vector<int> vl_counts = {15, 30, 60};
  /// Topology depth: more switches = deeper random tree = longer paths.
  std::vector<int> switch_counts = {3, 5, 8};
  std::vector<int> end_system_counts = {10, 18, 30};
  std::vector<double> multicast_fractions = {0.0, 0.25, 0.5};
  std::vector<int> max_multicast_fanouts = {2, 4, 6};
  /// BAG spread (min_ms, max_ms) within the harmonic 2..128 ms set.
  std::vector<std::pair<double, double>> bag_ranges_ms = {
      {2.0, 128.0}, {2.0, 8.0}, {32.0, 128.0}};
  /// s_max cap in bytes (sweeps the frame-size mix downward).
  std::vector<Bytes> max_frame_bytes = {1518, 800, 300};
  std::vector<Microseconds> release_jitters_us = {0.0, 60.0, 120.0};

  /// A tiny grid for CI smoke stages: small configs, no jitter axis.
  [[nodiscard]] static GridOptions smoke();
};

/// The generator spec of one campaign.
struct CampaignSpec {
  std::size_t index = 0;
  gen::IndustrialOptions gen;
};

/// Derives campaign `index`'s spec: a pure function of the arguments, so
/// every campaign is reproducible in isolation.
[[nodiscard]] CampaignSpec spec_for(const GridOptions& grid,
                                    std::uint64_t master_seed,
                                    std::size_t index);

/// What happened to one campaign.
struct CampaignOutcome {
  CampaignSpec spec;
  /// True when the generator rejected the drawn spec (e.g. the utilization
  /// cap could not be met) -- counted, never fatal.
  bool skipped = false;
  std::string skip_reason;
  /// True when cancellation kept the campaign from running at all; a later
  /// resumed run picks it up. Never counted as completed.
  bool interrupted = false;
  std::size_t vls = 0;
  std::size_t paths = 0;
  CheckResult check;
  /// Corpus artifact of the shrunk reproducer, when one was persisted.
  std::string corpus_file;
  Microseconds wall_us = 0.0;
};

struct CampaignOptions {
  std::size_t campaigns = 100;
  std::uint64_t seed = 42;
  /// Campaign-level worker threads (0 = one per hardware thread). The
  /// inner analysis engines stay serial; parallelism is across campaigns.
  int threads = 1;
  GridOptions grid;
  /// The differential check applied to every configuration (set `fault`
  /// for harness self-tests).
  CheckOptions check;
  /// Shrink violating configurations to minimal reproducers.
  bool shrink_violations = true;
  ShrinkOptions shrink;
  /// Directory the shrunk reproducers are written to (created on demand);
  /// empty = do not persist.
  std::string corpus_dir;
  /// Optional cooperative cancellation (SIGINT/SIGTERM handler, deadline):
  /// polled before each campaign; once expired, remaining campaigns are
  /// marked interrupted instead of running.
  const engine::CancelToken* cancel = nullptr;
  /// Outcomes restored from a checkpoint of an earlier interrupted run with
  /// the same (seed, campaigns): their campaigns are not re-executed, the
  /// recorded results are replayed into their slots (specs are recomputed,
  /// never trusted from the file). Indices out of range are ignored.
  std::vector<CampaignOutcome> resume;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::size_t campaigns = 0;
  int threads = 1;
  std::vector<CampaignOutcome> outcomes;

  // Aggregates (over completed campaigns).
  std::size_t completed = 0;
  std::size_t skipped = 0;
  /// Campaigns cancellation kept from running (checkpoint/resume picks
  /// them up on the next invocation).
  std::size_t interrupted = 0;
  std::size_t paths = 0;
  std::uint64_t schedules_simulated = 0;
  std::size_t violation_count = 0;
  analysis::PessimismStats wcnc;
  analysis::PessimismStats trajectory;
  analysis::PessimismStats combined;
  Microseconds wall_us = 0.0;

  [[nodiscard]] bool ok() const noexcept { return violation_count == 0; }

  /// True when every campaign actually ran (nothing interrupted).
  [[nodiscard]] bool complete() const noexcept { return interrupted == 0; }

  /// Serializes the report as JSON. With include_timing = false the
  /// wall-time fields are omitted, making the output bit-identical across
  /// thread counts and machines (what the determinism tests compare).
  void write_json(std::ostream& out, bool include_timing = true) const;
};

/// Runs the whole campaign sweep. Violations are reported, not thrown.
[[nodiscard]] CampaignReport run_campaigns(const CampaignOptions& options);

}  // namespace afdx::valid

#include "valid/validation.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "netcalc/netcalc_analyzer.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/worst_case_search.hpp"
#include "trajectory/trajectory_analyzer.hpp"
#include "valid/ladder_check.hpp"

namespace afdx::valid {

namespace {

/// Absolute tolerance of every dominance comparison; matches the slack the
/// property tests have always used against float accumulation.
constexpr double kTolerance = 1e-6;

void scale(std::vector<Microseconds>& bounds, double factor) {
  for (Microseconds& b : bounds) b *= factor;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_string(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return "none";
    case Fault::kDeflateNetcalc:
      return "deflate-netcalc";
    case Fault::kDeflateTrajectory:
      return "deflate-trajectory";
    case Fault::kSkewCombined:
      return "skew-combined";
    case Fault::kLoosenLadderRung:
      return "loosen-ladder-rung";
  }
  return "none";
}

std::optional<Fault> fault_from_string(const std::string& name) {
  if (name == "none") return Fault::kNone;
  if (name == "deflate-netcalc") return Fault::kDeflateNetcalc;
  if (name == "deflate-trajectory") return Fault::kDeflateTrajectory;
  if (name == "skew-combined") return Fault::kSkewCombined;
  if (name == "loosen-ladder-rung") return Fault::kLoosenLadderRung;
  return std::nullopt;
}

std::string to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kSimDominance:
      return "sim-dominance";
    case CheckKind::kCombinedIsMin:
      return "combined-is-min";
    case CheckKind::kRefinementMonotonic:
      return "refinement-monotonic";
    case CheckKind::kStoreForwardFloor:
      return "store-forward-floor";
    case CheckKind::kBacklogDominance:
      return "backlog-dominance";
    case CheckKind::kLadderDominance:
      return "ladder-dominance";
    case CheckKind::kLadderProvenance:
      return "ladder-provenance";
  }
  return "sim-dominance";
}

std::string Violation::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " [" << method << "] "
     << (kind == CheckKind::kBacklogDominance ? "port " : "path ") << index
     << ": bound " << bound << " < " << observed;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

Microseconds store_forward_floor(const TrafficConfig& config,
                                 std::size_t path_index) {
  const VlPath& p = config.all_paths().at(path_index);
  Microseconds floor = 0.0;
  for (LinkId l : p.links) {
    floor += config.vl(p.vl).max_transmission_time(config.network().link(l).rate);
    if (config.route(p.vl).predecessor(l) != kInvalidLink) {
      floor += config.network().link(l).latency;
    }
  }
  return floor;
}

CheckResult check_config(const TrafficConfig& config,
                         const CheckOptions& options) {
  AFDX_TRACE_SPAN("valid.check", "valid");
  CheckResult out;
  const std::size_t path_count = config.all_paths().size();
  out.paths = path_count;

  // -- Analyses --------------------------------------------------------------
  engine::AnalysisEngine eng(config, options.engine);
  engine::RunResult run = eng.run();
  std::vector<Microseconds> nc = std::move(run.netcalc);
  std::vector<Microseconds> tj = std::move(run.trajectory);
  std::vector<Microseconds> combined = std::move(run.combined);

  // The injected corruption mimics a broken analyzer: the deflate faults
  // keep combined = min(nc, tj) consistent (so only sim-dominance fires),
  // the skew fault corrupts combined alone (so combined-is-min fires).
  switch (options.fault) {
    case Fault::kNone:
      break;
    case Fault::kDeflateNetcalc:
      scale(nc, options.fault_factor);
      for (std::size_t i = 0; i < combined.size(); ++i) {
        combined[i] = std::min(nc[i], tj[i]);
      }
      break;
    case Fault::kDeflateTrajectory:
      scale(tj, options.fault_factor);
      for (std::size_t i = 0; i < combined.size(); ++i) {
        combined[i] = std::min(nc[i], tj[i]);
      }
      break;
    case Fault::kSkewCombined:
      scale(combined, options.fault_factor);
      break;
    case Fault::kLoosenLadderRung:
      // Applied inside the ladder oracle (check_ladder); the classic
      // bound families stay clean so only the ladder checks fire.
      break;
  }

  struct BoundSet {
    const char* method;
    const std::vector<Microseconds>* bounds;
  };
  std::vector<Microseconds> nc_plain, tj_naive, tj_loose;
  std::vector<BoundSet> families = {
      {"wcnc", &nc}, {"trajectory", &tj}, {"combined", &combined}};
  if (options.variants) {
    netcalc::Options plain;
    plain.grouping = false;
    nc_plain = netcalc::analyze(config, plain).path_bounds;
    trajectory::Options naive;
    naive.serialization = false;
    tj_naive = trajectory::analyze(config, naive).path_bounds;
    trajectory::Options loose;
    loose.loose_boundary_packet = true;
    tj_loose = trajectory::analyze(config, loose).path_bounds;
    families.push_back({"wcnc(no-grouping)", &nc_plain});
    families.push_back({"trajectory(no-serialization)", &tj_naive});
    families.push_back({"trajectory(loose-boundary)", &tj_loose});
  }

  // -- Simulated lower bounds ------------------------------------------------
  out.simulated.assign(path_count, 0.0);
  std::vector<Bits> observed_backlog(config.network().link_count(), 0.0);
  for (const sim::Options& schedule :
       sim::soundness_schedules(config, options.schedules)) {
    AFDX_TRACE_SPAN("valid.simulate.schedule", "valid");
    const sim::Result observed = sim::simulate(config, schedule);
    ++out.schedules_simulated;
    obs::registry().counter("valid.schedules_simulated").add();
    for (std::size_t i = 0; i < path_count; ++i) {
      out.simulated[i] = std::max(out.simulated[i], observed.max_path_delay[i]);
    }
    for (LinkId l = 0; l < config.network().link_count(); ++l) {
      observed_backlog[l] =
          std::max(observed_backlog[l], observed.max_port_backlog[l]);
    }
  }
  if (options.search_paths > 0 && path_count > 0) {
    const std::size_t stride = std::max<std::size_t>(
        1, path_count / static_cast<std::size_t>(options.search_paths));
    sim::SearchOptions so;
    so.steps_per_vl = 4;
    so.max_exhaustive_schedules = 512;
    so.random_restarts = 1;
    so.max_rounds = 2;
    std::size_t searched = 0;
    for (std::size_t p = 0; p < path_count && searched <
         static_cast<std::size_t>(options.search_paths); p += stride) {
      const VlPath& path = config.all_paths()[p];
      so.seed = options.schedules.seed + p;
      const sim::SearchResult r = sim::worst_case_search(
          config, PathRef{path.vl, path.dest_index}, so);
      out.simulated[p] = std::max(out.simulated[p], r.worst_delay);
      out.schedules_simulated += r.schedules_tried;
      ++searched;
    }
  }

  // -- Invariants ------------------------------------------------------------
  // Every analytic bound of every family dominates every realized schedule.
  for (const BoundSet& family : families) {
    AFDX_ASSERT(family.bounds->size() == path_count,
                "check_config: bound vector misaligned with paths");
    for (std::size_t i = 0; i < path_count; ++i) {
      const double bound = (*family.bounds)[i];
      if (out.simulated[i] > bound + kTolerance) {
        out.violations.push_back(
            {CheckKind::kSimDominance, family.method, i, out.simulated[i],
             bound,
             "VL " + config.vl(config.all_paths()[i].vl).name +
                 ": simulated delay exceeds the bound"});
      }
    }
  }

  // combined == min(wcnc, trajectory), per path.
  for (std::size_t i = 0; i < path_count; ++i) {
    const double expected = std::min(nc[i], tj[i]);
    if (std::abs(combined[i] - expected) > kTolerance) {
      out.violations.push_back({CheckKind::kCombinedIsMin, "combined", i,
                                expected, combined[i],
                                "combined bound is not min(wcnc, trajectory)"});
    }
  }

  // Grouping / serialization / boundary-packet refinements only tighten.
  if (options.variants) {
    for (std::size_t i = 0; i < path_count; ++i) {
      if (nc[i] > nc_plain[i] + kTolerance) {
        out.violations.push_back({CheckKind::kRefinementMonotonic, "wcnc", i,
                                  nc_plain[i], nc[i],
                                  "grouping loosened the WCNC bound"});
      }
      if (tj[i] > tj_naive[i] + kTolerance) {
        out.violations.push_back(
            {CheckKind::kRefinementMonotonic, "trajectory", i, tj_naive[i],
             tj[i], "serialization loosened the trajectory bound"});
      }
      if (tj[i] > tj_loose[i] + kTolerance) {
        out.violations.push_back(
            {CheckKind::kRefinementMonotonic, "trajectory", i, tj_loose[i],
             tj[i],
             "refined boundary packet loosened the trajectory bound"});
      }
    }
  }

  // No bound undercuts the store-and-forward floor of its path.
  for (std::size_t i = 0; i < path_count; ++i) {
    const Microseconds floor = store_forward_floor(config, i);
    for (const BoundSet& family : families) {
      if ((*family.bounds)[i] < floor - kTolerance) {
        out.violations.push_back(
            {CheckKind::kStoreForwardFloor, family.method, i, floor,
             (*family.bounds)[i],
             "bound undercuts the physical store-and-forward latency (" +
                 fmt(floor) + " us)"});
      }
    }
  }

  // Buffer bounds dominate every observed FIFO backlog.
  if (options.backlog) {
    const netcalc::Result& ncr = run.netcalc_result;
    for (LinkId l = 0; l < config.network().link_count(); ++l) {
      if (!ncr.ports[l].used) continue;
      if (observed_backlog[l] > ncr.ports[l].backlog + kTolerance) {
        out.violations.push_back(
            {CheckKind::kBacklogDominance, "wcnc", l, observed_backlog[l],
             ncr.ports[l].backlog, "observed backlog exceeds buffer bound"});
      }
    }
  }

  // -- Accuracy/cost ladder oracle -------------------------------------------
  if (options.ladder) check_ladder(config, options, out);

  // -- Pessimism (quality axis) ----------------------------------------------
  out.wcnc = analysis::pessimism_stats(out.simulated, nc);
  out.trajectory = analysis::pessimism_stats(out.simulated, tj);
  out.combined = analysis::pessimism_stats(out.simulated, combined);
  return out;
}

}  // namespace afdx::valid

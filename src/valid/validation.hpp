// Differential validation of the delay analyses.
//
// check_config() runs every analysis variant the library implements on one
// configuration, brackets them from below with a battery of simulated
// schedules, and checks the cross-method invariants the paper's soundness
// claim rests on:
//
//   * sim-dominance   -- every analytic bound (WCNC, trajectory, combined,
//                        and the historical no-grouping / no-serialization
//                        variants) dominates every simulated schedule;
//   * combined-is-min -- the combined method equals min(WCNC, trajectory)
//                        per path (the paper's recommendation, by
//                        construction);
//   * refinement-monotonic -- grouping / serialization / the refined
//                        boundary-packet treatment only ever tighten;
//   * store-forward-floor -- no bound undercuts the physical
//                        store-and-forward latency of its path;
//   * backlog-dominance -- per-port buffer bounds dominate every observed
//                        FIFO backlog.
//
// A Fault can be injected between analysis and checking -- it deliberately
// corrupts the bounds the way a broken analyzer would, which is how the
// harness (detection, shrinking, corpus replay) validates itself end to
// end without touching the real analyzers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/comparison.hpp"
#include "engine/engine.hpp"
#include "sim/simulator.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::valid {

/// Deliberate bound corruption applied before checking (test hook).
enum class Fault {
  kNone,
  /// Scale the WCNC bounds by fault_factor (< 1 fakes an unsound WCNC).
  kDeflateNetcalc,
  /// Scale the trajectory bounds by fault_factor.
  kDeflateTrajectory,
  /// Scale only the combined bounds, breaking combined == min(nc, tj).
  kSkewCombined,
  /// Loosen (inflate) one ladder rung's raw bounds -- the wcnc_grouping
  /// rung -- breaking the raw refinement edge wcnc_grouping <= wcnc and
  /// the ladder's final == tightest-attempted-rung provenance invariant.
  /// Only observable with CheckOptions::ladder.
  kLoosenLadderRung,
};

/// "none", "deflate-netcalc", "deflate-trajectory", "skew-combined",
/// "loosen-ladder-rung".
[[nodiscard]] std::string to_string(Fault fault);
/// Inverse of to_string; nullopt on an unknown name.
[[nodiscard]] std::optional<Fault> fault_from_string(const std::string& name);

/// Which invariant a Violation witnesses.
enum class CheckKind {
  kSimDominance,
  kCombinedIsMin,
  kRefinementMonotonic,
  kStoreForwardFloor,
  kBacklogDominance,
  /// Ladder rung-dominance: cumulative rung bounds must be monotone, must
  /// dominate every simulated schedule, and the raw refinement edges
  /// (grouping, serialization) must only tighten.
  kLadderDominance,
  /// Ladder provenance: final == tightest attempted rung, winner ==
  /// argmin, 100% coverage, budgeted bounds sandwiched between the
  /// cheapest rung and the unlimited ladder.
  kLadderProvenance,
};

[[nodiscard]] std::string to_string(CheckKind kind);

/// One falsified invariant instance.
struct Violation {
  CheckKind kind = CheckKind::kSimDominance;
  /// The bound family involved ("wcnc", "trajectory", "combined",
  /// "wcnc(no-grouping)", ...).
  std::string method;
  /// Path index into TrafficConfig::all_paths() (kSimDominance,
  /// kCombinedIsMin, kRefinementMonotonic, kStoreForwardFloor) or the
  /// LinkId of the port (kBacklogDominance).
  std::size_t index = 0;
  /// The value that should have been dominated (observed delay / backlog,
  /// refined bound, floor, ...).
  double observed = 0.0;
  /// The bound that failed to dominate it.
  double bound = 0.0;
  std::string detail;

  /// One-line human-readable description.
  [[nodiscard]] std::string describe() const;
};

struct CheckOptions {
  /// Injected corruption (see Fault). kNone for real validation runs.
  Fault fault = Fault::kNone;
  double fault_factor = 0.5;
  /// The simulated schedule battery (aligned + random + adversarial).
  sim::ScheduleSuiteOptions schedules;
  /// Also run the historical analysis variants (no grouping, no
  /// serialization, loose boundary packet) and the refinement-monotonicity
  /// checks. Doubles the analysis cost.
  bool variants = true;
  /// Check per-port backlog bounds against observed backlogs.
  bool backlog = true;
  /// Run the worst-case schedule search on this many paths (spread evenly
  /// over the path list) to sharpen the simulated lower bounds. 0 = rely
  /// on the schedule battery only.
  int search_paths = 0;
  /// Also run the accuracy/cost ladder oracle: an unlimited-budget
  /// BoundLadder run checked for rung dominance + provenance, plus a
  /// token-budgeted run checked for the partial-result sandwich
  /// (cheapest-rung bound >= budgeted bound >= unlimited bound, with
  /// partial provenance on every stranded path).
  bool ladder = false;
  /// Threads of the inner analysis engine. Campaigns parallelize across
  /// configurations, so 1 (the deterministic serial path) is the default.
  engine::Options engine;
};

/// Everything check_config learned about one configuration.
struct CheckResult {
  std::vector<Violation> violations;
  /// Per-method pessimism of the analytic bound against the best simulated
  /// lower bound (ratio >= 1 on every path iff sound w.r.t. simulation).
  analysis::PessimismStats wcnc;
  analysis::PessimismStats trajectory;
  analysis::PessimismStats combined;
  /// Pessimism of the unlimited-budget ladder (CheckOptions::ladder only;
  /// all-zero otherwise).
  analysis::PessimismStats ladder;
  /// Best simulated delay per path (the lower-bound witness).
  std::vector<Microseconds> simulated;
  std::size_t paths = 0;
  std::uint64_t schedules_simulated = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Runs the full differential check on one configuration. Deterministic
/// for a given (config, options). Throws afdx::Error only when an analysis
/// itself fails (e.g. an unstable configuration); invariant violations are
/// reported in the result, never thrown.
[[nodiscard]] CheckResult check_config(const TrafficConfig& config,
                                       const CheckOptions& options = {});

/// The store-and-forward floor of one path: transmission of the largest
/// frame on every link plus the technological latency of every switch
/// output port. No sound bound can undercut it.
[[nodiscard]] Microseconds store_forward_floor(const TrafficConfig& config,
                                               std::size_t path_index);

}  // namespace afdx::valid

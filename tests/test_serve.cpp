// Tests for the serving subsystem: the strict JSON parser, the request
// protocol, the Service request handlers (against pinned warm baselines)
// and the Server admission / worker loop.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "engine/engine.hpp"
#include "engine/session.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace afdx::serve {
namespace {

// --- JSON parser ---------------------------------------------------------

TEST(ServeJson, ParsesScalarsAndNesting) {
  const JsonValue v = parse_json(
      R"({"a":1.5,"b":"x","c":[true,false,null],"d":{"e":-2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_number(), 1.5);
  EXPECT_EQ(v.find("b")->as_string(), "x");
  ASSERT_TRUE(v.find("c")->is_array());
  ASSERT_EQ(v.find("c")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("c")->as_array()[0].as_bool());
  EXPECT_TRUE(v.find("c")->as_array()[2].is_null());
  EXPECT_EQ(v.find("d")->find("e")->as_number(), -2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, KeepsMembersInInsertionOrder) {
  const JsonValue v = parse_json(R"({"z":1,"a":2})");
  ASSERT_EQ(v.as_object().size(), 2u);
  EXPECT_EQ(v.as_object()[0].first, "z");
  EXPECT_EQ(v.as_object()[1].first, "a");
}

TEST(ServeJson, DecodesStringEscapes) {
  const JsonValue v = parse_json(R"({"s":"a\"b\\c\nA"})");
  EXPECT_EQ(v.find("s")->as_string(), "a\"b\\c\nA");
}

TEST(ServeJson, RejectsTrailingGarbage) {
  EXPECT_THROW((void)parse_json("{} x"), Error);
  EXPECT_THROW((void)parse_json("1 2"), Error);
}

TEST(ServeJson, RejectsDuplicateKeysNamingTheKey) {
  try {
    (void)parse_json(R"({"bag_us":1,"bag_us":2})");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bag_us"), std::string::npos)
        << e.what();
  }
}

TEST(ServeJson, RejectsLooseNumerics) {
  // Strict numerics: the strtod liberties must be parse errors.
  EXPECT_THROW((void)parse_json("nan"), Error);
  EXPECT_THROW((void)parse_json("0x10"), Error);
  EXPECT_THROW((void)parse_json("01"), Error);
  EXPECT_THROW((void)parse_json("+1"), Error);
  EXPECT_THROW((void)parse_json("1."), Error);
}

TEST(ServeJson, RejectsDepthBomb) {
  std::string bomb;
  for (std::size_t i = 0; i <= kMaxJsonDepth; ++i) bomb += '[';
  for (std::size_t i = 0; i <= kMaxJsonDepth; ++i) bomb += ']';
  EXPECT_THROW((void)parse_json(bomb), Error);
  // One level below the limit is fine.
  std::string ok;
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += '[';
  for (std::size_t i = 0; i < kMaxJsonDepth; ++i) ok += ']';
  EXPECT_NO_THROW((void)parse_json(ok));
}

TEST(ServeJson, ErrorsCarryOffsetContext) {
  try {
    (void)parse_json(R"({"a":tru})");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

// --- Request protocol ----------------------------------------------------

TEST(ServeProtocol, ParsesAFullWhatifRequest) {
  const Request req = parse_request(
      R"({"id":7,"op":"whatif","config":"c1",)"
      R"("set":[{"vl":"v1","bag_us":4000,"s_max_bytes":200}],)"
      R"("fail":"link:e1-S1","deadline_ms":50,"limit":5})");
  EXPECT_EQ(req.id, 7u);
  EXPECT_EQ(req.op, Op::kWhatIf);
  EXPECT_EQ(req.config, "c1");
  ASSERT_EQ(req.set.size(), 1u);
  EXPECT_EQ(req.set[0].vl, "v1");
  EXPECT_EQ(req.set[0].bag, 4000.0);
  EXPECT_EQ(req.set[0].s_max, 200u);
  EXPECT_FALSE(req.set[0].priority.has_value());
  EXPECT_EQ(req.fail_spec, "link:e1-S1");
  EXPECT_EQ(req.deadline_ms, 50.0);
  EXPECT_EQ(req.limit, 5u);
}

TEST(ServeProtocol, ParsesTheLadderBudgetObject) {
  const Request req = parse_request(
      R"({"op":"ladder","ladder":{"budget_ms":12.5,"max_path_evals":7}})");
  EXPECT_EQ(req.op, Op::kLadder);
  ASSERT_TRUE(req.ladder.has_value());
  EXPECT_EQ(req.ladder->budget_ms, 12.5);
  EXPECT_EQ(req.ladder->max_path_evals, 7u);
  // Absent key stays nullopt (whatif then skips the ladder entirely).
  EXPECT_FALSE(parse_request(R"({"op":"ladder"})").ladder.has_value());
  EXPECT_THROW(
      (void)parse_request(R"({"op":"ladder","ladder":{"budget_ms":-1}})"),
      Error);
  EXPECT_THROW((void)parse_request(R"({"op":"ladder","ladder":[1]})"), Error);
}

TEST(ServeProtocol, RejectsUnknownKeysNamingThem) {
  try {
    (void)parse_request(R"({"id":1,"op":"status","bogus":1})");
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, RejectsMissingOrUnknownOp) {
  EXPECT_THROW((void)parse_request(R"({"id":1})"), Error);
  EXPECT_THROW((void)parse_request(R"({"id":1,"op":"explode"})"), Error);
}

TEST(ServeProtocol, RejectsEmptyOverride) {
  // An override that changes no field is a client bug, not a no-op.
  EXPECT_THROW(
      (void)parse_request(R"({"id":1,"op":"whatif","set":[{"vl":"v1"}]})"),
      Error);
}

TEST(ServeProtocol, PeekRequestIdSurvivesMalformedLines) {
  EXPECT_EQ(peek_request_id(R"({"id":9,"op":"status"})"), 9u);
  EXPECT_EQ(peek_request_id("not json at all"), 0u);
  EXPECT_EQ(peek_request_id(""), 0u);
}

TEST(ServeProtocol, ErrorResponseShape) {
  EXPECT_EQ(error_response(7, "boom"),
            R"({"id":7,"ok":false,"error":"boom"})");
}

// --- Service -------------------------------------------------------------

std::shared_ptr<const TrafficConfig> sample_ptr() {
  return std::make_shared<const TrafficConfig>(config::sample_config());
}

void add_sample(Service& service) {
  service.add_baseline("sample", sample_ptr());
}

TEST(ServeService, StatusReportsTheBaseline) {
  Service service;
  add_sample(service);
  const JsonValue v =
      parse_json(service.handle_line(R"({"id":1,"op":"status"})"));
  EXPECT_EQ(v.find("id")->as_number(), 1.0);
  EXPECT_TRUE(v.find("ok")->as_bool());
  ASSERT_EQ(v.find("configs")->as_array().size(), 1u);
  const JsonValue& cfg = v.find("configs")->as_array()[0];
  EXPECT_EQ(cfg.find("name")->as_string(), "sample");
  EXPECT_EQ(cfg.find("paths")->as_number(), 5.0);
  EXPECT_TRUE(cfg.find("complete")->as_bool());
}

TEST(ServeService, BoundsMatchTheEngineBitForBit) {
  Service service;
  add_sample(service);
  const TrafficConfig cfg = config::sample_config();
  engine::AnalysisEngine eng(cfg, engine::Options{1});
  const engine::RunResult fresh = eng.run_resilient();

  const JsonValue v =
      parse_json(service.handle_line(R"({"id":2,"op":"bounds"})"));
  ASSERT_TRUE(v.find("ok")->as_bool());
  const auto& rows = v.find("paths")->as_array();
  ASSERT_EQ(rows.size(), cfg.all_paths().size());
  // JsonWriter emits max_digits10 doubles, so the round trip is exact.
  for (std::size_t p = 0; p < rows.size(); ++p) {
    EXPECT_EQ(rows[p].find("combined_us")->as_number(), fresh.combined[p])
        << "path " << p;
    EXPECT_EQ(rows[p].find("netcalc_us")->as_number(), fresh.netcalc[p]);
    EXPECT_EQ(rows[p].find("trajectory_us")->as_number(), fresh.trajectory[p]);
  }
}

TEST(ServeService, WhatifMatchesAFreshRunOfTheMutatedConfig) {
  Service service;
  add_sample(service);

  // The reference: materialize the same overlay and run it cold.
  auto base = service.baseline("sample");
  engine::OverlaySession reference(base);
  reference.override_s_max("v1", 1518);
  const TrafficConfig mutated = reference.materialize();
  engine::AnalysisEngine eng(mutated, engine::Options{1});
  const engine::RunResult fresh = eng.run_resilient();

  std::map<std::pair<std::string, std::string>, Microseconds> expected;
  for (std::size_t p = 0; p < mutated.all_paths().size(); ++p) {
    const VlPath& path = mutated.all_paths()[p];
    const VirtualLink& vl = mutated.vl(path.vl);
    expected[{vl.name,
              mutated.network().node(vl.destinations[path.dest_index]).name}] =
        fresh.combined[p];
  }

  const JsonValue v = parse_json(service.handle_line(
      R"({"id":3,"op":"whatif","set":[{"vl":"v1","s_max_bytes":1518}]})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_FALSE(v.find("partial")->as_bool());
  EXPECT_FALSE(v.find("incremental")->find("full_fallback")->as_bool());
  EXPECT_GT(v.find("paths_changed")->as_number(), 0.0);
  for (const JsonValue& row : v.find("changed")->as_array()) {
    const auto key = std::make_pair(row.find("vl")->as_string(),
                                    row.find("dest")->as_string());
    ASSERT_TRUE(expected.count(key)) << key.first << " -> " << key.second;
    EXPECT_EQ(row.find("whatif_us")->as_number(), expected[key])
        << key.first << " -> " << key.second;
  }
}

TEST(ServeService, WhatifFaultOverlayReportsUnreachablePaths) {
  Service service;
  add_sample(service);
  // Failing e5's only access link cuts v5 off; every other path survives.
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":4,"op":"whatif","fail":"link:e5-S3"})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_EQ(v.find("unreachable")->as_number(), 1.0);
  bool saw_unreachable = false;
  for (const JsonValue& row : v.find("changed")->as_array()) {
    if (row.find("unreachable") != nullptr) {
      saw_unreachable = true;
      EXPECT_EQ(row.find("vl")->as_string(), "v5");
    }
  }
  EXPECT_TRUE(saw_unreachable);
}

TEST(ServeService, WhatifWithoutChangesIsRejected) {
  Service service;
  add_sample(service);
  const JsonValue v =
      parse_json(service.handle_line(R"({"id":5,"op":"whatif"})"));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_NE(v.find("error")->as_string().find("changes nothing"),
            std::string::npos);
}

TEST(ServeService, ErrorsNameTheOffendingElement) {
  Service service;
  add_sample(service);
  const JsonValue unknown_vl = parse_json(
      service.handle_line(R"({"id":6,"op":"bounds","vl":"nope"})"));
  EXPECT_FALSE(unknown_vl.find("ok")->as_bool());
  EXPECT_NE(unknown_vl.find("error")->as_string().find("'nope'"),
            std::string::npos);

  const JsonValue unknown_config = parse_json(service.handle_line(
      R"({"id":7,"op":"status","config":"missing"})"));
  // status ignores config; bounds does not.
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":8,"op":"bounds","config":"missing"})"));
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_NE(v.find("error")->as_string().find("'missing'"),
            std::string::npos);
  (void)unknown_config;
}

TEST(ServeService, ParseErrorsKeepTheRequestId) {
  Service service;
  add_sample(service);
  const JsonValue v = parse_json(
      service.handle_line(R"({"id":11,"op":"whatif","set":[{"vl":1}]})"));
  EXPECT_EQ(v.find("id")->as_number(), 11.0);
  EXPECT_FALSE(v.find("ok")->as_bool());
}

TEST(ServeService, ExpiredDeadlineYieldsExplicitPartialResults) {
  Service service;
  add_sample(service);
  // A deadline far below one port's work: the run is cancelled, the
  // response still arrives -- marked partial, never a hang.
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":9,"op":"whatif","deadline_ms":0.0001,)"
      R"("set":[{"vl":"v1","bag_us":1000}]})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_TRUE(v.find("partial")->as_bool());
}

TEST(ServeService, FaultSweepReusesThePinnedHealthyRun) {
  Service service;
  add_sample(service);
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":10,"op":"fault_sweep","scope":"single-switch"})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_EQ(v.find("scenarios")->as_number(), 3.0);  // S1..S3
  EXPECT_EQ(v.find("analyzed")->as_number(), 3.0);
  EXPECT_FALSE(v.find("partial")->as_bool());
}

TEST(ServeService, LadderMatchesTheCombinedBoundsWhenUnlimited) {
  Service service;
  add_sample(service);
  const TrafficConfig cfg = config::sample_config();
  engine::AnalysisEngine eng(cfg, engine::Options{1});
  const engine::RunResult fresh = eng.run_resilient();

  const JsonValue v =
      parse_json(service.handle_line(R"({"id":13,"op":"ladder"})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_TRUE(v.find("complete")->as_bool());
  EXPECT_FALSE(v.find("budget_exhausted")->as_bool());
  ASSERT_EQ(v.find("paths")->as_number(), 5.0);
  const auto& rows = v.find("paths_detail")->as_array();
  ASSERT_EQ(rows.size(), 5u);
  // An unlimited ladder ends at the tightest rung everywhere, which is
  // exactly the engine's combined bound; match rows up by (vl, dest)
  // because the response is sorted by tightening, not path index.
  std::map<std::pair<std::string, std::string>, double> combined;
  for (std::size_t p = 0; p < cfg.all_paths().size(); ++p) {
    const VlPath& path = cfg.all_paths()[p];
    const VirtualLink& vl = cfg.vl(path.vl);
    combined[{vl.name, cfg.network().node(vl.destinations[path.dest_index]).name}] =
        fresh.combined[p];
  }
  for (const JsonValue& row : rows) {
    const auto key = std::make_pair(row.find("vl")->as_string(),
                                    row.find("dest")->as_string());
    ASSERT_TRUE(combined.count(key) > 0) << key.first << "->" << key.second;
    EXPECT_EQ(row.find("bound_us")->as_number(), combined[key]);
    EXPECT_LE(row.find("bound_us")->as_number(),
              row.find("first_us")->as_number());
  }
}

TEST(ServeService, LadderBudgetExhaustionIsExplicit) {
  Service service;
  add_sample(service);
  // Token budget = path count: only the cheapest rung fits, every path is
  // stranded below the top rung and says so.
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":14,"op":"ladder","ladder":{"max_path_evals":5}})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  EXPECT_FALSE(v.find("complete")->as_bool());
  EXPECT_TRUE(v.find("budget_exhausted")->as_bool());
  EXPECT_EQ(v.find("budget_reason")->as_string(),
            "path-evaluation budget spent");
  for (const JsonValue& row : v.find("paths_detail")->as_array()) {
    EXPECT_EQ(row.find("winner")->as_string(), "sfa");
    ASSERT_NE(row.find("message"), nullptr);
    EXPECT_NE(row.find("message")->as_string().find("budget exhausted"),
              std::string::npos);
  }
}

TEST(ServeService, WhatifCarriesTheLadderRider) {
  Service service;
  add_sample(service);
  const JsonValue v = parse_json(service.handle_line(
      R"({"id":15,"op":"whatif","set":[{"vl":"v1","bag_us":1000}],)"
      R"("ladder":{}})"));
  ASSERT_TRUE(v.find("ok")->as_bool()) << v.find("error")->as_string();
  const JsonValue* ladder = v.find("ladder");
  ASSERT_NE(ladder, nullptr);
  EXPECT_TRUE(ladder->find("complete")->as_bool());
  EXPECT_GE(ladder->find("path_evals")->as_number(), 5.0);
}

TEST(ServeService, ShutdownLatches) {
  Service service;
  add_sample(service);
  EXPECT_FALSE(service.shutdown_requested());
  const JsonValue v =
      parse_json(service.handle_line(R"({"id":12,"op":"shutdown"})"));
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_TRUE(service.shutdown_requested());
}

// --- Server --------------------------------------------------------------

TEST(ServeServer, StreamServesRequestsInOrderWithOneWorker) {
  Service service;
  add_sample(service);
  Server server(service, ServerOptions{});
  std::istringstream in(
      "{\"id\":1,\"op\":\"status\"}\n"
      "{\"id\":2,\"op\":\"bounds\",\"limit\":1}\n"
      "{\"id\":3,\"op\":\"status\"}\n");
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<double> ids;
  while (std::getline(lines, line)) {
    ids.push_back(parse_json(line).find("id")->as_number());
  }
  EXPECT_EQ(ids, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ServeServer, OversizedLineGetsACleanErrorAndServingContinues) {
  Service service;
  add_sample(service);
  ServerOptions options;
  options.max_line_bytes = 64;
  Server server(service, options);
  std::istringstream in("{\"id\":1,\"op\":\"status\",\"config\":\"" +
                        std::string(200, 'x') + "\"}\n" +
                        "{\"id\":2,\"op\":\"status\"}\n");
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  const JsonValue rejected = parse_json(first);
  EXPECT_FALSE(rejected.find("ok")->as_bool());
  EXPECT_NE(rejected.find("error")->as_string().find("exceeds"),
            std::string::npos);
  EXPECT_TRUE(parse_json(second).find("ok")->as_bool());
}

TEST(ServeServer, OverloadIsAnExplicitResponseNotATail) {
  Service service;
  add_sample(service);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(service, options);

  // One in flight + one queued; the reader admits far faster than the
  // worker can analyze, so most of these must be rejected explicitly.
  constexpr int kRequests = 16;
  std::string input;
  for (int i = 1; i <= kRequests; ++i) {
    input += "{\"id\":" + std::to_string(i) +
             ",\"op\":\"whatif\",\"set\":[{\"vl\":\"v1\",\"bag_us\":" +
             std::to_string(1000 + i) + "}]}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  int responses = 0, overloaded = 0, ok = 0;
  while (std::getline(lines, line)) {
    ++responses;
    const JsonValue v = parse_json(line);
    if (v.find("ok")->as_bool()) {
      ++ok;
    } else if (v.find("error")->as_string() == "overloaded") {
      ++overloaded;
    }
  }
  // Every request is answered exactly once: served or explicitly rejected.
  EXPECT_EQ(responses, kRequests);
  EXPECT_EQ(ok + overloaded, kRequests);
  EXPECT_GE(ok, 1);
}

TEST(ServeServer, ConcurrentWorkersAnswerEveryRequest) {
  Service service;
  add_sample(service);
  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 64;
  Server server(service, options);

  constexpr int kRequests = 24;
  std::string input;
  for (int i = 1; i <= kRequests; ++i) {
    input += "{\"id\":" + std::to_string(i) +
             ",\"op\":\"whatif\",\"set\":[{\"vl\":\"v" +
             std::to_string(1 + (i % 5)) + "\",\"bag_us\":" +
             std::to_string(1000 << (i % 3)) + "}]}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<bool> seen(kRequests + 1, false);
  while (std::getline(lines, line)) {
    const JsonValue v = parse_json(line);
    const auto id = static_cast<std::size_t>(v.find("id")->as_number());
    ASSERT_GE(id, 1u);
    ASSERT_LE(id, static_cast<std::size_t>(kRequests));
    EXPECT_FALSE(seen[id]) << "duplicate response for id " << id;
    seen[id] = true;
    ASSERT_TRUE(v.find("ok")->as_bool()) << line;
  }
  for (int i = 1; i <= kRequests; ++i) EXPECT_TRUE(seen[i]) << "id " << i;
}

}  // namespace
}  // namespace afdx::serve

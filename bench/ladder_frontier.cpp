// Evaluation beyond the paper: the accuracy/cost frontier of the bound
// ladder. The ladder runs its cheapest rung everywhere and then escalates
// the paths with the largest rung disagreement until the budget is spent,
// so every extra token of budget buys some tightening. This bench sweeps
// the token budget from "base rung only" to unlimited and measures the
// residual pessimism (analytic bound / best simulated delay) at each stop:
// the tightness-vs-cpu frontier a deadline-bound caller actually navigates.
//
// Token budgets make the frontier exactly monotone: the ladder's schedule
// is deterministic and a larger budget performs a strict superset of the
// per-path rung evaluations, so the mean pessimism never increases as the
// budget grows (asserted by scripts/validate_bench_json.py).
#include <string>
#include <vector>

#include "analysis/comparison.hpp"
#include "analysis/ladder.hpp"
#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace afdx;

TrafficConfig frontier_config() {
  gen::IndustrialOptions go;
  go.vl_count = 60;
  go.end_system_count = 16;
  go.switch_count = 5;
  return gen::industrial_config(go);
}

/// Best simulated delay per path over the standard soundness battery: the
/// lower-bound witness the pessimism ratios divide by.
std::vector<Microseconds> simulated_lower_bounds(const TrafficConfig& cfg) {
  std::vector<Microseconds> best(cfg.all_paths().size(), 0.0);
  sim::ScheduleSuiteOptions suite;
  suite.random_schedules = 2;
  suite.adversarial_stride = 9;
  for (const sim::Options& schedule : sim::soundness_schedules(cfg, suite)) {
    const sim::Result r = sim::simulate(cfg, schedule);
    for (std::size_t i = 0; i < best.size(); ++i) {
      best[i] = std::max(best[i], r.max_path_delay[i]);
    }
  }
  return best;
}

struct FrontierPoint {
  std::string label;
  std::uint64_t max_path_evals = 0;  // 0 = unlimited
  analysis::LadderResult result;
  analysis::PessimismStats pessimism;
};

FrontierPoint run_point(const TrafficConfig& cfg,
                        const std::vector<Microseconds>& sim_lb,
                        const std::string& label,
                        std::uint64_t max_path_evals) {
  FrontierPoint point;
  point.label = label;
  point.max_path_evals = max_path_evals;
  analysis::LadderOptions opts;
  opts.max_path_evals = max_path_evals;
  opts.wave = 16;
  point.result = analysis::run_ladder(cfg, opts);
  point.pessimism = analysis::pessimism_stats(sim_lb, point.result.bounds);
  return point;
}

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "EXT / ladder frontier: bound tightness vs escalation budget\n\n";

  const TrafficConfig cfg = frontier_config();
  const std::size_t n = cfg.all_paths().size();
  out << "configuration: " << cfg.network().switches().size() << " switches, "
      << cfg.network().end_systems().size() << " end systems, "
      << cfg.vl_count() << " VLs, " << n << " VL paths\n\n";

  const std::vector<Microseconds> sim_lb = simulated_lower_bounds(cfg);

  // Token budgets in multiples of the path count: 1n = the cheapest rung
  // only, 3n = all three whole-configuration rungs, beyond that the
  // trajectory escalation waves, 0 = unlimited (the full ladder).
  const std::vector<std::pair<std::string, double>> budgets = {
      {"1n", 1.0}, {"2n", 2.0}, {"3n", 3.0},
      {"3.5n", 3.5}, {"4n", 4.0}, {"4.5n", 4.5},
  };
  std::vector<FrontierPoint> frontier;
  for (const auto& [label, mult] : budgets) {
    frontier.push_back(run_point(
        cfg, sim_lb, label,
        static_cast<std::uint64_t>(mult * static_cast<double>(n))));
  }
  // The unlimited run doubles as the tracer-overhead workload.
  FrontierPoint full;
  const benchutil::OverheadReport overhead = benchutil::measure_run_overhead(
      [&] { full = run_point(cfg, sim_lb, "unlimited", 0); });
  frontier.push_back(std::move(full));

  report::Table t({"budget", "evals", "escalated", "exhausted",
                   "mean pessimism", "max pessimism", "wall (ms)"});
  for (const FrontierPoint& p : frontier) {
    t.add_row({p.label, std::to_string(p.result.path_evals),
               std::to_string(p.result.paths_escalated),
               p.result.budget_exhausted ? "yes" : "no",
               report::fmt(p.pessimism.mean, 4) + " x",
               report::fmt(p.pessimism.max, 4) + " x",
               report::fmt(p.result.wall_us / 1000.0, 2)});
  }
  t.print(out);
  out << "\nEvery budget keeps 100 % path coverage (the cheapest rung bounds\n"
         "everything first); extra budget only re-bounds the paths with the\n"
         "largest rung disagreement, so the mean pessimism falls\n"
         "monotonically towards the full ladder's.\n\n";
  benchutil::print_overhead(out, overhead);

  const auto json_path = cli.resolve_json_path("ladder_frontier");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc =
        benchutil::begin_bench_json(*json_path, "ladder_frontier", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("switches", cfg.network().switches().size())
          .field("end_systems", cfg.network().end_systems().size())
          .field("vls", cfg.vl_count())
          .field("paths", n)
          .field("sim_schedules_random", 2)
          .field("sim_adversarial_stride", 9);
      w.end_object();
      w.key("results").begin_object();
      w.key("frontier").begin_array();
      for (const FrontierPoint& p : frontier) {
        w.begin_object()
            .field("budget", p.label)
            .field("max_path_evals", p.max_path_evals)
            .field("path_evals", p.result.path_evals)
            .field("paths_escalated", p.result.paths_escalated)
            .field("budget_exhausted", p.result.budget_exhausted)
            .field("mean_pessimism", p.pessimism.mean)
            .field("max_pessimism", p.pessimism.max)
            .field("min_pessimism", p.pessimism.min)
            .field("paths_measured", p.pessimism.paths)
            .field("wall_us", p.result.wall_us)
            .end_object();
      }
      w.end_array();
      w.end_object();
      obs::write_registry_json(w);
      benchutil::write_overhead_json(w, overhead);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_LadderUnlimited(benchmark::State& state) {
  const TrafficConfig cfg = frontier_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::run_ladder(cfg));
  }
}
BENCHMARK(BM_LadderUnlimited)->Unit(benchmark::kMillisecond);

void BM_LadderBudget3n(benchmark::State& state) {
  const TrafficConfig cfg = frontier_config();
  analysis::LadderOptions opts;
  opts.max_path_evals = 3 * cfg.all_paths().size();
  opts.wave = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::run_ladder(cfg, opts));
  }
}
BENCHMARK(BM_LadderBudget3n)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

file(REMOVE_RECURSE
  "libafdx_sim.a"
)

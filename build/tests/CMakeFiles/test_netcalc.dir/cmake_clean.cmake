file(REMOVE_RECURSE
  "CMakeFiles/test_netcalc.dir/test_netcalc.cpp.o"
  "CMakeFiles/test_netcalc.dir/test_netcalc.cpp.o.d"
  "test_netcalc"
  "test_netcalc.pdb"
  "test_netcalc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netcalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
